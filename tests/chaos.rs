//! Chaos integration tests: the full simulated cloud keeps its invariants
//! under deterministic fault injection. CRDT replicas converge despite
//! packet loss and KV throttling; the queue-triggered pipeline delivers
//! exactly the expected payloads despite duplicate delivery, delayed
//! redelivery, and mid-flight function kills.

use faasim_chaos::{sweep, CrdtSync, QueuePipeline, Scenario};

#[test]
fn crdt_sync_converges_under_packet_loss_and_throttling() {
    let scenario = CrdtSync::chaotic();
    let report = scenario.run(42);
    assert!(
        report.violations.is_empty(),
        "seed 42 violated invariants: {:?}",
        report.violations
    );
    // The chaos actually fired: losses and throttles are visible in the
    // metric digest, and the retry layer recorded extra attempts.
    assert!(
        report.digest.contains("kv.throttled"),
        "expected KV throttles in digest:\n{}",
        report.digest
    );
    assert!(
        report.digest.contains("chaos.kv.attempts"),
        "expected retry attempts in digest:\n{}",
        report.digest
    );
}

#[test]
fn queue_pipeline_is_exact_despite_duplicates_and_kills() {
    let scenario = QueuePipeline::chaotic();
    let report = scenario.run(42);
    assert!(
        report.violations.is_empty(),
        "seed 42 violated invariants: {:?}",
        report.violations
    );
    assert!(
        report.digest.contains("queue.chaos_duplicated"),
        "expected duplicate deliveries in digest:\n{}",
        report.digest
    );
}

#[test]
fn chaotic_crdt_sweep_passes_and_replays() {
    let seeds: Vec<u64> = (1..=4).collect();
    let report = sweep(&CrdtSync::chaotic(), &seeds);
    assert!(report.passed(), "{report}");
    assert_eq!(report.minimal_failing_seed(), None);
}

#[test]
fn chaotic_queue_sweep_passes_and_replays() {
    let seeds: Vec<u64> = (1..=4).collect();
    let report = sweep(&QueuePipeline::chaotic(), &seeds);
    assert!(report.passed(), "{report}");
}

#[test]
fn single_seed_rerun_reproduces_recorder_counters() {
    // The acceptance bar for debugging a failing seed: re-running it
    // reproduces the exact Recorder counters and the exact bill.
    let scenario = QueuePipeline::chaotic();
    let a = scenario.run(7);
    let b = scenario.run(7);
    assert_eq!(a.digest, b.digest, "Recorder counters must replay exactly");
    assert_eq!(a.bill, b.bill, "Ledger must replay exactly");

    let scenario = CrdtSync::chaotic();
    let a = scenario.run(7);
    let b = scenario.run(7);
    assert_eq!(a.digest, b.digest);
    assert_eq!(a.bill, b.bill);
}
