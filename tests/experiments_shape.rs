//! Integration tests: every experiment reproduces the *shape* of the
//! paper's result — orderings, ratio bands, crossovers — at reduced
//! scale, with seeds distinct from the unit tests.

use faasim::experiments::{agents_cmp, bandwidth, election, prediction, table1, training};
use faasim::trends;

#[test]
fn table1_ordering_and_bands() {
    let r = table1::run(&table1::Table1Params::quick(), 999);
    // The paper's ordering: invocation > S3 I/O > DynamoDB I/O > ZeroMQ.
    let invoc = r.mean_of("Func. Invoc. (1KB)");
    let s3 = r.mean_of("Lambda I/O (S3)");
    let kv = r.mean_of("Lambda I/O (DynamoDB)");
    let zmq = r.mean_of("EC2 NW (0MQ)");
    assert!(invoc > s3 && s3 > kv && kv > zmq);
    // Three orders of magnitude between the extremes.
    let spread = invoc.as_secs_f64() / zmq.as_secs_f64();
    assert!(
        (900.0..1200.0).contains(&spread),
        "invocation/zmq spread {spread}"
    );
    // Lambda and EC2 see the same storage latency — the paper's
    // observation that "the overhead is in the storage service costs,
    // not in Lambda".
    let ec2_s3 = r.mean_of("EC2 I/O (S3)");
    let ratio = s3.as_secs_f64() / ec2_s3.as_secs_f64();
    assert!((0.95..1.05).contains(&ratio), "lambda/ec2 S3 ratio {ratio}");
}

#[test]
fn table1_with_jitter_keeps_shape() {
    // Realistic latency spreads (not exact means) must preserve the story.
    let params = table1::Table1Params {
        exact: false,
        ..table1::Table1Params::quick()
    };
    let r = table1::run(&params, 1000);
    assert!(r.ratio_of("Func. Invoc. (1KB)") > 500.0);
    assert!(r.ratio_of("Lambda I/O (DynamoDB)") > 20.0);
    assert!((r.ratio_of("EC2 NW (0MQ)") - 1.0).abs() < 1e-9);
}

#[test]
fn training_shape() {
    let r = training::run(&training::TrainingParams::quick(), 999);
    assert!(r.slowdown() > 15.0, "slowdown {}", r.slowdown());
    assert!(r.cost_ratio() > 4.0, "cost ratio {}", r.cost_ratio());
    // The data-shipping decomposition: fetch dominates Lambda iterations.
    let lambda_iter = r.lambda.per_iteration.as_secs_f64();
    let ec2_iter = r.ec2.per_iteration.as_secs_f64();
    assert!(lambda_iter > 2.5 && lambda_iter < 3.5);
    assert!(ec2_iter < 0.2);
}

#[test]
fn prediction_shape() {
    let r = prediction::run(&prediction::PredictionParams::quick(), 999);
    let l_s3 = r.latency_of("Lambda + S3 model");
    let l_opt = r.latency_of("Lambda optimized (model baked in, SQS out)");
    let e_sqs = r.latency_of("EC2 + SQS");
    let e_zmq = r.latency_of("EC2 + ZeroMQ");
    // Strict ordering, an order of magnitude per step down the stack.
    assert!(l_s3 > l_opt && l_opt > e_sqs && e_sqs > e_zmq);
    assert!(l_opt.as_secs_f64() / e_sqs.as_secs_f64() > 20.0);
    assert!(l_opt.as_secs_f64() / e_zmq.as_secs_f64() > 90.0);
    // Cost: SQS pricing is tens of times the serverful fleet.
    assert!(r.cost_ratio() > 30.0);
}

#[test]
fn election_shape() {
    let r = election::run(&election::ElectionParams::quick(), 999);
    let secs = r.mean_round.as_secs_f64();
    assert!((10.0..25.0).contains(&secs), "round {secs}");
    assert!(r.hourly_cost_extrapolated > 300.0);
    // The fraction claim only needs the right order of magnitude.
    assert!((0.005..0.05).contains(&r.fraction_electing));
}

#[test]
fn bandwidth_shape() {
    let r = bandwidth::run(&bandwidth::BandwidthParams::quick(), 999);
    let solo = r.at(1).per_function_mbps;
    let packed = r.at(20).per_function_mbps;
    assert!(solo / packed > 15.0, "collapse {}", solo / packed);
    // Aggregate is capacity-bound, not growing with concurrency.
    assert!(r.at(20).aggregate_mbps < solo * 1.1 + 40.0);
}

#[test]
fn agents_shape() {
    let r = agents_cmp::run(&agents_cmp::AgentsCmpParams::quick(), 999);
    assert!(r.speedup() > 10.0, "speedup {}", r.speedup());
}

#[test]
fn figure1_shape() {
    let pts = trends::generate();
    let (mr_peak, sv_final, crossover) = trends::headline_claims(&pts);
    assert!(sv_final > mr_peak * 0.85);
    assert!(crossover.is_some());
}
