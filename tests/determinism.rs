//! Integration tests: the whole stack is deterministic — the same seed
//! reproduces every experiment bit-for-bit, and different seeds actually
//! differ when distributions have spread.

use bytes::Bytes;
use faasim::experiments::{prediction, table1, training};
use faasim::faas::FunctionSpec;
use faasim::simcore::SimDuration;
use faasim::{Cloud, CloudProfile};

#[test]
fn table1_is_bit_reproducible() {
    let a = table1::run(&table1::Table1Params::quick(), 5);
    let b = table1::run(&table1::Table1Params::quick(), 5);
    for (ra, rb) in a.rows.iter().zip(b.rows.iter()) {
        assert_eq!(ra.mean, rb.mean);
        assert_eq!(ra.samples, rb.samples);
    }
}

#[test]
fn jittered_runs_differ_across_seeds_but_not_within() {
    let params = table1::Table1Params {
        exact: false,
        invocations: 30,
        io_trials: 30,
        rtt_trials: 30,
        ..table1::Table1Params::quick()
    };
    let a = table1::run(&params, 5);
    let b = table1::run(&params, 5);
    let c = table1::run(&params, 6);
    assert_eq!(
        a.mean_of("Func. Invoc. (1KB)"),
        b.mean_of("Func. Invoc. (1KB)")
    );
    assert_ne!(
        a.mean_of("Func. Invoc. (1KB)"),
        c.mean_of("Func. Invoc. (1KB)")
    );
}

#[test]
fn training_and_prediction_reproducible() {
    let t1 = training::run(&training::TrainingParams::quick(), 9);
    let t2 = training::run(&training::TrainingParams::quick(), 9);
    assert_eq!(t1.lambda.total_time, t2.lambda.total_time);
    assert_eq!(t1.lambda.compute_cost, t2.lambda.compute_cost);
    assert_eq!(t1.ec2.total_time, t2.ec2.total_time);

    let p1 = prediction::run(&prediction::PredictionParams::quick(), 9);
    let p2 = prediction::run(&prediction::PredictionParams::quick(), 9);
    for (a, b) in p1.deployments.iter().zip(p2.deployments.iter()) {
        assert_eq!(a.mean_batch_latency, b.mean_batch_latency, "{}", a.label);
    }
}

#[test]
fn whole_cloud_metric_digest_is_reproducible() {
    fn run(seed: u64) -> (String, String) {
        let cloud = Cloud::new(CloudProfile::aws_2018(), seed);
        cloud.blob.create_bucket("b");
        let blob = cloud.blob.clone();
        cloud.faas.register(FunctionSpec::new(
            "touch",
            256,
            SimDuration::from_secs(30),
            move |ctx, payload| {
                let blob = blob.clone();
                async move {
                    blob.put(ctx.host(), "b", "k", payload.clone()).await.unwrap();
                    blob.get(ctx.host(), "b", "k").await.unwrap();
                    Ok(payload)
                }
            },
        ));
        let faas = cloud.faas.clone();
        cloud.sim.block_on(async move {
            for i in 0..20u8 {
                faas.invoke("touch", Bytes::from(vec![i])).await;
            }
        });
        (cloud.recorder.digest(), cloud.ledger.report())
    }
    let (m1, l1) = run(77);
    let (m2, l2) = run(77);
    let (m3, _) = run(78);
    assert_eq!(m1, m2);
    assert_eq!(l1, l2);
    assert_ne!(m1, m3, "different seeds must perturb jittered latencies");
}
