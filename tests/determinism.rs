//! Integration tests: the whole stack is deterministic — the same seed
//! reproduces every experiment bit-for-bit, and different seeds actually
//! differ when distributions have spread.

use bytes::Bytes;
use faasim::experiments::{
    agents_cmp, bandwidth, cold_starts, data_shipping, election, prediction, table1, training,
};
use faasim::faas::FunctionSpec;
use faasim::simcore::SimDuration;
use faasim::{Cloud, CloudProfile};

#[test]
fn table1_is_bit_reproducible() {
    let a = table1::run(&table1::Table1Params::quick(), 5);
    let b = table1::run(&table1::Table1Params::quick(), 5);
    for (ra, rb) in a.rows.iter().zip(b.rows.iter()) {
        assert_eq!(ra.mean, rb.mean);
        assert_eq!(ra.samples, rb.samples);
    }
}

#[test]
fn jittered_runs_differ_across_seeds_but_not_within() {
    let params = table1::Table1Params {
        exact: false,
        invocations: 30,
        io_trials: 30,
        rtt_trials: 30,
        ..table1::Table1Params::quick()
    };
    let a = table1::run(&params, 5);
    let b = table1::run(&params, 5);
    let c = table1::run(&params, 6);
    assert_eq!(
        a.mean_of("Func. Invoc. (1KB)"),
        b.mean_of("Func. Invoc. (1KB)")
    );
    assert_ne!(
        a.mean_of("Func. Invoc. (1KB)"),
        c.mean_of("Func. Invoc. (1KB)")
    );
}

#[test]
fn training_and_prediction_reproducible() {
    let t1 = training::run(&training::TrainingParams::quick(), 9);
    let t2 = training::run(&training::TrainingParams::quick(), 9);
    assert_eq!(t1.lambda.total_time, t2.lambda.total_time);
    assert_eq!(t1.lambda.compute_cost, t2.lambda.compute_cost);
    assert_eq!(t1.ec2.total_time, t2.ec2.total_time);

    let p1 = prediction::run(&prediction::PredictionParams::quick(), 9);
    let p2 = prediction::run(&prediction::PredictionParams::quick(), 9);
    for (a, b) in p1.deployments.iter().zip(p2.deployments.iter()) {
        assert_eq!(a.mean_batch_latency, b.mean_batch_latency, "{}", a.label);
    }
}

/// Every experiment result now carries an `ExperimentProbe`: the byte-exact
/// `Recorder` digest and `Ledger` report of every cloud it built. Equal
/// probes mean every counter, histogram, and billed line item replayed
/// identically — a much stronger check than comparing headline numbers.
mod probe_replay {
    use super::*;
    use faasim::experiments::ExperimentProbe;

    fn assert_probe_replay(label: &str, a: &ExperimentProbe, b: &ExperimentProbe) {
        assert!(!a.is_empty(), "{label}: probe captured no clouds");
        assert_eq!(a, b, "{label}: same seed must replay byte-identically");
    }

    #[test]
    fn table1_probe_replays() {
        let a = table1::run(&table1::Table1Params::quick(), 11);
        let b = table1::run(&table1::Table1Params::quick(), 11);
        assert_probe_replay("table1", &a.probe, &b.probe);
    }

    #[test]
    fn training_probe_replays() {
        let a = training::run(&training::TrainingParams::quick(), 11);
        let b = training::run(&training::TrainingParams::quick(), 11);
        assert_probe_replay("training", &a.probe, &b.probe);
    }

    #[test]
    fn prediction_probe_replays() {
        let a = prediction::run(&prediction::PredictionParams::quick(), 11);
        let b = prediction::run(&prediction::PredictionParams::quick(), 11);
        assert_probe_replay("prediction", &a.probe, &b.probe);
    }

    #[test]
    fn cold_starts_probe_replays() {
        let a = cold_starts::run(&cold_starts::ColdStartParams::quick(), 11);
        let b = cold_starts::run(&cold_starts::ColdStartParams::quick(), 11);
        assert_probe_replay("cold_starts", &a.probe, &b.probe);
    }

    #[test]
    fn bandwidth_probes_replay() {
        let a = bandwidth::run(&bandwidth::BandwidthParams::quick(), 11);
        let b = bandwidth::run(&bandwidth::BandwidthParams::quick(), 11);
        assert_probe_replay("bandwidth", &a.probe, &b.probe);

        let ma = bandwidth::run_memory_sweep(&bandwidth::MemorySweepParams::quick(), 11);
        let mb = bandwidth::run_memory_sweep(&bandwidth::MemorySweepParams::quick(), 11);
        assert_probe_replay("memory_sweep", &ma.probe, &mb.probe);
    }

    #[test]
    fn data_shipping_probe_replays() {
        let a = data_shipping::run(&data_shipping::DataShippingParams::quick(), 11);
        let b = data_shipping::run(&data_shipping::DataShippingParams::quick(), 11);
        assert_probe_replay("data_shipping", &a.probe, &b.probe);
    }

    #[test]
    fn election_probes_replay() {
        let a = election::run(&election::ElectionParams::quick(), 11);
        let b = election::run(&election::ElectionParams::quick(), 11);
        assert_probe_replay("election", &a.probe, &b.probe);

        let ca = election::run_churn(&election::ChurnParams::quick(), 11);
        let cb = election::run_churn(&election::ChurnParams::quick(), 11);
        assert_probe_replay("churn", &ca.probe, &cb.probe);
    }

    #[test]
    fn agents_cmp_probe_replays() {
        let a = agents_cmp::run(&agents_cmp::AgentsCmpParams::quick(), 11);
        let b = agents_cmp::run(&agents_cmp::AgentsCmpParams::quick(), 11);
        assert_probe_replay("agents_cmp", &a.probe, &b.probe);
    }

    #[test]
    fn different_seeds_perturb_the_probe() {
        let params = table1::Table1Params {
            exact: false,
            invocations: 30,
            io_trials: 30,
            rtt_trials: 30,
            ..table1::Table1Params::quick()
        };
        let a = table1::run(&params, 11);
        let c = table1::run(&params, 12);
        assert_ne!(a.probe, c.probe, "jittered runs must differ across seeds");
    }
}

#[test]
fn whole_cloud_metric_digest_is_reproducible() {
    fn run(seed: u64) -> (String, String) {
        let cloud = Cloud::new(CloudProfile::aws_2018(), seed);
        cloud.blob.create_bucket("b");
        let blob = cloud.blob.clone();
        cloud.faas.register(FunctionSpec::new(
            "touch",
            256,
            SimDuration::from_secs(30),
            move |ctx, payload| {
                let blob = blob.clone();
                async move {
                    blob.put(ctx.host(), "b", "k", payload.clone()).await.unwrap();
                    blob.get(ctx.host(), "b", "k").await.unwrap();
                    Ok(payload)
                }
            },
        ));
        let faas = cloud.faas.clone();
        cloud.sim.block_on(async move {
            for i in 0..20u8 {
                faas.invoke("touch", Bytes::from(vec![i])).await;
            }
        });
        (cloud.recorder.digest(), cloud.ledger.report())
    }
    let (m1, l1) = run(77);
    let (m2, l2) = run(77);
    let (m3, _) = run(78);
    assert_eq!(m1, m2);
    assert_eq!(l1, l2);
    assert_ne!(m1, m3, "different seeds must perturb jittered latencies");
}
