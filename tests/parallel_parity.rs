//! Serial-vs-parallel parity: fanning seeds across worker threads must
//! change wall-clock only, never bytes. The same seed set through
//! `sweep` and `ParallelSweep` yields identical `SweepReport`s, and
//! experiment probe digests fanned out via `ParallelSweep::map` match
//! the serial run exactly.

use faasim::experiments::{cold_starts, table1, training};
use faasim_chaos::{sweep, CrdtSync, ParallelSweep, QueuePipeline, Scenario};

#[test]
fn chaos_sweep_parallel_matches_serial_byte_for_byte() {
    let seeds: Vec<u64> = (1..=12).collect();
    let scenarios: Vec<Box<dyn Scenario + Sync>> = vec![
        Box::new(CrdtSync::chaotic()),
        Box::new(QueuePipeline::chaotic()),
    ];
    for scenario in &scenarios {
        let serial = sweep(scenario.as_ref(), &seeds);
        for workers in [2, 4] {
            let parallel = ParallelSweep::new(workers).sweep(scenario.as_ref(), &seeds);
            assert_eq!(
                serial,
                parallel,
                "{} with {workers} workers must be byte-identical to serial",
                scenario.name()
            );
        }
    }
}

#[test]
fn experiment_probes_parallel_match_serial() {
    let seeds: Vec<u64> = vec![3, 7, 11, 19];

    let serial: Vec<_> = seeds
        .iter()
        .map(|&s| table1::run(&table1::Table1Params::quick(), s).probe)
        .collect();
    let parallel = ParallelSweep::new(4).map(&seeds, |s| {
        table1::run(&table1::Table1Params::quick(), s).probe
    });
    assert_eq!(serial, parallel, "table1 probes must not depend on threading");

    let serial: Vec<_> = seeds
        .iter()
        .map(|&s| training::run(&training::TrainingParams::quick(), s).probe)
        .collect();
    let parallel = ParallelSweep::new(4).map(&seeds, |s| {
        training::run(&training::TrainingParams::quick(), s).probe
    });
    assert_eq!(serial, parallel, "training probes must not depend on threading");

    let serial: Vec<_> = seeds
        .iter()
        .map(|&s| cold_starts::run(&cold_starts::ColdStartParams::quick(), s).probe)
        .collect();
    let parallel = ParallelSweep::new(4).map(&seeds, |s| {
        cold_starts::run(&cold_starts::ColdStartParams::quick(), s).probe
    });
    assert_eq!(
        serial, parallel,
        "cold_starts probes must not depend on threading"
    );
}

/// The fan-out speedup claim, gated on the hardware actually having the
/// cores: on ≥ 4 cores a parallel sweep must beat serial by ≥ 2×. On
/// smaller machines the parity assertions above still run; only the
/// timing claim is skipped.
#[test]
fn parallel_sweep_speedup_on_multicore() {
    let cores = ParallelSweep::available_cores();
    if cores < 4 {
        eprintln!("skipping speedup assertion: only {cores} core(s) available");
        return;
    }
    let scenario = CrdtSync::chaotic();
    let seeds: Vec<u64> = (1..=64).collect();
    let t0 = std::time::Instant::now();
    let serial = sweep(&scenario, &seeds);
    let serial_secs = t0.elapsed().as_secs_f64();
    let t1 = std::time::Instant::now();
    let parallel = ParallelSweep::auto().sweep(&scenario, &seeds);
    let parallel_secs = t1.elapsed().as_secs_f64();
    assert_eq!(serial, parallel);
    let speedup = serial_secs / parallel_secs.max(1e-9);
    assert!(
        speedup >= 2.0,
        "expected >= 2x speedup on {cores} cores, got {speedup:.2}x \
         (serial {serial_secs:.3}s, parallel {parallel_secs:.3}s)"
    );
}
