//! Integration tests spanning crates: end-to-end workflows that exercise
//! the FaaS platform together with storage, queues, the network, and
//! billing — the compositions the paper's §2 catalogs.

use std::cell::{Cell, RefCell};
use std::rc::Rc;

use bytes::Bytes;
use faasim::faas::{add_blob_trigger, add_queue_trigger, decode_batch, FnError, FunctionSpec};
use faasim::kv::Consistency;
use faasim::pricing::Service;
use faasim::queue::QueueConfig;
use faasim::simcore::{join_all, SimDuration};
use faasim::{Cloud, CloudProfile};

fn cloud() -> Cloud {
    Cloud::new(CloudProfile::aws_2018().exact(), 123)
}

#[test]
fn blob_event_to_function_to_queue_pipeline() {
    // upload -> blob trigger -> function -> queue, the §2 composition
    // pattern, with every hop billed.
    let c = cloud();
    c.blob.create_bucket("in");
    c.queue.create_queue("out", QueueConfig::default());
    let blob = c.blob.clone();
    let queue = c.queue.clone();
    c.faas.register(FunctionSpec::new(
        "fan",
        512,
        SimDuration::from_secs(60),
        move |ctx, key| {
            let blob = blob.clone();
            let queue = queue.clone();
            async move {
                let key = String::from_utf8_lossy(&key.to_vec()).to_string();
                let body = blob.get(ctx.host(), "in", &key).await.expect("object");
                queue
                    .send(ctx.host(), "out", body)
                    .await
                    .expect("out queue");
                Ok(Bytes::new())
            }
        },
    ));
    let _t = add_blob_trigger(&c.faas, &c.blob, "in").on_created("fan");

    let host = c.client_host();
    let blob = c.blob.clone();
    c.sim.spawn(async move {
        for i in 0..10u8 {
            blob.put(&host, "in", &format!("doc-{i}"), Bytes::from(vec![i; 100]))
                .await
                .unwrap();
        }
    });
    c.sim.run();
    assert_eq!(c.queue.queue_len("out"), 10);
    assert_eq!(c.recorder.counter("faas.invoke.cold") + c.recorder.counter("faas.invoke.warm"), 10);
    // Every service shows up on one bill.
    assert!(c.ledger.total_for(Service::Blob) > 0.0);
    assert!(c.ledger.total_for(Service::Queue) > 0.0);
    assert!(c.ledger.total_for(Service::Faas) > 0.0);
}

#[test]
fn warm_state_is_best_effort_only() {
    // §3 constraint (1): "functions must be written assuming that state
    // will not be recoverable across invocations."
    let c = cloud();
    c.faas.register(FunctionSpec::new(
        "counter",
        128,
        SimDuration::from_secs(30),
        |ctx, _| async move {
            let cache = ctx.container_cache();
            let mut cache = cache.borrow_mut();
            let n = cache.get("n").map(|b| b[0]).unwrap_or(0) + 1;
            cache.insert("n".into(), Bytes::from(vec![n]));
            Ok(Bytes::from(vec![n]))
        },
    ));
    let faas = c.faas.clone();
    let sim = c.sim.clone();
    let (warm_counts, after_expiry) = c.sim.block_on(async move {
        let mut warm = Vec::new();
        for _ in 0..3 {
            let out = faas.invoke("counter", Bytes::new()).await;
            warm.push(out.result.unwrap().bytes()[0]);
        }
        // Idle past the keep-alive window: the container (and its state)
        // is reclaimed.
        sim.sleep(SimDuration::from_mins(20)).await;
        faas.reap_idle();
        let out = faas.invoke("counter", Bytes::new()).await;
        (warm, out.result.unwrap().bytes()[0])
    });
    assert_eq!(warm_counts, vec![1, 2, 3]);
    assert_eq!(after_expiry, 1, "state must vanish with the container");
}

#[test]
fn queue_trigger_at_least_once_after_function_crash() {
    let c = cloud();
    c.queue.create_queue(
        "jobs",
        QueueConfig {
            visibility_timeout: SimDuration::from_secs(5),
            dead_letter: None,
        },
    );
    let attempts = Rc::new(Cell::new(0u32));
    let seen: Rc<RefCell<Vec<u8>>> = Rc::new(RefCell::new(Vec::new()));
    let a = attempts.clone();
    let s = seen.clone();
    c.faas.register(FunctionSpec::new(
        "worker",
        256,
        SimDuration::from_secs(30),
        move |_ctx, payload| {
            let a = a.clone();
            let s = s.clone();
            async move {
                a.set(a.get() + 1);
                if a.get() == 1 {
                    // First attempt dies before acking.
                    return Err(FnError::Handler("crash".into()));
                }
                for m in decode_batch(&payload).unwrap() {
                    s.borrow_mut().push(m.bytes()[0]);
                }
                Ok(Bytes::new())
            }
        },
    ));
    let _t = add_queue_trigger(&c.faas, &c.queue, &c.fabric, "worker", "jobs", 10);
    let host = c.client_host();
    let queue = c.queue.clone();
    c.sim.spawn(async move {
        queue.send(&host, "jobs", Bytes::from(vec![42])).await.unwrap();
    });
    c.sim
        .run_until(c.sim.now() + SimDuration::from_secs(60));
    assert_eq!(attempts.get(), 2, "crash then redelivery");
    assert_eq!(*seen.borrow(), vec![42]);
    assert_eq!(c.queue.queue_len("jobs"), 0, "acked after success");
}

#[test]
fn fan_out_scales_without_provisioning() {
    // 100 concurrent invocations: the platform spins up containers on its
    // own; nothing was provisioned beforehand.
    let c = cloud();
    c.faas.register(FunctionSpec::new(
        "work",
        640,
        SimDuration::from_secs(60),
        |ctx, _| async move {
            ctx.cpu(SimDuration::from_millis(100)).await;
            Ok(Bytes::new())
        },
    ));
    assert_eq!(c.faas.container_count(), 0);
    let faas = c.faas.clone();
    c.sim.block_on(async move {
        let futs: Vec<_> = (0..100)
            .map(|_| {
                let f = faas.clone();
                async move {
                    let out = f.invoke("work", Bytes::new()).await;
                    assert!(out.result.is_ok());
                }
            })
            .collect();
        join_all(futs).await;
    });
    assert_eq!(c.faas.container_count(), 100);
    // Packing: 20 containers per host VM.
    assert_eq!(c.faas.host_count(), 5);
}

#[test]
fn storage_mediated_state_visible_across_functions() {
    // The event-driven "global state" pattern: two functions share state
    // only through the KV store.
    let c = cloud();
    c.kv.create_table("state");
    let kv_w = c.kv.clone();
    c.faas.register(FunctionSpec::new(
        "writer",
        128,
        SimDuration::from_secs(30),
        move |ctx, payload| {
            let kv = kv_w.clone();
            async move {
                kv.put(ctx.host(), "state", "shared", payload)
                    .await
                    .expect("table");
                Ok(Bytes::new())
            }
        },
    ));
    let kv_r = c.kv.clone();
    c.faas.register(FunctionSpec::new(
        "reader",
        128,
        SimDuration::from_secs(30),
        move |ctx, _| {
            let kv = kv_r.clone();
            async move {
                let item = kv
                    .get(ctx.host(), "state", "shared", Consistency::Strong)
                    .await
                    .expect("written");
                Ok(item.value)
            }
        },
    ));
    let faas = c.faas.clone();
    let got = c.sim.block_on(async move {
        faas.invoke("writer", Bytes::from_static(b"handoff")).await;
        faas.invoke("reader", Bytes::new()).await.result.unwrap()
    });
    assert!(got.eq_bytes(b"handoff"));
}

#[test]
fn ec2_and_lambda_share_the_same_storage() {
    // A VM produces, a function consumes — one storage namespace.
    let c = cloud();
    c.blob.create_bucket("shared");
    let vm = c.ec2.provision_ready("m5.large", 0).unwrap();
    let blob = c.blob.clone();
    let host = vm.host().clone();
    c.sim.block_on(async move {
        blob.put(&host, "shared", "from-vm", Bytes::from_static(b"serverful"))
            .await
            .unwrap();
    });
    let blob = c.blob.clone();
    c.faas.register(FunctionSpec::new(
        "consume",
        128,
        SimDuration::from_secs(30),
        move |ctx, _| {
            let blob = blob.clone();
            async move { Ok(blob.get(ctx.host(), "shared", "from-vm").await.unwrap()) }
        },
    ));
    let faas = c.faas.clone();
    let got = c
        .sim
        .block_on(async move { faas.invoke("consume", Bytes::new()).await.result.unwrap() });
    assert!(got.eq_bytes(b"serverful"));
    vm.terminate();
    assert!(c.ledger.total_for(Service::Compute) > 0.0);
}
