//! Property-based tests over the workspace's core invariants.

use bytes::Bytes;
use proptest::prelude::*;

use faasim::faas::{decode_batch, encode_batch};
use faasim::ml::{Mlp, SparseVec, Trainer};
use faasim::pricing::{format_dollars, Ledger, Service};
use faasim::queue::{QueueConfig, QueueService};
use faasim::simcore::{mbps, FairShareLink, Sim, SimDuration};

// ---------------------------------------------------------------------------
// Fair-share link: work conservation and cap respect
// ---------------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// With N equal uncapped flows, all complete together at exactly
    /// total_bytes / capacity, regardless of N (work conservation).
    #[test]
    fn link_is_work_conserving(
        n in 1usize..24,
        kb in 1u64..500,
        cap_mbps in 1.0f64..1000.0,
    ) {
        let sim = Sim::new(1);
        let link = FairShareLink::new(&sim, mbps(cap_mbps));
        for _ in 0..n {
            let l = link.clone();
            sim.spawn(async move { l.transfer(kb * 1000, None).await });
        }
        sim.run();
        let want = (n as f64) * (kb * 1000) as f64 * 8.0 / mbps(cap_mbps);
        let got = sim.now().as_secs_f64();
        prop_assert!((got - want).abs() < want * 1e-6 + 1e-6,
            "{n} flows took {got}, want {want}");
    }

    /// A per-flow cap is never exceeded: a capped flow alone on a large
    /// link finishes no faster than bytes/cap.
    #[test]
    fn link_respects_per_flow_cap(
        kb in 1u64..500,
        cap_mbps in 1.0f64..100.0,
    ) {
        let sim = Sim::new(2);
        let link = FairShareLink::new(&sim, mbps(10_000.0));
        let l = link.clone();
        sim.block_on(async move { l.transfer(kb * 1000, Some(mbps(cap_mbps))).await });
        let floor = (kb * 1000) as f64 * 8.0 / mbps(cap_mbps);
        prop_assert!(sim.now().as_secs_f64() >= floor - 1e-9);
    }

    /// Flows arriving at staggered times all finish, and the link ends
    /// empty.
    #[test]
    fn link_staggered_arrivals_all_finish(
        offsets in prop::collection::vec(0u64..1000, 1..16),
    ) {
        let sim = Sim::new(3);
        let link = FairShareLink::new(&sim, mbps(100.0));
        let n = offsets.len();
        let done = std::rc::Rc::new(std::cell::Cell::new(0usize));
        for off in offsets {
            let l = link.clone();
            let s = sim.clone();
            let d = done.clone();
            sim.spawn(async move {
                s.sleep(SimDuration::from_millis(off)).await;
                l.transfer(50_000, None).await;
                d.set(d.get() + 1);
            });
        }
        sim.run();
        prop_assert_eq!(done.get(), n);
        prop_assert_eq!(link.active_flows(), 0);
    }
}

// ---------------------------------------------------------------------------
// Queue service: at-least-once, receipts, batch caps
// ---------------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Every sent message is eventually received at least once, and after
    /// deletion nothing remains.
    #[test]
    fn queue_delivers_everything_exactly_once_when_acked(
        bodies in prop::collection::vec(0u8..255, 1..40),
    ) {
        let sim = Sim::new(4);
        let recorder = faasim::simcore::Recorder::new();
        let fabric = faasim::net::Fabric::new(
            &sim,
            faasim::net::NetProfile::aws_2018().exact(),
            recorder.clone(),
        );
        let host = fabric.add_host(0, faasim::net::NicConfig::simple(mbps(1000.0)));
        let svc = QueueService::new(
            &sim,
            faasim::queue::QueueProfile::aws_2018().exact(),
            std::rc::Rc::new(faasim::pricing::PriceBook::aws_2018()),
            Ledger::new(),
            recorder,
        );
        svc.create_queue("q", QueueConfig::default());
        let n = bodies.len();
        let want = {
            let mut w = bodies.clone();
            w.sort_unstable();
            w
        };
        let got = sim.block_on({
            let svc = svc.clone();
            async move {
                for b in &bodies {
                    svc.send(&host, "q", Bytes::from(vec![*b])).await.unwrap();
                }
                let mut got = Vec::new();
                while got.len() < n {
                    let batch = svc
                        .receive(&host, "q", 10, SimDuration::from_secs(1))
                        .await
                        .unwrap();
                    let receipts: Vec<_> =
                        batch.iter().map(|m| m.receipt.clone()).collect();
                    got.extend(batch.into_iter().map(|m| m.body.bytes()[0]));
                    svc.delete_batch(&host, receipts).await.unwrap();
                }
                got
            }
        });
        let mut have = got;
        have.sort_unstable();
        prop_assert_eq!(want, have);
        prop_assert_eq!(svc.queue_len("q"), 0);
    }

    /// Unacked messages always come back; receive_count grows monotonic.
    #[test]
    fn queue_redelivers_unacked(receives in 1u32..5) {
        let sim = Sim::new(5);
        let recorder = faasim::simcore::Recorder::new();
        let fabric = faasim::net::Fabric::new(
            &sim,
            faasim::net::NetProfile::aws_2018().exact(),
            recorder.clone(),
        );
        let host = fabric.add_host(0, faasim::net::NicConfig::simple(mbps(1000.0)));
        let svc = QueueService::new(
            &sim,
            faasim::queue::QueueProfile::aws_2018().exact(),
            std::rc::Rc::new(faasim::pricing::PriceBook::aws_2018()),
            Ledger::new(),
            recorder,
        );
        svc.create_queue(
            "q",
            QueueConfig {
                visibility_timeout: SimDuration::from_millis(200),
                dead_letter: None,
            },
        );
        let counts = sim.block_on({
            let svc = svc.clone();
            async move {
                svc.send(&host, "q", Bytes::from_static(b"x")).await.unwrap();
                let mut counts = Vec::new();
                for _ in 0..receives {
                    let got = svc
                        .receive(&host, "q", 1, SimDuration::from_secs(2))
                        .await
                        .unwrap();
                    counts.push(got[0].receive_count);
                    // never delete
                }
                counts
            }
        });
        let want: Vec<u32> = (1..=receives).collect();
        prop_assert_eq!(counts, want);
    }
}

// ---------------------------------------------------------------------------
// Socket layer: message conservation
// ---------------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Every sent datagram is accounted for exactly once: delivered,
    /// dropped (dead host / unbound port), or partitioned — no message
    /// vanishes and none is double-counted.
    #[test]
    fn sockets_conserve_messages(
        plan in prop::collection::vec((0usize..4, 0usize..4, any::<bool>()), 1..60),
        partition_at in 0usize..40,
    ) {
        let sim = faasim::simcore::Sim::new(6);
        let recorder = faasim::simcore::Recorder::new();
        let fabric = faasim::net::Fabric::new(
            &sim,
            faasim::net::NetProfile::aws_2018().exact(),
            recorder.clone(),
        );
        let hosts: Vec<faasim::net::Host> = (0..4)
            .map(|i| fabric.add_host(i as u32 % 2, faasim::net::NicConfig::simple(mbps(1000.0))))
            .collect();
        // Bind sockets on hosts 0..3; port 9 on host 3 stays unbound.
        let socks: Vec<_> = hosts
            .iter()
            .map(|h| fabric.bind(h, 1).expect("bind"))
            .collect();
        let n = plan.len() as u64;
        let sim2 = sim.clone();
        let fabric2 = fabric.clone();
        let h0 = hosts[0].id();
        let h1 = hosts[1].id();
        sim.block_on(async move {
            for (step, (from, to, to_ghost)) in plan.into_iter().enumerate() {
                if step == partition_at {
                    fabric2.partition(&[h0], &[h1]);
                }
                let to_addr = if to_ghost {
                    faasim::net::Addr { host: hosts[to].id(), port: 9 }
                } else {
                    socks[to].addr()
                };
                socks[from].send(to_addr, Bytes::from_static(b"m")).await;
            }
            // Let everything in flight land.
            sim2.sleep(SimDuration::from_secs(1)).await;
        });
        let sent = recorder.counter("net.messages_sent");
        let delivered = recorder.counter("net.messages_delivered");
        let dropped = recorder.counter("net.messages_dropped");
        let partitioned = recorder.counter("net.messages_partitioned");
        prop_assert_eq!(sent, n);
        prop_assert_eq!(delivered + dropped + partitioned, sent);
        // Self-sends and intact paths must actually deliver.
        prop_assert!(delivered + dropped + partitioned > 0);
    }
}

// ---------------------------------------------------------------------------
// Batch codec, pricing, ML
// ---------------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn codec_roundtrips(batches in prop::collection::vec(
        prop::collection::vec(any::<u8>(), 0..200), 0..12)) {
        let items: Vec<faasim::payload::Payload> =
            batches.into_iter().map(faasim::payload::Payload::from).collect();
        let encoded = encode_batch(&items);
        prop_assert_eq!(decode_batch(&encoded), Some(items));
    }

    #[test]
    fn codec_rejects_truncation(batches in prop::collection::vec(
        prop::collection::vec(any::<u8>(), 1..50), 1..6), cut in 1usize..8) {
        let items: Vec<faasim::payload::Payload> =
            batches.into_iter().map(faasim::payload::Payload::from).collect();
        let encoded = encode_batch(&items);
        let cut = cut.min(encoded.len() - 1).max(1);
        let truncated = encoded.slice(0..encoded.len() - cut);
        prop_assert_eq!(decode_batch(&truncated), None);
    }

    /// Ledger totals are non-negative, additive, and formatting never
    /// panics.
    #[test]
    fn ledger_is_additive(charges in prop::collection::vec(
        (0u8..5, 0.0f64..10.0), 0..50)) {
        let ledger = Ledger::new();
        let mut sum = 0.0;
        for (svc, amount) in charges {
            let service = match svc {
                0 => Service::Faas,
                1 => Service::Blob,
                2 => Service::Kv,
                3 => Service::Queue,
                _ => Service::Compute,
            };
            ledger.charge(service, "item", 1.0, amount);
            sum += amount;
        }
        prop_assert!((ledger.total() - sum).abs() < 1e-9);
        let _ = format_dollars(ledger.total());
        let parts: f64 = [
            Service::Faas,
            Service::Blob,
            Service::Kv,
            Service::Queue,
            Service::Compute,
            Service::Other,
        ]
        .iter()
        .map(|&s| ledger.total_for(s))
        .sum();
        prop_assert!((parts - sum).abs() < 1e-9);
    }

    /// MLP forward is finite for arbitrary (finite) sparse inputs, and an
    /// Adam step never produces non-finite parameters.
    #[test]
    fn mlp_is_numerically_robust(
        entries in prop::collection::vec((0u32..50, -5.0f32..5.0), 0..20),
        y in -5.0f32..5.0,
    ) {
        let x = SparseVec::from_pairs(entries);
        let mlp = Mlp::new(&[50, 8, 1], 1);
        let pred = mlp.predict(&x);
        prop_assert!(pred.is_finite());
        let mut t = Trainer::new(&[50, 8, 1], 0.01, 2);
        t.train_batch(&[x], &[y]);
        for layer in &t.model.layers {
            prop_assert!(layer.w.iter().all(|w| w.is_finite()));
            prop_assert!(layer.b.iter().all(|b| b.is_finite()));
        }
    }

    /// Executor determinism under arbitrary task/sleep structures: two
    /// runs of the same random program produce identical event orders.
    #[test]
    fn executor_deterministic_for_random_programs(
        sleeps in prop::collection::vec(
            prop::collection::vec(0u64..1_000, 1..12), 1..8),
    ) {
        fn trace(sleeps: &[Vec<u64>]) -> Vec<(u64, usize)> {
            let sim = Sim::new(1);
            let log = std::rc::Rc::new(std::cell::RefCell::new(Vec::new()));
            for (task, ds) in sleeps.iter().enumerate() {
                let s = sim.clone();
                let log = log.clone();
                let ds = ds.clone();
                sim.spawn(async move {
                    for d in ds {
                        s.sleep(SimDuration::from_micros(d)).await;
                        log.borrow_mut().push((s.now().as_nanos(), task));
                    }
                });
            }
            sim.run();
            let out = log.borrow().clone();
            out
        }
        prop_assert_eq!(trace(&sleeps), trace(&sleeps));
    }
}
