//! Soak test: hours of mixed random workload against the whole cloud,
//! with global invariants checked at the end. This is the "does the
//! composed system stay coherent under chaos" test — every service, one
//! simulation, randomized clients.

use bytes::Bytes;
use faasim::faas::{add_queue_trigger, FunctionSpec};
use faasim::kv::Consistency;
use faasim::pricing::Service;
use faasim::queue::QueueConfig;
use faasim::simcore::SimDuration;
use faasim::{Cloud, CloudProfile};
use std::cell::Cell;
use std::rc::Rc;

#[test]
fn mixed_workload_soak_preserves_global_invariants() {
    // Jittered profile on purpose: the soak exercises the realistic
    // distributions, not the calibrated constants.
    let cloud = Cloud::new(CloudProfile::aws_2018(), 31337);
    cloud.blob.create_bucket("soak");
    cloud.kv.create_table("soak");
    cloud.queue.create_queue("work", QueueConfig::default());
    cloud.queue.create_queue("results", QueueConfig::default());

    // A worker function fed by a queue trigger: reads KV state, writes a
    // blob, pushes a result.
    let processed = Rc::new(Cell::new(0u64));
    let blob = cloud.blob.clone();
    let kv = cloud.kv.clone();
    let queue = cloud.queue.clone();
    let p = processed.clone();
    cloud.faas.register(FunctionSpec::new(
        "worker",
        512,
        SimDuration::from_secs(60),
        move |ctx, payload| {
            let blob = blob.clone();
            let kv = kv.clone();
            let queue = queue.clone();
            let p = p.clone();
            async move {
                let batch = faasim::faas::decode_batch(&payload).expect("batch");
                for item in &batch {
                    let key = format!("item-{}", item.bytes()[0]);
                    let _ = kv
                        .get(ctx.host(), "soak", &key, Consistency::Eventual)
                        .await;
                    kv.put(ctx.host(), "soak", &key, item.clone())
                        .await
                        .expect("kv");
                    blob.put(ctx.host(), "soak", &key, item.clone())
                        .await
                        .expect("blob");
                    queue
                        .send(ctx.host(), "results", item.clone())
                        .await
                        .expect("results queue");
                    p.set(p.get() + 1);
                }
                Ok(Bytes::new())
            }
        },
    ));
    let _trigger = add_queue_trigger(&cloud.faas, &cloud.queue, &cloud.fabric, "worker", "work", 10);

    // Randomized producers: bursts of 1..10 items at random intervals,
    // for two virtual hours.
    let produced = Rc::new(Cell::new(0u64));
    for producer in 0..4u64 {
        let sim = cloud.sim.clone();
        let queue = cloud.queue.clone();
        let host = cloud.client_host();
        let produced = produced.clone();
        cloud.sim.spawn(async move {
            let mut rng = sim.rng(&format!("producer-{producer}"));
            let deadline = SimDuration::from_hours(2);
            while sim.now().as_secs_f64() < deadline.as_secs_f64() {
                let burst = rng.range_usize(1..10);
                let bodies: Vec<Bytes> = (0..burst)
                    .map(|_| Bytes::from(vec![rng.range_u64(0..50) as u8]))
                    .collect();
                produced.set(produced.get() + bodies.len() as u64);
                queue
                    .send_batch(&host, "work", bodies)
                    .await
                    .expect("send batch");
                let gap = SimDuration::from_millis(rng.range_u64(200..30_000));
                sim.sleep(gap).await;
            }
        });
    }

    // A consumer draining results (so the system reaches quiescence).
    let consumed = Rc::new(Cell::new(0u64));
    {
        let queue = cloud.queue.clone();
        let host = cloud.client_host();
        let consumed = consumed.clone();
        cloud.sim.spawn(async move {
            loop {
                let got = queue
                    .receive(&host, "results", 10, SimDuration::MAX)
                    .await
                    .expect("receive");
                if got.is_empty() {
                    continue;
                }
                consumed.set(consumed.get() + got.len() as u64);
                let receipts = got.into_iter().map(|m| m.receipt).collect();
                queue.delete_batch(&host, receipts).await.expect("delete");
            }
        });
    }

    // Periodic platform housekeeping, as the real control plane would do.
    {
        let sim = cloud.sim.clone();
        let faas = cloud.faas.clone();
        cloud.sim.spawn(async move {
            for _ in 0..30 {
                sim.sleep(SimDuration::from_mins(5)).await;
                faas.reap_idle();
            }
        });
    }

    cloud.sim.run();

    // --- invariants ------------------------------------------------------
    let produced = produced.get();
    let processed = processed.get();
    let consumed = consumed.get();
    assert!(produced > 500, "soak produced too little: {produced}");
    // Everything produced was processed and consumed exactly once (the
    // happy path acked everything; at-least-once would only add, never
    // lose).
    assert_eq!(produced, processed, "lost or duplicated work");
    assert_eq!(produced, consumed, "results lost in flight");
    assert_eq!(cloud.queue.queue_len("work"), 0);
    assert_eq!(cloud.queue.queue_len("results"), 0);

    // Storage holds exactly the distinct item keys.
    let distinct = cloud.blob.object_count();
    assert!(distinct <= 50, "more objects than distinct keys: {distinct}");
    assert_eq!(cloud.kv.table_len("soak"), distinct);

    // Billing is coherent with the observed traffic.
    let invocations = cloud.recorder.counter("faas.invoke.cold")
        + cloud.recorder.counter("faas.invoke.warm");
    assert_eq!(
        cloud.ledger.item_quantity(Service::Faas, "requests") as u64,
        invocations
    );
    let blob_puts = cloud.recorder.counter("blob.put");
    assert_eq!(
        cloud.ledger.item_quantity(Service::Blob, "put-requests") as u64,
        blob_puts
    );
    assert!(cloud.ledger.total() > 0.0);
    assert!(cloud.ledger.total() < 1.0, "soak should cost cents, not dollars");

    // The platform never exceeded its packing constraint.
    assert!(
        cloud.faas.container_count() <= cloud.faas.host_count().max(1) * 20,
        "packing invariant violated"
    );

    // And the whole run is reproducible: rerunning at this scale in a
    // separate test would double the suite's time, so we settle for the
    // cheap half of the property here — the digest is stable within the
    // run (no torn metrics).
    assert_eq!(cloud.recorder.digest(), cloud.recorder.digest());
}
