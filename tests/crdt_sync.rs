//! §3.2 made concrete: "disorderly" CRDT state converges even when every
//! exchange goes through the *eventually consistent* storage tier —
//! replicas gossip snapshots via the KV store, read with
//! `Consistency::Eventual` (so they may see arbitrarily stale states),
//! and still agree once writes quiesce. No coordination protocol, no
//! leader, no 16.7-second elections.

use bytes::Bytes;
use faasim::kv::{Consistency, KvError, KvProfile};
use faasim::net::{Fabric, NetProfile, NicConfig};
use faasim::pricing::{Ledger, PriceBook};
use faasim::protocols::{Crdt, GCounter};
use faasim::simcore::{mbps, LatencyModel, Recorder, Sim, SimDuration};
use std::cell::RefCell;
use std::rc::Rc;

#[test]
fn gcounters_converge_through_eventually_consistent_storage() {
    let sim = Sim::new(55);
    let recorder = Recorder::new();
    let fabric = Fabric::new(&sim, NetProfile::aws_2018().exact(), recorder.clone());
    // A deliberately laggy KV store: eventual reads can be 2 s stale.
    let mut profile = KvProfile::aws_2018().exact();
    profile.eventual_lag = LatencyModel::Constant(SimDuration::from_secs(2));
    let kv = faasim::kv::KvStore::new(
        &sim,
        profile,
        Rc::new(PriceBook::aws_2018()),
        Ledger::new(),
        recorder,
    );
    kv.create_table("crdt");

    let replicas = 4u64;
    let increments_each = 25u64;
    let states: Rc<RefCell<Vec<GCounter>>> =
        Rc::new(RefCell::new((0..replicas).map(|_| GCounter::new()).collect()));

    for r in 1..=replicas {
        let kv = kv.clone();
        let sim2 = sim.clone();
        let host = fabric.add_host(0, NicConfig::simple(mbps(1000.0)));
        let states = states.clone();
        sim.spawn(async move {
            let idx = (r - 1) as usize;
            let my_key = format!("replica-{r}");
            for step in 0..increments_each {
                // Local disorderly work...
                states.borrow_mut()[idx].increment(r, 1);
                // ...publish own snapshot (strong write),
                let snapshot = Bytes::from(states.borrow()[idx].encode());
                kv.put(&host, "crdt", &my_key, snapshot).await.unwrap();
                // ...and gossip: merge a peer's (possibly very stale)
                // snapshot read with EVENTUAL consistency.
                let peer = (r + step) % replicas + 1;
                if peer != r {
                    match kv
                        .get(
                            &host,
                            "crdt",
                            &format!("replica-{peer}"),
                            Consistency::Eventual,
                        )
                        .await
                    {
                        Ok(item) => {
                            let other =
                                GCounter::decode(&item.value.bytes()).expect("valid snapshot");
                            states.borrow_mut()[idx].merge(&other);
                        }
                        Err(KvError::NoSuchKey(_)) => {} // peer not seen yet
                        Err(e) => panic!("kv error: {e}"),
                    }
                }
                sim2.sleep(SimDuration::from_millis(500)).await;
            }
            // Quiesce phase: publish final state, then keep gossiping
            // until everything has propagated.
            for round in 0..20u64 {
                let snapshot = Bytes::from(states.borrow()[idx].encode());
                kv.put(&host, "crdt", &my_key, snapshot).await.unwrap();
                for peer in 1..=replicas {
                    if peer == r {
                        continue;
                    }
                    if let Ok(item) = kv
                        .get(
                            &host,
                            "crdt",
                            &format!("replica-{peer}"),
                            Consistency::Eventual,
                        )
                        .await
                    {
                        let other = GCounter::decode(&item.value.bytes()).expect("valid snapshot");
                        states.borrow_mut()[idx].merge(&other);
                    }
                }
                let _ = round;
                sim2.sleep(SimDuration::from_secs(1)).await;
            }
        });
    }
    sim.run();

    let states = states.borrow();
    let want = replicas * increments_each;
    for (i, s) in states.iter().enumerate() {
        assert_eq!(
            s.value(),
            want,
            "replica {i} did not converge: {} != {want}",
            s.value()
        );
    }
}
