//! The paper's §2 "orchestration functions" pattern, end to end: the
//! reference architecture where "Lambda functions ... orchestrate
//! analytics queries that are executed by AWS Athena, an autoscaling
//! query service that works with data in S3."
//!
//! A day of synthetic access logs lands in the object store; a tiny
//! Lambda orchestrates a status-code histogram over them. The function
//! does no heavy lifting — the query service scans next to the data —
//! which is why this is one of the few patterns where 2018 FaaS works.
//!
//! ```text
//! cargo run --release --example log_analytics
//! ```

use bytes::Bytes;
use faasim::faas::FunctionSpec;
use faasim::query::{Aggregate, QuerySpec};
use faasim::simcore::SimDuration;
use faasim::{Cloud, CloudProfile};

fn main() {
    let cloud = Cloud::new(CloudProfile::aws_2018(), 21);
    cloud.blob.create_bucket("access-logs");

    // A day of logs: 24 hourly objects of synthetic requests.
    let statuses = ["200", "200", "200", "200", "304", "404", "500"];
    let uploader = cloud.client_host();
    let blob = cloud.blob.clone();
    let sim = cloud.sim.clone();
    cloud.sim.block_on(async move {
        let mut rng = sim.rng("logs");
        for hour in 0..24 {
            let mut lines = String::new();
            for _ in 0..5_000 {
                let status = statuses[rng.range_usize(0..statuses.len())];
                let path = format!("/item/{}", rng.range_u64(0..500));
                lines.push_str(&format!("GET {path} {status}\n"));
            }
            blob.put(
                &uploader,
                "access-logs",
                &format!("2018-11-02/{hour:02}.log"),
                Bytes::from(lines.into_bytes()),
            )
            .await
            .expect("bucket");
        }
    });
    println!(
        "uploaded 24 hourly log objects, {} bytes total",
        cloud.blob.stored_bytes()
    );

    // The orchestrator function: 256 MB is plenty, because Athena-like
    // workers do the heavy lifting.
    let query = cloud.query.clone();
    cloud.faas.register(FunctionSpec::new(
        "daily-report",
        256,
        SimDuration::from_secs(120),
        move |ctx, day| {
            let query = query.clone();
            async move {
                let day = String::from_utf8_lossy(&day.to_vec()).to_string();
                let out = query
                    .run(
                        ctx.host(),
                        QuerySpec::new(
                            "access-logs",
                            format!("{day}/"),
                            Aggregate::GroupCount { field: 2 },
                        ),
                    )
                    .await
                    .expect("query");
                let mut report = String::new();
                for (status, count) in &out.rows {
                    report.push_str(&format!("{status} {count}\n"));
                }
                Ok(Bytes::from(report.into_bytes()))
            }
        },
    ));

    let faas = cloud.faas.clone();
    let out = cloud.sim.block_on(async move {
        faas.invoke("daily-report", Bytes::from_static(b"2018-11-02"))
            .await
    });
    println!("\nstatus histogram for 2018-11-02:");
    print!("{}", String::from_utf8_lossy(&out.result.as_ref().expect("report").to_vec()));
    println!("\nend-to-end latency : {:.2}s (incl. cold start)", out.total.as_secs_f64());
    println!("function billed    : {:.1}s of a 0.25 GB function", out.billed.as_secs_f64());
    println!("\nthe bill:\n{}", cloud.ledger.report());
    println!(
        "the function was a thin orchestrator; the scan ran next to the data.\n\
         The paper's point: this works *because* the heavy lifting happened in a\n\
         proprietary autoscaling service, not in the function."
    );
}
