//! The paper's §2 "easy case": **embarrassingly parallel functions** —
//! a Seattle-Times-style image-resizing pipeline where every upload to a
//! bucket triggers an independent thumbnailing function.
//!
//! This is the workload class where FaaS genuinely shines: requests never
//! talk to each other, so autoscaling does all the work. Watch the
//! platform fan out to many containers with no capacity planning — and
//! then notice on the bill that you paid only for what ran.
//!
//! ```text
//! cargo run --example image_pipeline
//! ```

use bytes::Bytes;
use faasim::faas::{add_blob_trigger, FunctionSpec};
use faasim::simcore::SimDuration;
use faasim::{Cloud, CloudProfile};

fn main() {
    let cloud = Cloud::new(CloudProfile::aws_2018(), 7);
    cloud.blob.create_bucket("uploads");
    cloud.blob.create_bucket("thumbnails");

    // The thumbnailer: fetch the original, "resize" (CPU work proportional
    // to size), store the thumbnail.
    let blob = cloud.blob.clone();
    cloud.faas.register(FunctionSpec::new(
        "thumbnail",
        1_024,
        SimDuration::from_secs(60),
        move |ctx, key_bytes| {
            let blob = blob.clone();
            async move {
                let key = String::from_utf8_lossy(&key_bytes.to_vec()).to_string();
                let original = blob
                    .get(ctx.host(), "uploads", &key)
                    .await
                    .expect("uploaded object");
                // ~1 reference-core-millisecond per 100 KB of image.
                let work =
                    SimDuration::from_micros(original.len() as u64 / 100);
                ctx.cpu(work).await;
                let thumb = Bytes::from(vec![0u8; original.len() / 20]);
                blob.put(ctx.host(), "thumbnails", &format!("{key}.thumb"), thumb)
                    .await
                    .expect("thumbnail bucket");
                Ok(Bytes::new())
            }
        },
    ));
    let _trigger = add_blob_trigger(&cloud.faas, &cloud.blob, "uploads").on_created("thumbnail");

    // A bursty photographer: 200 uploads of 0.5–4 MB, all at once.
    let uploader = cloud.client_host();
    let blob = cloud.blob.clone();
    let sim = cloud.sim.clone();
    cloud.sim.spawn(async move {
        let mut rng = sim.rng("uploads");
        let futs: Vec<_> = (0..200)
            .map(|i| {
                let blob = blob.clone();
                let uploader = uploader.clone();
                let size = rng.range_u64(500_000..4_000_000) as usize;
                async move {
                    blob.put(
                        &uploader,
                        "uploads",
                        &format!("img-{i:03}.jpg"),
                        Bytes::from(vec![0u8; size]),
                    )
                    .await
                    .expect("upload");
                }
            })
            .collect();
        faasim::simcore::join_all(futs).await;
    });
    cloud.sim.run();

    let thumbs = cloud.recorder.counter("blob.put") - 200; // minus originals
    println!("uploads processed   : 200");
    println!("thumbnails written  : {thumbs}");
    println!(
        "cold starts         : {} (then {} warm reuses)",
        cloud.recorder.counter("faas.invoke.cold"),
        cloud.recorder.counter("faas.invoke.warm"),
    );
    println!("containers at peak  : {}", cloud.faas.container_count());
    println!("function hosts used : {}", cloud.faas.host_count());
    println!("wall-clock (virtual): {}", cloud.sim.now());
    println!("\nthe bill:\n{}", cloud.ledger.report());
    println!(
        "no servers were provisioned, no capacity was planned — this is the\n\
         \"one step forward\" the paper grants FaaS before taking two back."
    );
}
