//! §3.2's argument, staged as a failure drill: a network partition hits a
//! cluster that is simultaneously running
//!
//! 1. **coordination** (bully leader election over direct messaging), and
//! 2. **disorderly state** (CRDT counters gossiped between the same hosts).
//!
//! The election split-brains — each side elects its own leader, and no
//! quorum machinery exists to stop it. The counters don't care: replicas
//! keep accepting increments on both sides, and a single round of gossip
//! after healing makes every replica exact. "This kind of 'disorderly'
//! loosely-consistent model" is the paper's §3.2 candidate for programs
//! that should survive a platform with no reliable coordination.
//!
//! ```text
//! cargo run --release --example disorderly_vs_coordination
//! ```

use bytes::Bytes;
use faasim::net::{Fabric, NicConfig};
use faasim::protocols::{
    build_directory, spawn_node, BullyConfig, Crdt, ElectionObserver, GCounter, SocketTransport,
};
use faasim::simcore::{mbps, SimDuration};
use faasim::{Cloud, CloudProfile};
use std::cell::RefCell;
use std::rc::Rc;

const NODES: u64 = 6;

fn main() {
    let cloud = Cloud::new(CloudProfile::aws_2018().exact(), 99);
    let fabric: &Fabric = &cloud.fabric;

    // Six hosts; each runs an election participant AND a counter replica.
    let members: Vec<(u64, faasim::net::Host)> = (1..=NODES)
        .map(|id| (id, fabric.add_host(0, NicConfig::simple(mbps(10_000.0)))))
        .collect();
    let dir = build_directory(&members);
    let observer = ElectionObserver::new();
    let mut handles = Vec::new();
    for (id, host) in &members {
        let t = SocketTransport::new(fabric, host, *id, dir.clone());
        handles.push(spawn_node(
            &cloud.sim,
            t,
            BullyConfig::direct(),
            observer.clone(),
        ));
    }

    // Counter replicas gossip over their own sockets every 200 ms.
    let counters: Rc<RefCell<Vec<GCounter>>> =
        Rc::new(RefCell::new((0..NODES).map(|_| GCounter::new()).collect()));
    let mut gossip_addrs = Vec::new();
    let mut gossip_socks = Vec::new();
    for (_, host) in &members {
        let sock = fabric.bind(host, 9100).expect("bind gossip");
        gossip_addrs.push(sock.addr());
        gossip_socks.push(sock);
    }
    for (i, sock) in gossip_socks.into_iter().enumerate() {
        let sim = cloud.sim.clone();
        let counters = counters.clone();
        let addrs = gossip_addrs.clone();
        cloud.sim.spawn(async move {
            let replica = (i + 1) as u64;
            let mut rng = sim.rng(&format!("gossip-{i}"));
            for _round in 0..3_000u32 {
                // Local disorderly work: a few increments.
                counters.borrow_mut()[i].increment(replica, 1);
                // Push state to one random peer; absorb anything received.
                let peer = rng.range_usize(0..addrs.len());
                if peer != i {
                    let snapshot = Bytes::from(counters.borrow()[i].encode());
                    sock.send(addrs[peer], snapshot).await;
                }
                while let Some(msg) = sock.try_recv() {
                    if let Some(other) = GCounter::decode(&msg.payload.bytes()) {
                        counters.borrow_mut()[i].merge(&other);
                    }
                }
                sim.sleep(SimDuration::from_millis(200)).await;
            }
            // Quiesce: a few rounds of full broadcast so every replica's
            // final state reaches everyone.
            for _ in 0..4 {
                let snapshot = Bytes::from(counters.borrow()[i].encode());
                for (peer, &addr) in addrs.iter().enumerate() {
                    if peer != i {
                        sock.send(addr, snapshot.clone()).await;
                    }
                }
                sim.sleep(SimDuration::from_millis(500)).await;
                while let Some(msg) = sock.try_recv() {
                    if let Some(other) = GCounter::decode(&msg.payload.bytes()) {
                        counters.borrow_mut()[i].merge(&other);
                    }
                }
            }
        });
    }

    cloud.sim.run_until(cloud.sim.now() + SimDuration::from_secs(10));
    println!("t=10s   : leader = node {:?}, all counters converging", observer.current_leader().expect("elected"));

    // Partition: {1,2,3} | {4,5,6} for 60 seconds.
    let side_a: Vec<_> = members[..3].iter().map(|(_, h)| h.id()).collect();
    let side_b: Vec<_> = members[3..].iter().map(|(_, h)| h.id()).collect();
    fabric.partition(&side_a, &side_b);
    cloud.sim.run_until(cloud.sim.now() + SimDuration::from_secs(60));
    let views = observer.views();
    println!("\n-- during the partition --");
    println!(
        "election : split brain! views = {:?}",
        views.iter().map(|(id, _, v)| (*id, v.unwrap_or(0))).collect::<Vec<_>>()
    );
    {
        let cs = counters.borrow();
        let values: Vec<u64> = cs.iter().map(|c| c.value()).collect();
        println!(
            "counters : replicas disagree transiently ({:?}) but every increment is safe",
            values
        );
    }

    // Heal and settle.
    fabric.heal_partition();
    cloud.sim.run_until(cloud.sim.now() + SimDuration::from_secs(20));
    println!("\n-- after healing --");
    let views = observer.views();
    println!(
        "election : usurper stood down; views = {:?}",
        views.iter().map(|(id, _, v)| (*id, v.unwrap_or(0))).collect::<Vec<_>>()
    );
    for h in &handles {
        h.kill();
    }
    cloud.sim.run();
    let cs = counters.borrow();
    let values: Vec<u64> = cs.iter().map(|c| c.value()).collect();
    assert!(
        values.iter().all(|&v| v == values[0]),
        "replicas failed to converge: {values:?}"
    );
    assert_eq!(values[0], NODES * 3_000, "an increment was lost");
    println!("counters : all replicas equal = true");
    println!("           final value {} = every increment from both sides of the partition", values[0]);
    println!(
        "\ncoordination needed the partition to end AND a protocol to notice;\n\
         the disorderly counters never stopped and converged for free — §3.2's\n\
         'can limitations set us free?' answered with running code."
    );
}
