//! §3.1 case study 1 end-to-end, twice:
//!
//! 1. **For real, at laptop scale** — generate a synthetic review corpus,
//!    featurize it with the bag-of-words pipeline, and actually train the
//!    paper's MLP (6,787 → 10 → 10 → 1, Adam, lr 0.001) until the loss
//!    falls. This proves the workload code is real, not a stub.
//! 2. **On the simulated cloud, at paper scale** — 90 GB, 100 MB batches,
//!    10 epochs: Lambda vs EC2, with the paper's 21× / 7.3× headline.
//!
//! ```text
//! cargo run --release --example training_lambda_vs_ec2
//! ```

use faasim::experiments::training::{self, TrainingParams};
use faasim::ml::{BagOfWords, ReviewGenConfig, ReviewGenerator, Trainer};

fn main() {
    println!("--- part 1: real training on a synthetic review corpus ---\n");
    let mut generator = ReviewGenerator::new(ReviewGenConfig::default(), 1);
    let train = generator.generate_batch(2_000);
    let held_out = generator.generate_batch(400);

    let texts: Vec<&str> = train.iter().map(|r| r.text.as_str()).collect();
    let bow = BagOfWords::fit_paper(texts.iter().copied());
    println!("corpus        : {} reviews, vocabulary {} features", train.len(), bow.dim());

    let xs = bow.transform_batch(texts.iter().copied());
    let ys: Vec<f32> = train.iter().map(|r| r.rating).collect();
    let test_xs = bow.transform_batch(held_out.iter().map(|r| r.text.as_str()));
    let test_ys: Vec<f32> = held_out.iter().map(|r| r.rating).collect();

    let mut trainer = Trainer::new(&[bow.dim(), 10, 10, 1], 0.003, 7);
    let batch = 100;
    let rmse_before = trainer.model.rmse(&test_xs, &test_ys);
    for epoch in 0..8 {
        let mut loss_sum = 0.0;
        let mut batches = 0;
        for chunk in xs.chunks(batch).zip(ys.chunks(batch)) {
            loss_sum += trainer.train_batch(chunk.0, chunk.1);
            batches += 1;
        }
        println!(
            "epoch {epoch}: mean batch loss {:.4}, held-out RMSE {:.3} stars",
            loss_sum / batches as f32,
            trainer.model.rmse(&test_xs, &test_ys)
        );
    }
    let rmse_after = trainer.model.rmse(&test_xs, &test_ys);
    println!(
        "\nheld-out RMSE {rmse_before:.3} -> {rmse_after:.3}: the paper's model learns this corpus.\n"
    );

    println!("--- part 2: the same workload on the 2018 cloud, paper scale ---\n");
    let result = training::run(&TrainingParams::default(), 42);
    println!("{}", result.render());
    println!(
        "Lambda's 640 MB slice computes each iteration 6x slower and re-fetches\n\
         every 100 MB batch over the network — \"shipping data to code\"."
    );
}
