//! Trace-driven workload replay at paper scale: generate a deterministic
//! Azure-Functions-style trace — Zipf app popularity, Poisson/bursty/
//! diurnal arrivals, ~1.1M invocations across 12,000 functions — and
//! stream it through the simulated platform, printing the full
//! [`ReplayReport`]: cold-start rate, latency percentiles from the
//! streaming sketch, per-app fairness spread, container packing density,
//! and $/hr from the pricing ledger.
//!
//! The replay runs **twice** at the same seed and the run fails (nonzero
//! exit) unless the recorder digest, the bill, and the report are
//! byte-identical — the million-invocation determinism check from the
//! issue, as a user-facing gate rather than a test.
//!
//! ```text
//! cargo run --release --example trace_replay               # paper scale
//! cargo run --release --example trace_replay -- --seed 7
//! cargo run --release --example trace_replay -- --smoke 4  # CI: sweep a
//!                                # small trace, calm + hostile plans
//! cargo run --release --example trace_replay -- --smoke 4 --serial
//! ```

use std::time::Instant;

use faasim_chaos::{ParallelSweep, Scenario, TraceReplay};
use faasim_trace::{replay, ReplayConfig};

struct Args {
    seed: u64,
    smoke: Option<usize>,
    serial: bool,
}

fn parse_args() -> Args {
    let mut out = Args {
        seed: 2019,
        smoke: None,
        serial: false,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--seed" => {
                out.seed = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--seed takes an integer");
            }
            "--smoke" => {
                out.smoke = Some(
                    args.next()
                        .and_then(|v| v.parse().ok())
                        .expect("--smoke takes a positive seed count"),
                );
            }
            "--serial" => out.serial = true,
            other => {
                eprintln!("unknown argument: {other}");
                eprintln!("usage: trace_replay [--seed S] [--smoke N] [--serial]");
                std::process::exit(2);
            }
        }
    }
    out
}

/// CI smoke: sweep the small calm and hostile trace scenarios across
/// `n_seeds` seeds each (every seed replayed twice by the harness).
fn smoke(n_seeds: usize, serial: bool) {
    let seeds: Vec<u64> = (1..=n_seeds as u64).collect();
    let pool = if serial {
        ParallelSweep::new(1)
    } else {
        ParallelSweep::auto()
    };
    let scenarios = [TraceReplay::small_calm(), TraceReplay::small_hostile()];
    let mut failed = false;
    for scenario in &scenarios {
        let start = Instant::now();
        let report = pool.sweep(scenario, &seeds);
        let wall = start.elapsed().as_secs_f64();
        print!("{report}");
        println!(
            "  {:.1} seeds/sec over {} worker(s), {wall:.3}s wall",
            seeds.len() as f64 / wall.max(1e-9),
            pool.workers(),
        );
        if !report.passed() {
            failed = true;
            if let Some(seed) = report.minimal_failing_seed() {
                eprintln!("minimal failing seed for {}: {seed}", scenario.name());
            }
        }
    }
    if failed {
        std::process::exit(1);
    }
    println!("trace-replay smoke passed across {} seeds", seeds.len());
}

fn main() {
    let args = parse_args();
    if let Some(n_seeds) = args.smoke {
        smoke(n_seeds, args.serial);
        return;
    }

    let cfg = ReplayConfig::paper_scale();
    let funcs = cfg.trace.apps as u64 * cfg.trace.funcs_per_app as u64;
    println!(
        "replaying ~{} invocations across {} functions ({} apps), seed {} ...",
        cfg.trace.expected_events(),
        funcs,
        cfg.trace.apps,
        args.seed,
    );

    let start = Instant::now();
    let first = replay(&cfg, args.seed, &|_| {});
    let wall = start.elapsed().as_secs_f64();
    println!("{}", first.report);
    println!(
        "wall: {wall:.2}s ({:.0} invocations/sec host)",
        first.report.invocations as f64 / wall.max(1e-9),
    );

    println!("replaying the same seed again to verify determinism ...");
    let second = replay(&cfg, args.seed, &|_| {});
    if first.digest != second.digest || first.bill != second.bill || first.report != second.report
    {
        eprintln!("NONDETERMINISM: same seed, different outcome");
        std::process::exit(1);
    }
    println!(
        "digest, bill, and report byte-identical across both runs ({} metric lines)",
        first.digest.lines().count(),
    );
}
