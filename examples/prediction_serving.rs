//! §3.1 case study 2 as a runnable demo: the same document-censoring
//! service deployed four ways, from "pure serverless" to "serverful with
//! direct messaging", with per-batch latency printed for each.
//!
//! ```text
//! cargo run --release --example prediction_serving
//! ```

use faasim::experiments::prediction::{self, PredictionParams};

fn main() {
    let params = PredictionParams {
        batches: 200,
        ..PredictionParams::default()
    };
    let result = prediction::run(&params, 8);
    println!("{}", result.render());
    println!(
        "reading the table bottom-up: every step away from directly addressed\n\
         serverful processes adds an order of magnitude — queue hops, trigger\n\
         dispatch, invocation overhead, and storage round trips for the model.\n\
         The paper's 27x and 127x gaps are the middle and bottom rows."
    );
}
