//! §3.1 case study 3 and the §4 counterfactual, side by side: the same
//! bully leader-election protocol run over
//!
//! - a **DynamoDB-style blackboard** polled 4×/second (the only option
//!   FaaS leaves you), and
//! - **directly addressable agents** (the paper's "long-running,
//!   addressable virtual agents" proposal).
//!
//! ```text
//! cargo run --release --example leader_election
//! ```

use faasim::protocols::{
    build_directory, spawn_node, BlackboardTransport, BullyConfig, ElectionObserver,
    SocketTransport,
};
use faasim::simcore::{mbps, SimDuration};
use faasim::{Cloud, CloudProfile};

fn main() {
    let nodes = 8u64;

    println!("--- blackboard transport (the FaaS reality) ---");
    let cloud = Cloud::new(CloudProfile::aws_2018().exact(), 3);
    BlackboardTransport::setup(&cloud.kv);
    let observer = ElectionObserver::new();
    let members: Vec<u64> = (1..=nodes).collect();
    let mut handles = Vec::new();
    for &id in &members {
        let host = cloud
            .fabric
            .add_host(0, faasim::net::NicConfig::simple(mbps(1_000.0)));
        let t = BlackboardTransport::new(
            &cloud.sim,
            &cloud.kv,
            host,
            id,
            &members,
            SimDuration::from_millis(250),
        );
        handles.push(spawn_node(
            &cloud.sim,
            t,
            BullyConfig::blackboard_2018(),
            observer.clone(),
        ));
    }
    cloud.sim.run_until(cloud.sim.now() + SimDuration::from_secs(60));
    println!("initial leader: node {}", observer.current_leader().expect("elected"));
    handles[(nodes - 1) as usize].kill();
    observer.mark_dead(nodes, cloud.sim.now());
    println!("leader killed at {}", cloud.sim.now());
    cloud.sim.run_until(cloud.sim.now() + SimDuration::from_secs(120));
    let round = *observer.rounds().last().expect("round completed");
    println!(
        "new leader: node {} after {:.1}s of polling storage four times a second",
        round.leader,
        round.duration().as_secs_f64()
    );
    let kv_requests = cloud.recorder.counter("kv.reads") + cloud.recorder.counter("kv.writes");
    println!(
        "storage requests burned: {kv_requests} (cost {})",
        faasim::pricing::format_dollars(cloud.ledger.total())
    );
    for h in &handles {
        h.kill();
    }
    cloud.sim.run_until(cloud.sim.now() + SimDuration::from_secs(5));

    println!("\n--- addressable agents (the paper's section 4 proposal) ---");
    let cloud = Cloud::new(CloudProfile::aws_2018().exact(), 4);
    let observer = ElectionObserver::new();
    let members: Vec<(u64, faasim::net::Host)> = (1..=nodes)
        .map(|id| {
            (
                id,
                cloud
                    .fabric
                    .add_host(0, faasim::net::NicConfig::simple(mbps(10_000.0))),
            )
        })
        .collect();
    let dir = build_directory(&members);
    let mut handles = Vec::new();
    for (id, host) in &members {
        let t = SocketTransport::new(&cloud.fabric, host, *id, dir.clone());
        handles.push(spawn_node(
            &cloud.sim,
            t,
            BullyConfig::direct(),
            observer.clone(),
        ));
    }
    cloud.sim.run_until(cloud.sim.now() + SimDuration::from_secs(5));
    println!("initial leader: node {}", observer.current_leader().expect("elected"));
    handles[(nodes - 1) as usize].kill();
    observer.mark_dead(nodes, cloud.sim.now());
    cloud.sim.run_until(cloud.sim.now() + SimDuration::from_secs(10));
    let round = *observer.rounds().last().expect("round completed");
    println!(
        "new leader: node {} after {:.0}ms over direct messaging",
        round.leader,
        round.duration().as_secs_f64() * 1e3
    );
    for h in &handles {
        h.kill();
    }
    cloud.sim.run_until(cloud.sim.now() + SimDuration::from_secs(1));

    println!(
        "\nsame protocol, same cluster — the only change is whether peers can\n\
         address each other. That is the paper's entire section 4 in one run."
    );
}
