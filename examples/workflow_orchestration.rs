//! §2's function-composition pattern with a *managed* orchestrator
//! (Step-Functions style), instead of the hand-stitched queues of the
//! `account_signup` example: sequences, retries, and a parallel fan-out —
//! and still, every hop pays Table 1's invocation overhead, which is the
//! paper's point about composition on FaaS.
//!
//! ```text
//! cargo run --release --example workflow_orchestration
//! ```

use bytes::Bytes;
use faasim::faas::{decode_batch, FnError, FunctionSpec, Orchestrator, Workflow};
use faasim::simcore::SimDuration;
use faasim::{Cloud, CloudProfile};
use std::cell::Cell;
use std::rc::Rc;

fn main() {
    let cloud = Cloud::new(CloudProfile::aws_2018().exact(), 17);

    // An order pipeline: validate -> (charge ∥ reserve-inventory) -> ship.
    let stamp = |name: &'static str| {
        FunctionSpec::new(name, 256, SimDuration::from_secs(30), move |_ctx, p| async move {
            let mut v = p.to_vec();
            v.extend_from_slice(format!("|{name}").as_bytes());
            Ok(Bytes::from(v))
        })
    };
    cloud.faas.register(stamp("validate"));
    cloud.faas.register(stamp("reserve-inventory"));
    cloud.faas.register(FunctionSpec::new(
        "ship",
        256,
        SimDuration::from_secs(30),
        |_ctx, p| async move {
            let parts = decode_batch(&p).expect("joined branches");
            let mut v = Vec::new();
            for part in parts {
                v.extend_from_slice(&part.to_vec());
                v.push(b'&');
            }
            v.extend_from_slice(b"|shipped");
            Ok(Bytes::from(v))
        },
    ));
    // The payment service is flaky: it fails twice before succeeding.
    let attempts = Rc::new(Cell::new(0u32));
    let a = attempts.clone();
    cloud.faas.register(FunctionSpec::new(
        "charge",
        256,
        SimDuration::from_secs(30),
        move |_ctx, p| {
            let a = a.clone();
            async move {
                a.set(a.get() + 1);
                if a.get() < 3 {
                    Err(FnError::Handler("payment gateway 503".into()))
                } else {
                    let mut v = p.to_vec();
                    v.extend_from_slice(b"|charged");
                    Ok(Bytes::from(v))
                }
            }
        },
    ));

    let workflow = Workflow::new()
        .then("validate")
        .parallel(vec![
            Workflow::new().then_with_retries("charge", 5),
            Workflow::new().then("reserve-inventory"),
        ])
        .then("ship");

    let orchestrator = Orchestrator::new(&cloud.faas);
    let out = cloud.sim.block_on({
        let orchestrator = orchestrator.clone();
        let workflow = workflow.clone();
        async move { orchestrator.run(&workflow, Bytes::from_static(b"order-1041")).await }
    });

    println!(
        "result        : {}",
        String::from_utf8_lossy(&out.result.as_ref().expect("workflow succeeded").to_vec())
    );
    println!("invocations   : {} (incl. {} payment retries)", out.invocations, attempts.get() - 1);
    println!("end-to-end    : {:.2}s", out.total.as_secs_f64());
    println!("\nthe bill:\n{}", cloud.ledger.report());
    println!(
        "four logical steps became {} invocations and ~{:.1}s: composition on\n\
         FaaS multiplies Table 1's ~300 ms invocation path per hop (plus cold\n\
         starts), exactly the overhead the paper's Autodesk anecdote hides\n\
         inside its 'ten minutes'.",
        out.invocations,
        out.total.as_secs_f64(),
    );
}
