//! Seed-sweep chaos harness: run the chaotic scenarios — CRDT
//! anti-entropy sync, the queue-triggered pipeline, the fair-share
//! link churn storm, and the gateway's noisy-neighbor isolation
//! experiment (calm and hostile arms) — across many seeds each,
//! checking every invariant (message conservation, ledger consistency,
//! CRDT convergence, exact delivery, full link drain, bounded victim
//! p99 under a 50× tenant burst) and that each seed replays
//! byte-identically. Exits nonzero on any violation and prints
//! the minimal failing seed so the run can be reproduced in isolation.
//!
//! Seeds fan out across every available core via `ParallelSweep`; the
//! report is byte-identical to a serial sweep, and each scenario line
//! ends with its wall-clock throughput in seeds/sec.
//!
//! ```text
//! cargo run --release --example chaos_sweep              # 16 seeds
//! cargo run --release --example chaos_sweep -- --seeds 8 # CI smoke
//! cargo run --release --example chaos_sweep -- --serial  # one core
//! ```
//!
//! `CHAOS_SEEDS=<n>` is honoured when no `--seeds` flag is given.

use std::time::Instant;

use faasim_chaos::{CrdtSync, LinkChurn, NoisyNeighbor, ParallelSweep, QueuePipeline, Scenario};

fn parse_args() -> (usize, bool) {
    let mut seeds = std::env::var("CHAOS_SEEDS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(16);
    let mut serial = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--seeds" => {
                seeds = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--seeds takes a positive integer");
            }
            "--serial" => serial = true,
            other => {
                eprintln!("unknown argument: {other}");
                eprintln!("usage: chaos_sweep [--seeds N] [--serial]");
                std::process::exit(2);
            }
        }
    }
    (seeds, serial)
}

fn main() {
    let (n_seeds, serial) = parse_args();
    let seeds: Vec<u64> = (1..=n_seeds as u64).collect();
    let pool = if serial {
        ParallelSweep::new(1)
    } else {
        ParallelSweep::auto()
    };
    let scenarios: Vec<Box<dyn Scenario + Sync>> = vec![
        Box::new(CrdtSync::chaotic()),
        Box::new(QueuePipeline::chaotic()),
        Box::new(LinkChurn::default()),
        Box::new(NoisyNeighbor::default()),
        Box::new(NoisyNeighbor::chaotic()),
    ];

    let mut failed = false;
    for scenario in &scenarios {
        let start = Instant::now();
        let report = pool.sweep(scenario.as_ref(), &seeds);
        let wall = start.elapsed().as_secs_f64();
        print!("{report}");
        println!(
            "  {:.1} seeds/sec over {} worker(s), {wall:.3}s wall",
            seeds.len() as f64 / wall.max(1e-9),
            pool.workers(),
        );
        if !report.passed() {
            failed = true;
            if let Some(seed) = report.minimal_failing_seed() {
                eprintln!(
                    "minimal failing seed for {}: {seed} — rerun with \
                     `{}::chaotic().run({seed})` to reproduce byte-exactly",
                    scenario.name(),
                    scenario.name(),
                );
            }
        }
    }

    if failed {
        std::process::exit(1);
    }
    println!("all scenarios passed across {} seeds", seeds.len());
}
