//! Seed-sweep chaos harness: run the two chaotic scenarios — CRDT
//! anti-entropy sync and the queue-triggered pipeline — across 16 seeds
//! each, checking every invariant (message conservation, ledger
//! consistency, CRDT convergence, exact delivery) and that each seed
//! replays byte-identically. Exits nonzero on any violation and prints
//! the minimal failing seed so the run can be reproduced in isolation.
//!
//! ```text
//! cargo run --release --example chaos_sweep
//! ```

use faasim_chaos::{sweep, CrdtSync, QueuePipeline, Scenario};

fn main() {
    let seeds: Vec<u64> = (1..=16).collect();
    let scenarios: Vec<Box<dyn Scenario>> = vec![
        Box::new(CrdtSync::chaotic()),
        Box::new(QueuePipeline::chaotic()),
    ];

    let mut failed = false;
    for scenario in &scenarios {
        let report = sweep(scenario.as_ref(), &seeds);
        println!("{report}");
        if !report.passed() {
            failed = true;
            if let Some(seed) = report.minimal_failing_seed() {
                eprintln!(
                    "minimal failing seed for {}: {seed} — rerun with \
                     `{}::chaotic().run({seed})` to reproduce byte-exactly",
                    scenario.name(),
                    scenario.name(),
                );
            }
        }
    }

    if failed {
        std::process::exit(1);
    }
    println!("all scenarios passed across {} seeds", seeds.len());
}
