//! Quickstart: build a simulated 2018 cloud, deploy a function, invoke
//! it, touch storage, and read the bill.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use bytes::Bytes;
use faasim::faas::FunctionSpec;
use faasim::simcore::SimDuration;
use faasim::{Cloud, CloudProfile};

fn main() {
    // A deterministic cloud calibrated to Fall-2018 AWS. `exact()` pins
    // every latency to its calibrated mean; drop it for realistic jitter.
    let cloud = Cloud::new(CloudProfile::aws_2018().exact(), 42);
    cloud.blob.create_bucket("greetings");

    // Register a function: closures over the service handles are the
    // "deployment package".
    let blob = cloud.blob.clone();
    cloud.faas.register(FunctionSpec::new(
        "greet",
        256,                           // MB — also buys the CPU share
        SimDuration::from_secs(30),    // user timeout (platform caps at 15 min)
        move |ctx, payload| {
            let blob = blob.clone();
            async move {
                let name = String::from_utf8_lossy(&payload.to_vec()).to_string();
                let message = format!("hello, {name}!");
                // I/O from inside a function pays the shared host NIC and
                // the service's per-request latency.
                blob.put(ctx.host(), "greetings", &name, Bytes::from(message.clone().into_bytes()))
                    .await
                    .expect("bucket exists");
                Ok(Bytes::from(message.into_bytes()))
            }
        },
    ));

    // Invoke twice: the first call cold-starts a container (~5.3 s in
    // 2018), the second hits it warm (~300 ms — the paper's Table 1).
    let faas = cloud.faas.clone();
    let (cold, warm) = cloud.sim.block_on(async move {
        let cold = faas.invoke("greet", Bytes::from_static(b"ada")).await;
        let warm = faas.invoke("greet", Bytes::from_static(b"grace")).await;
        (cold, warm)
    });

    println!("cold invoke: {} (cold={})", fmt(cold.total), cold.cold);
    println!("warm invoke: {} (cold={})", fmt(warm.total), warm.cold);
    println!(
        "reply: {}",
        String::from_utf8_lossy(&warm.result.expect("handler succeeded").to_vec())
    );
    println!("\nobjects stored: {}", cloud.blob.object_count());
    println!("virtual time elapsed: {}", cloud.sim.now());
    println!("\nthe bill:\n{}", cloud.ledger.report());
}

fn fmt(d: SimDuration) -> String {
    format!("{:.1} ms", d.as_secs_f64() * 1e3)
}
