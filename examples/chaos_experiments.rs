//! Chaos-hardened paper experiments: sweep all eight experiments'
//! `resilient()` variants across many seeds, under both the calm and
//! the hostile fault plan, checking every end-to-end invariant
//! (exactly-once effects, DLQ-aware message conservation, ledger
//! consistency, completion-or-declared-failure) and that each seed
//! replays byte-identically. Exits nonzero on any violation and prints
//! the minimal failing seed for byte-exact reproduction.
//!
//! Seeds fan out across every available core via `ParallelSweep`.
//!
//! ```text
//! cargo run --release --example chaos_experiments               # 16 seeds
//! cargo run --release --example chaos_experiments -- --seeds 4  # CI smoke
//! cargo run --release --example chaos_experiments -- --serial   # one core
//! cargo run --release --example chaos_experiments -- --hostile-only
//! ```
//!
//! `CHAOS_SEEDS=<n>` is honoured when no `--seeds` flag is given.

use std::time::Instant;

use faasim_chaos::{experiment_scenarios, ParallelSweep, Scenario};

struct Args {
    seeds: usize,
    serial: bool,
    hostile_only: bool,
}

fn parse_args() -> Args {
    let mut args = Args {
        seeds: std::env::var("CHAOS_SEEDS")
            .ok()
            .and_then(|s| s.parse().ok())
            .unwrap_or(16),
        serial: false,
        hostile_only: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--seeds" => {
                args.seeds = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--seeds takes a positive integer");
            }
            "--serial" => args.serial = true,
            "--hostile-only" => args.hostile_only = true,
            other => {
                eprintln!("unknown argument: {other}");
                eprintln!("usage: chaos_experiments [--seeds N] [--serial] [--hostile-only]");
                std::process::exit(2);
            }
        }
    }
    args
}

fn main() {
    let args = parse_args();
    let seeds: Vec<u64> = (1..=args.seeds as u64).collect();
    let pool = if args.serial {
        ParallelSweep::new(1)
    } else {
        ParallelSweep::auto()
    };

    let mut scenarios = Vec::new();
    if !args.hostile_only {
        scenarios.extend(experiment_scenarios(false));
    }
    scenarios.extend(experiment_scenarios(true));

    let mut failed = false;
    for scenario in &scenarios {
        let start = Instant::now();
        let report = pool.sweep(scenario, &seeds);
        let wall = start.elapsed().as_secs_f64();
        print!("{report}");
        println!(
            "  {:.1} seeds/sec over {} worker(s), {wall:.3}s wall",
            seeds.len() as f64 / wall.max(1e-9),
            pool.workers(),
        );
        if !report.passed() {
            failed = true;
            if let Some(seed) = report.minimal_failing_seed() {
                eprintln!(
                    "minimal failing seed for {}: {seed} — the run is a pure \
                     function of the seed, so it reproduces byte-exactly",
                    scenario.name(),
                );
            }
        }
    }

    if failed {
        std::process::exit(1);
    }
    println!(
        "all {} experiment scenarios passed across {} seeds",
        scenarios.len(),
        seeds.len()
    );
}
