//! The paper's §2 "function composition" cautionary tale: an
//! Autodesk-style **account-creation workflow** built as a chain of
//! Lambda functions stitched together through queues and storage.
//!
//! "The authors of that case study reported average end-to-end sign-up
//! times of ten minutes; ... the overheads of Lambda task handling and
//! state management explain some of this latency."
//!
//! Every step is tiny, but each hop pays: queue send + trigger dispatch +
//! invocation overhead + state writes/reads against the KV store. The
//! example prints the per-hop breakdown so the tax is visible.
//!
//! ```text
//! cargo run --example account_signup
//! ```

use bytes::Bytes;
use faasim::faas::{add_queue_trigger, decode_batch, FunctionSpec};
use faasim::kv::Consistency;
use faasim::queue::QueueConfig;
use faasim::simcore::SimDuration;
use faasim::{Cloud, CloudProfile};

/// The workflow stages, each its own function wired to its own queue.
const STAGES: &[&str] = &[
    "validate-email",
    "check-duplicates",
    "provision-account",
    "setup-entitlements",
    "send-welcome-email",
];

fn main() {
    let cloud = Cloud::new(CloudProfile::aws_2018().exact(), 11);
    cloud.kv.create_table("signups");
    for stage in STAGES {
        cloud
            .queue
            .create_queue(stage, QueueConfig::default());
    }
    cloud.queue.create_queue("done", QueueConfig::default());

    // Each stage: read workflow state, do a sliver of business logic,
    // write state back, enqueue the next stage.
    for (i, stage) in STAGES.iter().enumerate() {
        let kv = cloud.kv.clone();
        let queue = cloud.queue.clone();
        let next = if i + 1 < STAGES.len() {
            STAGES[i + 1]
        } else {
            "done"
        };
        cloud.faas.register(FunctionSpec::new(
            *stage,
            256,
            SimDuration::from_secs(60),
            move |ctx, payload| {
                let kv = kv.clone();
                let queue = queue.clone();
                async move {
                    for user in decode_batch(&payload).expect("batch") {
                        let user_id = String::from_utf8_lossy(&user.to_vec()).to_string();
                        // State round-trip: the paper's point — every hop
                        // reads and writes "global state" in slow storage.
                        let state = kv
                            .get(ctx.host(), "signups", &user_id, Consistency::Strong)
                            .await;
                        let mut progress = state
                            .map(|item| item.value.to_vec())
                            .unwrap_or_default();
                        progress.push(b'+');
                        ctx.cpu(SimDuration::from_micros(500)).await; // the logic
                        kv.put(ctx.host(), "signups", &user_id, Bytes::from(progress))
                            .await
                            .expect("signups table");
                        queue
                            .send(ctx.host(), next, user)
                            .await
                            .expect("next queue");
                    }
                    Ok(Bytes::new())
                }
            },
        ));
        let _t = add_queue_trigger(&cloud.faas, &cloud.queue, &cloud.fabric, stage, stage, 1);
    }

    // Sign up 20 users and wait for them all to come out the far end.
    let client = cloud.client_host();
    let queue = cloud.queue.clone();
    let sim = cloud.sim.clone();
    let users = 20usize;
    let (first_done, all_done) = cloud.sim.block_on(async move {
        let t0 = sim.now();
        for u in 0..users {
            queue
                .send(&client, STAGES[0], Bytes::from(format!("user-{u:02}").into_bytes()))
                .await
                .expect("intake queue");
        }
        let mut finished = 0;
        let mut first = None;
        while finished < users {
            let got = queue
                .receive(&client, "done", 10, SimDuration::from_secs(600))
                .await
                .expect("done queue");
            if !got.is_empty() && first.is_none() {
                first = Some(sim.now() - t0);
            }
            finished += got.len();
            let receipts = got.into_iter().map(|m| m.receipt).collect();
            queue.delete_batch(&client, receipts).await.expect("ack");
        }
        (first.expect("at least one signup"), sim.now() - t0)
    });

    let overhead = cloud.faas.profile().invoke_overhead.mean();
    println!("workflow stages        : {}", STAGES.len());
    println!("users signed up        : {users}");
    println!("first signup end-to-end: {:.2}s", first_done.as_secs_f64());
    println!("all signups done after : {:.2}s", all_done.as_secs_f64());
    println!();
    println!("where a single hop goes:");
    println!("  queue send                ~5ms");
    println!("  trigger dispatch          ~126ms");
    println!(
        "  invocation overhead       ~{:.0}ms",
        overhead.as_secs_f64() * 1e3
    );
    println!("  KV state read+write       ~11ms");
    println!("  business logic            ~0.5ms   <- the only part you wrote");
    println!();
    println!("the bill:\n{}", cloud.ledger.report());
    println!(
        "five hops of ~450ms overhead around ~0.5ms of logic: this is how a\n\
         sign-up workflow becomes the \"ten minutes\" the paper quotes once\n\
         real systems add retries, fan-out, and human-scale stage counts."
    );
}
