pub use faasim as _facade;
