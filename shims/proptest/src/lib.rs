//! Minimal offline shim for `proptest`.
//!
//! Supports the subset this workspace uses: the `proptest!` macro with
//! an optional `#![proptest_config(..)]` header, range / tuple /
//! `any::<T>()` / `prop::collection::vec` / `prop_oneof!` strategies,
//! `.prop_map`, `BoxedStrategy`, and the `prop_assert*` macros.
//!
//! Differences from real proptest, by design:
//! - No shrinking. A failing case panics with the generated inputs
//!   still bound, so the assertion message plus `--nocapture` shows them.
//! - The RNG seed derives from the test function's name, so every run
//!   (and every machine) explores the identical case sequence.

use std::rc::Rc;

// ---------------------------------------------------------------------------
// RNG
// ---------------------------------------------------------------------------

/// Deterministic xoshiro256++ used to drive generation.
#[derive(Clone, Debug)]
pub struct TestRng {
    s: [u64; 4],
}

impl TestRng {
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut state = seed;
        let mut s = [0u64; 4];
        for word in &mut s {
            state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            s_word_store(word, z ^ (z >> 31));
        }
        if s == [0, 0, 0, 0] {
            s[0] = 1;
        }
        TestRng { s }
    }

    /// Seeds deterministically from a test name (FNV-1a).
    pub fn deterministic(name: &str) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.as_bytes() {
            h ^= *b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        Self::seed_from_u64(h)
    }

    pub fn next_u64(&mut self) -> u64 {
        let [s0, s1, s2, s3] = self.s;
        let result = s0.wrapping_add(s3).rotate_left(23).wrapping_add(s0);
        let t = s1 << 17;
        let mut s = [s0, s1, s2, s3];
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        self.s = s;
        result
    }

    /// Uniform in [0, span) via widening multiply.
    pub fn below(&mut self, span: u64) -> u64 {
        debug_assert!(span > 0);
        ((self.next_u64() as u128 * span as u128) >> 64) as u64
    }

    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    pub fn unit_f32(&mut self) -> f32 {
        (self.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

fn s_word_store(slot: &mut u64, v: u64) {
    *slot = v;
}

// ---------------------------------------------------------------------------
// Config
// ---------------------------------------------------------------------------

#[derive(Clone, Debug)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

// ---------------------------------------------------------------------------
// Strategy
// ---------------------------------------------------------------------------

/// A generator of values of type `Value`.
pub trait Strategy {
    type Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { source: self, f }
    }

    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Rc::new(self))
    }
}

/// Type-erased, cheaply cloneable strategy.
pub struct BoxedStrategy<T>(Rc<dyn Strategy<Value = T>>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy(Rc::clone(&self.0))
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        self.0.generate(rng)
    }
}

/// `.prop_map` adapter.
pub struct Map<S, F> {
    source: S,
    f: F,
}

impl<S, F, O> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.source.generate(rng))
    }
}

/// Always produces a clone of the given value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Uniform choice between boxed alternatives (`prop_oneof!`).
pub struct Union<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
        Union { options }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let idx = rng.below(self.options.len() as u64) as usize;
        self.options[idx].generate(rng)
    }
}

// Integer range strategies.
macro_rules! impl_int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                if span > u64::MAX as u128 {
                    return rng.next_u64() as $t;
                }
                (lo as i128 + rng.below(span as u64) as i128) as $t
            }
        }
    )*};
}
impl_int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

// Float range strategies.
macro_rules! impl_float_range_strategy {
    ($($t:ty, $unit:ident);*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                self.start + (self.end - self.start) * rng.$unit()
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                lo + (hi - lo) * rng.$unit()
            }
        }
    )*};
}
impl_float_range_strategy!(f32, unit_f32; f64, unit_f64);

// Tuple strategies up to arity 6.
macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}
impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);

// ---------------------------------------------------------------------------
// any::<T>() / Arbitrary
// ---------------------------------------------------------------------------

pub trait Arbitrary: Sized {
    fn arbitrary_with(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary_with(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary_with(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary_with(rng: &mut TestRng) -> Self {
        rng.unit_f64()
    }
}

impl Arbitrary for f32 {
    fn arbitrary_with(rng: &mut TestRng) -> Self {
        rng.unit_f32()
    }
}

pub struct Any<T> {
    _marker: std::marker::PhantomData<fn() -> T>,
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary_with(rng)
    }
}

pub fn any<T: Arbitrary>() -> Any<T> {
    Any {
        _marker: std::marker::PhantomData,
    }
}

// ---------------------------------------------------------------------------
// Collections
// ---------------------------------------------------------------------------

pub mod collection {
    use super::{Strategy, TestRng};

    #[derive(Clone, Debug)]
    pub struct SizeRange {
        lo: usize,
        hi_inclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange {
                lo: n,
                hi_inclusive: n,
            }
        }
    }
    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi_inclusive: r.end - 1,
            }
        }
    }
    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            SizeRange {
                lo: *r.start(),
                hi_inclusive: *r.end(),
            }
        }
    }

    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// `prop::collection::vec(element_strategy, size_range)`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi_inclusive - self.size.lo) as u64 + 1;
            let len = self.size.lo + rng.below(span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

// ---------------------------------------------------------------------------
// Macros
// ---------------------------------------------------------------------------

/// Defines deterministic property tests. Mirrors the real macro's shape:
/// an optional `#![proptest_config(expr)]` header followed by test fns
/// whose arguments are `pattern in strategy` pairs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { (<$crate::ProptestConfig as ::core::default::Default>::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    ( ($cfg:expr) ) => {};
    ( ($cfg:expr)
      $(#[$meta:meta])*
      fn $name:ident( $($arg:pat_param in $strat:expr),+ $(,)? ) $body:block
      $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __config: $crate::ProptestConfig = $cfg;
            let mut __rng = $crate::TestRng::deterministic(concat!(module_path!(), "::", stringify!($name)));
            for __case in 0..__config.cases {
                let _ = __case;
                $(let $arg = $crate::Strategy::generate(&($strat), &mut __rng);)+
                $body
            }
        }
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
}

/// Uniform choice among strategy arms producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Strategy::boxed($strat)),+])
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)+) => { assert!($cond, $($fmt)+) };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => { assert_eq!($left, $right) };
    ($left:expr, $right:expr, $($fmt:tt)+) => { assert_eq!($left, $right, $($fmt)+) };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => { assert_ne!($left, $right) };
    ($left:expr, $right:expr, $($fmt:tt)+) => { assert_ne!($left, $right, $($fmt)+) };
}

// ---------------------------------------------------------------------------
// Prelude
// ---------------------------------------------------------------------------

pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, Arbitrary,
        BoxedStrategy, Just, ProptestConfig, Strategy, TestRng,
    };
    /// Lets `prop::collection::vec(..)` resolve after a glob import.
    pub use crate as prop;
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]
        /// Range strategies stay in bounds; tuples and vec compose.
        #[test]
        fn shim_selfcheck(
            a in 0u8..255,
            (b, flag) in (1u32..10, any::<bool>()),
            v in prop::collection::vec(0u64..100, 1..20),
            f in -1.0f64..1.0,
        ) {
            prop_assert!(a < 255);
            prop_assert!((1..10).contains(&b));
            let _ = flag;
            prop_assert!(!v.is_empty() && v.len() < 20);
            prop_assert!(v.iter().all(|x| *x < 100));
            prop_assert!((-1.0..1.0).contains(&f));
        }

        #[test]
        fn oneof_and_map(choice in prop_oneof![
            (0u32..4).prop_map(|x| x as u64),
            (100u32..104).prop_map(|x| x as u64),
        ]) {
            prop_assert!(choice < 4 || (100..104).contains(&choice));
        }
    }

    #[test]
    fn deterministic_across_instances() {
        let mut a = TestRng::deterministic("x");
        let mut b = TestRng::deterministic("x");
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }
}
