//! Minimal offline shim for `criterion`.
//!
//! Runs each benchmark for a small fixed number of iterations and
//! prints the mean wall-clock time per iteration. Exists so
//! `cargo bench` compiles and produces indicative numbers offline —
//! not a statistically rigorous harness.

use std::time::Instant;

pub use std::hint::black_box;

pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 20 }
    }
}

impl Criterion {
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_bench(id, self.sample_size, &mut f);
        self
    }

    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.to_string(),
            sample_size: self.sample_size,
            _parent: self,
        }
    }
}

pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id);
        run_bench(&full, self.sample_size, &mut f);
        self
    }

    pub fn finish(self) {}
}

pub struct Bencher {
    iters: u64,
    elapsed_ns: u128,
}

impl Bencher {
    pub fn iter<T, F: FnMut() -> T>(&mut self, mut f: F) {
        // One warmup, then timed iterations.
        black_box(f());
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(f());
        }
        self.elapsed_ns = start.elapsed().as_nanos();
    }
}

fn run_bench<F: FnMut(&mut Bencher)>(id: &str, sample_size: usize, f: &mut F) {
    let mut b = Bencher {
        iters: sample_size as u64,
        elapsed_ns: 0,
    };
    f(&mut b);
    let per_iter = if b.iters > 0 {
        b.elapsed_ns / b.iters as u128
    } else {
        0
    };
    println!("bench {id:<50} {} ns/iter ({} iters)", per_iter, b.iters);
}

#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_runs() {
        let mut c = Criterion::default();
        let mut count = 0u64;
        c.bench_function("smoke", |b| b.iter(|| count += 1));
        assert!(count > 0);
        let mut group = c.benchmark_group("g");
        group.sample_size(5).bench_function("inner", |b| b.iter(|| 1 + 1));
        group.finish();
    }
}
