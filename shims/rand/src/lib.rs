//! Minimal offline shim for the `rand` crate (0.10-style API).
//!
//! Provides `rngs::SmallRng` (xoshiro256++ seeded through splitmix64),
//! `SeedableRng::seed_from_u64`, and the `RngExt` extension trait with
//! `random::<T>()` and `random_range(range)` — the only surface the
//! workspace uses. Deterministic per seed; makes no attempt to match
//! upstream rand's output stream.

/// Core RNG trait: a source of uniformly distributed `u64`s.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Construction from a 64-bit seed.
pub trait SeedableRng: Sized {
    fn seed_from_u64(state: u64) -> Self;
}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Small fast RNG: xoshiro256++ with splitmix64 seed expansion.
    #[derive(Clone, Debug)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut state = seed;
            let mut s = [0u64; 4];
            for word in &mut s {
                *word = splitmix64(&mut state);
            }
            // xoshiro must not be seeded with all zeros.
            if s == [0, 0, 0, 0] {
                s[0] = 0x9e37_79b9_7f4a_7c15;
            }
            SmallRng { s }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let [s0, s1, s2, s3] = self.s;
            let result = s0.wrapping_add(s3).rotate_left(23).wrapping_add(s0);
            let t = s1 << 17;
            let mut s = [s0, s1, s2, s3];
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            self.s = s;
            result
        }
    }
}

/// Types that can be sampled uniformly from an RNG via `random::<T>()`.
pub trait Standard: Sized {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for u128 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128
    }
}

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 24 random bits in [0, 1).
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Ranges that can be sampled via `random_range(range)`.
pub trait SampleRange<T> {
    fn sample_range<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Uniform u64 in [0, span) without modulo bias (Lemire's method,
/// widening-multiply only — fine for simulation purposes).
fn uniform_below<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    ((rng.next_u64() as u128 * span as u128) >> 64) as u64
}

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample_range<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                let off = uniform_below(rng, span);
                (self.start as i128 + off as i128) as $t
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample_range<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                if span > u64::MAX as u128 {
                    // Full-width range: any u64/i64 value is valid.
                    return rng.next_u64() as $t;
                }
                let off = uniform_below(rng, span as u64);
                (lo as i128 + off as i128) as $t
            }
        }
    )*};
}
impl_sample_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_sample_range_float {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample_range<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let unit = <$t as Standard>::sample_standard(rng);
                self.start + (self.end - self.start) * unit
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample_range<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let unit = <$t as Standard>::sample_standard(rng);
                lo + (hi - lo) * unit
            }
        }
    )*};
}
impl_sample_range_float!(f32, f64);

/// Extension methods available on every RNG.
pub trait RngExt: RngCore {
    fn random<T: Standard>(&mut self) -> T {
        T::sample_standard(self)
    }

    fn random_range<T, Rng: SampleRange<T>>(&mut self, range: Rng) -> T {
        range.sample_range(self)
    }

    fn random_bool(&mut self, p: f64) -> bool {
        self.random::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> RngExt for R {}

// Alias so `use rand::Rng` also works.
pub use RngExt as Rng;

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = SmallRng::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v: u64 = rng.random_range(10..20);
            assert!((10..20).contains(&v));
            let w: usize = rng.random_range(0..=5);
            assert!(w <= 5);
            let f: f64 = rng.random_range(-1.0..1.0);
            assert!((-1.0..1.0).contains(&f));
            let x: i64 = rng.random_range(-5..=5);
            assert!((-5..=5).contains(&x));
            let u: f32 = rng.random::<f32>();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn full_unit_interval_coverage() {
        let mut rng = SmallRng::seed_from_u64(1);
        let mut lo = 1.0f64;
        let mut hi = 0.0f64;
        for _ in 0..10_000 {
            let v: f64 = rng.random();
            lo = lo.min(v);
            hi = hi.max(v);
        }
        assert!(lo < 0.01 && hi > 0.99);
    }
}
