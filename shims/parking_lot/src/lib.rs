//! Minimal offline shim for `parking_lot`: a non-poisoning `Mutex`
//! (and `RwLock`) layered over `std::sync`. Lock acquisition ignores
//! poison, matching parking_lot's semantics of not poisoning on panic.

use std::fmt;

pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: std::sync::Mutex::new(value),
        }
    }

    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        match self.inner.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(g),
            Err(std::sync::TryLockError::Poisoned(poisoned)) => Some(poisoned.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.inner.fmt(f)
    }
}

pub struct RwLock<T: ?Sized> {
    inner: std::sync::RwLock<T>,
}

pub type RwLockReadGuard<'a, T> = std::sync::RwLockReadGuard<'a, T>;
pub type RwLockWriteGuard<'a, T> = std::sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    pub const fn new(value: T) -> Self {
        RwLock {
            inner: std::sync::RwLock::new(value),
        }
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        match self.inner.read() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        match self.inner.write() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_basics() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert!(m.try_lock().is_some());
    }

    #[test]
    fn rwlock_basics() {
        let l = RwLock::new(5);
        assert_eq!(*l.read(), 5);
        *l.write() = 6;
        assert_eq!(*l.read(), 6);
    }
}
