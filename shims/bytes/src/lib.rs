//! Minimal offline shim for the `bytes` crate.
//!
//! Implements the subset of the API this workspace uses: cheaply
//! cloneable immutable `Bytes` backed by a shared buffer, a growable
//! `BytesMut` builder, and the `BufMut` put-methods the codecs call.

use std::borrow::Borrow;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::ops::{Bound, Deref, RangeBounds};
use std::sync::Arc;

/// Cheaply cloneable, sliceable view over a shared immutable buffer.
#[derive(Clone)]
pub struct Bytes {
    data: Arc<[u8]>,
    start: usize,
    end: usize,
}

impl Bytes {
    /// Creates an empty `Bytes`.
    pub fn new() -> Self {
        Self::from_vec(Vec::new())
    }

    /// Creates `Bytes` from a static slice (copied into a shared buffer).
    pub fn from_static(bytes: &'static [u8]) -> Self {
        Self::from_vec(bytes.to_vec())
    }

    /// Copies a slice into a fresh `Bytes`.
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Self::from_vec(data.to_vec())
    }

    fn from_vec(v: Vec<u8>) -> Self {
        let len = v.len();
        Bytes {
            data: Arc::from(v.into_boxed_slice()),
            start: 0,
            end: len,
        }
    }

    pub fn len(&self) -> usize {
        self.end - self.start
    }

    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// Returns a slice of self for the provided range, sharing the
    /// underlying buffer.
    pub fn slice(&self, range: impl RangeBounds<usize>) -> Self {
        let len = self.len();
        let begin = match range.start_bound() {
            Bound::Included(&n) => n,
            Bound::Excluded(&n) => n + 1,
            Bound::Unbounded => 0,
        };
        let end = match range.end_bound() {
            Bound::Included(&n) => n + 1,
            Bound::Excluded(&n) => n,
            Bound::Unbounded => len,
        };
        assert!(begin <= end && end <= len, "range out of bounds");
        Bytes {
            data: Arc::clone(&self.data),
            start: self.start + begin,
            end: self.start + end,
        }
    }

    /// Returns a `Bytes` for the given sub-slice, which must point into
    /// `self`'s buffer. Shares the underlying storage.
    pub fn slice_ref(&self, subset: &[u8]) -> Self {
        if subset.is_empty() {
            return Bytes::new();
        }
        let whole = self.as_ref();
        let base = whole.as_ptr() as usize;
        let sub = subset.as_ptr() as usize;
        assert!(
            sub >= base && sub + subset.len() <= base + whole.len(),
            "slice_ref: subset is not contained in self"
        );
        let offset = sub - base;
        self.slice(offset..offset + subset.len())
    }

    pub fn to_vec(&self) -> Vec<u8> {
        self.as_ref().to_vec()
    }
}

impl Default for Bytes {
    fn default() -> Self {
        Bytes::new()
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data[self.start..self.end]
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self
    }
}

impl Borrow<[u8]> for Bytes {
    fn borrow(&self) -> &[u8] {
        self
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Bytes::from_vec(v)
    }
}

impl From<&'static [u8]> for Bytes {
    fn from(s: &'static [u8]) -> Self {
        Bytes::from_static(s)
    }
}

impl From<String> for Bytes {
    fn from(s: String) -> Self {
        Bytes::from_vec(s.into_bytes())
    }
}

impl From<&'static str> for Bytes {
    fn from(s: &'static str) -> Self {
        Bytes::from_static(s.as_bytes())
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self.as_ref(), f)
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.as_ref() == other.as_ref()
    }
}
impl Eq for Bytes {}

impl PartialOrd for Bytes {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Bytes {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.as_ref().cmp(other.as_ref())
    }
}

impl Hash for Bytes {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.as_ref().hash(state);
    }
}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self.as_ref() == other
    }
}
impl PartialEq<&[u8]> for Bytes {
    fn eq(&self, other: &&[u8]) -> bool {
        self.as_ref() == *other
    }
}
impl PartialEq<Vec<u8>> for Bytes {
    fn eq(&self, other: &Vec<u8>) -> bool {
        self.as_ref() == other.as_slice()
    }
}

/// Growable byte buffer used to build up a payload before freezing it.
#[derive(Clone, Default, Debug)]
pub struct BytesMut {
    buf: Vec<u8>,
}

impl BytesMut {
    pub fn new() -> Self {
        BytesMut { buf: Vec::new() }
    }

    pub fn with_capacity(capacity: usize) -> Self {
        BytesMut {
            buf: Vec::with_capacity(capacity),
        }
    }

    pub fn len(&self) -> usize {
        self.buf.len()
    }

    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    pub fn reserve(&mut self, additional: usize) {
        self.buf.reserve(additional);
    }

    /// Converts into an immutable `Bytes`.
    pub fn freeze(self) -> Bytes {
        Bytes::from(self.buf)
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.buf
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.buf
    }
}

/// Write-side trait: the little-endian put methods the codecs use.
pub trait BufMut {
    fn put_u8(&mut self, v: u8);
    fn put_slice(&mut self, src: &[u8]);

    fn put_u16_le(&mut self, v: u16) {
        self.put_slice(&v.to_le_bytes());
    }
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }
}

impl BufMut for BytesMut {
    fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }
    fn put_slice(&mut self, src: &[u8]) {
        self.buf.extend_from_slice(src);
    }
}

impl BufMut for Vec<u8> {
    fn put_u8(&mut self, v: u8) {
        self.push(v);
    }
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_and_slice_ref() {
        let mut m = BytesMut::with_capacity(16);
        m.put_u32_le(0xdead_beef);
        m.put_u8(7);
        m.put_slice(b"hello");
        let b = m.freeze();
        assert_eq!(b.len(), 10);
        assert_eq!(&b[5..], b"hello");
        let sub = b.slice_ref(&b[5..]);
        assert_eq!(&sub[..], b"hello");
        let sl = b.slice(0..4);
        assert_eq!(&sl[..], &0xdead_beef_u32.to_le_bytes());
    }

    #[test]
    fn equality_and_clone_share() {
        let a = Bytes::from(vec![1, 2, 3]);
        let b = a.clone();
        assert_eq!(a, b);
        assert_eq!(a, vec![1, 2, 3]);
        assert!(Bytes::new().is_empty());
    }
}
