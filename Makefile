# Convenience targets. Everything is plain cargo underneath; the build is
# fully offline (external deps are vendored under shims/).

CARGO ?= cargo
export CARGO_NET_OFFLINE = true

.PHONY: build test test-all chaos-sweep chaos-experiments trace-replay bench bench-compare profile clean

## Release build of the whole workspace.
build:
	$(CARGO) build --release

## Tier-1: the root crate's tests (unit + integration + doc).
test:
	$(CARGO) build --release
	$(CARGO) test -q

## Every crate in the workspace, including the chaos and shim crates.
test-all:
	$(CARGO) test --workspace -q

## Tier-1 verify, then the deterministic fault-injection sweep over the
## CRDT-sync and queue-pipeline scenarios, fanned out across every core
## (byte-identical to a serial sweep) and reporting seeds/sec. Fails
## (nonzero exit) on any invariant violation or replay divergence and
## prints the minimal failing seed. Override the seed count with
## CHAOS_SEEDS=<n>.
CHAOS_SEEDS ?= 16
chaos-sweep: test
	CHAOS_SEEDS=$(CHAOS_SEEDS) $(CARGO) run --release --example chaos_sweep

## All eight paper experiments' `resilient()` variants, swept across
## CHAOS_SEEDS seeds under both the calm and the hostile fault plan.
## Every seed must satisfy the end-to-end invariants (exactly-once
## effects, DLQ-aware message conservation, ledger consistency,
## completion-or-declared-failure) and replay byte-identically.
chaos-experiments: test
	CHAOS_SEEDS=$(CHAOS_SEEDS) $(CARGO) run --release --example chaos_experiments

## Paper-scale trace replay: stream a ~1.1M-invocation, 12k-function
## Azure-style workload trace (Zipf popularity, Poisson/bursty/diurnal
## arrivals) through the platform and print the replay report —
## cold-start rate, latency p50/p95/p99/p99.9, fairness spread, packing
## density, $/hr. Runs the seed twice and fails unless digest, bill, and
## report are byte-identical. `TRACE_SEED=<s>` picks the seed.
TRACE_SEED ?= 2019
trace-replay:
	$(CARGO) run --release --example trace_replay -- --seed $(TRACE_SEED)

## Wall-clock performance baseline: DES-kernel events/sec, per-experiment
## wall-clock, and 64-seed sweep throughput (serial vs parallel). Writes
## BENCH_baseline.json — the perf trajectory future PRs are gated on.
bench:
	$(CARGO) bench -p faasim-bench --bench wallclock

## Regression gate: re-run the wall-clock suite and diff it against the
## committed BENCH_baseline.json — kernel benches on events/sec,
## experiments on wall-clock ratio. Fails (nonzero exit) if anything is
## more than 25% slower (override with BENCH_COMPARE_TOLERANCE=<frac>);
## shrink the sweep for smoke runs with BENCH_SWEEP_SEEDS=<n>.
bench-compare:
	$(CARGO) bench -p faasim-bench --bench bench_compare

## Engine profile: run the replay kernels once and print the executor's
## SimProfile counters (task polls, timer pushes/fires/cancels, wheel
## cascades, spawns, peak live tasks) next to invocations/sec, so perf
## work can attribute wins instead of guessing from wall-clock alone.
## PROFILE_SCALE=100k (default) | 1m | 1m-smoke.
PROFILE_SCALE ?= 100k
profile:
	PROFILE_SCALE=$(PROFILE_SCALE) $(CARGO) bench -p faasim-bench --bench profile

clean:
	$(CARGO) clean
