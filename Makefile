# Convenience targets. Everything is plain cargo underneath; the build is
# fully offline (external deps are vendored under shims/).

CARGO ?= cargo
export CARGO_NET_OFFLINE = true

.PHONY: build test test-all chaos-sweep clean

## Release build of the whole workspace.
build:
	$(CARGO) build --release

## Tier-1: the root crate's tests (unit + integration + doc).
test:
	$(CARGO) build --release
	$(CARGO) test -q

## Every crate in the workspace, including the chaos and shim crates.
test-all:
	$(CARGO) test --workspace -q

## Tier-1 verify, then the 16-seed deterministic fault-injection sweep
## over the CRDT-sync and queue-pipeline scenarios. Fails (nonzero exit)
## on any invariant violation or replay divergence and prints the
## minimal failing seed.
chaos-sweep: test
	$(CARGO) run --release --example chaos_sweep

clean:
	$(CARGO) clean
