//! # faasim-agents
//!
//! A prototype of the paper's §4 proposal: **long-running, addressable
//! virtual agents** — "nameable endpoints in the network ... addressable
//! with performance comparable to standard networks", yet *virtual*, so
//! the platform can remap them across physical resources (migration).
//!
//! Agents are named actors. A directory service maps names to current
//! physical addresses; senders cache resolutions and transparently
//! re-resolve when an agent has migrated. Migration pays an explicit
//! state-transfer cost, after which the platform has "recouped the cost
//! of creating an affinity" across subsequent requests — the economics §4
//! describes.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

use std::cell::RefCell;
use std::collections::HashMap;
use std::fmt;
use std::rc::Rc;

use faasim_net::{Addr, Fabric, Host, Message, NetError, Socket};
use faasim_simcore::{LatencyModel, Recorder, Sim, SimDuration};

/// Errors from agent operations.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum AgentError {
    /// No agent registered under this name.
    UnknownAgent(String),
    /// The peer did not answer (dead, or migrated twice mid-request).
    NoReply(String),
    /// Name already taken.
    NameTaken(String),
}

impl fmt::Display for AgentError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AgentError::UnknownAgent(n) => write!(f, "unknown agent: {n}"),
            AgentError::NoReply(n) => write!(f, "no reply from agent: {n}"),
            AgentError::NameTaken(n) => write!(f, "agent name taken: {n}"),
        }
    }
}

impl std::error::Error for AgentError {}

/// Directory entry: where an agent currently lives, with a version that
/// bumps on every migration (lets caches detect staleness cheaply).
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
struct DirEntry {
    addr: Addr,
    version: u64,
}

struct RuntimeState {
    directory: HashMap<String, DirEntry>,
    next_port: u16,
}

/// The agent runtime: naming, placement, migration.
#[derive(Clone)]
pub struct AgentRuntime {
    sim: Sim,
    fabric: Fabric,
    recorder: Recorder,
    /// Latency of an (uncached) directory lookup — an autoscaling
    /// metadata service, KV-class.
    pub lookup_latency: LatencyModel,
    state: Rc<RefCell<RuntimeState>>,
}

impl AgentRuntime {
    /// Create a runtime on the fabric.
    pub fn new(sim: &Sim, fabric: &Fabric, recorder: Recorder) -> AgentRuntime {
        AgentRuntime {
            sim: sim.clone(),
            fabric: fabric.clone(),
            recorder,
            lookup_latency: LatencyModel::Constant(SimDuration::from_millis(1)),
            state: Rc::new(RefCell::new(RuntimeState {
                directory: HashMap::new(),
                next_port: 9000,
            })),
        }
    }

    /// Spawn a named agent on `host`.
    pub fn spawn(&self, host: &Host, name: &str) -> Result<Agent, AgentError> {
        let mut st = self.state.borrow_mut();
        if st.directory.contains_key(name) {
            return Err(AgentError::NameTaken(name.to_owned()));
        }
        let port = st.next_port;
        st.next_port += 1;
        drop(st);
        let socket = self
            .fabric
            .bind(host, port)
            .expect("fresh port must be free");
        let addr = socket.addr();
        self.state
            .borrow_mut()
            .directory
            .insert(name.to_owned(), DirEntry { addr, version: 0 });
        self.recorder.incr("agents.spawned");
        Ok(Agent {
            runtime: self.clone(),
            name: name.to_owned(),
            host: host.clone(),
            socket,
            cache: Rc::new(RefCell::new(HashMap::new())),
        })
    }

    /// Authoritative (slow-path) lookup, paying the directory latency.
    async fn lookup(&self, name: &str) -> Result<DirEntry, AgentError> {
        let latency = {
            let mut rng = self.sim.rng("agents.directory");
            self.lookup_latency.sample(&mut rng)
        };
        self.sim.sleep(latency).await;
        self.recorder.incr("agents.directory_lookups");
        self.state
            .borrow()
            .directory
            .get(name)
            .copied()
            .ok_or_else(|| AgentError::UnknownAgent(name.to_owned()))
    }

    /// Number of registered agents.
    pub fn agent_count(&self) -> usize {
        self.state.borrow().directory.len()
    }

    fn update_directory(&self, name: &str, addr: Addr) {
        let mut st = self.state.borrow_mut();
        if let Some(entry) = st.directory.get_mut(name) {
            entry.addr = addr;
            entry.version += 1;
        }
    }

    fn unregister(&self, name: &str) {
        self.state.borrow_mut().directory.remove(name);
    }
}

/// A long-running, nameable, migratable endpoint.
pub struct Agent {
    runtime: AgentRuntime,
    name: String,
    host: Host,
    socket: Socket,
    /// Local resolution cache: name → directory entry.
    cache: Rc<RefCell<HashMap<String, DirEntry>>>,
}

impl fmt::Debug for Agent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Agent")
            .field("name", &self.name)
            .field("addr", &self.socket.addr())
            .finish()
    }
}

impl Agent {
    /// The agent's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The agent's current physical address (changes on migration).
    pub fn addr(&self) -> Addr {
        self.socket.addr()
    }

    /// The host the agent currently runs on.
    pub fn host(&self) -> &Host {
        &self.host
    }

    async fn resolve(&self, name: &str) -> Result<DirEntry, AgentError> {
        if let Some(&entry) = self.cache.borrow().get(name) {
            return Ok(entry);
        }
        let entry = self.runtime.lookup(name).await?;
        self.cache.borrow_mut().insert(name.to_owned(), entry);
        Ok(entry)
    }

    fn invalidate(&self, name: &str) {
        self.cache.borrow_mut().remove(name);
    }

    /// Fire-and-forget message to a named agent. Resolution is cached; a
    /// message sent on a stale cache entry is silently lost (use
    /// [`Agent::request`] when delivery must be confirmed).
    pub async fn send(&self, to: &str, payload: impl Into<faasim_payload::Payload>) -> Result<(), AgentError> {
        let entry = self.resolve(to).await?;
        self.socket.send(entry.addr, payload).await;
        self.runtime.recorder.incr("agents.messages_sent");
        Ok(())
    }

    /// Request/reply to a named agent. On timeout, re-resolves once (the
    /// peer may have migrated) and retries.
    pub async fn request(&self, to: &str, payload: impl Into<faasim_payload::Payload>) -> Result<Message, AgentError> {
        let payload = payload.into();
        let attempt_timeout = SimDuration::from_millis(50);
        for attempt in 0..2 {
            let entry = self.resolve(to).await?;
            match self
                .runtime
                .sim
                .timeout(attempt_timeout, self.socket.request(entry.addr, payload.clone()))
                .await
            {
                Some(Ok(reply)) => {
                    self.runtime.recorder.incr("agents.requests_ok");
                    return Ok(reply);
                }
                Some(Err(NetError::Canceled)) | None => {
                    self.invalidate(to);
                    if attempt == 1 {
                        break;
                    }
                    self.runtime.recorder.incr("agents.request_retries");
                }
                Some(Err(_)) => break,
            }
        }
        Err(AgentError::NoReply(to.to_owned()))
    }

    /// Await the next inbound message.
    pub async fn recv(&self) -> Message {
        self.socket.recv().await
    }

    /// Reply to a request received via [`Agent::recv`].
    pub async fn reply(&self, req: &Message, payload: impl Into<faasim_payload::Payload>) {
        self.socket.reply(req, payload).await;
    }

    /// Move this agent to `new_host`, shipping `state_bytes` of state.
    /// The name keeps working: the directory is updated, and senders with
    /// stale caches recover via [`Agent::request`]'s retry path.
    pub async fn migrate(&mut self, new_host: &Host, state_bytes: u64) {
        // Ship state out of the old host and into the new one.
        self.host.nic_transfer(state_bytes).await;
        let latency = self
            .runtime
            .fabric
            .one_way_latency(&self.host, new_host.id());
        self.runtime.sim.sleep(latency).await;
        new_host.nic_transfer(state_bytes).await;
        // Rebind on the new host under a fresh port.
        let port = {
            let mut st = self.runtime.state.borrow_mut();
            let p = st.next_port;
            st.next_port += 1;
            p
        };
        let new_socket = self
            .runtime
            .fabric
            .bind(new_host, port)
            .expect("fresh port must be free");
        self.runtime.update_directory(&self.name, new_socket.addr());
        self.socket = new_socket;
        self.host = new_host.clone();
        self.runtime.recorder.incr("agents.migrations");
    }
}

impl Drop for Agent {
    fn drop(&mut self) {
        self.runtime.unregister(&self.name);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;
    use faasim_net::{NetProfile, NicConfig};
    use faasim_simcore::{mbps, SimTime};

    fn world(seed: u64) -> (Sim, Fabric, AgentRuntime) {
        let sim = Sim::new(seed);
        let recorder = Recorder::new();
        let fabric = Fabric::new(&sim, NetProfile::aws_2018().exact(), recorder.clone());
        let runtime = AgentRuntime::new(&sim, &fabric, recorder);
        (sim, fabric, runtime)
    }

    fn host(fabric: &Fabric) -> Host {
        fabric.add_host(0, NicConfig::simple(mbps(10_000.0)))
    }

    #[test]
    fn named_request_reply() {
        let (sim, fabric, rt) = world(91);
        let client = rt.spawn(&host(&fabric), "client").unwrap();
        let server = rt.spawn(&host(&fabric), "server").unwrap();
        sim.spawn(async move {
            loop {
                let req = server.recv().await;
                server.reply(&req, Bytes::from_static(b"pong")).await;
            }
        });
        let reply = sim.block_on(async move {
            client
                .request("server", Bytes::from_static(b"ping"))
                .await
                .unwrap()
        });
        assert!(reply.payload.eq_bytes(b"pong"));
        // First request pays one directory lookup plus ~one RTT: ~1.3 ms.
        assert!(sim.now() < SimTime::ZERO + SimDuration::from_millis(3));
    }

    #[test]
    fn cached_resolution_reaches_network_speed() {
        let (sim, fabric, rt) = world(92);
        let client = rt.spawn(&host(&fabric), "client").unwrap();
        let server = rt.spawn(&host(&fabric), "server").unwrap();
        sim.spawn(async move {
            loop {
                let req = server.recv().await;
                server.reply(&req, req.payload.clone()).await;
            }
        });
        let (t_first, t_second) = sim.block_on({
            let sim = sim.clone();
            async move {
                let t0 = sim.now();
                client.request("server", Bytes::new()).await.unwrap();
                let t1 = sim.now();
                client.request("server", Bytes::new()).await.unwrap();
                let t2 = sim.now();
                (t1 - t0, t2 - t1)
            }
        });
        // Cached path drops the 1 ms lookup: close to the raw 290 µs RTT.
        assert!(t_second < t_first, "{t_second} !< {t_first}");
        assert!(
            t_second < SimDuration::from_micros(400),
            "cached request took {t_second}"
        );
        assert_eq!(rt.recorder.counter("agents.directory_lookups"), 1);
    }

    #[test]
    fn unknown_and_duplicate_names() {
        let (sim, fabric, rt) = world(93);
        let a = rt.spawn(&host(&fabric), "solo").unwrap();
        assert!(matches!(
            rt.spawn(&host(&fabric), "solo"),
            Err(AgentError::NameTaken(_))
        ));
        let err = sim.block_on(async move { a.send("ghost", Bytes::new()).await });
        assert_eq!(err, Err(AgentError::UnknownAgent("ghost".into())));
    }

    #[test]
    fn migration_keeps_name_working() {
        let (sim, fabric, rt) = world(94);
        let client = rt.spawn(&host(&fabric), "client").unwrap();
        let mut server = rt.spawn(&host(&fabric), "server").unwrap();
        let new_home = fabric.add_host(3, NicConfig::simple(mbps(10_000.0)));
        let rt2 = rt.clone();
        sim.spawn(async move {
            // Serve one request, migrate with 10 MB of state, keep serving.
            let req = server.recv().await;
            server.reply(&req, Bytes::from_static(b"before")).await;
            server.migrate(&new_home, 10_000_000).await;
            loop {
                let req = server.recv().await;
                server.reply(&req, Bytes::from_static(b"after")).await;
            }
        });
        let (a, b) = sim.block_on({
            let sim = sim.clone();
            async move {
                let a = client.request("server", Bytes::new()).await.unwrap();
                // Give the migration time to finish.
                sim.sleep(SimDuration::from_secs(1)).await;
                let b = client.request("server", Bytes::new()).await.unwrap();
                (a, b)
            }
        });
        assert!(a.payload.eq_bytes(b"before"));
        assert!(b.payload.eq_bytes(b"after"));
        // The second request needed the stale-cache retry path.
        assert_eq!(rt2.recorder.counter("agents.request_retries"), 1);
        assert_eq!(rt2.recorder.counter("agents.migrations"), 1);
    }

    #[test]
    fn dead_agent_yields_no_reply() {
        let (sim, fabric, rt) = world(95);
        let client = rt.spawn(&host(&fabric), "client").unwrap();
        let server = rt.spawn(&host(&fabric), "server").unwrap();
        // Drop the server after registration: requests must fail cleanly.
        let name = server.name().to_owned();
        drop(server);
        let err = sim.block_on(async move { client.request(&name, Bytes::new()).await });
        assert!(matches!(err, Err(AgentError::UnknownAgent(_))));
    }

    #[test]
    fn agent_count_tracks_lifecycle() {
        let (_sim, fabric, rt) = world(96);
        let a = rt.spawn(&host(&fabric), "a").unwrap();
        let b = rt.spawn(&host(&fabric), "b").unwrap();
        assert_eq!(rt.agent_count(), 2);
        drop(a);
        assert_eq!(rt.agent_count(), 1);
        drop(b);
        assert_eq!(rt.agent_count(), 0);
    }
}
