//! Property tests for the §4 agents prototype: arbitrary interleavings of
//! spawn / request / migrate keep the directory consistent and requests
//! to live agents always succeed (possibly via the stale-cache retry).

use bytes::Bytes;
use faasim_agents::AgentRuntime;
use faasim_net::{Fabric, NetProfile, NicConfig};
use faasim_simcore::{mbps, Recorder, Sim, SimDuration};
use proptest::prelude::*;

#[derive(Clone, Debug)]
enum Action {
    /// Request/reply from the prober to the named worker.
    Probe(usize),
    /// Migrate the named worker to a random host, with some state.
    Migrate(usize, u8, u32),
}

fn action_strategy(workers: usize, hosts: usize) -> impl Strategy<Value = Action> {
    prop_oneof![
        (0..workers).prop_map(Action::Probe),
        (0..workers, 0..hosts as u8, 0u32..200_000)
            .prop_map(|(w, h, bytes)| Action::Migrate(w, h, bytes)),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn requests_survive_arbitrary_migrations(
        actions in prop::collection::vec(action_strategy(3, 4), 1..25),
    ) {
        let sim = Sim::new(12345);
        let recorder = Recorder::new();
        let fabric = Fabric::new(&sim, NetProfile::aws_2018().exact(), recorder.clone());
        let hosts: Vec<_> = (0..4)
            .map(|r| fabric.add_host(r, NicConfig::simple(mbps(10_000.0))))
            .collect();
        let runtime = AgentRuntime::new(&sim, &fabric, recorder);

        // Three echo workers plus one prober.
        let mut workers = Vec::new();
        for w in 0..3 {
            let agent = runtime
                .spawn(&hosts[w % hosts.len()], &format!("worker-{w}"))
                .expect("spawn");
            workers.push(agent);
        }
        let prober = runtime.spawn(&hosts[3], "prober").expect("spawn");

        // Worker loops echo forever; migrations are driven via a channel
        // so each worker owns itself (migrate takes &mut self).
        let mut migrate_txs = Vec::new();
        for mut agent in workers {
            let (tx, mut rx) = faasim_simcore::channel::<(usize, u32)>();
            migrate_txs.push(tx);
            let hosts = hosts.clone();
            sim.spawn(async move {
                loop {
                    // Serve anything pending, then apply one migration if
                    // requested, then block on the next message.
                    while let Some((h, bytes)) = rx.try_recv() {
                        agent.migrate(&hosts[h], bytes as u64).await;
                    }
                    let msg = agent.recv().await;
                    // Echo requests; one-way nudges just wake the loop.
                    if matches!(msg.kind, faasim_net::Kind::Request(_)) {
                        agent.reply(&msg, msg.payload.clone()).await;
                    }
                }
            });
        }

        let sim2 = sim.clone();
        let ok = sim.block_on(async move {
            let mut all_ok = true;
            for action in actions {
                match action {
                    Action::Probe(w) => {
                        let name = format!("worker-{w}");
                        let got = prober
                            .request(&name, Bytes::from_static(b"ping"))
                            .await;
                        if got.is_err() {
                            // One retry after the runtime-level retry: the
                            // worker may have been mid-migration.
                            sim2.sleep(SimDuration::from_millis(100)).await;
                            all_ok &= prober
                                .request(&name, Bytes::from_static(b"ping"))
                                .await
                                .is_ok();
                        }
                    }
                    Action::Migrate(w, h, bytes) => {
                        let _ = migrate_txs[w].send((h as usize, bytes));
                        // Nudge the worker loop awake so it applies the
                        // migration before the next probe.
                        let _ = prober
                            .send(&format!("worker-{w}"), Bytes::from_static(b"nudge"))
                            .await;
                        sim2.sleep(SimDuration::from_millis(50)).await;
                    }
                }
            }
            all_ok
        });
        prop_assert!(ok, "a probe to a live agent failed permanently");
        // The prober was dropped with the driver future (unregistering
        // itself); the three workers live on in their tasks.
        prop_assert_eq!(runtime.agent_count(), 3);
    }
}
