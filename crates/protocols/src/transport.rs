//! The two ways election participants can communicate — the paper's §3
//! duality: "event-driven execution over shared state (the natural FaaS
//! approach), or message-passing across long-running agents".
//!
//! [`BlackboardTransport`] is the FaaS-world option: every message is a
//! KV item in a per-node inbox, discovered by polling (the paper polls
//! four times a second); leader liveness is a shared cell. Every poll
//! costs billable requests.
//!
//! [`SocketTransport`] is the serverful option: directly addressed
//! datagrams at network latency.

use std::cell::RefCell;
use std::collections::{HashMap, VecDeque};
use std::rc::Rc;

use bytes::Bytes;
use faasim_kv::{Consistency, KvError, KvStore};
use faasim_net::{Addr, Fabric, Host, Kind, Socket};
use faasim_simcore::{Sim, SimDuration, SimTime};

use crate::message::{ElectionMsg, NodeId};

/// How election participants exchange messages and observe leader
/// liveness. Implemented by the blackboard (KV-polling) and socket
/// transports.
#[allow(async_fn_in_trait)]
pub trait Transport {
    /// This participant's id.
    fn node_id(&self) -> NodeId;
    /// All other participants.
    fn peers(&self) -> Vec<NodeId>;
    /// Send a protocol message to one peer.
    async fn send(&self, to: NodeId, msg: ElectionMsg);
    /// Signal leader liveness to the whole group.
    async fn broadcast_heartbeat(&self);
    /// The most recent leader liveness observation `(leader, when)`.
    fn last_heartbeat(&self) -> Option<(NodeId, SimTime)>;
    /// Await the next protocol message. `None` when the transport is
    /// closed. Implementations may also surface liveness via
    /// [`Transport::last_heartbeat`] as a side effect.
    async fn recv(&mut self) -> Option<(NodeId, ElectionMsg)>;
}

// ---------------------------------------------------------------------------
// Blackboard transport (DynamoDB-style polling)
// ---------------------------------------------------------------------------

/// Shared naming for the blackboard table.
const TABLE: &str = "election";
const COORD_CELL: &str = "coordinator";

fn inbox_prefix(node: NodeId) -> String {
    format!("inbox/{node:06}/")
}

/// Transport over a KV blackboard, polled at a fixed rate.
pub struct BlackboardTransport {
    sim: Sim,
    kv: KvStore,
    host: Host,
    me: NodeId,
    peers: Vec<NodeId>,
    /// Poll interval (the paper: 250 ms).
    pub poll_interval: SimDuration,
    seq: Rc<RefCell<u64>>,
    buffer: VecDeque<(NodeId, ElectionMsg)>,
    last_hb: Option<(NodeId, SimTime)>,
    closed: bool,
    /// Largest inbox key already buffered. Inbox deletes happen *after*
    /// buffering and can be abandoned when a poll is canceled by a
    /// protocol timeout; without this watermark, the undeleted items
    /// would be re-read as duplicates on the next poll — stale `Answer`s
    /// from dead nodes then livelock the election.
    watermark: Option<String>,
}

impl BlackboardTransport {
    /// Create the shared table (call once before building transports).
    pub fn setup(kv: &KvStore) {
        kv.create_table(TABLE);
    }

    /// Build a transport for node `me` among `members`.
    pub fn new(
        sim: &Sim,
        kv: &KvStore,
        host: Host,
        me: NodeId,
        members: &[NodeId],
        poll_interval: SimDuration,
    ) -> BlackboardTransport {
        BlackboardTransport {
            sim: sim.clone(),
            kv: kv.clone(),
            host,
            me,
            peers: members.iter().copied().filter(|&n| n != me).collect(),
            poll_interval,
            seq: Rc::new(RefCell::new(0)),
            buffer: VecDeque::new(),
            last_hb: None,
            closed: false,
            watermark: None,
        }
    }

    /// Stop polling; subsequent `recv` returns `None`.
    pub fn close(&mut self) {
        self.closed = true;
    }

    fn encode_hb(&self, now: SimTime) -> Bytes {
        let mut v = Vec::with_capacity(16);
        v.extend_from_slice(&self.me.to_le_bytes());
        v.extend_from_slice(&now.as_nanos().to_le_bytes());
        Bytes::from(v)
    }

    fn decode_hb(bytes: &[u8]) -> Option<(NodeId, SimTime)> {
        if bytes.len() != 16 {
            return None;
        }
        let id = u64::from_le_bytes(bytes[..8].try_into().ok()?);
        let at = u64::from_le_bytes(bytes[8..].try_into().ok()?);
        Some((id, SimTime::from_nanos(at)))
    }

    /// One polling cycle: read the coordinator cell, then drain the inbox.
    /// Steady state costs 2 read requests (the paper's footnote 6);
    /// election traffic adds per-item reads and deletes.
    async fn poll_once(&mut self) {
        // Liveness cell.
        match self
            .kv
            .get(&self.host, TABLE, COORD_CELL, Consistency::Strong)
            .await
        {
            Ok(item) => {
                if let Some(hb) = Self::decode_hb(&item.value.bytes()) {
                    self.last_hb = Some(hb);
                }
            }
            Err(KvError::NoSuchKey(_)) => {}
            Err(_) => return,
        }
        // Inbox.
        let prefix = inbox_prefix(self.me);
        let Ok(items) = self.kv.scan_prefix(&self.host, TABLE, &prefix).await else {
            return;
        };
        // Buffer everything new first (cancellation-safe), then clean up.
        for (key, item) in &items {
            if self.watermark.as_deref() >= Some(key.as_str()) {
                continue; // already buffered on an earlier (canceled) poll
            }
            if let Some(msg) = ElectionMsg::decode(&item.value.bytes()) {
                self.buffer.push_back((msg.from(), msg));
            }
            self.watermark = Some(key.clone());
        }
        for (key, _) in items {
            let _ = self.kv.delete(&self.host, TABLE, &key).await;
        }
    }
}

impl Transport for BlackboardTransport {
    fn node_id(&self) -> NodeId {
        self.me
    }

    fn peers(&self) -> Vec<NodeId> {
        self.peers.clone()
    }

    async fn send(&self, to: NodeId, msg: ElectionMsg) {
        let seq = {
            let mut s = self.seq.borrow_mut();
            *s += 1;
            *s
        };
        let key = format!(
            "{}{:020}-{:06}-{seq:06}",
            inbox_prefix(to),
            self.sim.now().as_nanos(),
            self.me
        );
        let _ = self.kv.put(&self.host, TABLE, &key, msg.encode()).await;
    }

    async fn broadcast_heartbeat(&self) {
        let hb = self.encode_hb(self.sim.now());
        let _ = self.kv.put(&self.host, TABLE, COORD_CELL, hb).await;
    }

    fn last_heartbeat(&self) -> Option<(NodeId, SimTime)> {
        self.last_hb
    }

    async fn recv(&mut self) -> Option<(NodeId, ElectionMsg)> {
        loop {
            if let Some(m) = self.buffer.pop_front() {
                return Some(m);
            }
            if self.closed {
                return None;
            }
            self.sim.sleep(self.poll_interval).await;
            if self.closed {
                return None;
            }
            self.poll_once().await;
        }
    }
}

// ---------------------------------------------------------------------------
// Socket transport (directly addressed agents)
// ---------------------------------------------------------------------------

/// Port every election participant binds.
pub const ELECTION_PORT: u16 = 7400;

/// Transport over directly addressed datagrams.
pub struct SocketTransport {
    socket: Socket,
    me: NodeId,
    directory: Rc<HashMap<NodeId, Addr>>,
    last_hb: Option<(NodeId, SimTime)>,
    sim: Sim,
}

impl SocketTransport {
    /// Bind a socket on `host` for node `me`; `directory` maps every
    /// member to its address (build it with [`build_directory`]).
    pub fn new(
        fabric: &Fabric,
        host: &Host,
        me: NodeId,
        directory: Rc<HashMap<NodeId, Addr>>,
    ) -> SocketTransport {
        let socket = fabric
            .bind(host, ELECTION_PORT)
            .expect("election port already bound on this host");
        SocketTransport {
            socket,
            me,
            directory,
            last_hb: None,
            sim: fabric.sim().clone(),
        }
    }
}

/// Build the node→address directory for a set of (id, host) pairs.
pub fn build_directory(members: &[(NodeId, Host)]) -> Rc<HashMap<NodeId, Addr>> {
    Rc::new(
        members
            .iter()
            .map(|(id, host)| {
                (
                    *id,
                    Addr {
                        host: host.id(),
                        port: ELECTION_PORT,
                    },
                )
            })
            .collect(),
    )
}

impl Transport for SocketTransport {
    fn node_id(&self) -> NodeId {
        self.me
    }

    fn peers(&self) -> Vec<NodeId> {
        let mut peers: Vec<NodeId> = self
            .directory
            .keys()
            .copied()
            .filter(|&n| n != self.me)
            .collect();
        peers.sort_unstable();
        peers
    }

    async fn send(&self, to: NodeId, msg: ElectionMsg) {
        if let Some(&addr) = self.directory.get(&to) {
            self.socket.send(addr, msg.encode()).await;
        }
    }

    async fn broadcast_heartbeat(&self) {
        let hb = ElectionMsg::Heartbeat { from: self.me };
        for peer in self.peers() {
            self.send(peer, hb).await;
        }
    }

    fn last_heartbeat(&self) -> Option<(NodeId, SimTime)> {
        self.last_hb
    }

    async fn recv(&mut self) -> Option<(NodeId, ElectionMsg)> {
        loop {
            let raw = self.socket.recv().await;
            debug_assert!(matches!(raw.kind, Kind::Oneway));
            let Some(msg) = ElectionMsg::decode(&raw.payload.bytes()) else {
                continue;
            };
            if let ElectionMsg::Heartbeat { from } = msg {
                self.last_hb = Some((from, self.sim.now()));
                continue; // liveness only; not a protocol event
            }
            return Some((msg.from(), msg));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use faasim_kv::KvProfile;
    use faasim_net::{NetProfile, NicConfig};
    use faasim_pricing::{Ledger, PriceBook};
    use faasim_simcore::{mbps, Recorder};

    fn kv_world() -> (Sim, KvStore, Fabric) {
        let sim = Sim::new(71);
        let recorder = Recorder::new();
        let fabric = Fabric::new(&sim, NetProfile::aws_2018().exact(), recorder.clone());
        let kv = KvStore::new(
            &sim,
            KvProfile::aws_2018().exact(),
            Rc::new(PriceBook::aws_2018()),
            Ledger::new(),
            recorder,
        );
        BlackboardTransport::setup(&kv);
        (sim, kv, fabric)
    }

    #[test]
    fn blackboard_send_recv_via_polling() {
        let (sim, kv, fabric) = kv_world();
        let ha = fabric.add_host(0, NicConfig::simple(mbps(1000.0)));
        let hb = fabric.add_host(0, NicConfig::simple(mbps(1000.0)));
        let members = [1u64, 2u64];
        let ta = BlackboardTransport::new(&sim, &kv, ha, 1, &members, SimDuration::from_millis(250));
        let mut tb =
            BlackboardTransport::new(&sim, &kv, hb, 2, &members, SimDuration::from_millis(250));
        assert_eq!(ta.peers(), vec![2]);
        sim.spawn(async move {
            ta.send(2, ElectionMsg::Election { from: 1, epoch: 1 }).await;
        });
        let got = sim.block_on(async move { tb.recv().await });
        assert_eq!(got, Some((1, ElectionMsg::Election { from: 1, epoch: 1 })));
        // Discovery took at least one poll interval — the FaaS tax.
        assert!(sim.now() >= SimTime::ZERO + SimDuration::from_millis(250));
    }

    #[test]
    fn blackboard_heartbeat_cell() {
        let (sim, kv, fabric) = kv_world();
        let ha = fabric.add_host(0, NicConfig::simple(mbps(1000.0)));
        let hb_host = fabric.add_host(0, NicConfig::simple(mbps(1000.0)));
        let members = [1u64, 2u64];
        let leader =
            BlackboardTransport::new(&sim, &kv, ha, 2, &members, SimDuration::from_millis(250));
        let mut follower =
            BlackboardTransport::new(&sim, &kv, hb_host, 1, &members, SimDuration::from_millis(250));
        let s = sim.clone();
        sim.spawn(async move {
            leader.broadcast_heartbeat().await;
            s.sleep(SimDuration::from_secs(5)).await;
        });
        sim.block_on(async move {
            // One poll cycle observes the heartbeat.
            let got = follower
                .sim
                .clone()
                .timeout(SimDuration::from_secs(1), follower.recv())
                .await;
            assert!(got.is_none(), "no protocol message expected");
            let (id, _at) = follower.last_heartbeat().expect("heartbeat seen");
            assert_eq!(id, 2);
        });
    }

    #[test]
    fn blackboard_close_stops_recv() {
        let (sim, kv, fabric) = kv_world();
        let ha = fabric.add_host(0, NicConfig::simple(mbps(1000.0)));
        let mut t =
            BlackboardTransport::new(&sim, &kv, ha, 1, &[1, 2], SimDuration::from_millis(250));
        t.close();
        let got = sim.block_on(async move { t.recv().await });
        assert_eq!(got, None);
    }

    #[test]
    fn socket_transport_delivers_and_filters_heartbeats() {
        let sim = Sim::new(72);
        let recorder = Recorder::new();
        let fabric = Fabric::new(&sim, NetProfile::aws_2018().exact(), recorder);
        let h1 = fabric.add_host(0, NicConfig::simple(mbps(10_000.0)));
        let h2 = fabric.add_host(0, NicConfig::simple(mbps(10_000.0)));
        let dir = build_directory(&[(1, h1.clone()), (2, h2.clone())]);
        let t1 = SocketTransport::new(&fabric, &h1, 1, dir.clone());
        let mut t2 = SocketTransport::new(&fabric, &h2, 2, dir);
        assert_eq!(t2.peers(), vec![1]);
        sim.spawn(async move {
            t1.broadcast_heartbeat().await;
            t1.send(2, ElectionMsg::Coordinator { from: 1 }).await;
        });
        let got = sim.block_on(async move {
            let m = t2.recv().await;
            (m, t2.last_heartbeat().map(|(id, _)| id))
        });
        assert_eq!(got.0, Some((1, ElectionMsg::Coordinator { from: 1 })));
        assert_eq!(got.1, Some(1));
        // Direct delivery: sub-millisecond, not a polling cycle.
        assert!(sim.now() < SimTime::ZERO + SimDuration::from_millis(2));
    }
}
