//! Election protocol messages and their wire encoding.

use bytes::{BufMut, Bytes, BytesMut};

/// Identifier of a protocol participant. The bully protocol elects the
/// highest live id.
pub type NodeId = u64;

/// Garcia-Molina bully protocol messages.
///
/// `Election` carries the initiator's **attempt epoch**, and `Answer`
/// echoes it. Without the epoch, an `Answer` written to slow storage by a
/// node that has since died can arrive during a *later* election attempt
/// and convince the initiator that a higher-ranked node is still alive —
/// with conservative timeouts this starves the election indefinitely.
/// (Messages in the paper's blackboard design can be arbitrarily stale:
/// they sit in DynamoDB until polled.)
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum ElectionMsg {
    /// "I am holding an election; respond if you outrank me."
    Election {
        /// Initiator.
        from: NodeId,
        /// Initiator's attempt number.
        epoch: u64,
    },
    /// "I outrank you; stand down, I'll take it from here."
    Answer {
        /// Responder.
        from: NodeId,
        /// The attempt this answers.
        epoch: u64,
    },
    /// "I am the coordinator."
    Coordinator {
        /// The new coordinator.
        from: NodeId,
    },
    /// Leader liveness signal (socket transport only; the blackboard
    /// transport uses a shared cell instead).
    Heartbeat {
        /// The leader.
        from: NodeId,
    },
}

impl ElectionMsg {
    /// The sender baked into the message.
    pub fn from(&self) -> NodeId {
        match *self {
            ElectionMsg::Election { from, .. }
            | ElectionMsg::Answer { from, .. }
            | ElectionMsg::Coordinator { from }
            | ElectionMsg::Heartbeat { from } => from,
        }
    }

    /// Serialize (1 tag byte + 8 id bytes + 8 epoch bytes).
    pub fn encode(&self) -> Bytes {
        let (tag, from, epoch) = match *self {
            ElectionMsg::Election { from, epoch } => (0u8, from, epoch),
            ElectionMsg::Answer { from, epoch } => (1, from, epoch),
            ElectionMsg::Coordinator { from } => (2, from, 0),
            ElectionMsg::Heartbeat { from } => (3, from, 0),
        };
        let mut buf = BytesMut::with_capacity(17);
        buf.put_u8(tag);
        buf.put_u64_le(from);
        buf.put_u64_le(epoch);
        buf.freeze()
    }

    /// Deserialize; `None` on malformed input.
    pub fn decode(bytes: &[u8]) -> Option<ElectionMsg> {
        if bytes.len() != 17 {
            return None;
        }
        let from = u64::from_le_bytes(bytes[1..9].try_into().ok()?);
        let epoch = u64::from_le_bytes(bytes[9..17].try_into().ok()?);
        Some(match bytes[0] {
            0 => ElectionMsg::Election { from, epoch },
            1 => ElectionMsg::Answer { from, epoch },
            2 => ElectionMsg::Coordinator { from },
            3 => ElectionMsg::Heartbeat { from },
            _ => return None,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_all_variants() {
        for msg in [
            ElectionMsg::Election { from: 0, epoch: 3 },
            ElectionMsg::Answer {
                from: 7,
                epoch: u64::MAX,
            },
            ElectionMsg::Coordinator { from: u64::MAX },
            ElectionMsg::Heartbeat { from: 42 },
        ] {
            let bytes = msg.encode();
            assert_eq!(ElectionMsg::decode(&bytes), Some(msg));
            assert_eq!(msg.from(), ElectionMsg::decode(&bytes).unwrap().from());
        }
    }

    #[test]
    fn malformed_rejected() {
        assert_eq!(ElectionMsg::decode(&[]), None);
        assert_eq!(ElectionMsg::decode(&[9; 17]), None);
        assert_eq!(ElectionMsg::decode(&[0; 9]), None);
        assert_eq!(ElectionMsg::decode(&[0; 18]), None);
    }
}
