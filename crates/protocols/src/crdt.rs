//! Conflict-free replicated data types — the paper's §3.2 pointer to a
//! healthier programming model for loosely consistent platforms:
//! "this kind of 'disorderly' loosely-consistent model has been at the
//! heart of a number of more general-purpose proposals for scalable,
//! available program design in recent years, including from our group
//! [9, 1, 22]" — [22] being Shapiro et al.'s CRDTs.
//!
//! These are state-based (convergent) CRDTs: every replica mutates
//! locally and periodically merges peers' full states; merge is a join in
//! a semilattice (commutative, associative, idempotent), so replicas
//! converge regardless of delivery order, duplication, or staleness —
//! exactly the guarantees one still has on 2018 cloud storage. The
//! integration test at the bottom syncs replicas through the eventually
//! consistent KV store and converges despite stale reads.

use std::collections::{BTreeMap, BTreeSet};

use crate::message::NodeId;

/// A state-based CRDT: a join-semilattice element with a merge (join).
pub trait Crdt {
    /// Join `other` into `self`. Must be commutative, associative, and
    /// idempotent (property-tested in this module).
    fn merge(&mut self, other: &Self);
}

// ---------------------------------------------------------------------------
// G-Counter
// ---------------------------------------------------------------------------

/// Grow-only counter: per-replica increment slots, value = sum, merge =
/// pointwise max.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct GCounter {
    slots: BTreeMap<NodeId, u64>,
}

impl GCounter {
    /// An empty counter.
    pub fn new() -> GCounter {
        GCounter::default()
    }

    /// Increment this replica's slot.
    pub fn increment(&mut self, replica: NodeId, by: u64) {
        *self.slots.entry(replica).or_default() += by;
    }

    /// Current value.
    pub fn value(&self) -> u64 {
        self.slots.values().sum()
    }

    /// Serialize (replica/count pairs, little-endian).
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(4 + self.slots.len() * 16);
        out.extend_from_slice(&(self.slots.len() as u32).to_le_bytes());
        for (&id, &n) in &self.slots {
            out.extend_from_slice(&id.to_le_bytes());
            out.extend_from_slice(&n.to_le_bytes());
        }
        out
    }

    /// Deserialize; `None` on malformed input.
    pub fn decode(bytes: &[u8]) -> Option<GCounter> {
        let n = u32::from_le_bytes(bytes.get(..4)?.try_into().ok()?) as usize;
        if bytes.len() != 4 + n * 16 {
            return None;
        }
        let mut slots = BTreeMap::new();
        for i in 0..n {
            let off = 4 + i * 16;
            let id = u64::from_le_bytes(bytes[off..off + 8].try_into().ok()?);
            let count = u64::from_le_bytes(bytes[off + 8..off + 16].try_into().ok()?);
            slots.insert(id, count);
        }
        Some(GCounter { slots })
    }
}

impl Crdt for GCounter {
    fn merge(&mut self, other: &Self) {
        for (&id, &n) in &other.slots {
            let slot = self.slots.entry(id).or_default();
            *slot = (*slot).max(n);
        }
    }
}

// ---------------------------------------------------------------------------
// PN-Counter
// ---------------------------------------------------------------------------

/// Increment/decrement counter: two G-Counters.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct PnCounter {
    inc: GCounter,
    dec: GCounter,
}

impl PnCounter {
    /// An empty counter.
    pub fn new() -> PnCounter {
        PnCounter::default()
    }

    /// Add `by`.
    pub fn increment(&mut self, replica: NodeId, by: u64) {
        self.inc.increment(replica, by);
    }

    /// Subtract `by`.
    pub fn decrement(&mut self, replica: NodeId, by: u64) {
        self.dec.increment(replica, by);
    }

    /// Current value (may be negative).
    pub fn value(&self) -> i64 {
        self.inc.value() as i64 - self.dec.value() as i64
    }
}

impl Crdt for PnCounter {
    fn merge(&mut self, other: &Self) {
        self.inc.merge(&other.inc);
        self.dec.merge(&other.dec);
    }
}

// ---------------------------------------------------------------------------
// LWW-Register
// ---------------------------------------------------------------------------

/// Last-writer-wins register. Ties on timestamp break by replica id, so
/// the merge stays deterministic and commutative.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LwwRegister<T: Clone> {
    value: Option<T>,
    stamp: (u64, NodeId),
}

impl<T: Clone> Default for LwwRegister<T> {
    fn default() -> Self {
        LwwRegister {
            value: None,
            stamp: (0, 0),
        }
    }
}

impl<T: Clone> LwwRegister<T> {
    /// An unset register.
    pub fn new() -> LwwRegister<T> {
        LwwRegister::default()
    }

    /// Write with a (logical or virtual-time) timestamp.
    pub fn set(&mut self, value: T, timestamp: u64, replica: NodeId) {
        if (timestamp, replica) >= self.stamp {
            self.value = Some(value);
            self.stamp = (timestamp, replica);
        }
    }

    /// Current value.
    pub fn get(&self) -> Option<&T> {
        self.value.as_ref()
    }

    /// The winning write's `(timestamp, replica)`.
    pub fn stamp(&self) -> (u64, NodeId) {
        self.stamp
    }
}

impl<T: Clone> Crdt for LwwRegister<T> {
    fn merge(&mut self, other: &Self) {
        if other.stamp > self.stamp {
            self.value = other.value.clone();
            self.stamp = other.stamp;
        }
    }
}

// ---------------------------------------------------------------------------
// OR-Set
// ---------------------------------------------------------------------------

/// Add-wins observed-remove set: each add gets a unique tag; a remove
/// tombstones only the tags it has *observed*, so a concurrent re-add
/// survives.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct OrSet<T: Ord + Clone> {
    adds: BTreeMap<T, BTreeSet<(NodeId, u64)>>,
    removed: BTreeSet<(NodeId, u64)>,
    next_tag: u64,
}

impl<T: Ord + Clone> Default for OrSet<T> {
    fn default() -> Self {
        OrSet {
            adds: BTreeMap::new(),
            removed: BTreeSet::new(),
            next_tag: 0,
        }
    }
}

impl<T: Ord + Clone> OrSet<T> {
    /// An empty set.
    pub fn new() -> OrSet<T> {
        OrSet::default()
    }

    /// Add an element at this replica.
    pub fn add(&mut self, replica: NodeId, value: T) {
        self.next_tag += 1;
        self.adds
            .entry(value)
            .or_default()
            .insert((replica, self.next_tag));
    }

    /// Remove an element: tombstones every currently observed tag.
    pub fn remove(&mut self, value: &T) {
        if let Some(tags) = self.adds.get(value) {
            for &tag in tags {
                self.removed.insert(tag);
            }
        }
    }

    /// Membership test.
    pub fn contains(&self, value: &T) -> bool {
        self.adds
            .get(value)
            .map(|tags| tags.iter().any(|t| !self.removed.contains(t)))
            .unwrap_or(false)
    }

    /// Live elements, sorted.
    pub fn elements(&self) -> Vec<T> {
        self.adds
            .iter()
            .filter(|(_, tags)| tags.iter().any(|t| !self.removed.contains(t)))
            .map(|(v, _)| v.clone())
            .collect()
    }

    /// Number of live elements.
    pub fn len(&self) -> usize {
        self.elements().len()
    }

    /// True when no live elements remain.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl<T: Ord + Clone> Crdt for OrSet<T> {
    fn merge(&mut self, other: &Self) {
        for (value, tags) in &other.adds {
            self.adds.entry(value.clone()).or_default().extend(tags.iter().copied());
        }
        self.removed.extend(other.removed.iter().copied());
        self.next_tag = self.next_tag.max(other.next_tag);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn gcounter_basics() {
        let mut a = GCounter::new();
        a.increment(1, 5);
        a.increment(1, 2);
        let mut b = GCounter::new();
        b.increment(2, 10);
        a.merge(&b);
        assert_eq!(a.value(), 17);
        // Re-merging the same state changes nothing (idempotent).
        a.merge(&b);
        assert_eq!(a.value(), 17);
    }

    #[test]
    fn gcounter_codec_roundtrip() {
        let mut c = GCounter::new();
        c.increment(7, 3);
        c.increment(42, 9);
        assert_eq!(GCounter::decode(&c.encode()), Some(c));
        assert_eq!(GCounter::decode(&[1, 2, 3]), None);
        assert_eq!(GCounter::decode(&GCounter::new().encode()), Some(GCounter::new()));
    }

    #[test]
    fn pncounter_can_go_negative() {
        let mut a = PnCounter::new();
        a.increment(1, 3);
        a.decrement(1, 5);
        assert_eq!(a.value(), -2);
        let mut b = PnCounter::new();
        b.increment(2, 4);
        a.merge(&b);
        assert_eq!(a.value(), 2);
    }

    #[test]
    fn lww_register_last_writer_wins() {
        let mut a: LwwRegister<&str> = LwwRegister::new();
        a.set("first", 10, 1);
        a.set("stale", 5, 2); // older timestamp: ignored
        assert_eq!(a.get(), Some(&"first"));
        let mut b = LwwRegister::new();
        b.set("newer", 20, 2);
        a.merge(&b);
        assert_eq!(a.get(), Some(&"newer"));
        // Tie on timestamp: higher replica id wins, on both merge orders.
        let mut x: LwwRegister<&str> = LwwRegister::new();
        x.set("from-1", 30, 1);
        let mut y: LwwRegister<&str> = LwwRegister::new();
        y.set("from-2", 30, 2);
        let mut xy = x.clone();
        xy.merge(&y);
        let mut yx = y.clone();
        yx.merge(&x);
        assert_eq!(xy, yx);
        assert_eq!(xy.get(), Some(&"from-2"));
    }

    #[test]
    fn orset_add_wins_over_concurrent_remove() {
        let mut a: OrSet<&str> = OrSet::new();
        a.add(1, "x");
        let mut b = a.clone();
        // Replica A removes x; replica B concurrently re-adds it.
        a.remove(&"x");
        b.add(2, "x");
        a.merge(&b);
        b.merge(&a.clone());
        assert!(a.contains(&"x"), "add must win");
        assert_eq!(a.elements(), b.elements());
    }

    #[test]
    fn orset_remove_observed_is_permanent() {
        let mut a: OrSet<u32> = OrSet::new();
        a.add(1, 7);
        a.remove(&7);
        assert!(!a.contains(&7));
        assert!(a.is_empty());
        // Merging the pre-remove state back does not resurrect it.
        let mut old = OrSet::new();
        old.add(1, 7);
        // (same tag space: simulate by merging a stale copy of a)
        let stale = {
            let mut s: OrSet<u32> = OrSet::new();
            s.add(1, 7);
            s
        };
        let _ = old;
        let mut merged = a.clone();
        merged.merge(&stale);
        // The stale copy's tag is a *different* add (fresh tag), so
        // add-wins applies; but merging `a`'s own earlier state (same
        // tag) must not resurrect:
        let mut self_stale = a.clone();
        self_stale.removed.clear(); // forge the pre-remove state
        let mut converged = a.clone();
        converged.merge(&self_stale);
        assert!(!converged.contains(&7));
    }

    // --- semilattice laws, property-tested over random op sequences -----

    #[derive(Clone, Debug)]
    enum Op {
        Inc(NodeId, u64),
        AddSet(NodeId, u8),
        RemoveSet(u8),
    }

    fn op_strategy() -> impl Strategy<Value = Op> {
        prop_oneof![
            (1u64..4, 1u64..10).prop_map(|(r, n)| Op::Inc(r, n)),
            (1u64..4, 0u8..5).prop_map(|(r, v)| Op::AddSet(r, v)),
            (0u8..5).prop_map(Op::RemoveSet),
        ]
    }

    fn apply(counter: &mut GCounter, set: &mut OrSet<u8>, ops: &[Op]) {
        for op in ops {
            match *op {
                Op::Inc(r, n) => counter.increment(r, n),
                Op::AddSet(r, v) => set.add(r, v),
                Op::RemoveSet(v) => set.remove(&v),
            }
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// merge is commutative, associative, idempotent for GCounter and
        /// OrSet built from arbitrary op sequences.
        #[test]
        fn merge_is_a_semilattice_join(
            ops_a in prop::collection::vec(op_strategy(), 0..20),
            ops_b in prop::collection::vec(op_strategy(), 0..20),
            ops_c in prop::collection::vec(op_strategy(), 0..20),
        ) {
            let mut ca = GCounter::new();
            let mut sa = OrSet::new();
            apply(&mut ca, &mut sa, &ops_a);
            let mut cb = GCounter::new();
            let mut sb = OrSet::new();
            apply(&mut cb, &mut sb, &ops_b);
            let mut cc = GCounter::new();
            let mut sc = OrSet::new();
            apply(&mut cc, &mut sc, &ops_c);

            // Commutativity: a ⊔ b == b ⊔ a.
            let mut ab = ca.clone(); ab.merge(&cb);
            let mut ba = cb.clone(); ba.merge(&ca);
            prop_assert_eq!(&ab, &ba);
            let mut sab = sa.clone(); sab.merge(&sb);
            let mut sba = sb.clone(); sba.merge(&sa);
            prop_assert_eq!(sab.elements(), sba.elements());

            // Associativity: (a ⊔ b) ⊔ c == a ⊔ (b ⊔ c).
            let mut abc = ab.clone(); abc.merge(&cc);
            let mut bc = cb.clone(); bc.merge(&cc);
            let mut a_bc = ca.clone(); a_bc.merge(&bc);
            prop_assert_eq!(&abc, &a_bc);

            // Idempotence: a ⊔ a == a.
            let mut aa = ca.clone(); aa.merge(&ca);
            prop_assert_eq!(&aa, &ca);
            let mut saa = sa.clone(); saa.merge(&sa);
            prop_assert_eq!(saa.elements(), sa.elements());
        }

        /// Gossip convergence: replicas applying disjoint ops and merging
        /// in arbitrary pair order all reach the same state.
        #[test]
        fn replicas_converge_in_any_gossip_order(
            per_replica in prop::collection::vec(
                prop::collection::vec(op_strategy(), 0..10), 2..5),
            seed in 0u64..1000,
        ) {
            let n = per_replica.len();
            let mut counters: Vec<GCounter> = Vec::new();
            let mut sets: Vec<OrSet<u8>> = Vec::new();
            for (i, ops) in per_replica.iter().enumerate() {
                let mut c = GCounter::new();
                let mut s = OrSet::new();
                // Replica ids must be distinct for slot/tag isolation.
                let rebased: Vec<Op> = ops
                    .iter()
                    .map(|op| match *op {
                        Op::Inc(_, k) => Op::Inc(i as NodeId + 1, k),
                        Op::AddSet(_, v) => Op::AddSet(i as NodeId + 1, v),
                        Op::RemoveSet(v) => Op::RemoveSet(v),
                    })
                    .collect();
                apply(&mut c, &mut s, &rebased);
                counters.push(c);
                sets.push(s);
            }
            // Random full gossip: every ordered pair merges at least once,
            // in a seed-shuffled order, twice over.
            let mut pairs: Vec<(usize, usize)> = (0..n)
                .flat_map(|i| (0..n).filter(move |&j| j != i).map(move |j| (i, j)))
                .collect();
            let mut rng = faasim_simcore::SimRng::from_seed(seed);
            for _ in 0..2 {
                rng.shuffle(&mut pairs);
                for &(i, j) in &pairs {
                    let other = counters[j].clone();
                    counters[i].merge(&other);
                    let other = sets[j].clone();
                    sets[i].merge(&other);
                }
            }
            for i in 1..n {
                prop_assert_eq!(counters[0].value(), counters[i].value());
                prop_assert_eq!(sets[0].elements(), sets[i].elements());
            }
        }
    }
}
