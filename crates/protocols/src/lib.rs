//! # faasim-protocols
//!
//! Distributed protocols on the simulated cloud — the fine-grained
//! coordination the paper argues current FaaS "stymies".
//!
//! The centerpiece is Garcia-Molina's **bully leader election** (the
//! paper's §3.1 distributed-computing case study), implemented once over
//! a transport abstraction and run two ways:
//!
//! - [`BlackboardTransport`]: DynamoDB-style — per-node KV inboxes polled
//!   four times a second, leader liveness in a shared cell. This is the
//!   configuration the paper measures at 16.7 s per election round and
//!   ≥$450/hr for 1,000 nodes.
//! - [`SocketTransport`]: directly addressed agents, the §4 alternative,
//!   with sub-millisecond message delivery and sub-second failover.
//!
//! The crate also ships state-based **CRDTs** ([`GCounter`], [`PnCounter`],
//! [`LwwRegister`], [`OrSet`]) — the paper's §3.2 pointer to "disorderly"
//! programming models that stay correct on loosely consistent storage.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

mod bully;
mod crdt;
mod message;
mod transport;

pub use bully::{
    spawn_node, BullyConfig, CompletedRound, ElectionObserver, NodeHandle,
};
pub use crdt::{Crdt, GCounter, LwwRegister, OrSet, PnCounter};
pub use message::{ElectionMsg, NodeId};
pub use transport::{
    build_directory, BlackboardTransport, SocketTransport, Transport, ELECTION_PORT,
};
