//! Garcia-Molina's bully leader election [7 in the paper], the protocol
//! the paper uses as its distributed-computing case study: "we implemented
//! one of the simplest of these protocols ... Garcia-Molina's bully leader
//! election. Using Lambda, all communication between our functions was
//! done in blackboard fashion via DynamoDB."
//!
//! The node logic is transport-generic: the same state machine runs over
//! the KV blackboard (polling) and over direct sockets, which is exactly
//! the comparison the paper's §4 "addressable virtual agents" proposal
//! implies.

use std::cell::{Cell, RefCell};
use std::collections::BTreeMap;
use std::rc::Rc;

use faasim_simcore::{Sim, SimDuration, SimTime};

use crate::message::{ElectionMsg, NodeId};
use crate::transport::Transport;

/// Timing parameters of the protocol.
#[derive(Clone, Debug)]
pub struct BullyConfig {
    /// How often the leader signals liveness.
    pub heartbeat_interval: SimDuration,
    /// Silence after which followers suspect the leader and start an
    /// election.
    pub heartbeat_timeout: SimDuration,
    /// How long an initiator waits for `Answer`s before declaring itself.
    pub answer_timeout: SimDuration,
    /// How long to wait for the `Coordinator` announcement after being
    /// outranked, before restarting the election.
    pub coordinator_timeout: SimDuration,
}

impl BullyConfig {
    /// Calibrated for the blackboard transport at the paper's 4 Hz poll
    /// rate. Conservative timeouts sized in whole polling windows; with
    /// ~8 s detection + 8 s answer window + broadcast, a full failover
    /// lands at the paper's ~16.7 s per election round.
    pub fn blackboard_2018() -> BullyConfig {
        BullyConfig {
            heartbeat_interval: SimDuration::from_secs(2),
            heartbeat_timeout: SimDuration::from_millis(9_500),
            answer_timeout: SimDuration::from_secs(8),
            coordinator_timeout: SimDuration::from_secs(8),
        }
    }

    /// Aggressive timings for directly addressed agents (sub-millisecond
    /// RTTs make hundred-millisecond failure detection safe).
    pub fn direct() -> BullyConfig {
        BullyConfig {
            heartbeat_interval: SimDuration::from_millis(100),
            heartbeat_timeout: SimDuration::from_millis(400),
            answer_timeout: SimDuration::from_millis(100),
            coordinator_timeout: SimDuration::from_millis(200),
        }
    }

    /// Scale every timeout by `k` (for sensitivity sweeps).
    pub fn scaled(&self, k: f64) -> BullyConfig {
        BullyConfig {
            heartbeat_interval: self.heartbeat_interval.mul_f64(k),
            heartbeat_timeout: self.heartbeat_timeout.mul_f64(k),
            answer_timeout: self.answer_timeout.mul_f64(k),
            coordinator_timeout: self.coordinator_timeout.mul_f64(k),
        }
    }
}

/// Shared observer: tracks each node's current leader view and detects
/// when every live node agrees on the highest live id (a completed
/// election round).
#[derive(Clone, Default)]
pub struct ElectionObserver {
    inner: Rc<RefCell<ObserverInner>>,
}

#[derive(Default)]
struct ObserverInner {
    views: BTreeMap<NodeId, Option<NodeId>>,
    live: BTreeMap<NodeId, bool>,
    rounds: Vec<CompletedRound>,
    round_open_since: Option<SimTime>,
}

/// One completed election: when consensus was disturbed and when every
/// live node agreed again.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct CompletedRound {
    /// When agreement was first disturbed (node joined/failed/view reset).
    pub started_at: SimTime,
    /// When every live node agreed on the (correct) leader.
    pub completed_at: SimTime,
    /// The elected leader.
    pub leader: NodeId,
}

impl CompletedRound {
    /// Round duration.
    pub fn duration(&self) -> SimDuration {
        self.completed_at - self.started_at
    }
}

impl ElectionObserver {
    /// A fresh observer.
    pub fn new() -> ElectionObserver {
        ElectionObserver::default()
    }

    /// Register a participant (initially with no leader view).
    pub fn register(&self, node: NodeId, now: SimTime) {
        let mut st = self.inner.borrow_mut();
        st.views.insert(node, None);
        st.live.insert(node, true);
        st.round_open_since.get_or_insert(now);
    }

    /// Mark a node dead (its view no longer counts toward agreement).
    pub fn mark_dead(&self, node: NodeId, now: SimTime) {
        let mut st = self.inner.borrow_mut();
        st.live.insert(node, false);
        // Killing the leader (or any node) disturbs agreement.
        if st.round_open_since.is_none() {
            st.round_open_since = Some(now);
        }
        drop(st);
        self.check_agreement(now);
    }

    /// A node reports its current leader view.
    pub fn report(&self, node: NodeId, leader: Option<NodeId>, now: SimTime) {
        {
            let mut st = self.inner.borrow_mut();
            st.views.insert(node, leader);
            if st.round_open_since.is_none() {
                st.round_open_since = Some(now);
            }
        }
        self.check_agreement(now);
    }

    fn check_agreement(&self, now: SimTime) {
        let mut st = self.inner.borrow_mut();
        let Some(started_at) = st.round_open_since else {
            return;
        };
        let expected: Option<NodeId> = st
            .live
            .iter()
            .filter(|(_, &alive)| alive)
            .map(|(&id, _)| id)
            .max();
        let Some(expected) = expected else { return };
        let agreed = st
            .live
            .iter()
            .filter(|(_, &alive)| alive)
            .all(|(id, _)| st.views.get(id) == Some(&Some(expected)));
        if agreed {
            st.rounds.push(CompletedRound {
                started_at,
                completed_at: now,
                leader: expected,
            });
            st.round_open_since = None;
        }
    }

    /// All completed rounds so far.
    pub fn rounds(&self) -> Vec<CompletedRound> {
        self.inner.borrow().rounds.clone()
    }

    /// Current `(node, live, leader-view)` snapshot, for diagnostics.
    pub fn views(&self) -> Vec<(NodeId, bool, Option<NodeId>)> {
        let st = self.inner.borrow();
        st.views
            .iter()
            .map(|(&id, &view)| (id, st.live.get(&id).copied().unwrap_or(false), view))
            .collect()
    }

    /// The current agreed leader, if any round has completed.
    pub fn current_leader(&self) -> Option<NodeId> {
        self.inner.borrow().rounds.last().map(|r| r.leader)
    }

    /// If agreement is currently disturbed, when the disturbance began.
    pub fn disturbance_open_since(&self) -> Option<SimTime> {
        self.inner.borrow().round_open_since
    }

    /// Total time agreement was disturbed within `[from, to]`: completed
    /// rounds clipped to the window, plus any disturbance still open at
    /// `to`.
    pub fn disturbed_time(&self, from: SimTime, to: SimTime) -> SimDuration {
        let st = self.inner.borrow();
        let mut total = SimDuration::ZERO;
        for r in &st.rounds {
            if r.completed_at <= from || r.started_at >= to {
                continue;
            }
            let start = r.started_at.max(from);
            let end = r.completed_at.min(to);
            total += end - start;
        }
        if let Some(open) = st.round_open_since {
            if open < to {
                total += to - open.max(from);
            }
        }
        total
    }
}

/// Control handle for a running node.
#[derive(Clone)]
pub struct NodeHandle {
    stop: Rc<Cell<bool>>,
    stop_notify: faasim_simcore::Notify,
    id: NodeId,
}

impl NodeHandle {
    /// The node's id.
    pub fn id(&self) -> NodeId {
        self.id
    }

    /// Crash the node immediately: it stops participating mid-await (and
    /// stops heartbeating if it was the leader). A crashed node never
    /// consumes another message — important when a successor with the
    /// same identity takes over the inbox.
    pub fn kill(&self) {
        self.stop.set(true);
        self.stop_notify.notify_all();
    }
}

enum Phase {
    Idle,
    AwaitAnswer { deadline: SimTime },
    AwaitCoordinator { deadline: SimTime },
}

/// Run one bully participant until killed. Spawn one per node.
pub fn spawn_node<T: Transport + 'static>(
    sim: &Sim,
    transport: T,
    cfg: BullyConfig,
    observer: ElectionObserver,
) -> NodeHandle {
    let stop = Rc::new(Cell::new(false));
    let stop_notify = faasim_simcore::Notify::new();
    let handle = NodeHandle {
        stop: stop.clone(),
        stop_notify: stop_notify.clone(),
        id: transport.node_id(),
    };
    observer.register(transport.node_id(), sim.now());
    let sim2 = sim.clone();
    sim.spawn(run_node(sim2, transport, cfg, observer, stop, stop_notify));
    handle
}

async fn run_node<T: Transport>(
    sim: Sim,
    mut transport: T,
    cfg: BullyConfig,
    observer: ElectionObserver,
    stop: Rc<Cell<bool>>,
    stop_notify: faasim_simcore::Notify,
) {
    let me = transport.node_id();
    let peers = transport.peers();
    let higher: Vec<NodeId> = peers.iter().copied().filter(|&p| p > me).collect();
    let lower: Vec<NodeId> = peers.iter().copied().filter(|&p| p < me).collect();

    let mut leader: Option<NodeId> = None;
    let mut phase = Phase::Idle;
    let mut next_heartbeat = sim.now();
    let mut start_election = true;
    let mut epoch: u64 = 0;
    // Freshest evidence that the current leader is alive: its heartbeat
    // or a Coordinator announcement.
    let mut leader_seen_at = sim.now();

    loop {
        if stop.get() {
            return;
        }

        if start_election {
            start_election = false;
            leader = None;
            epoch += 1;
            observer.report(me, None, sim.now());
            for &h in &higher {
                transport
                    .send(h, ElectionMsg::Election { from: me, epoch })
                    .await;
            }
            // Wait out the full answer window even when no higher peer is
            // known: a conservative implementation cannot trust its
            // membership view (peers may be mid-restart), and this is the
            // behaviour implied by the paper's measured 16.7 s rounds.
            phase = Phase::AwaitAnswer {
                deadline: sim.now() + cfg.answer_timeout,
            };
            continue;
        }

        // Pick the next deadline this node cares about.
        let deadline = match phase {
            Phase::AwaitAnswer { deadline } | Phase::AwaitCoordinator { deadline } => deadline,
            Phase::Idle => {
                if leader == Some(me) {
                    next_heartbeat
                } else {
                    if let Some((id, at)) = transport.last_heartbeat() {
                        if Some(id) == leader && at > leader_seen_at {
                            leader_seen_at = at;
                        }
                    }
                    leader_seen_at + cfg.heartbeat_timeout
                }
            }
        };

        let wait = deadline.duration_since(sim.now());
        let event = if wait.is_zero() {
            None // deadline already due
        } else {
            // Race the kill switch so a crashed node stops mid-await and
            // cannot consume messages meant for its successor.
            match faasim_simcore::select2(
                stop_notify.notified(),
                sim.timeout(wait, transport.recv()),
            )
            .await
            {
                faasim_simcore::Either::Left(()) => return,
                faasim_simcore::Either::Right(ev) => ev,
            }
        };
        if stop.get() {
            return; // killed while the event was in flight: do not act on it
        }

        match event {
            Some(Some((from, msg))) => match msg {
                ElectionMsg::Election {
                    epoch: their_epoch, ..
                } => {
                    if from < me {
                        transport
                            .send(
                                from,
                                ElectionMsg::Answer {
                                    from: me,
                                    epoch: their_epoch,
                                },
                            )
                            .await;
                        if leader == Some(me) {
                            // A sitting leader re-announces instead of
                            // re-electing; rerunning the whole election
                            // would silence its heartbeats for a full
                            // answer window and let followers' suspicion
                            // restart the cycle (an election storm).
                            transport
                                .send(from, ElectionMsg::Coordinator { from: me })
                                .await;
                            transport.broadcast_heartbeat().await;
                        } else if matches!(phase, Phase::Idle) {
                            start_election = true;
                        }
                    }
                }
                ElectionMsg::Answer {
                    epoch: answered, ..
                } => {
                    // Only an answer to *this* attempt counts; stale
                    // answers from storage are ignored (see message docs).
                    if answered == epoch && matches!(phase, Phase::AwaitAnswer { .. }) {
                        phase = Phase::AwaitCoordinator {
                            deadline: sim.now() + cfg.coordinator_timeout,
                        };
                    }
                }
                ElectionMsg::Coordinator { from: new_leader } => {
                    if new_leader >= me {
                        leader = Some(new_leader);
                        phase = Phase::Idle;
                        // The announcement itself is liveness evidence.
                        leader_seen_at = sim.now();
                        observer.report(me, leader, sim.now());
                    } else {
                        // An inferior node claims leadership: challenge it.
                        start_election = true;
                    }
                }
                ElectionMsg::Heartbeat { .. } => {
                    // Socket transports consume these internally; tolerate
                    // transports that surface them anyway.
                }
            },
            Some(None) => return, // transport closed
            None => {
                // Deadline fired.
                if stop.get() {
                    return;
                }
                match phase {
                    Phase::AwaitAnswer { .. } => {
                        // Nobody outranked us in time.
                        declare_self(&sim, &transport, &lower, &observer, &mut leader).await;
                        phase = Phase::Idle;
                        next_heartbeat = sim.now();
                    }
                    Phase::AwaitCoordinator { .. } => {
                        // Winner died mid-election: start over.
                        start_election = true;
                    }
                    Phase::Idle => {
                        if leader == Some(me) {
                            // A self-styled leader that observes recent
                            // liveness from a *higher* node (its heartbeat
                            // in the cell, or a Heartbeat message) stands
                            // down — this heals the split where a low node
                            // elected itself after its election messages
                            // were lost.
                            let usurped = transport.last_heartbeat().and_then(|(id, at)| {
                                (id > me && sim.now() < at + cfg.heartbeat_timeout)
                                    .then_some((id, at))
                            });
                            if let Some((real_leader, at)) = usurped {
                                leader = Some(real_leader);
                                leader_seen_at = at;
                                observer.report(me, leader, sim.now());
                                continue;
                            }
                            transport.broadcast_heartbeat().await;
                            next_heartbeat = sim.now() + cfg.heartbeat_interval;
                        } else {
                            // The deadline was computed before we started
                            // waiting; heartbeats consumed while parked in
                            // recv() don't produce an event, so re-check
                            // liveness before suspecting the leader.
                            if let Some((id, at)) = transport.last_heartbeat() {
                                if Some(id) == leader && at > leader_seen_at {
                                    leader_seen_at = at;
                                }
                            }
                            if sim.now() >= leader_seen_at + cfg.heartbeat_timeout {
                                start_election = true;
                            }
                        }
                    }
                }
            }
        }
    }
}

async fn declare_self<T: Transport>(
    sim: &Sim,
    transport: &T,
    lower: &[NodeId],
    observer: &ElectionObserver,
    leader: &mut Option<NodeId>,
) {
    let me = transport.node_id();
    *leader = Some(me);
    for &l in lower {
        transport
            .send(l, ElectionMsg::Coordinator { from: me })
            .await;
    }
    transport.broadcast_heartbeat().await;
    observer.report(me, Some(me), sim.now());
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transport::{build_directory, BlackboardTransport, SocketTransport};
    use faasim_kv::{KvProfile, KvStore};
    use faasim_net::{Fabric, NetProfile, NicConfig};
    use faasim_pricing::{Ledger, PriceBook};
    use faasim_simcore::{mbps, Recorder};

    fn socket_cluster(
        sim: &Sim,
        n: u64,
    ) -> (Fabric, Vec<(NodeId, faasim_net::Host)>, ElectionObserver) {
        let fabric = Fabric::new(sim, NetProfile::aws_2018().exact(), Recorder::new());
        let members: Vec<(NodeId, faasim_net::Host)> = (1..=n)
            .map(|id| (id, fabric.add_host(0, NicConfig::simple(mbps(10_000.0)))))
            .collect();
        (fabric, members, ElectionObserver::new())
    }

    #[test]
    fn socket_cluster_elects_highest() {
        let sim = Sim::new(81);
        let (fabric, members, observer) = socket_cluster(&sim, 5);
        let dir = build_directory(&members);
        let mut handles = Vec::new();
        for (id, host) in &members {
            let t = SocketTransport::new(&fabric, host, *id, dir.clone());
            handles.push(spawn_node(&sim, t, BullyConfig::direct(), observer.clone()));
        }
        sim.run_until(SimTime::ZERO + SimDuration::from_secs(5));
        assert_eq!(observer.current_leader(), Some(5));
        let rounds = observer.rounds();
        assert!(!rounds.is_empty());
        // Direct transport: initial agreement well under a second.
        assert!(
            rounds[0].duration() < SimDuration::from_secs(1),
            "initial round took {}",
            rounds[0].duration()
        );
        for h in handles {
            h.kill();
        }
        sim.run_until(sim.now() + SimDuration::from_secs(2));
    }

    #[test]
    fn socket_cluster_survives_leader_failure() {
        let sim = Sim::new(82);
        let (fabric, members, observer) = socket_cluster(&sim, 4);
        let dir = build_directory(&members);
        let mut handles = Vec::new();
        for (id, host) in &members {
            let t = SocketTransport::new(&fabric, host, *id, dir.clone());
            handles.push(spawn_node(&sim, t, BullyConfig::direct(), observer.clone()));
        }
        sim.run_until(SimTime::ZERO + SimDuration::from_secs(2));
        assert_eq!(observer.current_leader(), Some(4));
        // Kill the leader.
        handles[3].kill();
        observer.mark_dead(4, sim.now());
        sim.run_until(sim.now() + SimDuration::from_secs(5));
        assert_eq!(observer.current_leader(), Some(3));
        let rounds = observer.rounds();
        let failover = *rounds.last().unwrap();
        assert_eq!(failover.leader, 3);
        assert!(
            failover.duration() < SimDuration::from_secs(2),
            "failover took {}",
            failover.duration()
        );
        for h in handles {
            h.kill();
        }
        sim.run_until(sim.now() + SimDuration::from_secs(2));
    }

    #[test]
    fn blackboard_cluster_elects_and_fails_over_slowly() {
        let sim = Sim::new(83);
        let recorder = Recorder::new();
        let fabric = Fabric::new(&sim, NetProfile::aws_2018().exact(), recorder.clone());
        let ledger = Ledger::new();
        let kv = KvStore::new(
            &sim,
            KvProfile::aws_2018().exact(),
            Rc::new(PriceBook::aws_2018()),
            ledger.clone(),
            recorder,
        );
        BlackboardTransport::setup(&kv);
        let observer = ElectionObserver::new();
        let members: Vec<NodeId> = (1..=5).collect();
        let mut handles = Vec::new();
        for &id in &members {
            let host = fabric.add_host(0, NicConfig::simple(mbps(1000.0)));
            let t = BlackboardTransport::new(
                &sim,
                &kv,
                host,
                id,
                &members,
                SimDuration::from_millis(250),
            );
            handles.push(spawn_node(
                &sim,
                t,
                BullyConfig::blackboard_2018(),
                observer.clone(),
            ));
        }
        sim.run_until(SimTime::ZERO + SimDuration::from_secs(60));
        assert_eq!(observer.current_leader(), Some(5));

        // Kill the leader; the cluster must converge on 4, taking on the
        // order of the paper's 16.7 s (detection + answer window).
        handles[4].kill();
        observer.mark_dead(5, sim.now());
        let killed_at = sim.now();
        sim.run_until(killed_at + SimDuration::from_secs(120));
        assert_eq!(observer.current_leader(), Some(4));
        let round = *observer.rounds().last().unwrap();
        let secs = round.duration().as_secs_f64();
        assert!(
            (10.0..25.0).contains(&secs),
            "blackboard failover took {secs} s; expected paper-scale ~16.7 s"
        );
        for h in handles {
            h.kill();
        }
        sim.run_until(sim.now() + SimDuration::from_secs(5));
    }

    #[test]
    fn partition_causes_split_brain_and_heals() {
        // Bully has no quorum: a partition yields one leader per side —
        // the paper's point that real agreement must be "bolted on as a
        // protocol of additional I/Os akin to classical consensus". When
        // the partition heals, the usurper stands down on seeing the
        // higher leader's heartbeats.
        let sim = Sim::new(84);
        let (fabric, members, observer) = socket_cluster(&sim, 6);
        let dir = build_directory(&members);
        let mut handles = Vec::new();
        for (id, host) in &members {
            let t = SocketTransport::new(&fabric, host, *id, dir.clone());
            handles.push(spawn_node(&sim, t, BullyConfig::direct(), observer.clone()));
        }
        sim.run_until(SimTime::ZERO + SimDuration::from_secs(2));
        assert_eq!(observer.current_leader(), Some(6));

        // Split 1-3 from 4-6.
        let side_a: Vec<_> = members[..3].iter().map(|(_, h)| h.id()).collect();
        let side_b: Vec<_> = members[3..].iter().map(|(_, h)| h.id()).collect();
        fabric.partition(&side_a, &side_b);
        sim.run_until(sim.now() + SimDuration::from_secs(5));
        let views = observer.views();
        // Split brain: side A elected its own leader (3); side B kept 6.
        for (id, _, view) in &views {
            if *id <= 3 {
                assert_eq!(*view, Some(3), "node {id} view {view:?}");
            } else {
                assert_eq!(*view, Some(6), "node {id} view {view:?}");
            }
        }

        // Heal: node 3 must stand down and the cluster re-converge on 6.
        fabric.heal_partition();
        sim.run_until(sim.now() + SimDuration::from_secs(5));
        let views = observer.views();
        for (id, _, view) in &views {
            assert_eq!(*view, Some(6), "node {id} view {view:?} after heal");
        }
        for h in handles {
            h.kill();
        }
        sim.run_until(sim.now() + SimDuration::from_secs(1));
    }

    #[test]
    fn observer_tracks_agreement_correctly() {
        let obs = ElectionObserver::new();
        let t0 = SimTime::ZERO;
        obs.register(1, t0);
        obs.register(2, t0);
        assert_eq!(obs.current_leader(), None);
        obs.report(1, Some(2), SimTime::from_nanos(5));
        assert!(obs.rounds().is_empty(), "not all nodes agree yet");
        // Node 2 believing in itself completes the round.
        obs.report(2, Some(2), SimTime::from_nanos(9));
        let rounds = obs.rounds();
        assert_eq!(rounds.len(), 1);
        assert_eq!(rounds[0].leader, 2);
        assert_eq!(rounds[0].started_at, t0);
        assert_eq!(rounds[0].completed_at, SimTime::from_nanos(9));
        // Death of the leader opens a new round.
        obs.mark_dead(2, SimTime::from_nanos(20));
        obs.report(1, Some(1), SimTime::from_nanos(30));
        assert_eq!(obs.rounds().len(), 2);
        assert_eq!(obs.current_leader(), Some(1));
    }

    #[test]
    fn wrong_leader_view_does_not_complete_round() {
        let obs = ElectionObserver::new();
        obs.register(1, SimTime::ZERO);
        obs.register(3, SimTime::ZERO);
        // Both agree — but on the wrong (non-highest) node.
        obs.report(1, Some(1), SimTime::from_nanos(5));
        obs.report(3, Some(1), SimTime::from_nanos(6));
        assert!(obs.rounds().is_empty());
    }
}
