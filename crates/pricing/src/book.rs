//! The price book: per-unit list prices for every simulated service.
//!
//! [`PriceBook::aws_2018`] encodes the public AWS list prices in effect
//! when the paper was written (Fall 2018, us-east-1), with one documented
//! exception: the per-request DynamoDB price is *calibrated* so the
//! paper's §3.1 leader-election cost claim ("at minimum $450 per hour" for
//! a 1,000-node cluster) is reproduced exactly; the paper's footnote 6
//! does not give enough detail to derive the figure from list prices
//! alone. EXPERIMENTS.md discusses the discrepancy.

use std::collections::BTreeMap;

/// Per-unit prices, all in US dollars.
#[derive(Clone, Debug, PartialEq)]
pub struct PriceBook {
    /// Per Lambda invocation ($0.20 per million requests).
    pub lambda_per_request: f64,
    /// Per GB-second of Lambda execution, billed in 100 ms increments.
    pub lambda_per_gb_second: f64,
    /// Per GB-second of *provisioned concurrency* (keeping containers
    /// warm): the §4-style SLO knob AWS shipped in late 2019; priced at
    /// its launch rate.
    pub lambda_provisioned_per_gb_second: f64,
    /// Per S3 PUT/COPY/POST/LIST request ($0.005 per thousand).
    pub blob_put_per_request: f64,
    /// Per S3 GET request ($0.0004 per thousand).
    pub blob_get_per_request: f64,
    /// Per GB-month of S3 standard storage.
    pub blob_storage_per_gb_month: f64,
    /// Per DynamoDB read request. **Calibrated** (see module docs).
    pub kv_read_per_request: f64,
    /// Per DynamoDB write request. **Calibrated** (see module docs).
    pub kv_write_per_request: f64,
    /// Per SQS request ($0.40 per million); a batch send/receive/delete of
    /// up to 10 messages is one request.
    pub queue_per_request: f64,
    /// Hourly on-demand price per EC2 instance type.
    pub ec2_hourly: BTreeMap<String, f64>,
    /// Per GB-month of EBS gp2 storage.
    pub ebs_per_gb_month: f64,
    /// Per TB scanned by the autoscaling query service (Athena: $5/TB).
    pub query_per_tb_scanned: f64,
    /// Per request traversing the front-door gateway (API Gateway:
    /// $3.50 per million). Charged on *offered* requests — shed traffic
    /// still bills, which is exactly the overload economics the gateway
    /// experiments measure.
    pub gateway_per_request: f64,
}

impl PriceBook {
    /// Fall 2018 AWS us-east-1 list prices (see module docs for the one
    /// calibrated entry).
    pub fn aws_2018() -> PriceBook {
        let mut ec2_hourly = BTreeMap::new();
        // On-demand, Linux, us-east-1, late 2018.
        ec2_hourly.insert("m4.large".to_owned(), 0.10);
        ec2_hourly.insert("m5.large".to_owned(), 0.096);
        ec2_hourly.insert("m5.xlarge".to_owned(), 0.192);
        ec2_hourly.insert("m5.2xlarge".to_owned(), 0.384);
        ec2_hourly.insert("c5.large".to_owned(), 0.085);
        ec2_hourly.insert("r5.large".to_owned(), 0.126);
        PriceBook {
            lambda_per_request: 0.20 / 1e6,
            lambda_per_gb_second: 0.000_016_666_7,
            lambda_provisioned_per_gb_second: 0.000_004_167,
            blob_put_per_request: 0.005 / 1e3,
            blob_get_per_request: 0.0004 / 1e3,
            blob_storage_per_gb_month: 0.023,
            // Calibrated: paper footnote 6 implies ~$0.45/node-hour at
            // 4 polls/s with ~2 steady-state reads per poll plus election
            // bursts; $16.50 per million requests lands the measured
            // best-case 1,000-node cluster (~7.6 req/node/s) at the
            // paper's $450/hr. (2018 on-demand list price was $0.25/M
            // reads, $1.25/M writes — the paper's figure also folds in
            // the provisioned-capacity floor needed to absorb 4 Hz
            // polling bursts from 1,000 nodes.)
            kv_read_per_request: 16.50 / 1e6,
            kv_write_per_request: 16.50 / 1e6,
            queue_per_request: 0.40 / 1e6,
            ec2_hourly,
            ebs_per_gb_month: 0.10,
            query_per_tb_scanned: 5.0,
            gateway_per_request: 3.50 / 1e6,
        }
    }

    /// Strict 2018 list prices for DynamoDB on-demand requests, for the
    /// ablation that shows how the election cost claim changes when the
    /// calibrated price is replaced by the published one.
    pub fn aws_2018_list_kv_prices(mut self) -> PriceBook {
        self.kv_read_per_request = 0.25 / 1e6;
        self.kv_write_per_request = 1.25 / 1e6;
        self
    }

    /// Hourly price of an instance type.
    ///
    /// # Panics
    /// Panics on unknown instance types: experiments must only provision
    /// types the book knows, otherwise their cost output silently lies.
    pub fn ec2_hourly(&self, instance_type: &str) -> f64 {
        *self
            .ec2_hourly
            .get(instance_type)
            .unwrap_or_else(|| panic!("no price for instance type {instance_type:?}"))
    }
}

impl Default for PriceBook {
    fn default() -> Self {
        PriceBook::aws_2018()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn aws_2018_headline_prices() {
        let book = PriceBook::aws_2018();
        // Lambda: $0.20 per million requests.
        assert!((book.lambda_per_request * 1e6 - 0.20).abs() < 1e-12);
        // The paper's training case: 31 runs x 900 s x 0.625 GB ≈ $0.29.
        let gb_s = 31.0 * 900.0 * (640.0 / 1024.0);
        let cost = gb_s * book.lambda_per_gb_second;
        assert!((cost - 0.29).abs() < 0.01, "training cost {cost}");
        // EC2 m4.large: 1300 s ≈ $0.036.
        let ec2 = book.ec2_hourly("m4.large") * 1300.0 / 3600.0;
        assert!((ec2 - 0.04).abs() < 0.005, "ec2 cost {ec2}");
    }

    #[test]
    fn sqs_million_per_second_rate() {
        // CS-2: 1M msg/s at 1.1 SQS requests per message ≈ $1,584/hr.
        let book = PriceBook::aws_2018();
        let requests_per_hour = 1e6 * 3600.0 * 1.1;
        let cost = requests_per_hour * book.queue_per_request;
        assert!((cost - 1584.0).abs() < 1.0, "sqs hourly {cost}");
    }

    #[test]
    fn ec2_fleet_hourly() {
        // CS-2: 290 m5.large ≈ $27.84/hr.
        let book = PriceBook::aws_2018();
        let cost = 290.0 * book.ec2_hourly("m5.large");
        assert!((cost - 27.84).abs() < 0.01, "fleet hourly {cost}");
    }

    #[test]
    #[should_panic(expected = "no price for instance type")]
    fn unknown_instance_type_panics() {
        PriceBook::aws_2018().ec2_hourly("x1e.32xlarge");
    }

    #[test]
    fn list_kv_price_variant() {
        let book = PriceBook::aws_2018().aws_2018_list_kv_prices();
        assert!((book.kv_read_per_request * 1e6 - 0.25).abs() < 1e-9);
        assert!((book.kv_write_per_request * 1e6 - 1.25).abs() < 1e-9);
    }
}
