//! # faasim-pricing
//!
//! The money side of the simulated cloud: a [`PriceBook`] of per-unit list
//! prices (calibrated to Fall-2018 AWS, the era the paper measured) and a
//! shared [`Ledger`] that every service charges line items into.
//!
//! The paper's cost claims — $0.29 vs $0.04 for model training, $1,584/hr
//! vs $27.84/hr for prediction serving, $450/hr for a 1,000-node leader
//! election — are all reproduced by services metering usage into the
//! ledger at these prices.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

mod book;
mod ledger;

pub use book::PriceBook;
pub use ledger::{format_dollars, ItemId, Ledger, Service};
