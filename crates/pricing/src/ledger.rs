//! The billing ledger: every service charges line items here, and the
//! experiment harnesses read totals and breakdowns back out.

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::fmt;
use std::rc::Rc;

/// The services that can appear on a bill.
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum Service {
    /// The FaaS platform (Lambda-like).
    Faas,
    /// The object store (S3-like).
    Blob,
    /// The key-value store (DynamoDB-like).
    Kv,
    /// The message queue (SQS-like).
    Queue,
    /// Serverful VMs (EC2-like).
    Compute,
    /// The autoscaling query service (Athena-like).
    Query,
    /// The front-door gateway (API Gateway-like).
    Gateway,
    /// Anything else.
    Other,
}

impl fmt::Display for Service {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Service::Faas => "faas",
            Service::Blob => "blob",
            Service::Kv => "kv",
            Service::Queue => "queue",
            Service::Compute => "compute",
            Service::Query => "query",
            Service::Gateway => "gateway",
            Service::Other => "other",
        };
        f.write_str(s)
    }
}

#[derive(Clone, Debug, Default, PartialEq)]
struct LineItem {
    quantity: f64,
    dollars: f64,
    /// Whether any charge (even a zero one) has landed here: an id that
    /// was interned but never charged must not surface in the breakdown
    /// or the formatted bill, which determinism digests fold in.
    charged: bool,
}

/// An interned `(service, item)` handle: charging through it is an
/// array index — no string allocation or map lookup on the hot path.
/// Obtain one with [`Ledger::item_id`]; ids are only meaningful on the
/// ledger that issued them.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct ItemId(usize);

#[derive(Default)]
struct LedgerInner {
    /// Registry: `(service, item name)` → slot index. Nested so lookups
    /// can borrow the item name as `&str`.
    registry: BTreeMap<Service, BTreeMap<String, usize>>,
    slots: Vec<LineItem>,
}

impl LedgerInner {
    fn slot_of(&mut self, service: Service, item: &str) -> usize {
        let by_name = self.registry.entry(service).or_default();
        if let Some(&slot) = by_name.get(item) {
            return slot;
        }
        let slot = self.slots.len();
        self.slots.push(LineItem::default());
        by_name.insert(item.to_owned(), slot);
        slot
    }
}

/// A shared, append-only bill. Cheap to clone; clones share state.
#[derive(Clone, Default)]
pub struct Ledger {
    inner: Rc<RefCell<LedgerInner>>,
}

impl Ledger {
    /// A fresh, empty ledger.
    pub fn new() -> Ledger {
        Ledger::default()
    }

    /// Add `quantity` units costing `dollars` under `(service, item)`.
    ///
    /// # Panics
    /// Panics on negative or non-finite amounts — refunds don't exist in
    /// this cloud, and a NaN bill is always a modeling bug.
    pub fn charge(&self, service: Service, item: &str, quantity: f64, dollars: f64) {
        assert!(
            quantity.is_finite() && quantity >= 0.0,
            "bad quantity {quantity} for {service}/{item}"
        );
        assert!(
            dollars.is_finite() && dollars >= 0.0,
            "bad charge ${dollars} for {service}/{item}"
        );
        let mut inner = self.inner.borrow_mut();
        let slot = inner.slot_of(service, item);
        let entry = &mut inner.slots[slot];
        entry.quantity += quantity;
        entry.dollars += dollars;
        entry.charged = true;
    }

    /// Intern `(service, item)` for repeated charging via
    /// [`Ledger::charge_id`] — the allocation-free fast path for
    /// services that bill per request at trace scale.
    pub fn item_id(&self, service: Service, item: &str) -> ItemId {
        ItemId(self.inner.borrow_mut().slot_of(service, item))
    }

    /// Add `quantity` units costing `dollars` under an interned item.
    ///
    /// # Panics
    /// Panics on negative or non-finite amounts, or an id from another
    /// ledger.
    pub fn charge_id(&self, id: ItemId, quantity: f64, dollars: f64) {
        assert!(
            quantity.is_finite() && quantity >= 0.0,
            "bad quantity {quantity}"
        );
        assert!(dollars.is_finite() && dollars >= 0.0, "bad charge ${dollars}");
        let mut inner = self.inner.borrow_mut();
        let entry = &mut inner.slots[id.0];
        entry.quantity += quantity;
        entry.dollars += dollars;
        entry.charged = true;
    }

    /// Grand total in dollars.
    pub fn total(&self) -> f64 {
        self.inner.borrow().slots.iter().map(|li| li.dollars).sum()
    }

    /// Total for one service.
    pub fn total_for(&self, service: Service) -> f64 {
        let inner = self.inner.borrow();
        inner
            .registry
            .get(&service)
            .map(|by_name| by_name.values().map(|&slot| inner.slots[slot].dollars).sum())
            .unwrap_or(0.0)
    }

    fn item(&self, service: Service, item: &str) -> Option<LineItem> {
        let inner = self.inner.borrow();
        let slot = *inner.registry.get(&service)?.get(item)?;
        Some(inner.slots[slot].clone())
    }

    /// Dollars charged under one `(service, item)` pair.
    pub fn item_dollars(&self, service: Service, item: &str) -> f64 {
        self.item(service, item).map(|li| li.dollars).unwrap_or(0.0)
    }

    /// Quantity accumulated under one `(service, item)` pair.
    pub fn item_quantity(&self, service: Service, item: &str) -> f64 {
        self.item(service, item).map(|li| li.quantity).unwrap_or(0.0)
    }

    /// All line items: `(service, item, quantity, dollars)`, sorted.
    pub fn breakdown(&self) -> Vec<(Service, String, f64, f64)> {
        let inner = self.inner.borrow();
        inner
            .registry
            .iter()
            .flat_map(|(s, by_name)| {
                by_name.iter().filter_map(|(i, &slot)| {
                    let li = &inner.slots[slot];
                    li.charged
                        .then(|| (*s, i.clone(), li.quantity, li.dollars))
                })
            })
            .collect()
    }

    /// Drop all recorded charges. Interned [`ItemId`]s stay valid —
    /// experiments reset the ledger after setup traffic while services
    /// holding ids keep charging into the same slots.
    pub fn reset(&self) {
        for li in self.inner.borrow_mut().slots.iter_mut() {
            *li = LineItem::default();
        }
    }

    /// A formatted bill, e.g. for the experiment reports.
    pub fn report(&self) -> String {
        use fmt::Write;
        let mut out = String::new();
        let items = self.breakdown();
        if items.is_empty() {
            return "  (no charges)\n".to_owned();
        }
        for (service, item, quantity, dollars) in &items {
            writeln!(
                out,
                "  {service:<8} {item:<28} x{quantity:<14.1} {}",
                format_dollars(*dollars)
            )
            .unwrap();
        }
        writeln!(out, "  {:<8} {:<28} {:<15} {}", "total", "", "", format_dollars(self.total()))
            .unwrap();
        out
    }
}

/// Format a dollar amount with sensible precision for both $0.0004 and
/// $1,584 scales.
pub fn format_dollars(d: f64) -> String {
    if d == 0.0 {
        "$0".to_owned()
    } else if d < 0.01 {
        format!("${d:.6}")
    } else if d < 100.0 {
        format!("${d:.2}")
    } else {
        let whole = d.round() as i64;
        let mut s = whole.to_string();
        let mut i = s.len() as i64 - 3;
        while i > 0 {
            s.insert(i as usize, ',');
            i -= 3;
        }
        format!("${s}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn charges_accumulate_per_item() {
        let ledger = Ledger::new();
        ledger.charge(Service::Blob, "get", 1.0, 0.0000004);
        ledger.charge(Service::Blob, "get", 1.0, 0.0000004);
        ledger.charge(Service::Blob, "put", 1.0, 0.000005);
        assert_eq!(ledger.item_quantity(Service::Blob, "get"), 2.0);
        assert!((ledger.item_dollars(Service::Blob, "get") - 0.0000008).abs() < 1e-15);
        assert!((ledger.total_for(Service::Blob) - 0.0000058).abs() < 1e-15);
        assert_eq!(ledger.total_for(Service::Kv), 0.0);
    }

    #[test]
    fn total_spans_services() {
        let ledger = Ledger::new();
        ledger.charge(Service::Faas, "gb-seconds", 100.0, 0.0016667);
        ledger.charge(Service::Compute, "m4.large-hours", 0.36, 0.036);
        assert!((ledger.total() - 0.0376667).abs() < 1e-9);
    }

    #[test]
    fn clones_share_state() {
        let a = Ledger::new();
        let b = a.clone();
        b.charge(Service::Queue, "requests", 1.0, 0.0000004);
        assert!(a.total() > 0.0);
        a.reset();
        assert_eq!(b.total(), 0.0);
    }

    #[test]
    fn breakdown_is_sorted_and_complete() {
        let ledger = Ledger::new();
        ledger.charge(Service::Queue, "requests", 3.0, 0.3);
        ledger.charge(Service::Blob, "put", 1.0, 0.1);
        let rows = ledger.breakdown();
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].0, Service::Blob);
        assert_eq!(rows[1].0, Service::Queue);
    }

    #[test]
    #[should_panic(expected = "bad charge")]
    fn negative_charge_panics() {
        Ledger::new().charge(Service::Other, "x", 1.0, -1.0);
    }

    #[test]
    #[should_panic(expected = "bad quantity")]
    fn nan_quantity_panics() {
        Ledger::new().charge(Service::Other, "x", f64::NAN, 1.0);
    }

    #[test]
    fn report_contains_items_and_total() {
        let ledger = Ledger::new();
        ledger.charge(Service::Kv, "read", 1000.0, 0.0145);
        let rep = ledger.report();
        assert!(rep.contains("kv"));
        assert!(rep.contains("read"));
        assert!(rep.contains("total"));
        assert_eq!(Ledger::new().report(), "  (no charges)\n");
    }

    #[test]
    fn dollar_formatting() {
        assert_eq!(format_dollars(0.0), "$0");
        assert_eq!(format_dollars(0.0004), "$0.000400");
        assert_eq!(format_dollars(0.29), "$0.29");
        assert_eq!(format_dollars(27.84), "$27.84");
        assert_eq!(format_dollars(1584.0), "$1,584");
        assert_eq!(format_dollars(1234567.0), "$1,234,567");
    }
}
