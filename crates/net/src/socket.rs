//! Directly addressable messaging — the thing the paper points out FaaS
//! lacks.
//!
//! A [`Socket`] binds a `(host, port)` address and exchanges datagrams with
//! other sockets at network latency, paying NIC serialization on both ends.
//! Semantics are UDP-like (no delivery guarantee to dead/unbound peers; no
//! backpressure) plus a request/reply convenience built on correlation ids
//! — enough to model the paper's ZeroMQ baseline and to build the bully
//! election protocol on.

use std::cell::RefCell;
use std::collections::{HashMap, VecDeque};
use std::fmt;
use std::rc::Rc;
use std::task::Waker;

use faasim_payload::Payload;
use faasim_simcore::{oneshot, OneshotSender, SimDuration};

use crate::fabric::{Fabric, Host, HostId};

/// A network address: host plus port.
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct Addr {
    /// The host part.
    pub host: HostId,
    /// The port part.
    pub port: u16,
}

impl fmt::Display for Addr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.host, self.port)
    }
}

/// How a message participates in request/reply correlation.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum Kind {
    /// Fire-and-forget datagram.
    Oneway,
    /// A request carrying a correlation id the receiver should echo.
    Request(u64),
    /// A reply to the request with this correlation id.
    Reply(u64),
}

/// A delivered message.
#[derive(Clone, Debug)]
pub struct Message {
    /// Sender's address (usable as a reply target).
    pub from: Addr,
    /// Correlation kind.
    pub kind: Kind,
    /// Payload bytes.
    pub payload: Payload,
}

/// Errors from socket operations.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum NetError {
    /// The local port was already bound.
    PortInUse(Addr),
    /// A reply will never arrive (peer socket dropped while request pending).
    Canceled,
}

impl fmt::Display for NetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetError::PortInUse(a) => write!(f, "port in use: {a}"),
            NetError::Canceled => write!(f, "request canceled"),
        }
    }
}

impl std::error::Error for NetError {}

struct SockState {
    queue: VecDeque<Message>,
    recv_waker: Option<Waker>,
    pending: HashMap<u64, OneshotSender<Message>>,
    closed: bool,
}

/// Shared delivery target registered in the fabric's socket table.
#[derive(Clone)]
pub(crate) struct SocketHandle {
    st: Rc<RefCell<SockState>>,
}

impl SocketHandle {
    fn deliver(&self, msg: Message) -> bool {
        let mut st = self.st.borrow_mut();
        if st.closed {
            return false;
        }
        if let Kind::Reply(corr) = msg.kind {
            if let Some(tx) = st.pending.remove(&corr) {
                drop(st);
                tx.send(msg);
                return true;
            }
        }
        st.queue.push_back(msg);
        if let Some(w) = st.recv_waker.take() {
            drop(st);
            w.wake();
        }
        true
    }
}

/// A bound socket. Dropping it unbinds the port; messages in flight toward
/// it are then dropped.
pub struct Socket {
    fabric: Fabric,
    host: Host,
    addr: Addr,
    st: Rc<RefCell<SockState>>,
    next_corr: RefCell<u64>,
}

impl fmt::Debug for Socket {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Socket").field("addr", &self.addr).finish()
    }
}

impl Fabric {
    /// Bind a socket on `host` at `port`.
    pub fn bind(&self, host: &Host, port: u16) -> Result<Socket, NetError> {
        let addr = Addr {
            host: host.id(),
            port,
        };
        let mut sockets = self.inner.sockets.borrow_mut();
        if sockets.contains_key(&addr) {
            return Err(NetError::PortInUse(addr));
        }
        let st = Rc::new(RefCell::new(SockState {
            queue: VecDeque::new(),
            recv_waker: None,
            pending: HashMap::new(),
            closed: false,
        }));
        sockets.insert(addr, SocketHandle { st: st.clone() });
        Ok(Socket {
            fabric: self.clone(),
            host: host.clone(),
            addr,
            st,
            next_corr: RefCell::new(0),
        })
    }

    /// Whether any socket is currently bound at `addr`.
    pub fn is_bound(&self, addr: Addr) -> bool {
        self.inner.sockets.borrow().contains_key(&addr)
    }
}

impl Socket {
    /// This socket's address.
    pub fn addr(&self) -> Addr {
        self.addr
    }

    /// The host the socket is bound on.
    pub fn host(&self) -> &Host {
        &self.host
    }

    /// Messages waiting in the receive queue.
    pub fn pending_recv(&self) -> usize {
        self.st.borrow().queue.len()
    }

    async fn transmit(&self, to: Addr, kind: Kind, payload: Payload) {
        let size = payload.len() as u64 + WIRE_OVERHEAD_BYTES;
        let rec = self.fabric.recorder().clone();
        rec.incr("net.messages_sent");
        rec.add("net.bytes_sent", size);
        // Serialize out of the sender's NIC.
        self.host.nic_transfer(size).await;
        // Partitioned paths silently eat the message (like the real
        // network: the sender cannot tell).
        if self.fabric.is_blocked(self.host.id(), to.host) {
            rec.incr("net.messages_partitioned");
            return;
        }
        // Chaos-injected packet loss, equally silent to the sender.
        if self.fabric.chaos_drop() {
            rec.incr("net.messages_lost");
            return;
        }
        let latency = self.fabric.one_way_latency(&self.host, to.host);
        let fabric = self.fabric.clone();
        let from = self.addr;
        // Propagation and remote delivery proceed without blocking the
        // sender (the paper's ZeroMQ-style asynchronous send).
        let sim = fabric.sim().clone();
        sim.clone().spawn(async move {
            sim.sleep(latency).await;
            // Pay serialization into the receiver's NIC, if the host exists.
            let dest_host = fabric.host_state(to.host);
            match dest_host {
                Some(h) if h.is_alive() => {
                    h.nic().transfer(size, h.flow_cap()).await;
                }
                _ => {
                    rec.incr("net.messages_dropped");
                    return;
                }
            }
            let handle = fabric.inner.sockets.borrow().get(&to).cloned();
            match handle {
                Some(handle) => {
                    if handle.deliver(Message {
                        from,
                        kind,
                        payload,
                    }) {
                        rec.incr("net.messages_delivered");
                    } else {
                        rec.incr("net.messages_dropped");
                    }
                }
                None => rec.incr("net.messages_dropped"),
            }
        });
    }

    /// Send a one-way datagram. Completes when the message is on the wire
    /// (after paying the local NIC); delivery continues asynchronously.
    pub async fn send(&self, to: Addr, payload: impl Into<Payload>) {
        self.transmit(to, Kind::Oneway, payload.into()).await;
    }

    /// Send a request and await its reply. Callers should wrap this in
    /// [`faasim_simcore::Sim::timeout`] when the peer may be gone.
    pub async fn request(&self, to: Addr, payload: impl Into<Payload>) -> Result<Message, NetError> {
        let corr = {
            let mut c = self.next_corr.borrow_mut();
            *c += 1;
            *c
        };
        let (tx, rx) = oneshot();
        self.st.borrow_mut().pending.insert(corr, tx);
        self.transmit(to, Kind::Request(corr), payload.into()).await;
        match rx.await {
            Ok(msg) => Ok(msg),
            Err(_) => Err(NetError::Canceled),
        }
    }

    /// Reply to a request message.
    ///
    /// # Panics
    /// Panics when `req` is not a [`Kind::Request`] — replying to a reply
    /// is always a protocol bug.
    pub async fn reply(&self, req: &Message, payload: impl Into<Payload>) {
        let Kind::Request(corr) = req.kind else {
            panic!("reply() to a non-request message: {:?}", req.kind);
        };
        self.transmit(req.from, Kind::Reply(corr), payload.into()).await;
    }

    /// Await the next inbound request/one-way message.
    pub fn recv(&self) -> RecvFut<'_> {
        RecvFut { socket: self }
    }

    /// Non-blocking receive.
    pub fn try_recv(&self) -> Option<Message> {
        self.st.borrow_mut().queue.pop_front()
    }

    /// Convenience: round-trip a request and measure its latency.
    pub async fn request_timed(
        &self,
        to: Addr,
        payload: impl Into<Payload>,
    ) -> Result<(Message, SimDuration), NetError> {
        let t0 = self.fabric.sim().now();
        let msg = self.request(to, payload).await?;
        Ok((msg, self.fabric.sim().now() - t0))
    }
}

/// Bytes of protocol overhead added to each datagram (headers/framing).
pub const WIRE_OVERHEAD_BYTES: u64 = 66;

/// Future returned by [`Socket::recv`].
pub struct RecvFut<'a> {
    socket: &'a Socket,
}

impl std::future::Future for RecvFut<'_> {
    type Output = Message;

    fn poll(
        self: std::pin::Pin<&mut Self>,
        cx: &mut std::task::Context<'_>,
    ) -> std::task::Poll<Message> {
        let mut st = self.socket.st.borrow_mut();
        if let Some(msg) = st.queue.pop_front() {
            return std::task::Poll::Ready(msg);
        }
        st.recv_waker = Some(cx.waker().clone());
        std::task::Poll::Pending
    }
}

impl Drop for Socket {
    fn drop(&mut self) {
        self.st.borrow_mut().closed = true;
        self.st.borrow_mut().pending.clear();
        self.fabric.inner.sockets.borrow_mut().remove(&self.addr);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;
    use crate::fabric::{NetProfile, NicConfig};
    use faasim_simcore::{mbps, Recorder, Sim};

    fn setup(seed: u64) -> (Sim, Fabric, Host, Host) {
        let sim = Sim::new(seed);
        let fabric = Fabric::new(&sim, NetProfile::aws_2018().exact(), Recorder::new());
        let a = fabric.add_host(0, NicConfig::simple(mbps(10_000.0)));
        let b = fabric.add_host(0, NicConfig::simple(mbps(10_000.0)));
        (sim, fabric, a, b)
    }

    #[test]
    fn send_and_recv() {
        let (sim, fabric, a, b) = setup(1);
        let sa = fabric.bind(&a, 5000).unwrap();
        let sb = fabric.bind(&b, 5000).unwrap();
        let to = sb.addr();
        sim.spawn(async move {
            sa.send(to, Bytes::from_static(b"hello")).await;
            // Keep the socket alive until delivery.
            fabric_sleep(&sa).await;
        });
        let got = sim.block_on(async move { sb.recv().await });
        assert!(got.payload.eq_bytes(b"hello"));
        assert_eq!(got.kind, Kind::Oneway);
    }

    async fn fabric_sleep(s: &Socket) {
        let sim = s.host().fabric().sim().clone();
        sim.sleep(SimDuration::from_secs(1)).await;
    }

    #[test]
    fn request_reply_roundtrip_matches_paper_rtt() {
        // Table 1: 1KB ZeroMQ roundtrip between two EC2 instances = 290 µs.
        let (sim, fabric, a, b) = setup(2);
        let client = fabric.bind(&a, 1).unwrap();
        let server = fabric.bind(&b, 2).unwrap();
        let server_addr = server.addr();
        sim.spawn(async move {
            loop {
                let req = server.recv().await;
                server.reply(&req, req.payload.clone()).await;
            }
        });
        let rtt = sim.block_on(async move {
            let payload = Bytes::from(vec![0u8; 1024]);
            let (_reply, rtt) = client
                .request_timed(server_addr, payload)
                .await
                .unwrap();
            rtt
        });
        // Two one-way hops at 145 µs each plus NIC serialization of ~1 KB
        // at 10 Gbps (sub-µs): ~290 µs.
        let us = rtt.as_secs_f64() * 1e6;
        assert!((us - 290.0).abs() < 5.0, "rtt {us} µs");
    }

    #[test]
    fn port_collision_rejected() {
        let (_sim, fabric, a, _b) = setup(3);
        let _s1 = fabric.bind(&a, 80).unwrap();
        let err = fabric.bind(&a, 80).unwrap_err();
        assert!(matches!(err, NetError::PortInUse(_)));
    }

    #[test]
    fn rebind_after_drop() {
        let (_sim, fabric, a, _b) = setup(4);
        let s1 = fabric.bind(&a, 80).unwrap();
        let addr = s1.addr();
        assert!(fabric.is_bound(addr));
        drop(s1);
        assert!(!fabric.is_bound(addr));
        let _s2 = fabric.bind(&a, 80).unwrap();
    }

    #[test]
    fn message_to_unbound_port_is_dropped() {
        let (sim, fabric, a, b) = setup(5);
        let sa = fabric.bind(&a, 1).unwrap();
        let ghost = Addr {
            host: b.id(),
            port: 9999,
        };
        let rec = fabric.recorder().clone();
        sim.block_on(async move {
            sa.send(ghost, Bytes::from_static(b"void")).await;
            fabric_sleep(&sa).await;
        });
        assert_eq!(rec.counter("net.messages_dropped"), 1);
        assert_eq!(rec.counter("net.messages_delivered"), 0);
    }

    #[test]
    fn request_to_dead_peer_times_out() {
        let (sim, fabric, a, b) = setup(6);
        let sa = fabric.bind(&a, 1).unwrap();
        let ghost = Addr {
            host: b.id(),
            port: 9999,
        };
        let s = sim.clone();
        let out = sim.block_on(async move {
            s.timeout(
                SimDuration::from_millis(100),
                sa.request(ghost, Bytes::new()),
            )
            .await
        });
        assert!(out.is_none());
    }

    #[test]
    fn partition_blocks_both_directions_until_healed() {
        let (sim, fabric, a, b) = setup(10);
        let sa = fabric.bind(&a, 1).unwrap();
        let sb = fabric.bind(&b, 1).unwrap();
        let (to_a, to_b) = (sa.addr(), sb.addr());
        fabric.partition(&[a.id()], &[b.id()]);
        assert!(fabric.is_blocked(a.id(), b.id()));
        assert!(fabric.is_blocked(b.id(), a.id()));
        let rec = fabric.recorder().clone();
        sim.block_on({
            let sim = sim.clone();
            async move {
                sa.send(to_b, Bytes::from_static(b"x")).await;
                sb.send(to_a, Bytes::from_static(b"y")).await;
                sim.sleep(SimDuration::from_millis(10)).await;
                assert_eq!(sa.pending_recv(), 0);
                assert_eq!(sb.pending_recv(), 0);
                // Heal: traffic flows again.
                sa.host().fabric().heal_partition();
                sa.send(to_b, Bytes::from_static(b"z")).await;
                sim.sleep(SimDuration::from_millis(10)).await;
                assert_eq!(sb.pending_recv(), 1);
            }
        });
        assert_eq!(rec.counter("net.messages_partitioned"), 2);
    }

    #[test]
    fn killed_host_drops_messages() {
        let (sim, fabric, a, b) = setup(7);
        let sa = fabric.bind(&a, 1).unwrap();
        let sb = fabric.bind(&b, 1).unwrap();
        let to = sb.addr();
        fabric.kill_host(b.id());
        let rec = fabric.recorder().clone();
        sim.block_on(async move {
            sa.send(to, Bytes::from_static(b"x")).await;
            fabric_sleep(&sa).await;
        });
        assert_eq!(rec.counter("net.messages_dropped"), 1);
        drop(sb);
    }

    #[test]
    fn concurrent_requests_correlate_correctly() {
        let (sim, fabric, a, b) = setup(8);
        let client = Rc::new(fabric.bind(&a, 1).unwrap());
        let server = fabric.bind(&b, 2).unwrap();
        let server_addr = server.addr();
        let srv_sim = sim.clone();
        sim.spawn(async move {
            // Collect two requests, answer in reverse order.
            let r1 = server.recv().await;
            let r2 = server.recv().await;
            srv_sim.sleep(SimDuration::from_millis(1)).await;
            server.reply(&r2, r2.payload.clone()).await;
            server.reply(&r1, r1.payload.clone()).await;
        });
        let (x, y) = sim.block_on({
            let client = client.clone();
            async move {
                let c2 = client.clone();
                faasim_simcore::join2(
                    async move { client.request(server_addr, Bytes::from_static(b"one")).await },
                    async move { c2.request(server_addr, Bytes::from_static(b"two")).await },
                )
                .await
            }
        });
        // Each requester gets *its own* payload back despite reversed replies.
        assert!(x.unwrap().payload.eq_bytes(b"one"));
        assert!(y.unwrap().payload.eq_bytes(b"two"));
    }

    use std::rc::Rc;

    #[test]
    fn cross_rack_latency_is_higher() {
        let sim = Sim::new(9);
        let fabric = Fabric::new(&sim, NetProfile::aws_2018().exact(), Recorder::new());
        let a = fabric.add_host(0, NicConfig::simple(mbps(10_000.0)));
        let c = fabric.add_host(7, NicConfig::simple(mbps(10_000.0)));
        let sa = fabric.bind(&a, 1).unwrap();
        let sc = fabric.bind(&c, 1).unwrap();
        let to = sc.addr();
        sim.spawn(async move {
            loop {
                let req = sc.recv().await;
                sc.reply(&req, Bytes::new()).await;
            }
        });
        let rtt = sim.block_on(async move {
            let (_m, rtt) = sa.request_timed(to, Bytes::new()).await.unwrap();
            rtt
        });
        // Two 630 µs hops ≈ 1.26 ms (the Pingmesh figure from the paper).
        let ms = rtt.as_secs_f64() * 1e3;
        assert!((ms - 1.26).abs() < 0.05, "rtt {ms} ms");
    }
}
