//! The datacenter fabric: racks, hosts, NICs, and pairwise latency.
//!
//! Latency between two hosts depends only on their placement tier
//! (same host / same rack / cross rack), sampled from the profile's
//! [`LatencyModel`]s. Bandwidth contention is modeled at each host's NIC
//! with a [`FairShareLink`]; the fabric core is assumed non-blocking
//! (true of modern Clos datacenter networks at the scales simulated here).

use std::cell::RefCell;
use std::collections::HashMap;
use std::fmt;
use std::rc::Rc;

use faasim_simcore::{
    Bps, FairShareLink, LatencyModel, Recorder, Sim, SimDuration, SimRng,
};

/// Identifier of a host on the fabric.
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct HostId(pub u64);

impl fmt::Display for HostId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "host{}", self.0)
    }
}

/// A rack number; hosts in the same rack see intra-rack latency.
pub type RackId = u32;

/// NIC sizing for a host.
#[derive(Copy, Clone, Debug, PartialEq)]
pub struct NicConfig {
    /// Total NIC capacity shared by all flows on the host, bits/second.
    pub capacity: Bps,
    /// Optional per-flow ceiling (the Lambda measurement of 538 Mbps for a
    /// single function is such a ceiling).
    pub per_flow_cap: Option<Bps>,
}

impl NicConfig {
    /// A NIC with the given capacity and no per-flow ceiling.
    pub fn simple(capacity: Bps) -> NicConfig {
        NicConfig {
            capacity,
            per_flow_cap: None,
        }
    }
}

/// Latency tiers of the fabric.
#[derive(Clone, Debug, PartialEq)]
pub struct NetProfile {
    /// One-way latency between two endpoints on the same host.
    pub loopback_one_way: LatencyModel,
    /// One-way latency within a rack.
    pub intra_rack_one_way: LatencyModel,
    /// One-way latency across racks.
    pub inter_rack_one_way: LatencyModel,
}

impl NetProfile {
    /// Calibrated to the paper's Table 1 (ZeroMQ 1KB RTT of 290 µs between
    /// two EC2 instances ⇒ 145 µs one-way including stack overheads) and to
    /// the Pingmesh inter-rack average of 1.26 ms RTT cited in §3.1.
    pub fn aws_2018() -> NetProfile {
        NetProfile {
            loopback_one_way: LatencyModel::LogNormal {
                mean: SimDuration::from_micros(15),
                cv: 0.10,
                floor: SimDuration::from_micros(5),
            },
            intra_rack_one_way: LatencyModel::LogNormal {
                mean: SimDuration::from_micros(145),
                cv: 0.10,
                floor: SimDuration::from_micros(50),
            },
            inter_rack_one_way: LatencyModel::LogNormal {
                mean: SimDuration::from_micros(630),
                cv: 0.15,
                floor: SimDuration::from_micros(200),
            },
        }
    }

    /// Collapse every tier to its mean, for exact-reproduction runs.
    pub fn exact(&self) -> NetProfile {
        NetProfile {
            loopback_one_way: self.loopback_one_way.to_constant(),
            intra_rack_one_way: self.intra_rack_one_way.to_constant(),
            inter_rack_one_way: self.inter_rack_one_way.to_constant(),
        }
    }
}

/// Deterministic fault-injection knobs for the fabric. All probabilities
/// default to zero, and the fabric consumes no extra RNG draws while they
/// are zero — enabling chaos never perturbs the event stream of a
/// fault-free run at the same seed.
#[derive(Clone, Debug, PartialEq)]
pub struct NetFaults {
    /// Probability that a sampled one-way latency gets a spike added.
    pub delay_spike_prob: f64,
    /// Extra latency added when a spike hits.
    pub delay_spike: LatencyModel,
    /// Probability that a datagram is silently lost on the wire (after
    /// paying the sender's NIC, like real packet loss).
    pub loss_prob: f64,
}

impl Default for NetFaults {
    fn default() -> Self {
        NetFaults {
            delay_spike_prob: 0.0,
            delay_spike: LatencyModel::Constant(SimDuration::from_millis(50)),
            loss_prob: 0.0,
        }
    }
}

/// NIC contention statistics, sampled at every transfer start via the
/// link's O(1) accessors (`active_flows` / `fair_share_estimate`). The
/// sampling is plain-cell bookkeeping on the hot path — it never records
/// into the shared [`Recorder`], so enabling it cannot perturb recorder
/// digests or the event stream.
#[derive(Copy, Clone, Debug, PartialEq)]
pub struct NicStats {
    /// Transfers started through this host's NIC.
    pub transfers: u64,
    /// Sum over transfer starts of the concurrent flow count including
    /// the starting flow; `concurrency_sum / transfers` is the mean
    /// fan-in a transfer observed.
    pub concurrency_sum: u64,
    /// Peak concurrent flows observed at any transfer start.
    pub peak_flows: u64,
    /// Lowest fair-share estimate seen at any transfer start, bits/sec —
    /// the §3 bandwidth-collapse number for this host.
    pub min_fair_share: Bps,
}

impl Default for NicStats {
    fn default() -> Self {
        NicStats {
            transfers: 0,
            concurrency_sum: 0,
            peak_flows: 0,
            min_fair_share: f64::INFINITY,
        }
    }
}

impl NicStats {
    /// Mean concurrent flows observed at transfer starts (0 if none).
    pub fn mean_fan_in(&self) -> f64 {
        if self.transfers == 0 {
            0.0
        } else {
            self.concurrency_sum as f64 / self.transfers as f64
        }
    }
}

pub(crate) struct HostState {
    rack: RackId,
    nic: FairShareLink,
    per_flow_cap: Option<Bps>,
    alive: std::cell::Cell<bool>,
    stats: RefCell<NicStats>,
}

impl HostState {
    pub(crate) fn is_alive(&self) -> bool {
        self.alive.get()
    }

    pub(crate) fn nic(&self) -> &FairShareLink {
        &self.nic
    }

    pub(crate) fn flow_cap(&self) -> Option<Bps> {
        self.per_flow_cap
    }
}

pub(crate) struct FabricInner {
    pub(crate) sim: Sim,
    profile: NetProfile,
    hosts: RefCell<HashMap<HostId, Rc<HostState>>>,
    next_host: RefCell<u64>,
    rng: RefCell<SimRng>,
    pub(crate) recorder: Recorder,
    pub(crate) sockets: RefCell<HashMap<super::socket::Addr, super::socket::SocketHandle>>,
    /// Active network partition: host sets that cannot reach each other.
    partition: RefCell<Option<(std::collections::HashSet<HostId>, std::collections::HashSet<HostId>)>>,
    /// Chaos knobs (all zero by default).
    faults: RefCell<NetFaults>,
}

/// The datacenter network. Cheap to clone.
#[derive(Clone)]
pub struct Fabric {
    pub(crate) inner: Rc<FabricInner>,
}

impl Fabric {
    /// Build a fabric on `sim` with the given latency profile.
    pub fn new(sim: &Sim, profile: NetProfile, recorder: Recorder) -> Fabric {
        Fabric {
            inner: Rc::new(FabricInner {
                sim: sim.clone(),
                profile,
                hosts: RefCell::new(HashMap::new()),
                next_host: RefCell::new(0),
                rng: RefCell::new(sim.rng("net.fabric")),
                recorder,
                sockets: RefCell::new(HashMap::new()),
                partition: RefCell::new(None),
                faults: RefCell::new(NetFaults::default()),
            }),
        }
    }

    /// The simulation this fabric runs on.
    pub fn sim(&self) -> &Sim {
        &self.inner.sim
    }

    /// Metrics recorder shared with the rest of the cloud.
    pub fn recorder(&self) -> &Recorder {
        &self.inner.recorder
    }

    /// Attach a new host in `rack` with the given NIC.
    pub fn add_host(&self, rack: RackId, nic: NicConfig) -> Host {
        let id = {
            let mut next = self.inner.next_host.borrow_mut();
            let id = HostId(*next);
            *next += 1;
            id
        };
        let state = Rc::new(HostState {
            rack,
            nic: FairShareLink::new(&self.inner.sim, nic.capacity),
            per_flow_cap: nic.per_flow_cap,
            alive: std::cell::Cell::new(true),
            stats: RefCell::new(NicStats::default()),
        });
        self.inner.hosts.borrow_mut().insert(id, state.clone());
        Host {
            id,
            state,
            fabric: self.clone(),
        }
    }

    /// Number of attached hosts.
    pub fn host_count(&self) -> usize {
        self.inner.hosts.borrow().len()
    }

    /// Sample the one-way latency from `a` to `b`.
    pub fn one_way_latency(&self, a: &Host, b_id: HostId) -> SimDuration {
        let model = {
            let hosts = self.inner.hosts.borrow();
            let b = hosts.get(&b_id);
            match b {
                Some(_) if a.id == b_id => &self.inner.profile.loopback_one_way,
                Some(b) if a.state.rack == b.rack => &self.inner.profile.intra_rack_one_way,
                Some(_) => &self.inner.profile.inter_rack_one_way,
                None => &self.inner.profile.inter_rack_one_way,
            }
            .clone()
        };
        let mut rng = self.inner.rng.borrow_mut();
        let mut latency = model.sample(&mut rng);
        let faults = self.inner.faults.borrow();
        if faults.delay_spike_prob > 0.0 && rng.chance(faults.delay_spike_prob) {
            latency += faults.delay_spike.sample(&mut rng);
            self.inner.recorder.incr("net.chaos_delay_spikes");
        }
        latency
    }

    /// Install chaos knobs; pass `NetFaults::default()` to disable.
    pub fn set_faults(&self, faults: NetFaults) {
        *self.inner.faults.borrow_mut() = faults;
    }

    /// Whether the chaos layer eats this datagram (packet loss). Consumes
    /// an RNG draw only when a loss probability is configured.
    pub(crate) fn chaos_drop(&self) -> bool {
        let p = self.inner.faults.borrow().loss_prob;
        p > 0.0 && self.inner.rng.borrow_mut().chance(p)
    }

    /// Partition the network: messages between `side_a` and `side_b` are
    /// dropped in both directions until [`Fabric::heal_partition`]. Hosts
    /// in neither set communicate freely with everyone (they model the
    /// unaffected part of the datacenter). Storage services are not
    /// partitioned — the paper's world keeps S3/DynamoDB reachable while
    /// compute nodes lose each other.
    pub fn partition(&self, side_a: &[HostId], side_b: &[HostId]) {
        *self.inner.partition.borrow_mut() = Some((
            side_a.iter().copied().collect(),
            side_b.iter().copied().collect(),
        ));
    }

    /// Remove the active partition.
    pub fn heal_partition(&self) {
        *self.inner.partition.borrow_mut() = None;
    }

    /// Whether a message from `a` to `b` is currently blocked.
    pub fn is_blocked(&self, a: HostId, b: HostId) -> bool {
        match &*self.inner.partition.borrow() {
            None => false,
            Some((left, right)) => {
                (left.contains(&a) && right.contains(&b))
                    || (right.contains(&a) && left.contains(&b))
            }
        }
    }

    /// Fail a host: in-flight and future messages toward it are dropped.
    /// Used for failure injection (e.g. killing the election leader).
    pub fn kill_host(&self, id: HostId) {
        if let Some(h) = self.inner.hosts.borrow().get(&id) {
            h.alive.set(false);
        }
    }

    /// Whether the host is alive (not [`Fabric::kill_host`]ed).
    pub fn is_host_alive(&self, id: HostId) -> bool {
        self.inner
            .hosts
            .borrow()
            .get(&id)
            .map(|h| h.is_alive())
            .unwrap_or(false)
    }

    pub(crate) fn host_state(&self, id: HostId) -> Option<Rc<HostState>> {
        self.inner.hosts.borrow().get(&id).cloned()
    }
}

/// A host attached to the fabric: the unit that owns a NIC. VMs and FaaS
/// container hosts are all `Host`s.
#[derive(Clone)]
pub struct Host {
    id: HostId,
    state: Rc<HostState>,
    fabric: Fabric,
}

impl fmt::Debug for Host {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Host")
            .field("id", &self.id)
            .field("rack", &self.state.rack)
            .finish()
    }
}

impl Host {
    /// This host's id.
    pub fn id(&self) -> HostId {
        self.id
    }

    /// The rack this host lives in.
    pub fn rack(&self) -> RackId {
        self.state.rack
    }

    /// The fabric this host is attached to.
    pub fn fabric(&self) -> &Fabric {
        &self.fabric
    }

    /// The host's NIC link (shared by every flow to/from this host).
    pub fn nic(&self) -> &FairShareLink {
        &self.state.nic
    }

    /// The per-flow ceiling configured for this host, if any.
    pub fn per_flow_cap(&self) -> Option<Bps> {
        self.state.per_flow_cap
    }

    /// Contention statistics sampled at transfer starts on this host.
    pub fn nic_stats(&self) -> NicStats {
        *self.state.stats.borrow()
    }

    /// Sample the NIC's contention state as a new transfer starts. Both
    /// accessors are O(1) counters on the link, so this stays on the hot
    /// path unconditionally.
    fn note_transfer_start(&self) {
        let mut st = self.state.stats.borrow_mut();
        st.transfers += 1;
        let n = self.state.nic.active_flows() as u64 + 1;
        st.concurrency_sum += n;
        st.peak_flows = st.peak_flows.max(n);
        st.min_fair_share = st.min_fair_share.min(self.state.nic.fair_share_estimate());
    }

    /// Move `bytes` through this host's NIC, respecting the per-flow cap
    /// and fair sharing with every other active flow on the host.
    pub async fn nic_transfer(&self, bytes: u64) {
        self.note_transfer_start();
        self.state
            .nic
            .transfer(bytes, self.state.per_flow_cap)
            .await;
    }

    /// Move `bytes` through the NIC with an additional ceiling (e.g. a
    /// storage service's per-connection limit). The effective cap is the
    /// minimum of the host cap and `extra_cap`.
    pub async fn nic_transfer_capped(&self, bytes: u64, extra_cap: Bps) {
        let cap = match self.state.per_flow_cap {
            Some(host_cap) => host_cap.min(extra_cap),
            None => extra_cap,
        };
        self.note_transfer_start();
        self.state.nic.transfer(bytes, Some(cap)).await;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use faasim_simcore::mbps;

    fn test_fabric(seed: u64) -> (Sim, Fabric) {
        let sim = Sim::new(seed);
        let fabric = Fabric::new(&sim, NetProfile::aws_2018().exact(), Recorder::new());
        (sim, fabric)
    }

    #[test]
    fn hosts_get_distinct_ids() {
        let (_sim, fabric) = test_fabric(1);
        let a = fabric.add_host(0, NicConfig::simple(mbps(1000.0)));
        let b = fabric.add_host(0, NicConfig::simple(mbps(1000.0)));
        assert_ne!(a.id(), b.id());
        assert_eq!(fabric.host_count(), 2);
    }

    #[test]
    fn latency_tiers_ordered() {
        let (_sim, fabric) = test_fabric(2);
        let a = fabric.add_host(0, NicConfig::simple(mbps(1000.0)));
        let b = fabric.add_host(0, NicConfig::simple(mbps(1000.0)));
        let c = fabric.add_host(1, NicConfig::simple(mbps(1000.0)));
        let loopback = fabric.one_way_latency(&a, a.id());
        let intra = fabric.one_way_latency(&a, b.id());
        let inter = fabric.one_way_latency(&a, c.id());
        assert!(loopback < intra, "{loopback} !< {intra}");
        assert!(intra < inter, "{intra} !< {inter}");
        // Exact profile: calibrated one-way means.
        assert_eq!(intra, SimDuration::from_micros(145));
        assert_eq!(inter, SimDuration::from_micros(630));
    }

    #[test]
    fn nic_transfer_respects_capacity() {
        let (sim, fabric) = test_fabric(3);
        let host = fabric.add_host(0, NicConfig::simple(mbps(8.0))); // 1 MB/s
        sim.block_on(async move {
            host.nic_transfer(1_000_000).await;
        });
        assert!((sim.now().as_secs_f64() - 1.0).abs() < 1e-6);
    }

    #[test]
    fn per_flow_cap_and_extra_cap_compose() {
        let (sim, fabric) = test_fabric(4);
        let host = fabric.add_host(
            0,
            NicConfig {
                capacity: mbps(1000.0),
                per_flow_cap: Some(mbps(16.0)),
            },
        );
        let h2 = host.clone();
        sim.block_on(async move {
            // extra cap 8 Mbps is tighter than the host's 16 Mbps.
            h2.nic_transfer_capped(1_000_000, mbps(8.0)).await;
            // host cap 16 Mbps is tighter than extra 1000 Mbps.
            h2.nic_transfer_capped(1_000_000, mbps(1000.0)).await;
        });
        let t = sim.now().as_secs_f64();
        assert!((t - 1.5).abs() < 1e-6, "took {t}");
    }

    #[test]
    fn packed_host_shares_nic() {
        // The §3 bandwidth collapse: 20 co-located flows on one 574 Mbps
        // NIC get ~28.7 Mbps each.
        let (sim, fabric) = test_fabric(5);
        let host = fabric.add_host(
            0,
            NicConfig {
                capacity: mbps(574.0),
                per_flow_cap: Some(mbps(538.0)),
            },
        );
        for _ in 0..20 {
            let h = host.clone();
            sim.spawn(async move {
                h.nic_transfer(3_587_500).await; // 28.7 Mbit
            });
        }
        sim.run();
        assert!((sim.now().as_secs_f64() - 1.0).abs() < 1e-3, "{}", sim.now());
    }

    #[test]
    fn nic_stats_track_fan_in() {
        let (sim, fabric) = test_fabric(6);
        let host = fabric.add_host(0, NicConfig::simple(mbps(574.0)));
        for _ in 0..20 {
            let h = host.clone();
            sim.spawn(async move {
                h.nic_transfer(3_587_500).await;
            });
        }
        sim.run();
        let stats = host.nic_stats();
        assert_eq!(stats.transfers, 20);
        // All 20 start at t=0; the k-th start sees k concurrent flows.
        assert_eq!(stats.peak_flows, 20);
        assert_eq!(stats.concurrency_sum, (1..=20).sum::<u64>());
        assert!((stats.mean_fan_in() - 10.5).abs() < 1e-9);
        // The last starter's estimate is the §3 collapse: 574/20 Mbps.
        assert!((stats.min_fair_share - mbps(574.0 / 20.0)).abs() < 1.0);
        // Fresh host: no samples yet.
        let idle = fabric.add_host(0, NicConfig::simple(mbps(1.0)));
        assert_eq!(idle.nic_stats(), NicStats::default());
        assert_eq!(idle.nic_stats().mean_fan_in(), 0.0);
    }
}
