//! # faasim-net
//!
//! The simulated datacenter network: a [`Fabric`] of racks and [`Host`]s,
//! each with a fair-shared NIC, plus directly addressable [`Socket`]s with
//! UDP-like datagram and request/reply semantics.
//!
//! Latency tiers are calibrated to the paper's Table 1 (290 µs 1KB ZeroMQ
//! RTT within a rack) and the Pingmesh inter-rack average (1.26 ms RTT) it
//! cites. NIC sharing reproduces the §3 per-function bandwidth collapse
//! under container packing.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

mod fabric;
mod socket;

pub use fabric::{Fabric, Host, HostId, NetFaults, NetProfile, NicConfig, NicStats, RackId};
pub use socket::{Addr, Kind, Message, NetError, RecvFut, Socket, WIRE_OVERHEAD_BYTES};
