//! Seeded randomness for deterministic simulations.
//!
//! All randomness in a simulation flows from a single root `u64` seed.
//! Components derive independent named streams with [`SimRng::stream`], so
//! adding a component (or reordering calls) never perturbs the draws seen
//! by another component.
//!
//! Samplers beyond the uniform ones are hand-rolled (Box–Muller for the
//! normal family) to keep the dependency set minimal.

use std::ops::Range;

use rand::rngs::SmallRng;
use rand::{RngExt, SeedableRng};

use crate::time::SimDuration;

/// Deterministic random stream.
#[derive(Clone, Debug)]
pub struct SimRng {
    rng: SmallRng,
}

/// FNV-1a, used to mix a stream label into the root seed.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// SplitMix64 finalizer; decorrelates seeds that differ in few bits.
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

impl SimRng {
    /// A stream derived directly from a seed.
    pub fn from_seed(seed: u64) -> SimRng {
        SimRng {
            rng: SmallRng::seed_from_u64(splitmix64(seed)),
        }
    }

    /// The stream identified by `(root_seed, label)`.
    pub fn stream(root_seed: u64, label: &str) -> SimRng {
        SimRng::from_seed(root_seed ^ fnv1a(label.as_bytes()))
    }

    /// Fork a sub-stream; the child is independent of subsequent draws on
    /// `self`.
    pub fn fork(&mut self, label: &str) -> SimRng {
        let salt: u64 = self.rng.random();
        SimRng::from_seed(salt ^ fnv1a(label.as_bytes()))
    }

    /// Uniform `u64` in `range`.
    pub fn range_u64(&mut self, range: Range<u64>) -> u64 {
        self.rng.random_range(range)
    }

    /// Uniform `usize` in `range`.
    pub fn range_usize(&mut self, range: Range<usize>) -> usize {
        self.rng.random_range(range)
    }

    /// Uniform in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        self.rng.random::<f64>()
    }

    /// Uniform in `[lo, hi)`.
    pub fn uniform(&mut self, lo: f64, hi: f64) -> f64 {
        debug_assert!(hi >= lo);
        lo + (hi - lo) * self.unit_f64()
    }

    /// Bernoulli trial.
    pub fn chance(&mut self, p: f64) -> bool {
        self.unit_f64() < p
    }

    /// Standard normal via Box–Muller.
    pub fn std_normal(&mut self) -> f64 {
        // Avoid ln(0).
        let u1 = 1.0 - self.unit_f64();
        let u2 = self.unit_f64();
        (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
    }

    /// Normal with the given mean and standard deviation.
    pub fn normal(&mut self, mean: f64, std_dev: f64) -> f64 {
        mean + std_dev * self.std_normal()
    }

    /// Log-normal parameterized by the *mean* of the distribution itself and
    /// the coefficient of variation (`std_dev / mean`) — the natural way to
    /// specify a latency model ("53 ms mean, 20% spread").
    pub fn lognormal_mean_cv(&mut self, mean: f64, cv: f64) -> f64 {
        if mean <= 0.0 {
            return 0.0;
        }
        if cv <= 0.0 {
            return mean;
        }
        let sigma2 = (1.0 + cv * cv).ln();
        let mu = mean.ln() - sigma2 / 2.0;
        (mu + sigma2.sqrt() * self.std_normal()).exp()
    }

    /// Exponential with the given mean.
    pub fn exponential(&mut self, mean: f64) -> f64 {
        let u = 1.0 - self.unit_f64();
        -mean * u.ln()
    }

    /// Zipf-distributed rank in `[0, n)` with exponent `s` (s=1 is classic).
    ///
    /// Uses inverse-CDF over precomputable weights; for simulation-sized `n`
    /// a rejection-free linear scan over a cached CDF would be heavy to
    /// rebuild per call, so this uses the approximation of Gray's method:
    /// rejection sampling against a bounding envelope. Deterministic given
    /// the stream state.
    pub fn zipf(&mut self, n: usize, s: f64) -> usize {
        assert!(n >= 1);
        if n == 1 {
            return 0;
        }
        let n_f = n as f64;
        if (s - 1.0).abs() < 1e-9 {
            // Envelope for s = 1: H(n) ~ ln(n) + gamma.
            loop {
                let u = self.unit_f64();
                let x = (n_f + 1.0).powf(u) - 1.0; // inverse of envelope CDF
                let k = x.floor() as usize;
                if k >= n {
                    continue;
                }
                let accept = (k as f64 + 1.0) / (k as f64 + 2.0) * (x + 1.0) / (k as f64 + 1.0);
                if self.unit_f64() < accept.min(1.0) {
                    return k;
                }
            }
        }
        // General s: inverse transform on the continuous envelope
        // f(x) = x^-s over [1, n+1], then accept/reject.
        let one_minus_s = 1.0 - s;
        let b = (n_f + 1.0).powf(one_minus_s);
        loop {
            let u = self.unit_f64();
            let x = (1.0 + u * (b - 1.0)).powf(1.0 / one_minus_s);
            let k = (x.floor() as usize).saturating_sub(1);
            if k >= n {
                continue;
            }
            let accept = ((k + 1) as f64 / x).powf(s);
            if self.unit_f64() < accept.min(1.0) {
                return k;
            }
        }
    }

    /// Shuffle a slice in place (Fisher–Yates).
    pub fn shuffle<T>(&mut self, xs: &mut [T]) {
        for i in (1..xs.len()).rev() {
            let j = self.range_usize(0..i + 1);
            xs.swap(i, j);
        }
    }

    /// Pick a uniformly random element.
    pub fn choose<'a, T>(&mut self, xs: &'a [T]) -> Option<&'a T> {
        if xs.is_empty() {
            None
        } else {
            Some(&xs[self.range_usize(0..xs.len())])
        }
    }

    /// Raw access to the underlying RNG for `rand` APIs.
    pub fn raw(&mut self) -> &mut SmallRng {
        &mut self.rng
    }
}

/// A parameterized latency distribution used throughout the service crates.
///
/// Every service latency in the cloud profile is one of these, so an
/// experiment can switch between exact paper-calibrated constants and
/// realistic spreads without touching service code.
#[derive(Clone, Debug, PartialEq)]
pub enum LatencyModel {
    /// Always exactly this long.
    Constant(SimDuration),
    /// Uniform between the two bounds.
    Uniform(SimDuration, SimDuration),
    /// Normal with mean/std, truncated below at `floor`.
    Normal {
        /// Mean of the untruncated distribution.
        mean: SimDuration,
        /// Standard deviation.
        std_dev: SimDuration,
        /// Samples below this are clamped up to it.
        floor: SimDuration,
    },
    /// Log-normal given mean and coefficient of variation, floored.
    LogNormal {
        /// Mean of the distribution itself (not of the underlying normal).
        mean: SimDuration,
        /// Coefficient of variation (`std_dev / mean`).
        cv: f64,
        /// Samples below this are clamped up to it.
        floor: SimDuration,
    },
    /// Exponential with the given mean, shifted up by `base`.
    ShiftedExponential {
        /// Constant added to every sample.
        base: SimDuration,
        /// Mean of the exponential component.
        mean_extra: SimDuration,
    },
}

impl LatencyModel {
    /// A log-normal with 10% coefficient of variation — the default shape
    /// for calibrated service latencies.
    pub fn calibrated_ms(mean_ms: f64) -> LatencyModel {
        LatencyModel::LogNormal {
            mean: SimDuration::from_secs_f64(mean_ms / 1e3),
            cv: 0.10,
            floor: SimDuration::from_secs_f64(mean_ms / 2e3),
        }
    }

    /// Draw one latency.
    pub fn sample(&self, rng: &mut SimRng) -> SimDuration {
        match *self {
            LatencyModel::Constant(d) => d,
            LatencyModel::Uniform(lo, hi) => {
                let (lo, hi) = if lo <= hi { (lo, hi) } else { (hi, lo) };
                SimDuration::from_secs_f64(rng.uniform(lo.as_secs_f64(), hi.as_secs_f64()))
            }
            LatencyModel::Normal {
                mean,
                std_dev,
                floor,
            } => {
                let v = rng.normal(mean.as_secs_f64(), std_dev.as_secs_f64());
                SimDuration::from_secs_f64(v).max(floor)
            }
            LatencyModel::LogNormal { mean, cv, floor } => {
                let v = rng.lognormal_mean_cv(mean.as_secs_f64(), cv);
                SimDuration::from_secs_f64(v).max(floor)
            }
            LatencyModel::ShiftedExponential { base, mean_extra } => {
                base + SimDuration::from_secs_f64(rng.exponential(mean_extra.as_secs_f64()))
            }
        }
    }

    /// The exact mean of the distribution.
    pub fn mean(&self) -> SimDuration {
        match *self {
            LatencyModel::Constant(d) => d,
            LatencyModel::Uniform(lo, hi) => (lo + hi) / 2,
            LatencyModel::Normal { mean, .. } => mean,
            LatencyModel::LogNormal { mean, .. } => mean,
            LatencyModel::ShiftedExponential { base, mean_extra } => base + mean_extra,
        }
    }

    /// Replace the distribution with a constant at its mean — used by the
    /// "exact reproduction" cloud profile.
    pub fn to_constant(&self) -> LatencyModel {
        LatencyModel::Constant(self.mean())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn streams_are_deterministic_and_independent() {
        let mut a1 = SimRng::stream(7, "alpha");
        let mut a2 = SimRng::stream(7, "alpha");
        let mut b = SimRng::stream(7, "beta");
        let xs1: Vec<u64> = (0..10).map(|_| a1.range_u64(0..1_000_000)).collect();
        let xs2: Vec<u64> = (0..10).map(|_| a2.range_u64(0..1_000_000)).collect();
        let ys: Vec<u64> = (0..10).map(|_| b.range_u64(0..1_000_000)).collect();
        assert_eq!(xs1, xs2);
        assert_ne!(xs1, ys);
    }

    #[test]
    fn fork_creates_distinct_stream() {
        let mut root = SimRng::from_seed(3);
        let mut child = root.fork("child");
        let a: u64 = root.range_u64(0..u64::MAX);
        let b: u64 = child.range_u64(0..u64::MAX);
        assert_ne!(a, b);
    }

    #[test]
    fn normal_moments_are_close() {
        let mut rng = SimRng::from_seed(11);
        let n = 20_000;
        let xs: Vec<f64> = (0..n).map(|_| rng.normal(5.0, 2.0)).collect();
        let mean = xs.iter().sum::<f64>() / n as f64;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!((mean - 5.0).abs() < 0.06, "mean {mean}");
        assert!((var.sqrt() - 2.0).abs() < 0.06, "std {}", var.sqrt());
    }

    #[test]
    fn lognormal_mean_matches_parameter() {
        let mut rng = SimRng::from_seed(12);
        let n = 40_000;
        let mean = (0..n)
            .map(|_| rng.lognormal_mean_cv(0.053, 0.2))
            .sum::<f64>()
            / n as f64;
        assert!((mean - 0.053).abs() < 0.001, "mean {mean}");
    }

    #[test]
    fn lognormal_degenerate_cases() {
        let mut rng = SimRng::from_seed(13);
        assert_eq!(rng.lognormal_mean_cv(0.0, 0.5), 0.0);
        assert_eq!(rng.lognormal_mean_cv(2.0, 0.0), 2.0);
    }

    #[test]
    fn exponential_mean_matches() {
        let mut rng = SimRng::from_seed(14);
        let n = 40_000;
        let mean = (0..n).map(|_| rng.exponential(3.0)).sum::<f64>() / n as f64;
        assert!((mean - 3.0).abs() < 0.08, "mean {mean}");
    }

    #[test]
    fn zipf_is_skewed_and_in_range() {
        let mut rng = SimRng::from_seed(15);
        let n = 1_000;
        let mut counts = vec![0u32; n];
        for _ in 0..50_000 {
            let k = rng.zipf(n, 1.0);
            assert!(k < n);
            counts[k] += 1;
        }
        // Rank 0 must dominate rank 99 heavily under s=1.
        assert!(counts[0] > counts[99] * 10, "{} vs {}", counts[0], counts[99]);
        // And the tail must still be reachable.
        assert!(counts[500..].iter().any(|&c| c > 0));
    }

    #[test]
    fn zipf_general_exponent() {
        let mut rng = SimRng::from_seed(16);
        let mut counts = vec![0u32; 100];
        for _ in 0..20_000 {
            counts[rng.zipf(100, 1.5)] += 1;
        }
        assert!(counts[0] > counts[9] * 5);
        assert_eq!(rng.zipf(1, 1.5), 0);
    }

    #[test]
    fn shuffle_permutes() {
        let mut rng = SimRng::from_seed(17);
        let mut xs: Vec<u32> = (0..100).collect();
        rng.shuffle(&mut xs);
        let mut sorted = xs.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(xs, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn choose_handles_empty() {
        let mut rng = SimRng::from_seed(18);
        let empty: &[u32] = &[];
        assert!(rng.choose(empty).is_none());
        assert_eq!(rng.choose(&[42]), Some(&42));
    }

    #[test]
    fn latency_models_sample_near_mean() {
        let mut rng = SimRng::from_seed(19);
        let models = [
            LatencyModel::Constant(SimDuration::from_millis(53)),
            LatencyModel::Uniform(SimDuration::from_millis(40), SimDuration::from_millis(66)),
            LatencyModel::Normal {
                mean: SimDuration::from_millis(53),
                std_dev: SimDuration::from_millis(5),
                floor: SimDuration::from_millis(1),
            },
            LatencyModel::LogNormal {
                mean: SimDuration::from_millis(53),
                cv: 0.1,
                floor: SimDuration::from_millis(1),
            },
            LatencyModel::ShiftedExponential {
                base: SimDuration::from_millis(50),
                mean_extra: SimDuration::from_millis(3),
            },
        ];
        for m in &models {
            let n = 20_000;
            let total: f64 = (0..n).map(|_| m.sample(&mut rng).as_secs_f64()).sum();
            let mean = total / n as f64;
            let want = m.mean().as_secs_f64();
            assert!(
                (mean - want).abs() < want * 0.03,
                "{m:?}: got {mean}, want {want}"
            );
        }
    }

    #[test]
    fn to_constant_collapses_spread() {
        let m = LatencyModel::calibrated_ms(53.0).to_constant();
        let mut rng = SimRng::from_seed(20);
        let a = m.sample(&mut rng);
        let b = m.sample(&mut rng);
        assert_eq!(a, b);
        assert_eq!(a, SimDuration::from_millis(53));
    }
}
