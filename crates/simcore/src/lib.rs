//! # faasim-simcore
//!
//! Deterministic discrete-event simulation kernel for the `faasim`
//! workspace — the substrate on which every simulated cloud service
//! (object store, KV store, queue, FaaS platform, VMs, network) runs.
//!
//! The kernel provides:
//!
//! - **Virtual time** ([`SimTime`], [`SimDuration`]): integer nanoseconds,
//!   advanced only by the scheduler, never by the host clock.
//! - **A single-threaded async executor** ([`Sim`]): tasks are ordinary
//!   futures; `sleep`, channels, semaphores and bandwidth links suspend
//!   them; ties at the same instant resolve in registration order, so a
//!   run is a pure function of (program, seed).
//! - **Seeded randomness** ([`SimRng`], [`LatencyModel`]): every component
//!   draws from an independently derived named stream.
//! - **Max–min fair bandwidth links** ([`FairShareLink`]): the contention
//!   model behind the paper's NIC-sharing results.
//! - **Metrics** ([`Recorder`], [`Histogram`]): exact-sample statistics
//!   for the experiment harnesses.
//!
//! ## Example
//!
//! ```
//! use faasim_simcore::{Sim, SimDuration};
//!
//! let sim = Sim::new(42);
//! let s = sim.clone();
//! let elapsed = sim.block_on(async move {
//!     s.sleep(SimDuration::from_millis(250)).await;
//!     s.now()
//! });
//! assert_eq!(elapsed.as_nanos(), 250_000_000);
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

mod executor;
mod fxhash;
mod future_util;
mod link;
mod metrics;
mod rng;
mod sync;
mod time;
mod wheel;

pub use fxhash::{FxHashMap, FxHashSet, FxHasher};
pub use executor::{JoinHandle, Sim, SimProfile, SimStats, Sleep, TaskId, YieldNow};
pub use future_util::{join2, join3, join_all, select2, Either, LocalBoxFuture};
pub use link::{gbps, mbps, mbytes_per_sec, Bps, FairShareLink, Transfer};
pub use metrics::{CounterId, HistId, Histogram, LazyCounter, LazyHist, Recorder};
pub use rng::{LatencyModel, SimRng};
pub use sync::{
    channel, oneshot, Acquire, Barrier, BarrierWait, Canceled, Notified, Notify, OneshotReceiver,
    OneshotSender, Recv, Receiver, SemPermit, Semaphore, SendError, Sender,
};
pub use time::{SimDuration, SimTime};
