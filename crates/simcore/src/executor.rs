//! The deterministic single-threaded async executor over virtual time.
//!
//! [`Sim`] owns a hierarchical timer wheel (see [`crate::wheel`]) and a
//! FIFO ready queue. Execution order is a pure function of the program and
//! the seed: ties between timers firing at the same virtual instant are
//! broken by a monotonically increasing sequence number, and woken tasks
//! run in wake order.
//!
//! Tasks are ordinary `Future`s (not `Send`; the executor is deliberately
//! single-threaded). Services built on the simulator hand out futures that
//! suspend on timers ([`Sim::sleep`]), channels, semaphores, or bandwidth
//! links, and the run loop advances the virtual clock only when no task is
//! runnable.

use std::cell::{Cell, RefCell};
use std::collections::VecDeque;
use std::fmt;
use std::future::Future;
use std::pin::Pin;
use std::rc::Rc;
use std::task::{Context, Poll, RawWaker, RawWakerVTable, Waker};

use crate::rng::SimRng;
use crate::time::{SimDuration, SimTime};
use crate::wheel::TimerWheel;

/// Identifier of a spawned task: a slab slot index in the low 32 bits and
/// the slot's generation in the high 32, so recycled slots never confuse
/// a stale wake with a new task.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug)]
pub struct TaskId(u64);

impl TaskId {
    fn pack(index: u32, gen: u32) -> TaskId {
        TaskId((u64::from(gen) << 32) | u64::from(index))
    }

    fn index(self) -> usize {
        (self.0 & 0xffff_ffff) as usize
    }

    fn gen(self) -> u32 {
        (self.0 >> 32) as u32
    }
}

/// Queue of tasks that have been woken and await polling.
struct ReadyQueue {
    queue: RefCell<VecDeque<TaskId>>,
}

/// Per-task waker state, reached through a hand-rolled [`RawWaker`]
/// vtable instead of `Waker::from(Arc<_>)`.
///
/// The executor is single-threaded and every future it runs is `!Send`
/// by construction ([`Sim::spawn`] has no `Send` bound), so its wakers
/// never leave the thread: they live only in the timer wheel, the sync
/// primitives' wait queues, and `JoinState` — all owned by this `Sim`.
/// That makes the atomic refcount and the ready-queue mutex that
/// `Waker::from(Arc<_>)` forces pure overhead, paid on every poll (waker
/// clone), every sleep registration (clone into the timer), and every
/// wake (queue lock) — millions of times per replay. The raw vtable
/// below does the same bookkeeping on an `Rc`.
struct TaskWaker {
    ready: Rc<ReadyQueue>,
    id: TaskId,
}

// SAFETY for all four vtable fns: `data` is an `Rc<TaskWaker>` leaked via
// `Rc::into_raw` in `make_waker`, kept alive by the refcount the vtable
// itself maintains, and never shared across threads (see `TaskWaker`).
unsafe fn waker_clone(data: *const ()) -> RawWaker {
    unsafe { Rc::increment_strong_count(data as *const TaskWaker) };
    RawWaker::new(data, &WAKER_VTABLE)
}

unsafe fn waker_wake(data: *const ()) {
    unsafe {
        waker_wake_by_ref(data);
        waker_drop(data);
    }
}

unsafe fn waker_wake_by_ref(data: *const ()) {
    let tw = unsafe { &*(data as *const TaskWaker) };
    tw.ready.queue.borrow_mut().push_back(tw.id);
}

unsafe fn waker_drop(data: *const ()) {
    unsafe { Rc::decrement_strong_count(data as *const TaskWaker) };
}

static WAKER_VTABLE: RawWakerVTable =
    RawWakerVTable::new(waker_clone, waker_wake, waker_wake_by_ref, waker_drop);

fn make_waker(ready: Rc<ReadyQueue>, id: TaskId) -> Waker {
    let data = Rc::into_raw(Rc::new(TaskWaker { ready, id }));
    // SAFETY: the vtable contract above; the initial strong count is the
    // reference this Waker owns.
    unsafe { Waker::from_raw(RawWaker::new(data as *const (), &WAKER_VTABLE)) }
}

/// Handle to a pending wake-timer's cancel flag in the timer-flag slab.
/// Replaces a per-sleep `Rc<Cell<bool>>` allocation: cancelling is a flag
/// write into a recycled slot, guarded by a generation check.
#[derive(Copy, Clone, Debug)]
pub(crate) struct TimerToken {
    index: u32,
    gen: u32,
}

#[derive(Copy, Clone, Default)]
struct TimerFlag {
    gen: u32,
    canceled: bool,
}

enum TimerAction {
    Wake(Waker, TimerToken),
    Call(Box<dyn FnOnce()>),
}

type BoxedTask = Pin<Box<dyn Future<Output = ()>>>;

/// One slab slot. The waker is built once at spawn and reused for every
/// poll of the task, instead of a fresh `Arc` per poll. The future is
/// `None` while being polled (it is temporarily moved out so the poll may
/// reborrow the task table, e.g. to spawn).
struct TaskSlot {
    gen: u32,
    fut: Option<BoxedTask>,
    waker: Waker,
}

enum Slot {
    /// Free slot; remembers the generation the next occupant will get.
    Vacant { next_gen: u32 },
    Occupied(TaskSlot),
}

struct Inner {
    now: Cell<SimTime>,
    seq: Cell<u64>,
    timers: RefCell<TimerWheel<TimerAction>>,
    timer_flags: RefCell<Vec<TimerFlag>>,
    timer_free: RefCell<Vec<u32>>,
    ready: Rc<ReadyQueue>,
    tasks: RefCell<Vec<Slot>>,
    task_free: RefCell<Vec<u32>>,
    tasks_alive: Cell<usize>,
    seed: u64,
    events_processed: Cell<u64>,
    tasks_spawned: Cell<u64>,
    // Recorder-free profiling counters (see `SimProfile`).
    task_polls: Cell<u64>,
    peak_tasks_alive: Cell<usize>,
    timer_pushes: Cell<u64>,
    timer_fires: Cell<u64>,
    timer_cancels: Cell<u64>,
    /// Scratch buffer for `fire_next_timers`; kept here so its
    /// allocation is reused across every firing instant.
    fire_batch: RefCell<Vec<TimerAction>>,
}

/// Handle to the simulation. Cheap to clone; all clones share one virtual
/// clock and scheduler.
#[derive(Clone)]
pub struct Sim {
    inner: Rc<Inner>,
}

impl fmt::Debug for Sim {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Sim")
            .field("now", &self.now())
            .field("seed", &self.inner.seed)
            .field("events_processed", &self.inner.events_processed.get())
            .finish()
    }
}

/// Counters describing how much work the simulator has done, for
/// micro-benchmarking the kernel itself.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct SimStats {
    /// Task polls plus timer firings.
    pub events_processed: u64,
    /// Total tasks ever spawned.
    pub tasks_spawned: u64,
    /// Tasks currently alive.
    pub tasks_alive: usize,
}

/// Recorder-free engine profile: where the kernel's time went, so perf
/// work can attribute wins instead of guessing. Every counter is a plain
/// `Cell` increment on the hot path and deterministic for a given
/// program + seed. Snapshot with [`Sim::profile`].
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct SimProfile {
    /// Task polls (a strict subset of `events_processed`).
    pub task_polls: u64,
    /// Total tasks ever spawned.
    pub tasks_spawned: u64,
    /// Peak simultaneously-live tasks.
    pub peak_live_tasks: usize,
    /// Timers registered (sleeps + scheduled callbacks).
    pub timer_pushes: u64,
    /// Timers that actually fired (canceled entries excluded).
    pub timer_fires: u64,
    /// Wake-timers canceled before firing (e.g. dropped `Sleep`s).
    pub timer_cancels: u64,
    /// Entries re-bucketed by wheel cascades and overflow migrations —
    /// the wheel's "depth" cost (0 means every timer was bucketed once).
    pub timer_cascades: u64,
    /// Timers routed to the far-future overflow heap.
    pub timer_overflow: u64,
    /// Peak simultaneously-pending timers.
    pub peak_pending_timers: usize,
}

impl fmt::Display for SimProfile {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "polls {} · spawns {} (peak {} live) · timers {} pushed / {} fired / {} canceled · wheel {} cascaded / {} overflow / peak {} pending",
            self.task_polls,
            self.tasks_spawned,
            self.peak_live_tasks,
            self.timer_pushes,
            self.timer_fires,
            self.timer_cancels,
            self.timer_cascades,
            self.timer_overflow,
            self.peak_pending_timers,
        )
    }
}

impl Sim {
    /// Create a fresh simulation whose randomness derives from `seed`.
    pub fn new(seed: u64) -> Sim {
        Sim {
            inner: Rc::new(Inner {
                now: Cell::new(SimTime::ZERO),
                seq: Cell::new(0),
                timers: RefCell::new(TimerWheel::new()),
                timer_flags: RefCell::new(Vec::new()),
                timer_free: RefCell::new(Vec::new()),
                ready: Rc::new(ReadyQueue {
                    queue: RefCell::new(VecDeque::new()),
                }),
                tasks: RefCell::new(Vec::new()),
                task_free: RefCell::new(Vec::new()),
                tasks_alive: Cell::new(0),
                seed,
                events_processed: Cell::new(0),
                tasks_spawned: Cell::new(0),
                task_polls: Cell::new(0),
                peak_tasks_alive: Cell::new(0),
                timer_pushes: Cell::new(0),
                timer_fires: Cell::new(0),
                timer_cancels: Cell::new(0),
                fire_batch: RefCell::new(Vec::new()),
            }),
        }
    }

    /// Current virtual time.
    #[inline]
    pub fn now(&self) -> SimTime {
        self.inner.now.get()
    }

    /// The root seed this simulation was created with.
    #[inline]
    pub fn seed(&self) -> u64 {
        self.inner.seed
    }

    /// Derive a named random stream. The same `(seed, label)` pair always
    /// yields the same stream, independent of call order — give each
    /// component its own label.
    pub fn rng(&self, label: &str) -> SimRng {
        SimRng::stream(self.inner.seed, label)
    }

    /// Kernel statistics.
    pub fn stats(&self) -> SimStats {
        SimStats {
            events_processed: self.inner.events_processed.get(),
            tasks_spawned: self.inner.tasks_spawned.get(),
            tasks_alive: self.inner.tasks_alive.get(),
        }
    }

    /// Snapshot of the engine profiling counters (see [`SimProfile`]).
    pub fn profile(&self) -> SimProfile {
        let timers = self.inner.timers.borrow();
        SimProfile {
            task_polls: self.inner.task_polls.get(),
            tasks_spawned: self.inner.tasks_spawned.get(),
            peak_live_tasks: self.inner.peak_tasks_alive.get(),
            timer_pushes: self.inner.timer_pushes.get(),
            timer_fires: self.inner.timer_fires.get(),
            timer_cancels: self.inner.timer_cancels.get(),
            timer_cascades: timers.cascades(),
            timer_overflow: timers.overflow_pushes(),
            peak_pending_timers: timers.peak_len(),
        }
    }

    fn next_seq(&self) -> u64 {
        let s = self.inner.seq.get();
        self.inner.seq.set(s + 1);
        s
    }

    /// Spawn a task. The returned [`JoinHandle`] can be awaited for the
    /// task's output or dropped to let the task run detached.
    pub fn spawn<F, T>(&self, fut: F) -> JoinHandle<T>
    where
        F: Future<Output = T> + 'static,
        T: 'static,
    {
        let state: Rc<RefCell<JoinState<T>>> = Rc::new(RefCell::new(JoinState {
            result: None,
            waker: None,
        }));
        let st = state.clone();
        let id = self.spawn_boxed(Box::pin(async move {
            let out = fut.await;
            let waker = {
                let mut s = st.borrow_mut();
                s.result = Some(out);
                s.waker.take()
            };
            if let Some(w) = waker {
                w.wake();
            }
        }));
        JoinHandle { state, id }
    }

    /// Spawn a task whose output nobody will join on. Skips the
    /// `JoinHandle` completion-state allocation that [`Sim::spawn`] pays,
    /// which matters on fan-out hot paths spawning one task per request.
    pub fn spawn_detached<F>(&self, fut: F)
    where
        F: Future<Output = ()> + 'static,
    {
        self.spawn_boxed(Box::pin(fut));
    }

    /// Install a boxed task in the slab and enqueue its first poll.
    fn spawn_boxed(&self, wrapped: BoxedTask) -> TaskId {
        self.inner.tasks_spawned.set(self.inner.tasks_spawned.get() + 1);
        let alive = self.inner.tasks_alive.get() + 1;
        self.inner.tasks_alive.set(alive);
        if alive > self.inner.peak_tasks_alive.get() {
            self.inner.peak_tasks_alive.set(alive);
        }
        let id = {
            let mut tasks = self.inner.tasks.borrow_mut();
            let (index, gen) = match self.inner.task_free.borrow_mut().pop() {
                Some(index) => {
                    let gen = match tasks[index as usize] {
                        Slot::Vacant { next_gen } => next_gen,
                        Slot::Occupied(_) => unreachable!("free list holds vacant slots"),
                    };
                    (index, gen)
                }
                None => {
                    tasks.push(Slot::Vacant { next_gen: 0 });
                    ((tasks.len() - 1) as u32, 0)
                }
            };
            let id = TaskId::pack(index, gen);
            let waker = make_waker(self.inner.ready.clone(), id);
            tasks[index as usize] = Slot::Occupied(TaskSlot {
                gen,
                fut: Some(wrapped),
                waker,
            });
            id
        };
        self.inner.ready.queue.borrow_mut().push_back(id);
        id
    }

    /// Register a waker to fire at virtual instant `at` (clamped to now).
    /// [`Sim::cancel_wake`] with the returned token cancels the wakeup: the
    /// entry is discarded lazily without advancing the clock to it.
    pub(crate) fn register_wake_at(&self, at: SimTime, waker: Waker) -> TimerToken {
        let at = at.max(self.now());
        let seq = self.next_seq();
        let token = {
            let mut flags = self.inner.timer_flags.borrow_mut();
            match self.inner.timer_free.borrow_mut().pop() {
                Some(index) => {
                    flags[index as usize].canceled = false;
                    TimerToken {
                        index,
                        gen: flags[index as usize].gen,
                    }
                }
                None => {
                    flags.push(TimerFlag::default());
                    TimerToken {
                        index: (flags.len() - 1) as u32,
                        gen: 0,
                    }
                }
            }
        };
        self.inner.timer_pushes.set(self.inner.timer_pushes.get() + 1);
        self.inner
            .timers
            .borrow_mut()
            .push(at.as_nanos(), seq, TimerAction::Wake(waker, token));
        token
    }

    /// Cancel a pending wake-timer. A stale token (the timer already fired
    /// and its slot was recycled) is a no-op.
    pub(crate) fn cancel_wake(&self, token: TimerToken) {
        let mut flags = self.inner.timer_flags.borrow_mut();
        let flag = &mut flags[token.index as usize];
        if flag.gen == token.gen {
            flag.canceled = true;
            self.inner.timer_cancels.set(self.inner.timer_cancels.get() + 1);
        }
    }

    /// Run `f` at virtual instant `at` (clamped to now). Callbacks fire in
    /// (time, registration order). They run outside any task context and are
    /// the escape hatch used by resources such as bandwidth links.
    pub fn call_at(&self, at: SimTime, f: impl FnOnce() + 'static) {
        let at = at.max(self.now());
        let seq = self.next_seq();
        self.inner.timer_pushes.set(self.inner.timer_pushes.get() + 1);
        self.inner
            .timers
            .borrow_mut()
            .push(at.as_nanos(), seq, TimerAction::Call(Box::new(f)));
    }

    /// Run `f` after a delay.
    pub fn call_after(&self, d: SimDuration, f: impl FnOnce() + 'static) {
        self.call_at(self.now().saturating_add(d), f);
    }

    /// A future that completes `d` later in virtual time.
    pub fn sleep(&self, d: SimDuration) -> Sleep {
        self.sleep_until(self.now().saturating_add(d))
    }

    /// A future that completes at virtual instant `deadline`.
    pub fn sleep_until(&self, deadline: SimTime) -> Sleep {
        Sleep {
            sim: self.clone(),
            deadline,
            cancel: None,
            fired: false,
        }
    }

    /// A future that yields once, letting every other runnable task proceed
    /// before resuming at the same virtual instant.
    pub fn yield_now(&self) -> YieldNow {
        YieldNow { yielded: false }
    }

    /// Await `fut` with a virtual-time deadline. Returns `None` on timeout.
    pub async fn timeout<T>(
        &self,
        limit: SimDuration,
        fut: impl Future<Output = T>,
    ) -> Option<T> {
        let sleep = self.sleep(limit);
        let mut fut = std::pin::pin!(fut);
        let mut sleep = std::pin::pin!(sleep);
        std::future::poll_fn(move |cx| {
            if let Poll::Ready(v) = fut.as_mut().poll(cx) {
                return Poll::Ready(Some(v));
            }
            if sleep.as_mut().poll(cx).is_ready() {
                return Poll::Ready(None);
            }
            Poll::Pending
        })
        .await
    }

    fn poll_task(&self, id: TaskId) {
        let (mut fut, waker) = {
            let mut tasks = self.inner.tasks.borrow_mut();
            match tasks.get_mut(id.index()) {
                // The slot must still be this task's generation: a stale
                // wake of a recycled slot must not poll the new occupant.
                Some(Slot::Occupied(slot)) if slot.gen == id.gen() => {
                    match slot.fut.take() {
                        Some(fut) => (fut, slot.waker.clone()),
                        // Mid-poll re-entry: nothing to do.
                        None => return,
                    }
                }
                // Already finished or duplicate wake: nothing to do.
                _ => return,
            }
        };
        self.inner
            .events_processed
            .set(self.inner.events_processed.get() + 1);
        self.inner.task_polls.set(self.inner.task_polls.get() + 1);
        let mut cx = Context::from_waker(&waker);
        match fut.as_mut().poll(&mut cx) {
            Poll::Ready(()) => {
                let mut tasks = self.inner.tasks.borrow_mut();
                tasks[id.index()] = Slot::Vacant {
                    next_gen: id.gen().wrapping_add(1),
                };
                self.inner.task_free.borrow_mut().push(id.index() as u32);
                self.inner.tasks_alive.set(self.inner.tasks_alive.get() - 1);
            }
            Poll::Pending => {
                let mut tasks = self.inner.tasks.borrow_mut();
                if let Some(Slot::Occupied(slot)) = tasks.get_mut(id.index()) {
                    if slot.gen == id.gen() {
                        slot.fut = Some(fut);
                    }
                }
            }
        }
    }

    fn drain_ready(&self) {
        loop {
            let id = self.inner.ready.queue.borrow_mut().pop_front();
            match id {
                Some(id) => self.poll_task(id),
                None => break,
            }
        }
    }

    /// Fire every timer scheduled for the earliest pending instant,
    /// advancing the clock to it. Returns false when no timers remain.
    ///
    /// Pops are batched under one wheel borrow and the wakes run after —
    /// legal because a wake only appends to the ready queue and so can
    /// never reorder the pop sequence. A `Call` action ends its batch:
    /// callbacks may push new timers at the firing instant, which must
    /// join this very batch, so the queue is re-examined after each one.
    fn fire_next_timers(&self, horizon: SimTime) -> bool {
        let inner = &*self.inner;
        // Reaper for wheel GC (see `TimerWheel::peek_min_gc`): report
        // whether an entry is canceled, releasing its flag slot if so.
        let mut reap = |action: &TimerAction| -> bool {
            let TimerAction::Wake(_, token) = action else {
                return false;
            };
            {
                let mut flags = inner.timer_flags.borrow_mut();
                let f = &mut flags[token.index as usize];
                if !f.canceled {
                    return false;
                }
                f.gen = f.gen.wrapping_add(1);
                f.canceled = false;
            }
            inner.timer_free.borrow_mut().push(token.index);
            true
        };
        // Find the earliest live instant, discarding canceled heads so
        // they cannot drag the clock forward.
        let at = {
            let mut timers = inner.timers.borrow_mut();
            loop {
                let Some(e) = timers.peek_min_gc(&mut reap) else {
                    return false;
                };
                let (at, dead) = (e.at, reap(&e.item));
                if !dead {
                    break at;
                }
                timers.pop_min();
            }
        };
        let at = SimTime::from_nanos(at);
        if at > horizon {
            return false;
        }
        debug_assert!(at >= self.now(), "timer scheduled in the past");
        inner.now.set(at);
        let at = at.as_nanos();
        let mut batch: Vec<TimerAction> = std::mem::take(&mut inner.fire_batch.borrow_mut());
        debug_assert!(batch.is_empty());
        loop {
            let mut saw_call = false;
            {
                let mut timers = inner.timers.borrow_mut();
                loop {
                    match timers.peek_min_gc(&mut reap) {
                        Some(e) if e.at == at => {}
                        _ => break,
                    }
                    let entry = timers.pop_min().expect("peeked");
                    inner
                        .events_processed
                        .set(inner.events_processed.get() + 1);
                    match entry.item {
                        TimerAction::Wake(w, token) => {
                            // One flags borrow: release the slot and learn
                            // whether the timer was canceled in flight.
                            let fire = {
                                let mut flags = inner.timer_flags.borrow_mut();
                                let f = &mut flags[token.index as usize];
                                let canceled = f.canceled;
                                f.gen = f.gen.wrapping_add(1);
                                f.canceled = false;
                                !canceled
                            };
                            inner.timer_free.borrow_mut().push(token.index);
                            if fire {
                                batch.push(TimerAction::Wake(w, token));
                            }
                        }
                        call @ TimerAction::Call(_) => {
                            batch.push(call);
                            saw_call = true;
                            break;
                        }
                    }
                }
            }
            if batch.is_empty() {
                break;
            }
            for action in batch.drain(..) {
                inner.timer_fires.set(inner.timer_fires.get() + 1);
                match action {
                    TimerAction::Wake(w, _) => w.wake(),
                    TimerAction::Call(f) => f(),
                }
            }
            if !saw_call {
                break;
            }
        }
        *inner.fire_batch.borrow_mut() = batch;
        true
    }

    /// Run until no task is runnable and no timer is pending (quiescence).
    pub fn run(&self) {
        self.run_horizon(SimTime::MAX);
    }

    /// Run until quiescence or until virtual time would pass `deadline`;
    /// the clock ends at `deadline` if the horizon was hit while events
    /// remained, otherwise at the last event.
    pub fn run_until(&self, deadline: SimTime) {
        self.run_horizon(deadline);
        if self.now() < deadline && !self.inner.timers.borrow().is_empty() {
            self.inner.now.set(deadline);
        }
    }

    /// Run for `d` of virtual time (see [`Sim::run_until`]).
    pub fn run_for(&self, d: SimDuration) {
        self.run_until(self.now().saturating_add(d));
    }

    fn run_horizon(&self, horizon: SimTime) {
        loop {
            self.drain_ready();
            if !self.fire_next_timers(horizon) {
                break;
            }
        }
    }

    /// Drive `fut` to completion, running the whole simulation as needed.
    ///
    /// # Panics
    /// Panics if the simulation quiesces before `fut` completes — i.e. the
    /// future is deadlocked on an event that can never happen.
    pub fn block_on<T: 'static>(&self, fut: impl Future<Output = T> + 'static) -> T {
        let mut handle = self.spawn(fut);
        self.run();
        handle
            .try_take()
            .expect("simulation quiesced before block_on future completed (deadlock?)")
    }
}

struct JoinState<T> {
    result: Option<T>,
    waker: Option<Waker>,
}

/// Awaitable handle to a spawned task's output.
///
/// Dropping the handle detaches the task; it keeps running.
pub struct JoinHandle<T> {
    state: Rc<RefCell<JoinState<T>>>,
    id: TaskId,
}

impl<T> JoinHandle<T> {
    /// The task's id, mostly for diagnostics.
    pub fn id(&self) -> TaskId {
        self.id
    }

    /// True once the task has produced its output.
    pub fn is_finished(&self) -> bool {
        self.state.borrow().result.is_some()
    }

    /// Take the output if the task has finished.
    pub fn try_take(&mut self) -> Option<T> {
        self.state.borrow_mut().result.take()
    }
}

impl<T> Future for JoinHandle<T> {
    type Output = T;

    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<T> {
        let mut st = self.state.borrow_mut();
        if let Some(v) = st.result.take() {
            Poll::Ready(v)
        } else {
            st.waker = Some(cx.waker().clone());
            Poll::Pending
        }
    }
}

/// Future returned by [`Sim::sleep`] / [`Sim::sleep_until`].
///
/// Dropping an unfired `Sleep` cancels its timer, so abandoned sleeps
/// (e.g. the losing arm of a [`crate::select2`]) never advance the clock.
pub struct Sleep {
    sim: Sim,
    deadline: SimTime,
    cancel: Option<TimerToken>,
    fired: bool,
}

impl Sleep {
    /// The instant this sleep completes.
    pub fn deadline(&self) -> SimTime {
        self.deadline
    }
}

impl Future for Sleep {
    type Output = ();

    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<()> {
        let this = self.get_mut();
        if this.sim.now() >= this.deadline {
            this.fired = true;
            return Poll::Ready(());
        }
        if this.cancel.is_none() {
            this.cancel = Some(
                this.sim
                    .register_wake_at(this.deadline, cx.waker().clone()),
            );
        }
        Poll::Pending
    }
}

impl Drop for Sleep {
    fn drop(&mut self) {
        if !self.fired {
            if let Some(token) = self.cancel {
                self.sim.cancel_wake(token);
            }
        }
    }
}

/// Future returned by [`Sim::yield_now`].
pub struct YieldNow {
    yielded: bool,
}

impl Future for YieldNow {
    type Output = ();

    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<()> {
        if self.yielded {
            Poll::Ready(())
        } else {
            self.get_mut().yielded = true;
            cx.waker().wake_by_ref();
            Poll::Pending
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cell::RefCell;
    use std::rc::Rc;

    #[test]
    fn clock_starts_at_zero() {
        let sim = Sim::new(1);
        assert_eq!(sim.now(), SimTime::ZERO);
    }

    #[test]
    fn sleep_advances_virtual_time() {
        let sim = Sim::new(1);
        let s = sim.clone();
        let t = sim.block_on(async move {
            s.sleep(SimDuration::from_millis(250)).await;
            s.now()
        });
        assert_eq!(t, SimTime::from_nanos(250_000_000));
    }

    #[test]
    fn sequential_sleeps_accumulate() {
        let sim = Sim::new(1);
        let s = sim.clone();
        sim.block_on(async move {
            for _ in 0..10 {
                s.sleep(SimDuration::from_secs(1)).await;
            }
        });
        assert_eq!(sim.now(), SimTime::from_nanos(10_000_000_000));
    }

    #[test]
    fn concurrent_sleeps_overlap() {
        let sim = Sim::new(1);
        for _ in 0..100 {
            let s = sim.clone();
            sim.spawn(async move {
                s.sleep(SimDuration::from_secs(5)).await;
            });
        }
        sim.run();
        // 100 concurrent 5s sleeps take 5s of virtual time, not 500s.
        assert_eq!(sim.now(), SimTime::from_nanos(5_000_000_000));
    }

    #[test]
    fn same_instant_timers_fire_in_registration_order() {
        let sim = Sim::new(1);
        let order = Rc::new(RefCell::new(Vec::new()));
        let at = SimTime::from_nanos(1_000);
        for i in 0..20 {
            let order = order.clone();
            sim.call_at(at, move || order.borrow_mut().push(i));
        }
        sim.run();
        assert_eq!(*order.borrow(), (0..20).collect::<Vec<_>>());
        assert_eq!(sim.now(), at);
    }

    #[test]
    fn interleaving_is_deterministic() {
        fn trace(seed: u64) -> Vec<(u64, usize)> {
            let sim = Sim::new(seed);
            let log = Rc::new(RefCell::new(Vec::new()));
            for task in 0..8 {
                let s = sim.clone();
                let log = log.clone();
                sim.spawn(async move {
                    let mut rng = s.rng(&format!("task{task}"));
                    for _ in 0..50 {
                        let d = SimDuration::from_nanos(rng.range_u64(1..1000));
                        s.sleep(d).await;
                        log.borrow_mut().push((s.now().as_nanos(), task));
                    }
                });
            }
            sim.run();
            Rc::try_unwrap(log).unwrap().into_inner()
        }
        assert_eq!(trace(42), trace(42));
        assert_ne!(trace(42), trace(43));
    }

    #[test]
    fn join_handle_returns_value() {
        let sim = Sim::new(1);
        let s = sim.clone();
        let h = sim.spawn(async move {
            s.sleep(SimDuration::from_secs(1)).await;
            7u32
        });
        let s2 = sim.clone();
        let got = sim.block_on(async move {
            let v = h.await;
            // Joining must have waited for the sleeping task.
            assert_eq!(s2.now(), SimTime::from_nanos(1_000_000_000));
            v
        });
        assert_eq!(got, 7);
    }

    #[test]
    fn spawn_inside_task_works() {
        let sim = Sim::new(1);
        let s = sim.clone();
        let total = sim.block_on(async move {
            let mut handles = Vec::new();
            for i in 0..10u64 {
                let s2 = s.clone();
                handles.push(s.spawn(async move {
                    s2.sleep(SimDuration::from_millis(i)).await;
                    i
                }));
            }
            let mut total = 0;
            for h in handles {
                total += h.await;
            }
            total
        });
        assert_eq!(total, 45);
    }

    #[test]
    fn run_until_stops_at_deadline() {
        let sim = Sim::new(1);
        let s = sim.clone();
        let fired = Rc::new(Cell::new(false));
        let f = fired.clone();
        sim.spawn(async move {
            s.sleep(SimDuration::from_secs(10)).await;
            f.set(true);
        });
        sim.run_until(SimTime::from_nanos(3_000_000_000));
        assert!(!fired.get());
        assert_eq!(sim.now(), SimTime::from_nanos(3_000_000_000));
        sim.run();
        assert!(fired.get());
        assert_eq!(sim.now(), SimTime::from_nanos(10_000_000_000));
    }

    #[test]
    fn yield_now_interleaves_at_same_instant() {
        let sim = Sim::new(1);
        let log = Rc::new(RefCell::new(Vec::new()));
        for id in 0..2 {
            let s = sim.clone();
            let log = log.clone();
            sim.spawn(async move {
                for step in 0..3 {
                    log.borrow_mut().push((id, step));
                    s.yield_now().await;
                }
            });
        }
        sim.run();
        assert_eq!(
            *log.borrow(),
            vec![(0, 0), (1, 0), (0, 1), (1, 1), (0, 2), (1, 2)]
        );
        assert_eq!(sim.now(), SimTime::ZERO);
    }

    #[test]
    fn timeout_returns_none_on_expiry() {
        let sim = Sim::new(1);
        let s = sim.clone();
        let out: Option<u32> = sim.block_on(async move {
            let never = std::future::pending::<u32>();
            s.timeout(SimDuration::from_secs(1), never).await
        });
        assert_eq!(out, None);
        assert_eq!(sim.now(), SimTime::from_nanos(1_000_000_000));
    }

    #[test]
    fn timeout_returns_value_when_in_time() {
        let sim = Sim::new(1);
        let s = sim.clone();
        let out = sim.block_on(async move {
            let s2 = s.clone();
            let fut = async move {
                s2.sleep(SimDuration::from_millis(10)).await;
                5u32
            };
            s.timeout(SimDuration::from_secs(1), fut).await
        });
        assert_eq!(out, Some(5));
    }

    #[test]
    #[should_panic(expected = "deadlock")]
    fn block_on_detects_deadlock() {
        let sim = Sim::new(1);
        let _: () = sim.block_on(std::future::pending());
    }

    #[test]
    fn call_after_runs_callbacks() {
        let sim = Sim::new(1);
        let hit = Rc::new(Cell::new(0u32));
        let h = hit.clone();
        sim.call_after(SimDuration::from_secs(2), move || h.set(h.get() + 1));
        let h2 = hit.clone();
        sim.call_after(SimDuration::from_secs(1), move || h2.set(h2.get() + 10));
        sim.run();
        assert_eq!(hit.get(), 11);
        assert_eq!(sim.now(), SimTime::from_nanos(2_000_000_000));
    }

    #[test]
    fn stats_count_work() {
        let sim = Sim::new(1);
        let s = sim.clone();
        sim.block_on(async move { s.sleep(SimDuration::from_secs(1)).await });
        let st = sim.stats();
        assert!(st.events_processed > 0);
        assert_eq!(st.tasks_spawned, 1);
        assert_eq!(st.tasks_alive, 0);
    }

    #[test]
    fn past_deadline_sleep_completes_immediately() {
        let sim = Sim::new(1);
        let s = sim.clone();
        sim.block_on(async move {
            s.sleep(SimDuration::from_secs(1)).await;
            // Deadline in the past: must not hang or move time backwards.
            s.sleep_until(SimTime::ZERO).await;
            assert_eq!(s.now(), SimTime::from_nanos(1_000_000_000));
        });
    }

    use std::cell::Cell;
}
