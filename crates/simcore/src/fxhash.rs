//! A fast, deterministic hasher for simulator-internal maps (the FxHash
//! function used by rustc).
//!
//! `std`'s default `RandomState`/SipHash pays for HashDoS resistance the
//! simulator does not need: every map here is keyed by trusted,
//! program-generated short strings or integers, and hot paths (function
//! registry and warm-container index lookups) hash the same few keys
//! millions of times per replay. FxHash is a couple of multiplies per
//! 8-byte chunk, and — unlike `RandomState` — is the same function every
//! run, so map behaviour never depends on process-level seeding.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// A `HashMap` using [`FxHasher`].
pub type FxHashMap<K, V> = HashMap<K, V, BuildHasherDefault<FxHasher>>;

/// A `HashSet` using [`FxHasher`].
pub type FxHashSet<K> = HashSet<K, BuildHasherDefault<FxHasher>>;

const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// The rustc-style Fx hash function: one rotate, one xor, one multiply
/// per word of input. Not collision-resistant against adversarial keys;
/// do not use it on untrusted input.
#[derive(Default)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for c in &mut chunks {
            self.add(u64::from_le_bytes(c.try_into().unwrap()));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut tail = [0u8; 8];
            tail[..rest.len()].copy_from_slice(rest);
            self.add(u64::from_le_bytes(tail));
        }
    }

    #[inline]
    fn write_u8(&mut self, v: u8) {
        self.add(u64::from(v));
    }

    #[inline]
    fn write_u16(&mut self, v: u16) {
        self.add(u64::from(v));
    }

    #[inline]
    fn write_u32(&mut self, v: u32) {
        self.add(u64::from(v));
    }

    #[inline]
    fn write_u64(&mut self, v: u64) {
        self.add(v);
    }

    #[inline]
    fn write_u128(&mut self, v: u128) {
        self.add(v as u64);
        self.add((v >> 64) as u64);
    }

    #[inline]
    fn write_usize(&mut self, v: usize) {
        self.add(v as u64);
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_across_hashers() {
        let h = |s: &str| {
            let mut h = FxHasher::default();
            h.write(s.as_bytes());
            h.finish()
        };
        assert_eq!(h("fn-0"), h("fn-0"));
        assert_ne!(h("fn-0"), h("fn-1"));
    }

    #[test]
    fn map_roundtrip() {
        let mut m: FxHashMap<String, u32> = FxHashMap::default();
        for i in 0..1000 {
            m.insert(format!("key-{i}"), i);
        }
        for i in 0..1000 {
            assert_eq!(m.get(&format!("key-{i}")), Some(&i));
        }
    }
}
