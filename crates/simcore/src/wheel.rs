//! Hierarchical timer wheel: the executor's pending-timer queue.
//!
//! Replaces the former global `BinaryHeap` with a hashed hierarchical
//! wheel. Entries are bucketed by their absolute firing time: level `k`
//! covers slots of `2^(10 + 6k)` ns, so level 0 resolves ~1 µs and the
//! eight levels together span `2^58` ns (~9 sim-years) from the wheel's
//! floor. Times beyond the current top-level lap park in a far-future
//! overflow heap and migrate into the wheel when the floor reaches their
//! lap — each entry is touched O(levels) times total, versus O(log n)
//! comparisons per operation for a heap over every pending timer.
//!
//! Ordering is *exactly* the old heap's: entries pop in ascending
//! `(at, seq)` order, where `seq` is the executor's global registration
//! counter — the same-instant FIFO tie-break the whole workspace's
//! digest determinism rests on. The earliest occupied slot is pulled
//! into a sorted `front` buffer (a stable sort, so already-ordered slot
//! contents cost O(n)); pushes that land below the buffer's bound are
//! merge-inserted so late registrations at the current instant still
//! fire in seq order. The differential proptest at the bottom of this
//! file drives the wheel against the old `BinaryHeap` implementation
//! (kept here as the test oracle) through randomized push/cancel/drain
//! churn to prove the orders never diverge.

use std::collections::VecDeque;

/// Log2 of the level-0 slot width in nanoseconds (1024 ns ≈ 1 µs).
const GRAN_BITS: u32 = 10;
/// Log2 of the slot count per level.
const LEVEL_BITS: u32 = 6;
/// Slots per level.
const SLOTS: usize = 1 << LEVEL_BITS;
/// Number of wheel levels; beyond them the overflow heap takes over.
const LEVELS: usize = 8;
/// Shift that yields a time's top-level lap number.
const TOP_SHIFT: u32 = GRAN_BITS + LEVEL_BITS * LEVELS as u32;

/// One pending timer: absolute firing time, global registration sequence
/// (the FIFO tie-break), and the executor's payload.
pub(crate) struct WheelEntry<T> {
    pub at: u64,
    pub seq: u64,
    pub item: T,
}

/// Far-future entries live in a plain binary heap ordered by `(at, seq)`.
struct OverflowOrd<T>(WheelEntry<T>);

impl<T> PartialEq for OverflowOrd<T> {
    fn eq(&self, other: &Self) -> bool {
        self.0.at == other.0.at && self.0.seq == other.0.seq
    }
}
impl<T> Eq for OverflowOrd<T> {}
impl<T> PartialOrd for OverflowOrd<T> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<T> Ord for OverflowOrd<T> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Reversed: BinaryHeap is a max-heap, we want the earliest entry.
        (other.0.at, other.0.seq).cmp(&(self.0.at, self.0.seq))
    }
}

/// The timer queue: sorted front buffer + hierarchical wheel + overflow.
///
/// Invariants:
/// - `front` is sorted ascending by `(at, seq)` and every entry in it has
///   `at < front_bound`;
/// - every wheel/overflow entry has `at >= front_bound`;
/// - wheel entries share `front_bound`'s top-level lap, overflow entries
///   do not;
/// - `front_bound` is monotonically non-decreasing, so the minimum entry
///   is always `front.front()` once the buffer is refilled.
pub(crate) struct TimerWheel<T> {
    front: VecDeque<WheelEntry<T>>,
    front_bound: u64,
    /// `LEVELS * SLOTS` buckets, level-major. Buckets keep their
    /// allocation across drains.
    slots: Box<[Vec<WheelEntry<T>>]>,
    /// Per-level slot-occupancy bitmask.
    occupied: [u64; LEVELS],
    overflow: std::collections::BinaryHeap<OverflowOrd<T>>,
    len: usize,
    // Profiling counters (see `SimProfile`).
    peak_len: usize,
    cascades: u64,
    overflow_pushes: u64,
}

impl<T> TimerWheel<T> {
    pub(crate) fn new() -> TimerWheel<T> {
        TimerWheel {
            front: VecDeque::new(),
            front_bound: 0,
            slots: (0..LEVELS * SLOTS).map(|_| Vec::new()).collect(),
            occupied: [0; LEVELS],
            overflow: std::collections::BinaryHeap::new(),
            len: 0,
            peak_len: 0,
            cascades: 0,
            overflow_pushes: 0,
        }
    }

    pub(crate) fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Peak number of simultaneously pending timers.
    pub(crate) fn peak_len(&self) -> usize {
        self.peak_len
    }

    /// Total entries re-bucketed by cascades and overflow migrations.
    pub(crate) fn cascades(&self) -> u64 {
        self.cascades
    }

    /// Total entries routed to the far-future overflow heap.
    pub(crate) fn overflow_pushes(&self) -> u64 {
        self.overflow_pushes
    }

    pub(crate) fn push(&mut self, at: u64, seq: u64, item: T) {
        self.len += 1;
        if self.len > self.peak_len {
            self.peak_len = self.len;
        }
        let entry = WheelEntry { at, seq, item };
        if at < self.front_bound {
            // Late registration below the buffer bound (e.g. at the
            // instant currently firing): merge-insert to keep `front`
            // sorted. `seq` is globally unique so the key is total.
            let key = (at, seq);
            let pos = self.front.partition_point(|e| (e.at, e.seq) < key);
            self.front.insert(pos, entry);
        } else if (at >> TOP_SHIFT) != (self.front_bound >> TOP_SHIFT) {
            self.overflow_pushes += 1;
            self.overflow.push(OverflowOrd(entry));
        } else {
            self.insert_wheel(entry);
        }
    }

    /// Minimum pending entry, refilling the front buffer if needed.
    #[cfg(test)]
    pub(crate) fn peek_min(&mut self) -> Option<&WheelEntry<T>> {
        self.peek_min_gc(&mut |_| false)
    }

    /// Pop the minimum pending entry.
    pub(crate) fn pop_min(&mut self) -> Option<WheelEntry<T>> {
        self.pop_min_gc(&mut |_| false)
    }

    /// [`TimerWheel::peek_min`], garbage-collecting dead entries on the
    /// way: whenever a refill re-buckets entries (cascades, overflow
    /// migration, front-buffer fill), any entry `dead` reports is dropped
    /// on the spot instead of being carried down level by level. Canceled
    /// far-future timers (e.g. every per-invocation timeout that did not
    /// fire) otherwise cascade through several levels before dying at
    /// their deadline. `dead` must be pure w.r.t. the wheel: it may
    /// release external per-entry state but must not touch the wheel.
    pub(crate) fn peek_min_gc(
        &mut self,
        dead: &mut dyn FnMut(&T) -> bool,
    ) -> Option<&WheelEntry<T>> {
        if self.front.is_empty() {
            self.refill_front(dead);
        }
        self.front.front()
    }

    /// [`TimerWheel::pop_min`] with the GC hook of [`TimerWheel::peek_min_gc`].
    pub(crate) fn pop_min_gc(&mut self, dead: &mut dyn FnMut(&T) -> bool) -> Option<WheelEntry<T>> {
        if self.front.is_empty() {
            self.refill_front(dead);
        }
        let e = self.front.pop_front();
        if e.is_some() {
            self.len -= 1;
        }
        e
    }

    /// Bucket an entry into the wheel. Requires `at >= front_bound` and
    /// `at` within `front_bound`'s top-level lap.
    fn insert_wheel(&mut self, entry: WheelEntry<T>) {
        debug_assert!(entry.at >= self.front_bound);
        let x = (entry.at >> GRAN_BITS) ^ (self.front_bound >> GRAN_BITS);
        let level = if x == 0 {
            0
        } else {
            ((63 - x.leading_zeros()) / LEVEL_BITS) as usize
        };
        debug_assert!(level < LEVELS);
        let slot = ((entry.at >> (GRAN_BITS + level as u32 * LEVEL_BITS)) & 63) as usize;
        self.slots[level * SLOTS + slot].push(entry);
        self.occupied[level] |= 1 << slot;
    }

    /// Absolute start time of `slot` at `level`, within `front_bound`'s lap.
    fn slot_base(&self, level: usize, slot: usize) -> u64 {
        let low = GRAN_BITS + (level as u32 + 1) * LEVEL_BITS;
        let lap = if low >= 64 { 0 } else { (self.front_bound >> low) << low };
        lap | ((slot as u64) << (GRAN_BITS + level as u32 * LEVEL_BITS))
    }

    /// Re-bucket every live entry of slot `(level, slot)` into lower
    /// levels, dropping entries `dead` reports.
    fn cascade(&mut self, level: usize, slot: usize, dead: &mut dyn FnMut(&T) -> bool) {
        self.occupied[level] &= !(1u64 << slot);
        let mut v = std::mem::take(&mut self.slots[level * SLOTS + slot]);
        for e in v.drain(..) {
            if dead(&e.item) {
                self.len -= 1;
                continue;
            }
            self.cascades += 1;
            self.insert_wheel(e);
        }
        self.slots[level * SLOTS + slot] = v; // keep the bucket's allocation
    }

    /// Current slot index of the floor at `level`.
    fn cursor(&self, level: usize) -> usize {
        ((self.front_bound >> (GRAN_BITS + level as u32 * LEVEL_BITS)) & 63) as usize
    }

    /// Pull the earliest occupied slot into the (empty) front buffer,
    /// cascading higher levels and migrating overflow laps as needed.
    fn refill_front(&mut self, dead: &mut dyn FnMut(&T) -> bool) {
        debug_assert!(self.front.is_empty());
        'search: loop {
            // A higher-level slot the floor sits *inside* may hold entries
            // earlier than anything at level 0 (they were bucketed before
            // the floor entered its window), so cascade every occupied
            // current-position slot down first, highest level first.
            for level in (1..LEVELS).rev() {
                let idx = self.cursor(level);
                if self.occupied[level] & (1u64 << idx) != 0 {
                    self.cascade(level, idx, dead);
                }
            }
            // Earliest level-0 slot at or after the floor.
            let idx0 = self.cursor(0);
            let mask0 = self.occupied[0] & (!0u64 << idx0);
            if mask0 != 0 {
                let s = mask0.trailing_zeros() as usize;
                let end = self.slot_base(0, s).saturating_add(1 << GRAN_BITS);
                self.front_bound = self.front_bound.max(end);
                self.occupied[0] &= !(1u64 << s);
                let mut v = std::mem::take(&mut self.slots[s]);
                v.retain(|e| {
                    let live = !dead(&e.item);
                    if !live {
                        self.len -= 1;
                    }
                    live
                });
                // Stable, and slot contents are pushed in ascending seq —
                // already-ordered runs make this near-linear.
                v.sort_by_key(|e| (e.at, e.seq));
                self.front.extend(v.drain(..));
                self.slots[s] = v;
                if self.front.is_empty() {
                    // Every entry in the slot was dead; keep searching.
                    continue 'search;
                }
                return;
            }
            // Advance the floor to the earliest occupied future slot
            // (strictly later than the cursor — current slots were
            // cascaded above) and re-search from its base.
            for level in 1..LEVELS {
                let mask = self.occupied[level] & (!0u64 << self.cursor(level));
                if mask != 0 {
                    let s = mask.trailing_zeros() as usize;
                    self.front_bound = self.front_bound.max(self.slot_base(level, s));
                    self.cascade(level, s, dead);
                    continue 'search;
                }
            }
            // Wheel empty: advance the floor to the overflow's next lap.
            let Some(min_at) = self.overflow.peek().map(|e| e.0.at) else {
                return;
            };
            self.front_bound = self.front_bound.max(min_at & !((1u64 << GRAN_BITS) - 1));
            while self
                .overflow
                .peek()
                .is_some_and(|e| (e.0.at >> TOP_SHIFT) == (self.front_bound >> TOP_SHIFT))
            {
                let OverflowOrd(e) = self.overflow.pop().expect("peeked");
                if dead(&e.item) {
                    self.len -= 1;
                    continue;
                }
                self.cascades += 1;
                self.insert_wheel(e);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use std::cmp::Reverse;
    use std::collections::BinaryHeap;

    /// The executor's previous timer queue — a plain binary heap ordered
    /// by `(at, seq)` — kept as the differential oracle.
    struct HeapOracle {
        heap: BinaryHeap<Reverse<(u64, u64, u32)>>,
    }

    impl HeapOracle {
        fn new() -> HeapOracle {
            HeapOracle {
                heap: BinaryHeap::new(),
            }
        }
        fn push(&mut self, at: u64, seq: u64, id: u32) {
            self.heap.push(Reverse((at, seq, id)));
        }
        fn peek(&self) -> Option<(u64, u64, u32)> {
            self.heap.peek().map(|Reverse(e)| *e)
        }
        fn pop(&mut self) -> Option<(u64, u64, u32)> {
            self.heap.pop().map(|Reverse(e)| e)
        }
    }

    /// Drain both queues to exhaustion, asserting identical pop order.
    fn assert_same_order(wheel: &mut TimerWheel<u32>, oracle: &mut HeapOracle) {
        loop {
            let got = wheel.pop_min().map(|e| (e.at, e.seq, e.item));
            let want = oracle.pop();
            assert_eq!(got, want);
            if got.is_none() {
                break;
            }
        }
        assert!(wheel.is_empty());
    }

    /// Mirror of the executor's `fire_next_timers`: discard canceled
    /// entries at the head (uncounted), then pop every entry at the
    /// earliest live instant (canceled ones included). Returns the
    /// popped `(at, seq, id)` triples plus the instant.
    #[allow(clippy::type_complexity)]
    fn fire_step(
        wheel: &mut TimerWheel<u32>,
        oracle: &mut HeapOracle,
        canceled: &[bool],
        horizon: u64,
    ) -> Option<(u64, Vec<(u64, u64, u32)>)> {
        // Oracle side.
        let want_at = loop {
            match oracle.peek() {
                None => break None,
                Some((at, _, id)) if !canceled[id as usize] => break Some(at),
                Some(_) => {
                    oracle.pop();
                }
            }
        };
        // Wheel side.
        let got_at = loop {
            match wheel.peek_min() {
                None => break None,
                Some(e) if !canceled[e.item as usize] => break Some(e.at),
                Some(_) => {
                    wheel.pop_min();
                }
            }
        };
        assert_eq!(got_at, want_at);
        let at = want_at?;
        if at > horizon {
            return None;
        }
        let mut fired = Vec::new();
        while oracle.peek().is_some_and(|(a, _, _)| a == at) {
            let (a, s, id) = oracle.pop().expect("peeked");
            let got = wheel
                .pop_min()
                .map(|e| (e.at, e.seq, e.item))
                .expect("wheel has the entry the oracle has");
            assert_eq!(got, (a, s, id));
            fired.push(got);
        }
        assert!(wheel.peek_min().is_none_or(|e| e.at != at));
        Some((at, fired))
    }

    #[test]
    fn orders_across_slot_and_level_boundaries() {
        // Timers exactly at wheel-slot and level boundaries: 2^10 (slot
        // width), 2^16 (level 1), 2^22 (level 2), ... up to the 2^58
        // overflow lap boundary, each with ±1 neighbours and a
        // same-instant pair to exercise the seq tie-break.
        let mut wheel = TimerWheel::new();
        let mut oracle = HeapOracle::new();
        let mut seq = 0u64;
        let mut push = |wheel: &mut TimerWheel<u32>, oracle: &mut HeapOracle, at: u64| {
            wheel.push(at, seq, seq as u32);
            oracle.push(at, seq, seq as u32);
            seq += 1;
        };
        for level in 0..=8u32 {
            let b = 1u64 << (GRAN_BITS + LEVEL_BITS * level);
            for at in [b - 1, b, b + 1, b, 3 * b, 3 * b] {
                push(&mut wheel, &mut oracle, at);
            }
        }
        for at in [0, 1, u64::MAX - 1, u64::MAX, u64::MAX, 1u64 << 58, (1u64 << 58) - 1] {
            push(&mut wheel, &mut oracle, at);
        }
        assert_same_order(&mut wheel, &mut oracle);
    }

    #[test]
    fn late_pushes_at_the_firing_instant_stay_fifo() {
        // Entries pushed *below* the front bound (the executor does this
        // when a firing callback schedules at the current instant) must
        // merge into the sorted front buffer, not fire out of order.
        let mut wheel = TimerWheel::new();
        let mut oracle = HeapOracle::new();
        for seq in 0..10u64 {
            wheel.push(5000, seq, seq as u32);
            oracle.push(5000, seq, seq as u32);
        }
        // Force a refill: front now holds the 5000s, bound past them.
        assert_eq!(wheel.peek_min().map(|e| e.seq), Some(0));
        for seq in 10..20u64 {
            wheel.push(5000, seq, seq as u32);
            oracle.push(5000, seq, seq as u32);
        }
        // And one strictly below every buffered entry.
        wheel.push(4999, 20, 20);
        oracle.push(4999, 20, 20);
        assert_same_order(&mut wheel, &mut oracle);
    }

    #[test]
    fn far_future_entries_migrate_out_of_overflow_in_order() {
        let mut wheel = TimerWheel::new();
        let mut oracle = HeapOracle::new();
        let lap = 1u64 << TOP_SHIFT;
        // Two future laps plus near-term entries, interleaved.
        let times = [
            3 * lap + 7,
            5,
            2 * lap,
            3 * lap + 7,
            lap - 1,
            2 * lap + 123_456_789,
            7 * lap + (lap - 1),
        ];
        for (seq, &at) in times.iter().enumerate() {
            wheel.push(at, seq as u64, seq as u32);
            oracle.push(at, seq as u64, seq as u32);
        }
        assert!(wheel.overflow_pushes() > 0);
        assert_same_order(&mut wheel, &mut oracle);
    }

    proptest! {
        /// Differential churn: randomized pushes (biased toward slot and
        /// level boundaries and same-instant collisions), cancels, and
        /// horizon-limited drains must fire in exactly the heap's order.
        #[test]
        fn wheel_matches_heap_oracle(ops in proptest::collection::vec(
            (0u8..10, any::<u64>(), any::<u32>()), 1..400,
        )) {
            let mut wheel = TimerWheel::new();
            let mut oracle = HeapOracle::new();
            let mut canceled: Vec<bool> = Vec::new();
            let mut now = 0u64;
            let mut seq = 0u64;
            let mut last_at = 0u64;
            for (kind, a, b) in ops {
                match kind {
                    // Push: delta shaped to land on/near boundaries often.
                    0..=5 => {
                        let level = (a % 9) as u32;
                        let base = 1u64 << (GRAN_BITS + LEVEL_BITS * level.min(8));
                        let jitter = match b % 5 {
                            0 => 0,
                            1 => 1,
                            2 => base.saturating_sub(1),
                            3 => (a >> 32) % (base.saturating_mul(4).max(1)),
                            _ => b as u64 % 1024,
                        };
                        let at = if b % 7 == 0 {
                            last_at // deliberate same-instant collision
                        } else {
                            now.saturating_add(base / 2 + jitter)
                        };
                        let at = at.max(now);
                        last_at = at;
                        canceled.push(false);
                        wheel.push(at, seq, (canceled.len() - 1) as u32);
                        oracle.push(at, seq, (canceled.len() - 1) as u32);
                        seq += 1;
                    }
                    // Cancel a random still-pending id.
                    6..=7 => {
                        if !canceled.is_empty() {
                            let idx = a as usize % canceled.len();
                            canceled[idx] = true;
                        }
                    }
                    // Drain one instant under a horizon.
                    _ => {
                        let horizon = now.saturating_add(a % (1u64 << 40));
                        if let Some((at, _fired)) =
                            fire_step(&mut wheel, &mut oracle, &canceled, horizon)
                        {
                            now = at;
                        }
                    }
                }
            }
            // Drain to exhaustion with no horizon.
            while fire_step(&mut wheel, &mut oracle, &canceled, u64::MAX).is_some() {}
            prop_assert!(wheel.is_empty());
        }
    }
}
