//! Small future combinators used across the workspace.
//!
//! These avoid a dependency on a futures crate: the simulator only ever
//! needs structured concurrency within one task (`join*`) or a binary
//! race (`select2`), both trivial over `poll_fn`.

use std::future::Future;
use std::pin::{pin, Pin};
use std::task::Poll;

/// Await two futures concurrently, returning both outputs.
pub async fn join2<A, B>(a: impl Future<Output = A>, b: impl Future<Output = B>) -> (A, B) {
    let mut a = pin!(a);
    let mut b = pin!(b);
    let mut ra = None;
    let mut rb = None;
    std::future::poll_fn(move |cx| {
        if ra.is_none() {
            if let Poll::Ready(v) = a.as_mut().poll(cx) {
                ra = Some(v);
            }
        }
        if rb.is_none() {
            if let Poll::Ready(v) = b.as_mut().poll(cx) {
                rb = Some(v);
            }
        }
        if ra.is_some() && rb.is_some() {
            Poll::Ready((ra.take().unwrap(), rb.take().unwrap()))
        } else {
            Poll::Pending
        }
    })
    .await
}

/// Await three futures concurrently.
pub async fn join3<A, B, C>(
    a: impl Future<Output = A>,
    b: impl Future<Output = B>,
    c: impl Future<Output = C>,
) -> (A, B, C) {
    let ((a, b), c) = join2(join2(a, b), c).await;
    (a, b, c)
}

/// Await every future in `futs` concurrently; outputs are returned in the
/// input order regardless of completion order.
pub async fn join_all<T, F>(futs: Vec<F>) -> Vec<T>
where
    F: Future<Output = T>,
{
    let mut futs: Vec<Pin<Box<F>>> = futs.into_iter().map(Box::pin).collect();
    let mut outs: Vec<Option<T>> = futs.iter().map(|_| None).collect();
    let mut remaining = futs.len();
    std::future::poll_fn(move |cx| {
        for (fut, out) in futs.iter_mut().zip(outs.iter_mut()) {
            if out.is_none() {
                if let Poll::Ready(v) = fut.as_mut().poll(cx) {
                    *out = Some(v);
                    remaining -= 1;
                }
            }
        }
        if remaining == 0 {
            Poll::Ready(outs.iter_mut().map(|o| o.take().unwrap()).collect())
        } else {
            Poll::Pending
        }
    })
    .await
}

/// Outcome of [`select2`].
#[derive(Debug, PartialEq, Eq)]
pub enum Either<A, B> {
    /// The first future finished first.
    Left(A),
    /// The second future finished first.
    Right(B),
}

/// Race two futures; the loser is dropped (canceled). Ties go to the left.
pub async fn select2<A, B>(
    a: impl Future<Output = A>,
    b: impl Future<Output = B>,
) -> Either<A, B> {
    let mut a = pin!(a);
    let mut b = pin!(b);
    std::future::poll_fn(move |cx| {
        if let Poll::Ready(v) = a.as_mut().poll(cx) {
            return Poll::Ready(Either::Left(v));
        }
        if let Poll::Ready(v) = b.as_mut().poll(cx) {
            return Poll::Ready(Either::Right(v));
        }
        Poll::Pending
    })
    .await
}

/// A boxed, non-`Send` future — the handler type used by the FaaS crate.
pub type LocalBoxFuture<'a, T> = Pin<Box<dyn Future<Output = T> + 'a>>;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::executor::Sim;
    use crate::time::{SimDuration, SimTime};

    #[test]
    fn join2_overlaps_waits() {
        let sim = Sim::new(1);
        let s = sim.clone();
        let (a, b) = sim.block_on(async move {
            let s1 = s.clone();
            let s2 = s.clone();
            join2(
                async move {
                    s1.sleep(SimDuration::from_secs(3)).await;
                    1u32
                },
                async move {
                    s2.sleep(SimDuration::from_secs(5)).await;
                    2u32
                },
            )
            .await
        });
        assert_eq!((a, b), (1, 2));
        // Concurrent: total is max, not sum.
        assert_eq!(sim.now(), SimTime::from_nanos(5_000_000_000));
    }

    #[test]
    fn join3_works() {
        let sim = Sim::new(1);
        let out = sim.block_on(async move { join3(async { 1 }, async { 2 }, async { 3 }).await });
        assert_eq!(out, (1, 2, 3));
    }

    #[test]
    fn join_all_preserves_order() {
        let sim = Sim::new(1);
        let s = sim.clone();
        let outs = sim.block_on(async move {
            let futs: Vec<_> = (0..10u64)
                .map(|i| {
                    let s = s.clone();
                    async move {
                        // Later entries sleep *less*, finishing first.
                        s.sleep(SimDuration::from_millis(100 - i * 10)).await;
                        i
                    }
                })
                .collect();
            join_all(futs).await
        });
        assert_eq!(outs, (0..10).collect::<Vec<_>>());
        assert_eq!(sim.now(), SimTime::from_nanos(100_000_000));
    }

    #[test]
    fn join_all_empty() {
        let sim = Sim::new(1);
        let outs: Vec<u32> = sim.block_on(async move { join_all(Vec::<Sleep0>::new()).await });
        assert!(outs.is_empty());
    }

    // A concrete empty-future type for the empty join_all test.
    struct Sleep0;
    impl Future for Sleep0 {
        type Output = u32;
        fn poll(self: Pin<&mut Self>, _cx: &mut std::task::Context<'_>) -> Poll<u32> {
            Poll::Ready(0)
        }
    }

    #[test]
    fn select2_picks_winner_and_cancels_loser() {
        let sim = Sim::new(1);
        let s = sim.clone();
        let out = sim.block_on(async move {
            let s1 = s.clone();
            let s2 = s.clone();
            select2(
                async move {
                    s1.sleep(SimDuration::from_secs(10)).await;
                    "slow"
                },
                async move {
                    s2.sleep(SimDuration::from_secs(1)).await;
                    "fast"
                },
            )
            .await
        });
        assert_eq!(out, Either::Right("fast"));
        // The loser must not hold the clock to 10 s.
        assert_eq!(sim.now(), SimTime::from_nanos(1_000_000_000));
    }

    #[test]
    fn select2_tie_goes_left() {
        let sim = Sim::new(1);
        let out = sim.block_on(async move { select2(async { 1 }, async { 2 }).await });
        assert_eq!(out, Either::Left(1));
    }
}
