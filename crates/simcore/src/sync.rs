//! Coordination primitives that suspend tasks in virtual time.
//!
//! These mirror the shapes of `tokio::sync` but are single-threaded,
//! allocation-light, and deterministic: waiters are always served in FIFO
//! order.

use std::cell::RefCell;
use std::collections::VecDeque;
use std::future::Future;
use std::pin::Pin;
use std::rc::Rc;
use std::task::{Context, Poll, Waker};

// ---------------------------------------------------------------------------
// mpsc channel (unbounded, single consumer)
// ---------------------------------------------------------------------------

struct ChanState<T> {
    queue: VecDeque<T>,
    recv_waker: Option<Waker>,
    senders: usize,
    receiver_alive: bool,
}

/// Sending half of an unbounded channel. Clonable.
pub struct Sender<T> {
    chan: Rc<RefCell<ChanState<T>>>,
}

/// Receiving half of an unbounded channel.
pub struct Receiver<T> {
    chan: Rc<RefCell<ChanState<T>>>,
}

/// Error returned by [`Sender::send`] when the receiver is gone.
#[derive(Debug, PartialEq, Eq)]
pub struct SendError<T>(pub T);

/// Create an unbounded mpsc channel.
pub fn channel<T>() -> (Sender<T>, Receiver<T>) {
    let chan = Rc::new(RefCell::new(ChanState {
        queue: VecDeque::new(),
        recv_waker: None,
        senders: 1,
        receiver_alive: true,
    }));
    (
        Sender { chan: chan.clone() },
        Receiver { chan },
    )
}

impl<T> Sender<T> {
    /// Enqueue a value, waking the receiver. Fails if the receiver dropped.
    pub fn send(&self, value: T) -> Result<(), SendError<T>> {
        let waker = {
            let mut st = self.chan.borrow_mut();
            if !st.receiver_alive {
                return Err(SendError(value));
            }
            st.queue.push_back(value);
            st.recv_waker.take()
        };
        if let Some(w) = waker {
            w.wake();
        }
        Ok(())
    }

    /// Number of queued messages.
    pub fn len(&self) -> usize {
        self.chan.borrow().queue.len()
    }

    /// True if no messages are queued.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl<T> Clone for Sender<T> {
    fn clone(&self) -> Self {
        self.chan.borrow_mut().senders += 1;
        Sender {
            chan: self.chan.clone(),
        }
    }
}

impl<T> Drop for Sender<T> {
    fn drop(&mut self) {
        let waker = {
            let mut st = self.chan.borrow_mut();
            st.senders -= 1;
            if st.senders == 0 {
                st.recv_waker.take()
            } else {
                None
            }
        };
        if let Some(w) = waker {
            w.wake();
        }
    }
}

impl<T> Receiver<T> {
    /// Await the next message; `None` once all senders dropped and the
    /// queue drained.
    pub fn recv(&mut self) -> Recv<'_, T> {
        Recv { rx: self }
    }

    /// Non-blocking receive.
    pub fn try_recv(&mut self) -> Option<T> {
        self.chan.borrow_mut().queue.pop_front()
    }

    /// Number of queued messages.
    pub fn len(&self) -> usize {
        self.chan.borrow().queue.len()
    }

    /// True if no messages are queued.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl<T> Drop for Receiver<T> {
    fn drop(&mut self) {
        self.chan.borrow_mut().receiver_alive = false;
    }
}

/// Future returned by [`Receiver::recv`].
pub struct Recv<'a, T> {
    rx: &'a mut Receiver<T>,
}

impl<T> Future for Recv<'_, T> {
    type Output = Option<T>;

    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<Option<T>> {
        let mut st = self.rx.chan.borrow_mut();
        if let Some(v) = st.queue.pop_front() {
            return Poll::Ready(Some(v));
        }
        if st.senders == 0 {
            return Poll::Ready(None);
        }
        st.recv_waker = Some(cx.waker().clone());
        Poll::Pending
    }
}

// ---------------------------------------------------------------------------
// oneshot
// ---------------------------------------------------------------------------

struct OneshotState<T> {
    value: Option<T>,
    waker: Option<Waker>,
    sender_alive: bool,
}

/// Sending half of a oneshot channel.
pub struct OneshotSender<T> {
    st: Rc<RefCell<OneshotState<T>>>,
    sent: bool,
}

/// Receiving half of a oneshot channel. Awaiting it yields
/// `Ok(value)` or `Err(Canceled)` if the sender dropped without sending.
pub struct OneshotReceiver<T> {
    st: Rc<RefCell<OneshotState<T>>>,
}

/// The oneshot sender was dropped without sending.
#[derive(Debug, PartialEq, Eq)]
pub struct Canceled;

/// Create a oneshot channel.
pub fn oneshot<T>() -> (OneshotSender<T>, OneshotReceiver<T>) {
    let st = Rc::new(RefCell::new(OneshotState {
        value: None,
        waker: None,
        sender_alive: true,
    }));
    (
        OneshotSender {
            st: st.clone(),
            sent: false,
        },
        OneshotReceiver { st },
    )
}

impl<T> OneshotSender<T> {
    /// Deliver the value, waking the receiver.
    pub fn send(mut self, value: T) {
        self.sent = true;
        let waker = {
            let mut st = self.st.borrow_mut();
            st.value = Some(value);
            st.waker.take()
        };
        if let Some(w) = waker {
            w.wake();
        }
    }
}

impl<T> Drop for OneshotSender<T> {
    fn drop(&mut self) {
        let waker = {
            let mut st = self.st.borrow_mut();
            st.sender_alive = false;
            if self.sent {
                None
            } else {
                st.waker.take()
            }
        };
        if let Some(w) = waker {
            w.wake();
        }
    }
}

impl<T> Future for OneshotReceiver<T> {
    type Output = Result<T, Canceled>;

    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<Self::Output> {
        let mut st = self.st.borrow_mut();
        if let Some(v) = st.value.take() {
            return Poll::Ready(Ok(v));
        }
        if !st.sender_alive {
            return Poll::Ready(Err(Canceled));
        }
        st.waker = Some(cx.waker().clone());
        Poll::Pending
    }
}

// ---------------------------------------------------------------------------
// Semaphore
// ---------------------------------------------------------------------------

struct Waiter {
    id: u64,
    need: usize,
    waker: Option<Waker>,
}

struct SemState {
    permits: usize,
    waiters: VecDeque<Waiter>,
    next_id: u64,
}

impl SemState {
    /// Wake the longest-waiting waiter if it can now be satisfied.
    /// (FIFO: a large request at the head blocks smaller ones behind it,
    /// which prevents starvation.)
    fn wake_front_if_ready(&mut self) -> Option<Waker> {
        if let Some(front) = self.waiters.front_mut() {
            if front.need <= self.permits {
                return front.waker.take();
            }
        }
        None
    }
}

/// A counting semaphore with FIFO fairness.
#[derive(Clone)]
pub struct Semaphore {
    st: Rc<RefCell<SemState>>,
}

impl Semaphore {
    /// Create a semaphore with `permits` initial permits.
    pub fn new(permits: usize) -> Semaphore {
        Semaphore {
            st: Rc::new(RefCell::new(SemState {
                permits,
                waiters: VecDeque::new(),
                next_id: 0,
            })),
        }
    }

    /// Currently available permits.
    pub fn available(&self) -> usize {
        self.st.borrow().permits
    }

    /// Tasks currently blocked in [`Semaphore::acquire`].
    pub fn queued(&self) -> usize {
        self.st.borrow().waiters.len()
    }

    /// Acquire `n` permits; the returned guard releases them on drop.
    pub fn acquire(&self, n: usize) -> Acquire {
        Acquire {
            sem: self.clone(),
            need: n,
            queued_as: None,
        }
    }

    /// Try to acquire without waiting.
    pub fn try_acquire(&self, n: usize) -> Option<SemPermit> {
        let mut st = self.st.borrow_mut();
        if st.waiters.is_empty() && st.permits >= n {
            st.permits -= n;
            Some(SemPermit {
                sem: self.clone(),
                n,
            })
        } else {
            None
        }
    }

    /// Add permits (capacity growth).
    pub fn release_extra(&self, n: usize) {
        let waker = {
            let mut st = self.st.borrow_mut();
            st.permits += n;
            st.wake_front_if_ready()
        };
        if let Some(w) = waker {
            w.wake();
        }
    }
}

/// Future returned by [`Semaphore::acquire`].
pub struct Acquire {
    sem: Semaphore,
    need: usize,
    queued_as: Option<u64>,
}

impl Future for Acquire {
    type Output = SemPermit;

    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<SemPermit> {
        let this = self.get_mut();
        let mut st = this.sem.st.borrow_mut();
        match this.queued_as {
            None => {
                if st.waiters.is_empty() && st.permits >= this.need {
                    st.permits -= this.need;
                    return Poll::Ready(SemPermit {
                        sem: this.sem.clone(),
                        n: this.need,
                    });
                }
                let id = st.next_id;
                st.next_id += 1;
                st.waiters.push_back(Waiter {
                    id,
                    need: this.need,
                    waker: Some(cx.waker().clone()),
                });
                this.queued_as = Some(id);
                Poll::Pending
            }
            Some(id) => {
                // Only the head of the queue may claim permits.
                let at_head = st.waiters.front().map(|w| w.id) == Some(id);
                if at_head && st.permits >= this.need {
                    st.permits -= this.need;
                    st.waiters.pop_front();
                    this.queued_as = None;
                    // The next waiter might also be satisfiable now.
                    let next = st.wake_front_if_ready();
                    drop(st);
                    if let Some(w) = next {
                        w.wake();
                    }
                    return Poll::Ready(SemPermit {
                        sem: this.sem.clone(),
                        n: this.need,
                    });
                }
                // Refresh our stored waker.
                if let Some(w) = st.waiters.iter_mut().find(|w| w.id == id) {
                    w.waker = Some(cx.waker().clone());
                }
                Poll::Pending
            }
        }
    }
}

impl Drop for Acquire {
    fn drop(&mut self) {
        if let Some(id) = self.queued_as {
            let waker = {
                let mut st = self.sem.st.borrow_mut();
                if let Some(pos) = st.waiters.iter().position(|w| w.id == id) {
                    st.waiters.remove(pos);
                }
                // Canceling the head may unblock the next waiter.
                st.wake_front_if_ready()
            };
            if let Some(w) = waker {
                w.wake();
            }
        }
    }
}

/// Permits held from a [`Semaphore`]; released on drop.
pub struct SemPermit {
    sem: Semaphore,
    n: usize,
}

impl SemPermit {
    /// How many permits this guard holds.
    pub fn count(&self) -> usize {
        self.n
    }
}

impl Drop for SemPermit {
    fn drop(&mut self) {
        let waker = {
            let mut st = self.sem.st.borrow_mut();
            st.permits += self.n;
            st.wake_front_if_ready()
        };
        if let Some(w) = waker {
            w.wake();
        }
    }
}

// ---------------------------------------------------------------------------
// Barrier
// ---------------------------------------------------------------------------

struct BarrierState {
    needed: usize,
    arrived: usize,
    generation: u64,
    wakers: Vec<Waker>,
}

/// A reusable barrier: `wait()` suspends until `n` tasks have arrived,
/// then releases them all and resets for the next generation.
#[derive(Clone)]
pub struct Barrier {
    st: Rc<RefCell<BarrierState>>,
}

impl Barrier {
    /// A barrier for `n` participants (`n >= 1`).
    pub fn new(n: usize) -> Barrier {
        assert!(n >= 1, "barrier needs at least one participant");
        Barrier {
            st: Rc::new(RefCell::new(BarrierState {
                needed: n,
                arrived: 0,
                generation: 0,
                wakers: Vec::new(),
            })),
        }
    }

    /// Arrive and wait for the rest of the cohort. Returns `true` for
    /// exactly one participant per generation (the "leader").
    pub fn wait(&self) -> BarrierWait {
        BarrierWait {
            barrier: self.clone(),
            joined: None,
        }
    }
}

/// Future returned by [`Barrier::wait`].
pub struct BarrierWait {
    barrier: Barrier,
    joined: Option<(u64, bool)>,
}

impl Future for BarrierWait {
    type Output = bool;

    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<bool> {
        let this = self.get_mut();
        let mut st = this.barrier.st.borrow_mut();
        match this.joined {
            None => {
                st.arrived += 1;
                let gen = st.generation;
                if st.arrived == st.needed {
                    // Release the cohort and start the next generation.
                    st.arrived = 0;
                    st.generation += 1;
                    let wakers = std::mem::take(&mut st.wakers);
                    drop(st);
                    for w in wakers {
                        w.wake();
                    }
                    this.joined = Some((gen, true));
                    Poll::Ready(true)
                } else {
                    st.wakers.push(cx.waker().clone());
                    this.joined = Some((gen, false));
                    Poll::Pending
                }
            }
            Some((gen, leader)) => {
                if st.generation > gen {
                    Poll::Ready(leader)
                } else {
                    st.wakers.push(cx.waker().clone());
                    Poll::Pending
                }
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Notify (edge-triggered wakeup set)
// ---------------------------------------------------------------------------

struct NotifyState {
    waiters: VecDeque<(u64, Option<Waker>)>,
    /// Wakeups delivered to waiter ids (consumed on poll).
    signaled: Vec<u64>,
    next_id: u64,
}

/// Wake one or all waiting tasks. Unlike a channel there is no payload and
/// no buffering: a `notify_one` with no waiter is lost.
#[derive(Clone)]
pub struct Notify {
    st: Rc<RefCell<NotifyState>>,
}

impl Default for Notify {
    fn default() -> Self {
        Notify::new()
    }
}

impl Notify {
    /// Create a notifier with no waiters.
    pub fn new() -> Notify {
        Notify {
            st: Rc::new(RefCell::new(NotifyState {
                waiters: VecDeque::new(),
                signaled: Vec::new(),
                next_id: 0,
            })),
        }
    }

    /// A future that completes at the next notification after it first polls.
    pub fn notified(&self) -> Notified {
        Notified {
            notify: self.clone(),
            id: None,
        }
    }

    /// Wake the longest-waiting task, if any.
    pub fn notify_one(&self) {
        let waker = {
            let mut st = self.st.borrow_mut();
            match st.waiters.pop_front() {
                Some((id, w)) => {
                    st.signaled.push(id);
                    w
                }
                None => None,
            }
        };
        if let Some(w) = waker {
            w.wake();
        }
    }

    /// Wake every waiting task.
    pub fn notify_all(&self) {
        let wakers: Vec<Waker> = {
            let mut st = self.st.borrow_mut();
            let drained: Vec<(u64, Option<Waker>)> = st.waiters.drain(..).collect();
            let mut ws = Vec::new();
            for (id, w) in drained {
                st.signaled.push(id);
                if let Some(w) = w {
                    ws.push(w);
                }
            }
            ws
        };
        for w in wakers {
            w.wake();
        }
    }
}

/// Future returned by [`Notify::notified`].
pub struct Notified {
    notify: Notify,
    id: Option<u64>,
}

impl Future for Notified {
    type Output = ();

    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<()> {
        let this = self.get_mut();
        let mut st = this.notify.st.borrow_mut();
        match this.id {
            None => {
                let id = st.next_id;
                st.next_id += 1;
                st.waiters.push_back((id, Some(cx.waker().clone())));
                this.id = Some(id);
                Poll::Pending
            }
            Some(id) => {
                if let Some(pos) = st.signaled.iter().position(|&s| s == id) {
                    st.signaled.swap_remove(pos);
                    this.id = None;
                    return Poll::Ready(());
                }
                if let Some((_, w)) = st.waiters.iter_mut().find(|(wid, _)| *wid == id) {
                    *w = Some(cx.waker().clone());
                }
                Poll::Pending
            }
        }
    }
}

impl Drop for Notified {
    fn drop(&mut self) {
        if let Some(id) = self.id {
            let mut st = self.notify.st.borrow_mut();
            if let Some(pos) = st.waiters.iter().position(|(wid, _)| *wid == id) {
                st.waiters.remove(pos);
            }
            if let Some(pos) = st.signaled.iter().position(|&s| s == id) {
                st.signaled.swap_remove(pos);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::executor::Sim;
    use crate::time::SimDuration;
    use std::cell::Cell;

    #[test]
    fn channel_delivers_in_order() {
        let sim = Sim::new(1);
        let (tx, mut rx) = channel::<u32>();
        let s = sim.clone();
        sim.spawn(async move {
            for i in 0..5 {
                s.sleep(SimDuration::from_millis(10)).await;
                tx.send(i).unwrap();
            }
        });
        let got = sim.block_on(async move {
            let mut got = Vec::new();
            while let Some(v) = rx.recv().await {
                got.push(v);
            }
            got
        });
        assert_eq!(got, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn channel_recv_none_after_senders_drop() {
        let sim = Sim::new(1);
        let (tx, mut rx) = channel::<u32>();
        tx.send(9).unwrap();
        drop(tx);
        let out = sim.block_on(async move {
            let a = rx.recv().await;
            let b = rx.recv().await;
            (a, b)
        });
        assert_eq!(out, (Some(9), None));
    }

    #[test]
    fn channel_send_fails_after_receiver_drop() {
        let (tx, rx) = channel::<u32>();
        drop(rx);
        assert_eq!(tx.send(1), Err(SendError(1)));
    }

    #[test]
    fn channel_try_recv() {
        let (tx, mut rx) = channel::<u32>();
        assert_eq!(rx.try_recv(), None);
        tx.send(5).unwrap();
        assert_eq!(rx.len(), 1);
        assert_eq!(rx.try_recv(), Some(5));
        assert!(rx.is_empty());
    }

    #[test]
    fn cloned_senders_count() {
        let sim = Sim::new(1);
        let (tx, mut rx) = channel::<u32>();
        let tx2 = tx.clone();
        drop(tx);
        tx2.send(3).unwrap();
        drop(tx2);
        let out = sim.block_on(async move {
            let mut v = Vec::new();
            while let Some(x) = rx.recv().await {
                v.push(x);
            }
            v
        });
        assert_eq!(out, vec![3]);
    }

    #[test]
    fn oneshot_roundtrip() {
        let sim = Sim::new(1);
        let (tx, rx) = oneshot::<&'static str>();
        let s = sim.clone();
        sim.spawn(async move {
            s.sleep(SimDuration::from_secs(1)).await;
            tx.send("done");
        });
        assert_eq!(sim.block_on(rx), Ok("done"));
    }

    #[test]
    fn oneshot_cancel() {
        let sim = Sim::new(1);
        let (tx, rx) = oneshot::<u32>();
        drop(tx);
        assert_eq!(sim.block_on(rx), Err(Canceled));
    }

    #[test]
    fn semaphore_limits_concurrency() {
        let sim = Sim::new(1);
        let sem = Semaphore::new(2);
        let peak = Rc::new(Cell::new(0usize));
        let cur = Rc::new(Cell::new(0usize));
        for _ in 0..10 {
            let s = sim.clone();
            let sem = sem.clone();
            let peak = peak.clone();
            let cur = cur.clone();
            sim.spawn(async move {
                let _permit = sem.acquire(1).await;
                cur.set(cur.get() + 1);
                peak.set(peak.get().max(cur.get()));
                s.sleep(SimDuration::from_millis(10)).await;
                cur.set(cur.get() - 1);
            });
        }
        sim.run();
        assert_eq!(peak.get(), 2);
        assert_eq!(sem.available(), 2);
        // 10 tasks, 2 at a time, 10ms each => 50ms.
        assert_eq!(sim.now().as_nanos(), 50_000_000);
    }

    #[test]
    fn semaphore_fifo_no_starvation() {
        let sim = Sim::new(1);
        let sem = Semaphore::new(2);
        let order = Rc::new(RefCell::new(Vec::new()));
        // Task 0 grabs both permits, then a big request (2) queues ahead of
        // a small one (1); the small one must NOT jump the queue.
        let s0 = sim.clone();
        let sem0 = sem.clone();
        let ord0 = order.clone();
        sim.spawn(async move {
            let p = sem0.acquire(2).await;
            s0.sleep(SimDuration::from_millis(10)).await;
            ord0.borrow_mut().push("first");
            drop(p);
        });
        let s1 = sim.clone();
        let sem1 = sem.clone();
        let ord1 = order.clone();
        sim.spawn(async move {
            s1.sleep(SimDuration::from_millis(1)).await;
            let _p = sem1.acquire(2).await;
            ord1.borrow_mut().push("big");
        });
        let s2 = sim.clone();
        let sem2 = sem.clone();
        let ord2 = order.clone();
        sim.spawn(async move {
            s2.sleep(SimDuration::from_millis(2)).await;
            let _p = sem2.acquire(1).await;
            ord2.borrow_mut().push("small");
        });
        sim.run();
        assert_eq!(*order.borrow(), vec!["first", "big", "small"]);
    }

    #[test]
    fn try_acquire_respects_queue() {
        let sim = Sim::new(1);
        let sem = Semaphore::new(1);
        let p = sem.try_acquire(1).unwrap();
        assert!(sem.try_acquire(1).is_none());
        let sem2 = sem.clone();
        sim.spawn(async move {
            let _p = sem2.acquire(1).await;
        });
        // Give the spawned task a chance to queue.
        sim.run_until(crate::time::SimTime::ZERO);
        drop(p);
        sim.run();
        assert_eq!(sem.available(), 1);
    }

    #[test]
    fn canceling_queued_acquire_unblocks_next() {
        let sim = Sim::new(1);
        let sem = Semaphore::new(1);
        let held = sem.try_acquire(1).unwrap();
        let s = sim.clone();
        let sem_a = sem.clone();
        // Waiter A times out while queued; waiter B must still get through.
        let sa = sim.clone();
        sim.spawn(async move {
            let got = sa
                .timeout(SimDuration::from_millis(5), sem_a.acquire(1))
                .await;
            assert!(got.is_none());
        });
        let sem_b = sem.clone();
        let done = Rc::new(Cell::new(false));
        let d = done.clone();
        sim.spawn(async move {
            s.sleep(SimDuration::from_millis(1)).await;
            let _p = sem_b.acquire(1).await;
            d.set(true);
        });
        let sim2 = sim.clone();
        sim.spawn(async move {
            sim2.sleep(SimDuration::from_millis(10)).await;
            drop(held);
        });
        sim.run();
        assert!(done.get());
    }

    #[test]
    fn barrier_releases_cohort_together() {
        let sim = Sim::new(9);
        let barrier = Barrier::new(3);
        let release_times = Rc::new(RefCell::new(Vec::new()));
        let leaders = Rc::new(Cell::new(0u32));
        for i in 0..3u64 {
            let sim2 = sim.clone();
            let b = barrier.clone();
            let times = release_times.clone();
            let leaders = leaders.clone();
            sim.spawn(async move {
                sim2.sleep(SimDuration::from_secs(i)).await;
                let leader = b.wait().await;
                if leader {
                    leaders.set(leaders.get() + 1);
                }
                times.borrow_mut().push(sim2.now());
            });
        }
        sim.run();
        let times = release_times.borrow();
        assert_eq!(times.len(), 3);
        // Everyone releases when the slowest (2 s) arrives.
        assert!(times.iter().all(|t| t.as_nanos() == 2_000_000_000));
        assert_eq!(leaders.get(), 1, "exactly one leader per generation");
    }

    #[test]
    fn barrier_is_reusable_across_generations() {
        let sim = Sim::new(10);
        let barrier = Barrier::new(2);
        let rounds = Rc::new(Cell::new(0u32));
        for _ in 0..2 {
            let b = barrier.clone();
            let r = rounds.clone();
            sim.spawn(async move {
                for _ in 0..5 {
                    b.wait().await;
                    r.set(r.get() + 1);
                }
            });
        }
        sim.run();
        assert_eq!(rounds.get(), 10);
    }

    #[test]
    fn notify_one_wakes_single_waiter() {
        let sim = Sim::new(1);
        let n = Notify::new();
        let woke = Rc::new(Cell::new(0));
        for _ in 0..3 {
            let n = n.clone();
            let woke = woke.clone();
            sim.spawn(async move {
                n.notified().await;
                woke.set(woke.get() + 1);
            });
        }
        let n2 = n.clone();
        let s = sim.clone();
        sim.spawn(async move {
            s.sleep(SimDuration::from_millis(1)).await;
            n2.notify_one();
            s.sleep(SimDuration::from_millis(1)).await;
            n2.notify_all();
        });
        sim.run();
        assert_eq!(woke.get(), 3);
    }

    #[test]
    fn notify_without_waiters_is_lost() {
        let sim = Sim::new(1);
        let n = Notify::new();
        n.notify_one();
        let s = sim.clone();
        let n2 = n.clone();
        let got = sim.block_on(async move {
            s.timeout(SimDuration::from_millis(5), n2.notified()).await
        });
        assert!(got.is_none());
    }

    use std::rc::Rc;
}
