//! Shared bandwidth links with max–min fair sharing in O(log n) per event.
//!
//! A [`FairShareLink`] models a capacity-limited pipe (a host NIC, a
//! storage-service connection pool) shared by concurrent transfers. Rates
//! are allocated max–min fairly with an optional per-flow cap via
//! water-filling: flows that cannot use a full equal share (because their
//! cap is lower) give their slack to the others.
//!
//! This is the mechanism behind the paper's §3 observation: with twenty
//! Lambda functions packed onto one host VM, the per-function share of the
//! NIC collapses from 538 Mbps to ~28.7 Mbps.
//!
//! # Virtual-time fair queueing
//!
//! The previous implementation rescanned every flow three times per
//! join/completion/cancel (charge elapsed service, re-water-fill, find the
//! earliest completion), making n-flow churn O(n²) — the simulator's last
//! scaling wall at 5k+ concurrent flows. This one makes each event
//! O(log n + classes):
//!
//! - **V(t)**, the fair-share work function, counts the bits an
//!   unthrottled flow has been served since the link's current busy
//!   period began. It is piecewise linear with slope equal to the water
//!   level and advances in O(1) per event. A flow riding the water level
//!   needs no per-event touch: joining with `B` bits remaining it
//!   finishes exactly when `V` reaches `V_join + B`, so all such flows
//!   sit in one min-heap of virtual finish times.
//! - **Capped flows aggregate into rate classes** (one bucket per
//!   distinct cap). While a class sits *below* the water level every
//!   member runs at exactly its cap, so each member's completion is a
//!   fixed absolute instant computed once (a second min-heap). The
//!   water-fill step works on class aggregates — `Σ cap·members` — in
//!   O(classes), and members are individually charged and re-based only
//!   when the water level crosses their class's cap (lazy re-leveling).
//!
//! Completion instants still ceil to the next nanosecond, a flow is still
//! done when less than half a bit remains, finished flows still wake in
//! flow-id order, and the link still schedules exactly one epoch-guarded
//! callback per state change — so the event stream, and therefore every
//! recorder digest, is preserved. A retained O(n)-rescan reference
//! allocator (`#[cfg(test)]`, sharing the same per-flow accounting
//! formulas) differential-tests the heap and bucket machinery under
//! randomized churn.

use std::cell::RefCell;
use std::cmp::Reverse;
use std::collections::{BinaryHeap, BTreeMap, VecDeque};
use std::future::Future;
use std::pin::Pin;
use std::rc::Rc;
use std::task::{Context, Poll, Waker};

use crate::executor::Sim;
use crate::time::{SimDuration, SimTime};

/// Bits per second.
pub type Bps = f64;

/// Convert megabits/second to [`Bps`].
pub fn mbps(v: f64) -> Bps {
    v * 1e6
}

/// Convert gigabits/second to [`Bps`].
pub fn gbps(v: f64) -> Bps {
    v * 1e9
}

/// Convert megabytes/second to [`Bps`].
pub fn mbytes_per_sec(v: f64) -> Bps {
    v * 8e6
}

/// A flow with less than half a bit left is finished: completion
/// boundaries are scheduled with ceil-to-nanosecond rounding, so the
/// residue at the completion instant is sub-bit.
const DONE_EPS_BITS: f64 = 0.5;

/// Completion delay for `secs` of service at the current rates: ceil to
/// the next nanosecond (so the completion event sees the flow done), at
/// least one nanosecond out.
#[inline]
fn ceil_ns(secs: f64) -> SimDuration {
    SimDuration::from_nanos((secs * 1e9).ceil().max(1.0) as u64)
}

/// Which service regime a flow is currently in.
#[derive(Copy, Clone, Debug)]
enum Phase {
    /// Served at the water level: finishes when V reaches `v_finish`.
    Virtual {
        /// Virtual-time finish tag: `V_at_last_touch + remaining_bits`.
        v_finish: f64,
    },
    /// Pinned at its cap (class below the water level): finishes at the
    /// absolute instant `fin`, computed once on entry.
    Capped {
        /// When the flow entered this phase (service accrues at `cap`
        /// from here, against `remaining_bits` as of this instant).
        since: SimTime,
        /// Absolute completion instant.
        fin: SimTime,
    },
}

#[derive(Debug)]
struct Flow {
    /// Remaining bits as of the flow's last touch (join or re-level).
    /// While `Virtual`, the live value is `v_finish - V`; while
    /// `Capped`, it is `remaining_bits - cap·(now - since)`.
    remaining_bits: f64,
    cap_bps: Option<Bps>,
    phase: Phase,
    waker: Option<Waker>,
    done: bool,
}

/// All flows sharing one cap value, water-filled as a unit.
struct CapClass {
    cap: Bps,
    /// Live (not done, not canceled) member flows.
    members: usize,
    /// Whether the class currently sits below the water level (every
    /// member pinned at `cap`).
    saturated: bool,
    /// Member flow ids. Finished/canceled flows leave stale entries,
    /// skipped on re-level and compacted once they outnumber live
    /// members (`members`, never the slab occupancy — done-but-unreaped
    /// flows must not defer compaction).
    ids: Vec<u64>,
}

/// Min-heap key for virtual finish tags. Values are finite and positive;
/// ties are broken by flow id in the surrounding tuple.
#[derive(Copy, Clone, PartialEq, Debug)]
struct VKey(f64);

impl Eq for VKey {}

impl PartialOrd for VKey {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for VKey {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.total_cmp(&other.0)
    }
}

struct LinkState {
    capacity_bps: Bps,
    /// Flows indexed by `id - base_id` (ids are sequential). Removed
    /// flows leave a `None` hole; leading holes are popped so the deque
    /// tracks the live window.
    flows: VecDeque<Option<Flow>>,
    base_id: u64,
    /// Occupied slots, including done-but-unreaped flows.
    occupied: usize,
    /// Live-not-done flows — kept exact so `active_flows()` and
    /// `fair_share_estimate()` are O(1) and compaction triggers compare
    /// against live work, not slab occupancy.
    active: usize,
    /// Live flows currently in [`Phase::Virtual`].
    virtual_n: usize,
    /// Rate classes keyed by `cap.to_bits()` (positive floats order the
    /// same as their bit patterns). Dropped when the last member leaves.
    classes: BTreeMap<u64, CapClass>,
    /// Min-heap of `(v_finish, id)` over `Virtual` flows. Entries go
    /// stale on cancel/re-level and are dropped lazily (validated
    /// against the flow's current phase tag).
    virt_heap: BinaryHeap<Reverse<(VKey, u64)>>,
    /// Min-heap of `(fin, id)` over `Capped` flows; same lazy staleness.
    cap_heap: BinaryHeap<Reverse<(SimTime, u64)>>,
    /// The fair-share work function V: bits served to a `Virtual` flow
    /// since the current busy period began (rebased to 0 at idle, so
    /// magnitudes stay comparable to transfer sizes).
    v_now: f64,
    /// Current water level in bits/sec (slope of V). +∞ when every live
    /// flow is saturated at its cap; 0 when idle.
    level: Bps,
    next_flow: u64,
    last_update: SimTime,
    epoch: u64,
    /// Flow ids finished during the event being processed, woken in id
    /// order (the order the old full-scan collector produced).
    finished: Vec<u64>,
    /// Scratch for re-level flip lists, reused across events.
    flips: Vec<u64>,
}

impl LinkState {
    fn flow_ref(&self, id: u64) -> Option<&Flow> {
        let idx = id.checked_sub(self.base_id)? as usize;
        self.flows.get(idx)?.as_ref()
    }

    fn flow_mut(&mut self, id: u64) -> Option<&mut Flow> {
        let idx = id.checked_sub(self.base_id)? as usize;
        self.flows.get_mut(idx)?.as_mut()
    }

    /// Take a flow out of the slab (reap or cancel). Pure slab
    /// bookkeeping: live-flow accounting is the caller's job.
    fn take_flow(&mut self, id: u64) -> Option<Flow> {
        let idx = id.checked_sub(self.base_id)? as usize;
        let f = self.flows.get_mut(idx)?.take();
        if f.is_some() {
            self.occupied -= 1;
            while let Some(None) = self.flows.front() {
                self.flows.pop_front();
                self.base_id += 1;
            }
        }
        f
    }

    /// Advance V across the interval since the last event, at the slope
    /// the previous re-level established.
    fn advance_to(&mut self, now: SimTime) {
        let dt = now.duration_since(self.last_update).as_secs_f64();
        self.last_update = now;
        if dt > 0.0 && self.virtual_n > 0 && self.level > 0.0 {
            self.v_now += self.level * dt;
        }
    }

    /// Mark `id` finished as of the current event: drop it from the live
    /// accounting and queue its waker (wakes happen in id order).
    fn mark_done(&mut self, id: u64) {
        let base = self.base_id;
        let Some(flow) = self
            .flows
            .get_mut((id - base) as usize)
            .and_then(Option::as_mut)
        else {
            return;
        };
        debug_assert!(!flow.done);
        flow.done = true;
        flow.remaining_bits = 0.0;
        let was_virtual = matches!(flow.phase, Phase::Virtual { .. });
        let cap = flow.cap_bps;
        self.active -= 1;
        if was_virtual {
            self.virtual_n -= 1;
        }
        if let Some(cap) = cap {
            self.drop_class_member(cap.to_bits());
        }
        self.finished.push(id);
    }

    fn drop_class_member(&mut self, bits: u64) {
        let class = self.classes.get_mut(&bits).expect("flow's class exists");
        class.members -= 1;
        if class.members == 0 {
            self.classes.remove(&bits);
        }
    }

    /// Validate the virtual heap's top, discarding stale entries; returns
    /// the live minimum without popping it.
    fn clean_virt_top(&mut self) -> Option<(f64, u64)> {
        while let Some(&Reverse((VKey(vf), id))) = self.virt_heap.peek() {
            let live = self.flow_ref(id).is_some_and(|f| {
                !f.done
                    && matches!(f.phase, Phase::Virtual { v_finish }
                        if v_finish.to_bits() == vf.to_bits())
            });
            if live {
                return Some((vf, id));
            }
            self.virt_heap.pop();
        }
        None
    }

    /// Validate the capped heap's top, discarding stale entries.
    fn clean_cap_top(&mut self) -> Option<(SimTime, u64)> {
        while let Some(&Reverse((fin, id))) = self.cap_heap.peek() {
            let live = self.flow_ref(id).is_some_and(|f| {
                !f.done && matches!(f.phase, Phase::Capped { fin: f2, .. } if f2 == fin)
            });
            if live {
                return Some((fin, id));
            }
            self.cap_heap.pop();
        }
        None
    }

    /// Pop every flow whose completion boundary has been reached:
    /// `Virtual` flows with less than [`DONE_EPS_BITS`] of virtual
    /// service left, `Capped` flows whose fixed instant has arrived.
    fn settle_completions(&mut self, now: SimTime) {
        while let Some((vf, id)) = self.clean_virt_top() {
            if vf - self.v_now < DONE_EPS_BITS {
                self.virt_heap.pop();
                self.mark_done(id);
            } else {
                break;
            }
        }
        while let Some((fin, id)) = self.clean_cap_top() {
            if fin <= now {
                self.cap_heap.pop();
                self.mark_done(id);
            } else {
                break;
            }
        }
    }

    /// Recompute the water level from the class aggregates and lazily
    /// re-level any class the level crossed. O(classes) plus O(size) for
    /// each class that actually flipped sides.
    fn relevel(&mut self, now: SimTime) {
        if self.active == 0 {
            // Idle: rebase the busy period so V stays at transfer-size
            // magnitudes, and drop whatever stale entries remain.
            self.level = 0.0;
            self.v_now = 0.0;
            self.virt_heap.clear();
            self.cap_heap.clear();
            self.classes.clear();
            return;
        }
        // Water-fill over class aggregates, cap-ascending: a class whose
        // cap is below the running fair share is saturated (members
        // pinned at cap) and surrenders its slack to everyone above.
        let mut budget = self.capacity_bps;
        let mut n_rem = self.active;
        let mut boundary = u64::MAX; // first cap (as bits) NOT saturated
        for (&bits, class) in self.classes.iter() {
            let fair = budget / n_rem as f64;
            if class.cap < fair {
                budget -= class.cap * class.members as f64;
                n_rem -= class.members;
            } else {
                boundary = bits;
                break;
            }
        }
        self.level = if n_rem > 0 {
            budget / n_rem as f64
        } else {
            f64::INFINITY
        };
        // Flip classes whose side changed.
        self.flips.clear();
        let mut flips = std::mem::take(&mut self.flips);
        for (&bits, class) in self.classes.iter() {
            if class.saturated != (bits < boundary) {
                flips.push(bits);
            }
        }
        for &bits in &flips {
            self.flip_class(bits, now);
        }
        self.flips = flips;
    }

    /// Move every member of class `bits` across the water level: charge
    /// the service accrued in the old regime, then re-base in the new
    /// one. Members already on the target side (fresh joiners) and stale
    /// ids are skipped; stale ids are dropped while we're here.
    fn flip_class(&mut self, bits: u64, now: SimTime) {
        let (cap, to_sat, mut ids) = {
            let class = self.classes.get_mut(&bits).expect("flipping a live class");
            class.saturated = !class.saturated;
            (class.cap, class.saturated, std::mem::take(&mut class.ids))
        };
        let base = self.base_id;
        ids.retain(|&id| {
            id.checked_sub(base)
                .and_then(|i| self.flows.get(i as usize))
                .and_then(Option::as_ref)
                .is_some_and(|f| !f.done && f.cap_bps.map(f64::to_bits) == Some(bits))
        });
        for &id in &ids {
            self.relevel_member(id, cap, to_sat, now);
        }
        if let Some(class) = self.classes.get_mut(&bits) {
            class.ids = ids;
        }
    }

    /// Re-base one capped flow on the other side of the water level.
    fn relevel_member(&mut self, id: u64, cap: Bps, to_sat: bool, now: SimTime) {
        let v_now = self.v_now;
        let base = self.base_id;
        let Some(flow) = self
            .flows
            .get_mut((id - base) as usize)
            .and_then(Option::as_mut)
        else {
            return;
        };
        match (flow.phase, to_sat) {
            (Phase::Virtual { v_finish }, true) => {
                let rem = v_finish - v_now;
                if rem < DONE_EPS_BITS {
                    flow.phase = Phase::Capped { since: now, fin: now };
                    self.virtual_n -= 1;
                    self.mark_done(id);
                } else {
                    flow.remaining_bits = rem;
                    let fin = now.saturating_add(ceil_ns(rem / cap));
                    flow.phase = Phase::Capped { since: now, fin };
                    self.virtual_n -= 1;
                    self.cap_heap.push(Reverse((fin, id)));
                }
            }
            (Phase::Capped { since, .. }, false) => {
                let dt = now.duration_since(since).as_secs_f64();
                let rem = flow.remaining_bits - cap * dt;
                if rem < DONE_EPS_BITS {
                    flow.phase = Phase::Virtual { v_finish: v_now };
                    self.virtual_n += 1;
                    self.mark_done(id);
                } else {
                    flow.remaining_bits = rem;
                    let v_finish = v_now + rem;
                    flow.phase = Phase::Virtual { v_finish };
                    self.virtual_n += 1;
                    self.virt_heap.push(Reverse((VKey(v_finish), id)));
                }
            }
            // Already on the target side (a joiner re-based by
            // `place_joiner`, or a double flip within one event).
            _ => {}
        }
    }

    /// A freshly joined capped flow enters as `Virtual` (zero service so
    /// far); if its class sits below the water level after the re-level,
    /// pin it at its cap now.
    fn place_joiner(&mut self, id: u64, now: SimTime) {
        let Some(flow) = self.flow_ref(id) else { return };
        if flow.done {
            return;
        }
        let Some(cap) = flow.cap_bps else { return };
        let saturated = self
            .classes
            .get(&cap.to_bits())
            .is_some_and(|c| c.saturated);
        if saturated && matches!(flow.phase, Phase::Virtual { .. }) {
            self.relevel_member(id, cap, true, now);
        }
    }

    /// Earliest projected completion among live flows: the virtual
    /// heap's minimum translated through the current level, against the
    /// capped heap's fixed minimum.
    fn next_completion(&mut self, now: SimTime) -> Option<SimTime> {
        self.maybe_compact_heaps();
        let virt = self.clean_virt_top().and_then(|(vf, _)| {
            if self.level > 0.0 && self.level.is_finite() {
                Some(now.saturating_add(ceil_ns((vf - self.v_now) / self.level)))
            } else {
                None
            }
        });
        let capped = self.clean_cap_top().map(|(fin, _)| fin.max(now));
        match (virt, capped) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        }
    }

    /// Rebuild a heap once stale entries outnumber live flows (plus
    /// slack), bounding memory under cancel/flip-heavy churn. Thresholds
    /// compare against live counts, never slab occupancy.
    fn maybe_compact_heaps(&mut self) {
        if self.virt_heap.len() > 64 + 2 * self.virtual_n {
            let heap = std::mem::take(&mut self.virt_heap);
            let mut entries = heap.into_vec();
            entries.retain(|&Reverse((VKey(vf), id))| {
                self.flow_ref(id).is_some_and(|f| {
                    !f.done
                        && matches!(f.phase, Phase::Virtual { v_finish }
                            if v_finish.to_bits() == vf.to_bits())
                })
            });
            self.virt_heap = BinaryHeap::from(entries);
        }
        let capped_n = self.active - self.virtual_n;
        if self.cap_heap.len() > 64 + 2 * capped_n {
            let heap = std::mem::take(&mut self.cap_heap);
            let mut entries = heap.into_vec();
            entries.retain(|&Reverse((fin, id))| {
                self.flow_ref(id).is_some_and(|f| {
                    !f.done && matches!(f.phase, Phase::Capped { fin: f2, .. } if f2 == fin)
                })
            });
            self.cap_heap = BinaryHeap::from(entries);
        }
    }

    /// Register a capped joiner in its rate class (creating the class at
    /// the current side of the water level if it is new) and compact the
    /// member list when stale ids dominate live ones.
    fn class_insert(&mut self, id: u64, cap: Bps) {
        let bits = cap.to_bits();
        let class = self.classes.entry(bits).or_insert_with(|| CapClass {
            cap,
            members: 0,
            saturated: false,
            ids: Vec::new(),
        });
        class.members += 1;
        class.ids.push(id);
        if class.ids.len() > 64 + 2 * class.members {
            let members = std::mem::take(&mut class.ids);
            let base = self.base_id;
            let kept: Vec<u64> = members
                .into_iter()
                .filter(|&fid| {
                    fid.checked_sub(base)
                        .and_then(|i| self.flows.get(i as usize))
                        .and_then(Option::as_ref)
                        .is_some_and(|f| !f.done && f.cap_bps.map(f64::to_bits) == Some(bits))
                })
                .collect();
            self.classes.get_mut(&bits).expect("just inserted").ids = kept;
        }
    }

    /// Drop a live (not done) flow from the accounting counters; the
    /// slab entry is handled separately by [`LinkState::take_flow`].
    fn forget_live(&mut self, flow: &Flow) {
        self.active -= 1;
        if matches!(flow.phase, Phase::Virtual { .. }) {
            self.virtual_n -= 1;
        }
        if let Some(cap) = flow.cap_bps {
            self.drop_class_member(cap.to_bits());
        }
    }
}

/// A capacity-limited pipe shared by concurrent transfers.
#[derive(Clone)]
pub struct FairShareLink {
    sim: Sim,
    st: Rc<RefCell<LinkState>>,
}

impl FairShareLink {
    /// Create a link with the given total capacity in bits/second.
    pub fn new(sim: &Sim, capacity_bps: Bps) -> FairShareLink {
        assert!(capacity_bps > 0.0, "link capacity must be positive");
        FairShareLink {
            sim: sim.clone(),
            st: Rc::new(RefCell::new(LinkState {
                capacity_bps,
                flows: VecDeque::new(),
                base_id: 0,
                occupied: 0,
                active: 0,
                virtual_n: 0,
                classes: BTreeMap::new(),
                virt_heap: BinaryHeap::new(),
                cap_heap: BinaryHeap::new(),
                v_now: 0.0,
                level: 0.0,
                next_flow: 0,
                last_update: sim.now(),
                epoch: 0,
                finished: Vec::new(),
                flips: Vec::new(),
            })),
        }
    }

    /// Total capacity in bits/second.
    pub fn capacity_bps(&self) -> Bps {
        self.st.borrow().capacity_bps
    }

    /// Number of in-flight transfers. O(1): a live counter, not a scan.
    pub fn active_flows(&self) -> usize {
        self.st.borrow().active
    }

    /// Current rate of a hypothetical new uncapped flow, in bits/second —
    /// useful for instrumentation. O(1).
    pub fn fair_share_estimate(&self) -> Bps {
        let st = self.st.borrow();
        st.capacity_bps / (st.active + 1) as f64
    }

    /// Transfer `bytes` through the link, optionally capped at
    /// `per_flow_cap` bits/second. Completes when the last byte clears.
    /// Zero-byte transfers complete immediately.
    pub fn transfer(&self, bytes: u64, per_flow_cap: Option<Bps>) -> Transfer {
        Transfer {
            link: self.clone(),
            bytes,
            cap: per_flow_cap,
            flow: None,
        }
    }

    /// Time a lone transfer of `bytes` would take at rate
    /// `min(cap, capacity)` — for tests and quick estimates.
    pub fn lone_transfer_time(&self, bytes: u64, per_flow_cap: Option<Bps>) -> SimDuration {
        let st = self.st.borrow();
        let rate = per_flow_cap
            .unwrap_or(f64::INFINITY)
            .min(st.capacity_bps);
        SimDuration::from_secs_f64(bytes as f64 * 8.0 / rate)
    }

    /// Process one state change: charge the elapsed interval into V,
    /// settle completions, re-fill the water level, place a just-joined
    /// flow, wake finishers (in flow-id order), and re-arm the
    /// epoch-guarded completion callback.
    fn on_change(&self, joined: Option<u64>) {
        let (wakers, next) = {
            let mut st = self.st.borrow_mut();
            let now = self.sim.now();
            st.advance_to(now);
            st.settle_completions(now);
            st.relevel(now);
            if let Some(id) = joined {
                st.place_joiner(id, now);
            }
            let mut finished = std::mem::take(&mut st.finished);
            finished.sort_unstable();
            let wakers: Vec<Waker> = finished
                .iter()
                .filter_map(|&id| st.flow_mut(id).and_then(|f| f.waker.take()))
                .collect();
            finished.clear();
            st.finished = finished;
            st.epoch += 1;
            (wakers, st.next_completion(now).map(|t| (t, st.epoch)))
        };
        for w in wakers {
            w.wake();
        }
        if let Some((at, epoch)) = next {
            let link = self.clone();
            self.sim.call_at(at, move || link.on_timer(epoch));
        }
    }

    fn on_timer(&self, epoch: u64) {
        {
            let st = self.st.borrow();
            if st.epoch != epoch {
                return; // stale callback; a newer change superseded it
            }
        }
        self.on_change(None);
    }

    fn add_flow(&self, bits: f64, cap: Option<Bps>, waker: Waker) -> u64 {
        let id = {
            let mut st = self.st.borrow_mut();
            let now = self.sim.now();
            st.advance_to(now);
            let id = st.next_flow;
            st.next_flow += 1;
            // Every flow enters as `Virtual` with zero accrued service;
            // `place_joiner` pins it at its cap right after the re-level
            // if its class sits below the water level.
            let v_finish = st.v_now + bits;
            st.flows.push_back(Some(Flow {
                remaining_bits: bits,
                cap_bps: cap,
                phase: Phase::Virtual { v_finish },
                waker: Some(waker),
                done: false,
            }));
            st.occupied += 1;
            st.active += 1;
            st.virtual_n += 1;
            st.virt_heap.push(Reverse((VKey(v_finish), id)));
            if let Some(cap) = cap {
                st.class_insert(id, cap);
            }
            id
        };
        self.on_change(Some(id));
        id
    }

    fn poll_flow(&self, id: u64, waker: &Waker) -> bool {
        let mut st = self.st.borrow_mut();
        match st.flow_mut(id) {
            Some(f) if f.done => {
                st.take_flow(id);
                true
            }
            Some(f) => {
                f.waker = Some(waker.clone());
                false
            }
            None => true, // already reaped
        }
    }

    fn cancel_flow(&self, id: u64) {
        let removed = {
            let mut st = self.st.borrow_mut();
            match st.take_flow(id) {
                Some(flow) => {
                    if !flow.done {
                        st.forget_live(&flow);
                    }
                    true
                }
                None => false,
            }
        };
        if removed {
            self.on_change(None);
        }
    }

    /// Rates currently allocated to live flows, as `(id, rate, cap)` —
    /// for the water-filling invariant tests.
    #[cfg(test)]
    fn snapshot_rates(&self) -> Vec<(u64, f64, Option<f64>)> {
        let st = self.st.borrow();
        (st.base_id..st.base_id + st.flows.len() as u64)
            .filter_map(|id| {
                let f = st.flow_ref(id)?;
                if f.done {
                    return None;
                }
                let rate = match f.phase {
                    Phase::Virtual { .. } => st.level,
                    Phase::Capped { .. } => f.cap_bps.expect("capped flow has a cap"),
                };
                Some((id, rate, f.cap_bps))
            })
            .collect()
    }
}

/// In-flight transfer future returned by [`FairShareLink::transfer`].
///
/// Dropping the future cancels the transfer and returns its share to the
/// other flows.
pub struct Transfer {
    link: FairShareLink,
    bytes: u64,
    cap: Option<Bps>,
    flow: Option<u64>,
}

impl Future for Transfer {
    type Output = ();

    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<()> {
        let this = self.get_mut();
        match this.flow {
            None => {
                if this.bytes == 0 {
                    this.flow = Some(u64::MAX); // sentinel: completed
                    return Poll::Ready(());
                }
                let id =
                    this.link
                        .add_flow(this.bytes as f64 * 8.0, this.cap, cx.waker().clone());
                // The flow may already be done if rates were huge; check.
                if this.link.poll_flow(id, cx.waker()) {
                    this.flow = Some(u64::MAX);
                    return Poll::Ready(());
                }
                this.flow = Some(id);
                Poll::Pending
            }
            Some(u64::MAX) => Poll::Ready(()),
            Some(id) => {
                if this.link.poll_flow(id, cx.waker()) {
                    this.flow = Some(u64::MAX);
                    Poll::Ready(())
                } else {
                    Poll::Pending
                }
            }
        }
    }
}

impl Drop for Transfer {
    fn drop(&mut self) {
        if let Some(id) = self.flow {
            if id != u64::MAX {
                self.link.cancel_flow(id);
            }
        }
    }
}

/// O(n)-rescan reference allocator, retained as the differential oracle
/// for the heap-and-bucket machinery above. It shares the production
/// allocator's per-flow accounting formulas — the same V(t) advance, the
/// same phase-transition arithmetic in the same operation order, the same
/// ceil-to-nanosecond rounding — but recomputes everything by scanning
/// every flow on every event: no heaps, no rate classes, no lazy
/// staleness. Any disagreement in completion nanoseconds therefore
/// indicts the incremental bookkeeping, not floating-point noise.
#[cfg(test)]
mod reference {
    use super::*;

    struct RefFlow {
        remaining_bits: f64,
        cap_bps: Option<Bps>,
        phase: Phase,
        waker: Option<Waker>,
        done: bool,
    }

    struct RefState {
        capacity_bps: Bps,
        flows: Vec<Option<RefFlow>>,
        active: usize,
        virtual_n: usize,
        v_now: f64,
        level: Bps,
        last_update: SimTime,
        epoch: u64,
    }

    impl RefState {
        fn advance_to(&mut self, now: SimTime) {
            let dt = now.duration_since(self.last_update).as_secs_f64();
            self.last_update = now;
            if dt > 0.0 && self.virtual_n > 0 && self.level > 0.0 {
                self.v_now += self.level * dt;
            }
        }
    }

    #[derive(Clone)]
    pub(super) struct RefLink {
        sim: Sim,
        st: Rc<RefCell<RefState>>,
    }

    impl RefLink {
        pub(super) fn new(sim: &Sim, capacity_bps: Bps) -> RefLink {
            RefLink {
                sim: sim.clone(),
                st: Rc::new(RefCell::new(RefState {
                    capacity_bps,
                    flows: Vec::new(),
                    active: 0,
                    virtual_n: 0,
                    v_now: 0.0,
                    level: 0.0,
                    last_update: sim.now(),
                    epoch: 0,
                })),
            }
        }

        pub(super) fn transfer(&self, bytes: u64, cap: Option<Bps>) -> RefTransfer {
            RefTransfer {
                link: self.clone(),
                bytes,
                cap,
                flow: None,
            }
        }

        fn on_change(&self) {
            let (wakers, next) = {
                let mut st = self.st.borrow_mut();
                let now = self.sim.now();
                st.advance_to(now);
                let mut finished: Vec<u64> = Vec::new();
                // Settle: full scan for reached completion boundaries.
                let v_now = st.v_now;
                for (i, slot) in st.flows.iter_mut().enumerate() {
                    let Some(f) = slot.as_mut() else { continue };
                    if f.done {
                        continue;
                    }
                    let hit = match f.phase {
                        Phase::Virtual { v_finish } => v_finish - v_now < DONE_EPS_BITS,
                        Phase::Capped { fin, .. } => fin <= now,
                    };
                    if hit {
                        f.done = true;
                        f.remaining_bits = 0.0;
                        finished.push(i as u64);
                    }
                }
                st.active = st
                    .flows
                    .iter()
                    .flatten()
                    .filter(|f| !f.done)
                    .count();
                // Re-level: full water-fill from scratch, then convert
                // every flow sitting on the wrong side of the level.
                if st.active == 0 {
                    st.level = 0.0;
                    st.v_now = 0.0;
                } else {
                    let mut classes: BTreeMap<u64, (f64, usize)> = BTreeMap::new();
                    for f in st.flows.iter().flatten() {
                        if !f.done {
                            if let Some(c) = f.cap_bps {
                                classes.entry(c.to_bits()).or_insert((c, 0)).1 += 1;
                            }
                        }
                    }
                    let mut budget = st.capacity_bps;
                    let mut n_rem = st.active;
                    let mut boundary = u64::MAX;
                    for (&bits, &(cap, m)) in classes.iter() {
                        let fair = budget / n_rem as f64;
                        if cap < fair {
                            budget -= cap * m as f64;
                            n_rem -= m;
                        } else {
                            boundary = bits;
                            break;
                        }
                    }
                    st.level = if n_rem > 0 {
                        budget / n_rem as f64
                    } else {
                        f64::INFINITY
                    };
                    let v_now = st.v_now;
                    for (i, slot) in st.flows.iter_mut().enumerate() {
                        let Some(f) = slot.as_mut() else { continue };
                        if f.done {
                            continue;
                        }
                        let Some(cap) = f.cap_bps else { continue };
                        let to_sat = cap.to_bits() < boundary;
                        match (f.phase, to_sat) {
                            (Phase::Virtual { v_finish }, true) => {
                                let rem = v_finish - v_now;
                                if rem < DONE_EPS_BITS {
                                    f.done = true;
                                    f.remaining_bits = 0.0;
                                    finished.push(i as u64);
                                } else {
                                    f.remaining_bits = rem;
                                    let fin = now.saturating_add(ceil_ns(rem / cap));
                                    f.phase = Phase::Capped { since: now, fin };
                                }
                            }
                            (Phase::Capped { since, .. }, false) => {
                                let dt = now.duration_since(since).as_secs_f64();
                                let rem = f.remaining_bits - cap * dt;
                                if rem < DONE_EPS_BITS {
                                    f.done = true;
                                    f.remaining_bits = 0.0;
                                    finished.push(i as u64);
                                } else {
                                    f.remaining_bits = rem;
                                    f.phase = Phase::Virtual { v_finish: v_now + rem };
                                }
                            }
                            _ => {}
                        }
                    }
                    st.virtual_n = st
                        .flows
                        .iter()
                        .flatten()
                        .filter(|f| !f.done && matches!(f.phase, Phase::Virtual { .. }))
                        .count();
                    st.active = st
                        .flows
                        .iter()
                        .flatten()
                        .filter(|f| !f.done)
                        .count();
                }
                finished.sort_unstable();
                let wakers: Vec<Waker> = finished
                    .iter()
                    .filter_map(|&i| {
                        st.flows
                            .get_mut(i as usize)
                            .and_then(Option::as_mut)
                            .and_then(|f| f.waker.take())
                    })
                    .collect();
                st.epoch += 1;
                // Next completion: full scan.
                let mut best: Option<SimTime> = None;
                let level = st.level;
                let v_now = st.v_now;
                for f in st.flows.iter().flatten() {
                    if f.done {
                        continue;
                    }
                    let cand = match f.phase {
                        Phase::Virtual { v_finish } => {
                            if level > 0.0 && level.is_finite() {
                                now.saturating_add(ceil_ns((v_finish - v_now) / level))
                            } else {
                                continue;
                            }
                        }
                        Phase::Capped { fin, .. } => fin.max(now),
                    };
                    best = Some(best.map_or(cand, |b: SimTime| b.min(cand)));
                }
                (wakers, best.map(|t| (t, st.epoch)))
            };
            for w in wakers {
                w.wake();
            }
            if let Some((at, epoch)) = next {
                let link = self.clone();
                self.sim.call_at(at, move || link.on_timer(epoch));
            }
        }

        fn on_timer(&self, epoch: u64) {
            if self.st.borrow().epoch != epoch {
                return;
            }
            self.on_change();
        }

        fn add_flow(&self, bits: f64, cap: Option<Bps>, waker: Waker) -> u64 {
            {
                let mut st = self.st.borrow_mut();
                let now = self.sim.now();
                st.advance_to(now);
                let v_finish = st.v_now + bits;
                st.flows.push(Some(RefFlow {
                    remaining_bits: bits,
                    cap_bps: cap,
                    phase: Phase::Virtual { v_finish },
                    waker: Some(waker),
                    done: false,
                }));
                st.active += 1;
                st.virtual_n += 1;
            }
            let id = self.st.borrow().flows.len() as u64 - 1;
            self.on_change();
            id
        }

        fn poll_flow(&self, id: u64, waker: &Waker) -> bool {
            let mut st = self.st.borrow_mut();
            match st.flows.get_mut(id as usize).and_then(Option::as_mut) {
                Some(f) if f.done => {
                    st.flows[id as usize] = None;
                    true
                }
                Some(f) => {
                    f.waker = Some(waker.clone());
                    false
                }
                None => true,
            }
        }

        fn cancel_flow(&self, id: u64) {
            let removed = {
                let mut st = self.st.borrow_mut();
                match st.flows.get_mut(id as usize).and_then(Option::take) {
                    Some(flow) => {
                        if !flow.done {
                            st.active -= 1;
                            if matches!(flow.phase, Phase::Virtual { .. }) {
                                st.virtual_n -= 1;
                            }
                        }
                        true
                    }
                    None => false,
                }
            };
            if removed {
                self.on_change();
            }
        }
    }

    pub(super) struct RefTransfer {
        link: RefLink,
        bytes: u64,
        cap: Option<Bps>,
        flow: Option<u64>,
    }

    impl Future for RefTransfer {
        type Output = ();

        fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<()> {
            let this = self.get_mut();
            match this.flow {
                None => {
                    if this.bytes == 0 {
                        this.flow = Some(u64::MAX);
                        return Poll::Ready(());
                    }
                    let id = this.link.add_flow(
                        this.bytes as f64 * 8.0,
                        this.cap,
                        cx.waker().clone(),
                    );
                    if this.link.poll_flow(id, cx.waker()) {
                        this.flow = Some(u64::MAX);
                        return Poll::Ready(());
                    }
                    this.flow = Some(id);
                    Poll::Pending
                }
                Some(u64::MAX) => Poll::Ready(()),
                Some(id) => {
                    if this.link.poll_flow(id, cx.waker()) {
                        this.flow = Some(u64::MAX);
                        Poll::Ready(())
                    } else {
                        Poll::Pending
                    }
                }
            }
        }
    }

    impl Drop for RefTransfer {
        fn drop(&mut self) {
            if let Some(id) = self.flow {
                if id != u64::MAX {
                    self.link.cancel_flow(id);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::Recorder;
    use proptest::prelude::*;
    use std::cell::Cell;
    use std::rc::Rc;

    fn secs(s: f64) -> SimDuration {
        SimDuration::from_secs_f64(s)
    }

    #[test]
    fn lone_transfer_takes_bytes_over_capacity() {
        let sim = Sim::new(1);
        let link = FairShareLink::new(&sim, mbps(8.0)); // 1 MB/s
        let l = link.clone();
        sim.block_on(async move {
            l.transfer(1_000_000, None).await;
        });
        // 1 MB at 1 MB/s = 1 s (within rounding).
        let t = sim.now().as_secs_f64();
        assert!((t - 1.0).abs() < 1e-6, "took {t}s");
    }

    #[test]
    fn per_flow_cap_limits_lone_transfer() {
        let sim = Sim::new(1);
        let link = FairShareLink::new(&sim, mbps(1000.0));
        let l = link.clone();
        sim.block_on(async move {
            l.transfer(1_000_000, Some(mbps(8.0))).await;
        });
        let t = sim.now().as_secs_f64();
        assert!((t - 1.0).abs() < 1e-6, "took {t}s");
    }

    #[test]
    fn two_flows_share_fairly() {
        let sim = Sim::new(1);
        let link = FairShareLink::new(&sim, mbps(8.0));
        for _ in 0..2 {
            let l = link.clone();
            sim.spawn(async move {
                l.transfer(1_000_000, None).await;
            });
        }
        sim.run();
        // Two 1 MB transfers over a 1 MB/s pipe, concurrent: 2 s each.
        let t = sim.now().as_secs_f64();
        assert!((t - 2.0).abs() < 1e-6, "took {t}s");
    }

    #[test]
    fn twenty_flows_get_one_twentieth() {
        // The paper's packing experiment shape: per-flow rate collapses
        // proportionally to the number of co-located functions.
        let sim = Sim::new(1);
        let link = FairShareLink::new(&sim, mbps(574.0));
        let finish = Rc::new(RefCell::new(Vec::new()));
        for i in 0..20 {
            let l = link.clone();
            let s = sim.clone();
            let fin = finish.clone();
            sim.spawn(async move {
                l.transfer(10_000_000, Some(mbps(538.0))).await;
                fin.borrow_mut().push((i, s.now()));
            });
        }
        sim.run();
        // Each flow: 80 Mbit at 574/20 = 28.7 Mbps -> 2.787 s.
        let want = 80.0 / 28.7;
        for (_, t) in finish.borrow().iter() {
            assert!((t.as_secs_f64() - want).abs() < 1e-3, "{t}");
        }
    }

    #[test]
    fn late_joiner_slows_existing_flow() {
        let sim = Sim::new(1);
        let link = FairShareLink::new(&sim, mbps(8.0)); // 1 MB/s
        let done_a = Rc::new(Cell::new(0.0f64));
        let da = done_a.clone();
        let la = link.clone();
        let sa = sim.clone();
        sim.spawn(async move {
            la.transfer(1_000_000, None).await;
            da.set(sa.now().as_secs_f64());
        });
        let lb = link.clone();
        let sb = sim.clone();
        let done_b = Rc::new(Cell::new(0.0f64));
        let db = done_b.clone();
        sim.spawn(async move {
            sb.sleep(secs(0.5)).await;
            lb.transfer(500_000, None).await;
            db.set(sb.now().as_secs_f64());
        });
        sim.run();
        // A alone for 0.5 s moves 500 KB; then both share 0.5 MB/s.
        // A's remaining 500 KB takes 1 s -> done at 1.5 s.
        // B's 500 KB at 0.5 MB/s while sharing... B finishes when A does
        // (both have 500 KB left at t=0.5): done at 1.5 s too.
        assert!((done_a.get() - 1.5).abs() < 1e-6, "A at {}", done_a.get());
        assert!((done_b.get() - 1.5).abs() < 1e-6, "B at {}", done_b.get());
    }

    #[test]
    fn capped_flow_gives_slack_to_uncapped() {
        let sim = Sim::new(1);
        let link = FairShareLink::new(&sim, mbps(10.0));
        // Flow A capped at 2 Mbps, flow B uncapped -> B gets 8 Mbps.
        let done_b = Rc::new(Cell::new(0.0f64));
        let la = link.clone();
        sim.spawn(async move {
            la.transfer(10_000_000, Some(mbps(2.0))).await; // 80 Mb / 2 Mbps = 40 s
        });
        let lb = link.clone();
        let sb = sim.clone();
        let db = done_b.clone();
        sim.spawn(async move {
            lb.transfer(1_000_000, None).await; // 8 Mb / 8 Mbps = 1 s
            db.set(sb.now().as_secs_f64());
        });
        sim.run();
        assert!((done_b.get() - 1.0).abs() < 1e-6, "B at {}", done_b.get());
    }

    #[test]
    fn zero_byte_transfer_is_instant() {
        let sim = Sim::new(1);
        let link = FairShareLink::new(&sim, mbps(1.0));
        let l = link.clone();
        sim.block_on(async move {
            l.transfer(0, None).await;
        });
        assert_eq!(sim.now(), SimTime::ZERO);
    }

    #[test]
    fn canceled_transfer_returns_bandwidth() {
        let sim = Sim::new(1);
        let link = FairShareLink::new(&sim, mbps(8.0)); // 1 MB/s
        let s = sim.clone();
        let la = link.clone();
        // A transfer that gets dropped via timeout at t=0.5s.
        sim.spawn(async move {
            let got = s
                .timeout(secs(0.5), la.transfer(10_000_000, None))
                .await;
            assert!(got.is_none());
        });
        let done_b = Rc::new(Cell::new(0.0f64));
        let db = done_b.clone();
        let lb = link.clone();
        let sb = sim.clone();
        sim.spawn(async move {
            lb.transfer(1_000_000, None).await;
            db.set(sb.now().as_secs_f64());
        });
        sim.run();
        // B shares until t=0.5 (moves 250 KB), then gets the full link:
        // remaining 750 KB at 1 MB/s -> done at 1.25 s.
        assert!(
            (done_b.get() - 1.25).abs() < 1e-6,
            "B at {}",
            done_b.get()
        );
        assert_eq!(link.active_flows(), 0);
    }

    #[test]
    fn sequential_transfers_full_rate_each() {
        let sim = Sim::new(1);
        let link = FairShareLink::new(&sim, mbps(8.0));
        let l = link.clone();
        sim.block_on(async move {
            for _ in 0..3 {
                l.transfer(1_000_000, None).await;
            }
        });
        let t = sim.now().as_secs_f64();
        assert!((t - 3.0).abs() < 1e-5, "took {t}s");
    }

    #[test]
    fn heavy_churn_with_mixed_caps_stays_fair() {
        // Exercises the lazy structures: staggered joins, cancels and
        // completions (stale heap/class entries), and enough turnover to
        // trigger compaction.
        let sim = Sim::new(1);
        let link = FairShareLink::new(&sim, mbps(100.0));
        for i in 0..60u64 {
            let l = link.clone();
            let s = sim.clone();
            sim.spawn(async move {
                s.sleep(SimDuration::from_millis(i * 7)).await;
                let cap = if i % 3 == 0 { Some(mbps(5.0)) } else { None };
                if i % 5 == 0 {
                    // Some transfers are abandoned mid-flight.
                    s.timeout(SimDuration::from_millis(40), l.transfer(2_000_000, cap))
                        .await;
                } else {
                    l.transfer(200_000, cap).await;
                }
            });
        }
        sim.run();
        assert_eq!(link.active_flows(), 0);
        assert!(sim.now() > SimTime::ZERO);
    }

    #[test]
    fn churn_replays_byte_identically() {
        fn run() -> String {
            let sim = Sim::new(7);
            let link = FairShareLink::new(&sim, mbps(80.0));
            let log = Rc::new(RefCell::new(String::new()));
            for i in 0..25u64 {
                let l = link.clone();
                let s = sim.clone();
                let log = log.clone();
                sim.spawn(async move {
                    s.sleep(SimDuration::from_millis(i * 3)).await;
                    let cap = if i % 2 == 0 { Some(mbps(3.0)) } else { None };
                    l.transfer(100_000 + i * 10_000, cap).await;
                    log.borrow_mut()
                        .push_str(&format!("{i}@{}\n", s.now().as_nanos()));
                });
            }
            sim.run();
            let out = log.borrow().clone();
            out
        }
        assert_eq!(run(), run());
    }

    #[test]
    fn unit_helpers() {
        assert_eq!(mbps(1.0), 1e6);
        assert_eq!(gbps(1.0), 1e9);
        assert_eq!(mbytes_per_sec(1.0), 8e6);
    }

    #[test]
    fn capped_class_releveled_when_water_level_crosses() {
        // Two flows capped at 3 Mbps on an 8 Mbps link run saturated
        // (fair share 4 > cap 3). Two uncapped joiners at t=1s push the
        // water level to 2 Mbps — below the cap — so the class must be
        // re-leveled onto virtual time, and back once the joiners drain.
        let sim = Sim::new(1);
        let link = FairShareLink::new(&sim, mbps(8.0));
        let capped_done = Rc::new(RefCell::new(Vec::new()));
        let open_done = Rc::new(RefCell::new(Vec::new()));
        for _ in 0..2 {
            let l = link.clone();
            let s = sim.clone();
            let fin = capped_done.clone();
            sim.spawn(async move {
                l.transfer(3_000_000, Some(mbps(3.0))).await; // 24 Mb
                fin.borrow_mut().push(s.now().as_secs_f64());
            });
        }
        for _ in 0..2 {
            let l = link.clone();
            let s = sim.clone();
            let fin = open_done.clone();
            sim.spawn(async move {
                s.sleep(secs(1.0)).await;
                l.transfer(125_000, None).await; // 1 Mb
                fin.borrow_mut().push(s.now().as_secs_f64());
            });
        }
        sim.run();
        // Uncapped: 1 Mb at level 8/4 = 2 Mbps -> done at 1.5 s.
        for &t in open_done.borrow().iter() {
            assert!((t - 1.5).abs() < 1e-6, "uncapped at {t}");
        }
        // Capped: 3 Mbps for 1 s (21 Mb left), 2 Mbps for 0.5 s (20 Mb
        // left), then 3 Mbps again: done at 1.5 + 20/3 s.
        let want = 1.5 + 20.0 / 3.0;
        for &t in capped_done.borrow().iter() {
            assert!((t - want).abs() < 1e-6, "capped at {t}, want {want}");
        }
        assert_eq!(link.active_flows(), 0);
    }

    #[test]
    fn twenty_thousand_flow_fan_in_completes() {
        // Scale smoke for the heap path (the benches push this to 1M in
        // release mode): staggered joins, mixed caps, all must drain.
        let sim = Sim::new(3);
        let link = FairShareLink::new(&sim, gbps(10.0));
        let done = Rc::new(Cell::new(0u32));
        for i in 0..20_000u64 {
            let l = link.clone();
            let s = sim.clone();
            let d = done.clone();
            sim.spawn(async move {
                s.sleep(SimDuration::from_micros(i * 11)).await;
                let cap = if i % 4 == 0 { Some(mbps(10.0)) } else { None };
                l.transfer(100_000, cap).await;
                d.set(d.get() + 1);
            });
        }
        sim.run();
        assert_eq!(done.get(), 20_000);
        assert_eq!(link.active_flows(), 0);
        assert!((link.fair_share_estimate() - gbps(10.0)).abs() < 1.0);
    }

    /// One randomized transfer in a churn schedule.
    #[derive(Debug, Clone)]
    struct ChurnOp {
        delay_us: u64,
        bytes: u64,
        cap_sel: u8,
        cancel_after_us: Option<u64>,
    }

    const CAP_FRACS: [f64; 5] = [0.02, 0.05, 0.1, 0.3, 1.25];

    fn cap_of(sel: u8, capacity: f64) -> Option<Bps> {
        if sel == 0 {
            None
        } else {
            Some(capacity * CAP_FRACS[(sel as usize - 1) % CAP_FRACS.len()])
        }
    }

    fn churn_op() -> impl Strategy<Value = ChurnOp> {
        (
            0u64..60_000,
            prop_oneof![Just(0u64), 1u64..3_000_000],
            0u8..6,
            prop_oneof![Just(None), (1u64..50_000).prop_map(Some)],
        )
            .prop_map(|(delay_us, bytes, cap_sel, cancel_after_us)| ChurnOp {
                delay_us,
                bytes,
                cap_sel,
                cancel_after_us,
            })
    }

    /// Anything that hands out awaitable transfers — lets one driver run
    /// the production link and the O(n) reference oracle identically.
    trait AnyLink: Clone + 'static {
        type Fut: Future<Output = ()> + 'static;
        fn xfer(&self, bytes: u64, cap: Option<Bps>) -> Self::Fut;
    }

    impl AnyLink for FairShareLink {
        type Fut = Transfer;
        fn xfer(&self, bytes: u64, cap: Option<Bps>) -> Transfer {
            self.transfer(bytes, cap)
        }
    }

    impl AnyLink for reference::RefLink {
        type Fut = reference::RefTransfer;
        fn xfer(&self, bytes: u64, cap: Option<Bps>) -> Self::Fut {
            self.transfer(bytes, cap)
        }
    }

    /// Drive a churn schedule, returning each op's completion instant in
    /// nanoseconds (None if canceled) plus the recorder digest.
    fn run_churn<L: AnyLink>(
        link: L,
        sim: Sim,
        capacity: f64,
        ops: &[ChurnOp],
    ) -> (Vec<Option<u64>>, String) {
        let rec = Recorder::new();
        let results = Rc::new(RefCell::new(vec![None; ops.len()]));
        for (i, op) in ops.iter().cloned().enumerate() {
            let l = link.clone();
            let s = sim.clone();
            let res = results.clone();
            let rec = rec.clone();
            sim.spawn(async move {
                s.sleep(SimDuration::from_micros(op.delay_us)).await;
                let cap = cap_of(op.cap_sel, capacity);
                let fut = l.xfer(op.bytes, cap);
                let finished = match op.cancel_after_us {
                    Some(c) => s.timeout(SimDuration::from_micros(c), fut).await.is_some(),
                    None => {
                        fut.await;
                        true
                    }
                };
                if finished {
                    res.borrow_mut()[i] = Some(s.now().as_nanos());
                    rec.record("completion_ns", s.now().as_nanos() as f64);
                } else {
                    rec.record("canceled_at_ns", s.now().as_nanos() as f64);
                }
            });
        }
        sim.run();
        let out = results.borrow().clone();
        (out, rec.digest())
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(96))]

        /// Differential oracle: randomized churn through the virtual-time
        /// allocator and the O(n)-rescan reference must produce identical
        /// completion nanoseconds and identical recorder digests.
        #[test]
        fn virtual_time_matches_rescan_reference(
            capacity in prop_oneof![Just(8e6f64), Just(1e8), Just(5.74e8)],
            ops in prop::collection::vec(churn_op(), 1..30),
        ) {
            let sim_a = Sim::new(11);
            let link_a = FairShareLink::new(&sim_a, capacity);
            let (fin_a, dig_a) = run_churn(link_a.clone(), sim_a, capacity, &ops);

            let sim_b = Sim::new(11);
            let link_b = reference::RefLink::new(&sim_b, capacity);
            let (fin_b, dig_b) = run_churn(link_b, sim_b, capacity, &ops);

            prop_assert_eq!(fin_a, fin_b);
            prop_assert_eq!(dig_a, dig_b);
            prop_assert_eq!(link_a.active_flows(), 0);
        }

        /// Water-filling invariants, sampled mid-churn on the production
        /// allocator: rates never exceed capacity or a flow's cap, and
        /// every flow below the common level is pinned at its own cap
        /// (max-min dominance).
        #[test]
        fn water_filling_invariants_hold(
            capacity in prop_oneof![Just(8e6f64), Just(1e8), Just(5.74e8)],
            ops in prop::collection::vec(churn_op(), 1..30),
        ) {
            let sim = Sim::new(13);
            let link = FairShareLink::new(&sim, capacity);
            let violations = Rc::new(RefCell::new(Vec::new()));
            for (i, op) in ops.iter().cloned().enumerate() {
                let l = link.clone();
                let s = sim.clone();
                sim.spawn(async move {
                    s.sleep(SimDuration::from_micros(op.delay_us)).await;
                    let cap = cap_of(op.cap_sel, capacity);
                    let fut = l.xfer(op.bytes, cap);
                    match op.cancel_after_us {
                        Some(c) => {
                            s.timeout(SimDuration::from_micros(c), fut).await;
                        }
                        None => fut.await,
                    }
                    let _ = i;
                });
            }
            let sampler_link = link.clone();
            let s = sim.clone();
            let viol = violations.clone();
            sim.spawn(async move {
                for _ in 0..120 {
                    s.sleep(SimDuration::from_micros(997)).await;
                    let rates = sampler_link.snapshot_rates();
                    if rates.len() != sampler_link.active_flows() {
                        viol.borrow_mut().push(format!(
                            "active_flows {} != snapshot {}",
                            sampler_link.active_flows(),
                            rates.len()
                        ));
                    }
                    let total: f64 = rates.iter().map(|r| r.1).sum();
                    if total > capacity * (1.0 + 1e-6) {
                        viol.borrow_mut()
                            .push(format!("sum {} > capacity {}", total, capacity));
                    }
                    let max_rate = rates.iter().map(|r| r.1).fold(0.0f64, f64::max);
                    for &(id, rate, cap) in &rates {
                        if let Some(cap) = cap {
                            if rate > cap * (1.0 + 1e-9) {
                                viol.borrow_mut()
                                    .push(format!("flow {id} rate {rate} > cap {cap}"));
                            }
                        }
                        // Max-min dominance: a flow below the maximum
                        // rate must be running at its own cap.
                        if rate < max_rate * (1.0 - 1e-9)
                            && cap.is_none_or(|c| rate < c * (1.0 - 1e-9))
                        {
                            viol.borrow_mut().push(format!(
                                "flow {id} at {rate} dominated (max {max_rate}, cap {cap:?})"
                            ));
                        }
                    }
                }
            });
            sim.run();
            prop_assert_eq!(violations.borrow().clone(), Vec::<String>::new());
            prop_assert_eq!(link.active_flows(), 0);
        }
    }
}
