//! Shared bandwidth links with max–min fair sharing.
//!
//! A [`FairShareLink`] models a capacity-limited pipe (a host NIC, a
//! storage-service connection pool) shared by concurrent transfers. Rates
//! are allocated max–min fairly with an optional per-flow cap via
//! water-filling: flows that cannot use a full equal share (because their
//! cap is lower) give their slack to the others.
//!
//! This is the mechanism behind the paper's §3 observation: with twenty
//! Lambda functions packed onto one host VM, the per-function share of the
//! NIC collapses from 538 Mbps to ~28.7 Mbps.
//!
//! Implementation: the link keeps the set of active flows; whenever a flow
//! joins or completes it (a) charges elapsed virtual time against every
//! flow's remaining bytes at the old rates, (b) recomputes the water-filled
//! rates, and (c) schedules a callback at the earliest projected completion.
//! A generation counter discards stale callbacks.

use std::cell::RefCell;
use std::collections::VecDeque;
use std::future::Future;
use std::pin::Pin;
use std::rc::Rc;
use std::task::{Context, Poll, Waker};

use crate::executor::Sim;
use crate::time::{SimDuration, SimTime};

/// Bits per second.
pub type Bps = f64;

/// Convert megabits/second to [`Bps`].
pub fn mbps(v: f64) -> Bps {
    v * 1e6
}

/// Convert gigabits/second to [`Bps`].
pub fn gbps(v: f64) -> Bps {
    v * 1e9
}

/// Convert megabytes/second to [`Bps`].
pub fn mbytes_per_sec(v: f64) -> Bps {
    v * 8e6
}

#[derive(Debug)]
struct Flow {
    remaining_bits: f64,
    cap_bps: Option<Bps>,
    rate_bps: Bps,
    waker: Option<Waker>,
    done: bool,
}

struct LinkState {
    capacity_bps: Bps,
    /// Flows indexed by `id - base_id` (ids are sequential). Removed
    /// flows leave a `None` hole; leading holes are popped so the deque
    /// tracks the live window. Iteration is id order — identical to the
    /// BTreeMap this replaces — but a contiguous scan instead of a
    /// pointer chase, which is what keeps thousand-flow fan-ins (the
    /// query service fetching every object of a 50 GB dataset at once)
    /// from going quadratic-with-a-big-constant.
    flows: VecDeque<Option<Flow>>,
    base_id: u64,
    live: usize,
    /// Flow ids sorted by `(cap, id)` — the water-filling order. Kept
    /// incrementally: joins binary-search-insert, departures are dropped
    /// lazily (and compacted when stale entries dominate), so a
    /// reallocation is a single allocation-free pass instead of a
    /// collect + sort of every active flow.
    order: Vec<(f64, u64)>,
    next_flow: u64,
    last_update: SimTime,
    epoch: u64,
}

impl LinkState {
    fn flow_mut(&mut self, id: u64) -> Option<&mut Flow> {
        let idx = id.checked_sub(self.base_id)? as usize;
        self.flows.get_mut(idx)?.as_mut()
    }

    fn insert_flow(&mut self, flow: Flow) {
        self.flows.push_back(Some(flow));
        self.live += 1;
    }

    fn remove_flow(&mut self, id: u64) -> Option<Flow> {
        let idx = id.checked_sub(self.base_id)? as usize;
        let f = self.flows.get_mut(idx)?.take();
        if f.is_some() {
            self.live -= 1;
            while let Some(None) = self.flows.front() {
                self.flows.pop_front();
                self.base_id += 1;
            }
        }
        f
    }

    fn live_flows(&self) -> impl Iterator<Item = &Flow> {
        self.flows.iter().flatten()
    }

    fn live_flows_mut(&mut self) -> impl Iterator<Item = &mut Flow> {
        self.flows.iter_mut().flatten()
    }

    /// Charge elapsed time against remaining bytes at the current rates.
    fn advance_to(&mut self, now: SimTime) {
        let dt = now.duration_since(self.last_update).as_secs_f64();
        self.last_update = now;
        if dt <= 0.0 {
            return;
        }
        for flow in self.live_flows_mut() {
            if flow.done {
                continue;
            }
            flow.remaining_bits -= flow.rate_bps * dt;
            // Completion boundaries are scheduled with ceil-rounding, so a
            // sub-bit residue means "finished".
            if flow.remaining_bits < 0.5 {
                flow.remaining_bits = 0.0;
                flow.done = true;
            }
        }
    }

    /// Register `id` in the water-filling order (cap ascending, uncapped
    /// last, id breaking ties — identical to a full sort's order).
    fn order_insert(&mut self, id: u64, cap: Option<Bps>) {
        let key = cap.unwrap_or(f64::INFINITY);
        let pos = self
            .order
            .partition_point(|&(c, i)| c < key || (c == key && i < id));
        self.order.insert(pos, (key, id));
    }

    /// Max–min fair allocation with per-flow caps (water-filling), as one
    /// pass over the pre-sorted order.
    fn reallocate(&mut self) {
        // Compact lazily: entries for reaped flows are skipped below, but
        // once they outnumber live ones, drop them (retain keeps order).
        if self.order.len() > 2 * self.live {
            let base = self.base_id;
            let flows = &self.flows;
            self.order.retain(|&(_, id)| {
                id.checked_sub(base)
                    .and_then(|i| flows.get(i as usize))
                    .is_some_and(Option::is_some)
            });
        }
        let mut n_left = self.live_flows().filter(|f| !f.done).count();
        if n_left == 0 {
            return;
        }
        let mut remaining = self.capacity_bps;
        for i in 0..self.order.len() {
            let Some(flow) = self
                .order[i]
                .1
                .checked_sub(self.base_id)
                .and_then(|idx| self.flows.get_mut(idx as usize))
                .and_then(Option::as_mut)
            else {
                continue; // reaped; compacted eventually
            };
            if flow.done {
                continue;
            }
            let fair = remaining / n_left as f64;
            let rate = match flow.cap_bps {
                Some(cap) => cap.min(fair),
                None => fair,
            };
            flow.rate_bps = rate;
            remaining -= rate;
            n_left -= 1;
            if n_left == 0 {
                break;
            }
        }
    }

    /// Earliest projected completion among active flows.
    fn next_completion(&self, now: SimTime) -> Option<SimTime> {
        let mut best: Option<f64> = None;
        for flow in self.live_flows() {
            if flow.done || flow.rate_bps <= 0.0 {
                continue;
            }
            let secs = flow.remaining_bits / flow.rate_bps;
            best = Some(match best {
                Some(b) => b.min(secs),
                None => secs,
            });
        }
        best.map(|secs| {
            // Ceil to the next nanosecond so advance_to() sees the flow done.
            let ns = (secs * 1e9).ceil().max(1.0) as u64;
            now + SimDuration::from_nanos(ns)
        })
    }

    fn collect_finished_wakers(&mut self) -> Vec<Waker> {
        self.flows
            .iter_mut()
            .flatten()
            .filter(|f| f.done)
            .filter_map(|f| f.waker.take())
            .collect()
    }
}

/// A capacity-limited pipe shared by concurrent transfers.
#[derive(Clone)]
pub struct FairShareLink {
    sim: Sim,
    st: Rc<RefCell<LinkState>>,
}

impl FairShareLink {
    /// Create a link with the given total capacity in bits/second.
    pub fn new(sim: &Sim, capacity_bps: Bps) -> FairShareLink {
        assert!(capacity_bps > 0.0, "link capacity must be positive");
        FairShareLink {
            sim: sim.clone(),
            st: Rc::new(RefCell::new(LinkState {
                capacity_bps,
                flows: VecDeque::new(),
                base_id: 0,
                live: 0,
                order: Vec::new(),
                next_flow: 0,
                last_update: sim.now(),
                epoch: 0,
            })),
        }
    }

    /// Total capacity in bits/second.
    pub fn capacity_bps(&self) -> Bps {
        self.st.borrow().capacity_bps
    }

    /// Number of in-flight transfers.
    pub fn active_flows(&self) -> usize {
        self.st.borrow().live_flows().filter(|f| !f.done).count()
    }

    /// Current rate of a hypothetical new uncapped flow, in bits/second —
    /// useful for instrumentation.
    pub fn fair_share_estimate(&self) -> Bps {
        let st = self.st.borrow();
        let n = st.live_flows().filter(|f| !f.done).count() + 1;
        st.capacity_bps / n as f64
    }

    /// Transfer `bytes` through the link, optionally capped at
    /// `per_flow_cap` bits/second. Completes when the last byte clears.
    /// Zero-byte transfers complete immediately.
    pub fn transfer(&self, bytes: u64, per_flow_cap: Option<Bps>) -> Transfer {
        Transfer {
            link: self.clone(),
            bytes,
            cap: per_flow_cap,
            flow: None,
        }
    }

    /// Time a lone transfer of `bytes` would take at rate
    /// `min(cap, capacity)` — for tests and quick estimates.
    pub fn lone_transfer_time(&self, bytes: u64, per_flow_cap: Option<Bps>) -> SimDuration {
        let st = self.st.borrow();
        let rate = per_flow_cap
            .unwrap_or(f64::INFINITY)
            .min(st.capacity_bps);
        SimDuration::from_secs_f64(bytes as f64 * 8.0 / rate)
    }

    fn on_change(&self) {
        let (wakers, next) = {
            let mut st = self.st.borrow_mut();
            let now = self.sim.now();
            st.advance_to(now);
            st.reallocate();
            let wakers = st.collect_finished_wakers();
            st.epoch += 1;
            (wakers, st.next_completion(now).map(|t| (t, st.epoch)))
        };
        for w in wakers {
            w.wake();
        }
        if let Some((at, epoch)) = next {
            let link = self.clone();
            self.sim.call_at(at, move || link.on_timer(epoch));
        }
    }

    fn on_timer(&self, epoch: u64) {
        {
            let st = self.st.borrow();
            if st.epoch != epoch {
                return; // stale callback; a newer reallocation superseded it
            }
        }
        self.on_change();
    }

    fn add_flow(&self, bits: f64, cap: Option<Bps>, waker: Waker) -> u64 {
        let id = {
            let mut st = self.st.borrow_mut();
            let now = self.sim.now();
            st.advance_to(now);
            let id = st.next_flow;
            st.next_flow += 1;
            st.insert_flow(Flow {
                remaining_bits: bits,
                cap_bps: cap,
                rate_bps: 0.0,
                waker: Some(waker),
                done: false,
            });
            st.order_insert(id, cap);
            id
        };
        self.on_change();
        id
    }

    fn poll_flow(&self, id: u64, waker: &Waker) -> bool {
        let mut st = self.st.borrow_mut();
        match st.flow_mut(id) {
            Some(f) if f.done => {
                st.remove_flow(id);
                true
            }
            Some(f) => {
                f.waker = Some(waker.clone());
                false
            }
            None => true, // already reaped
        }
    }

    fn cancel_flow(&self, id: u64) {
        let removed = {
            let mut st = self.st.borrow_mut();
            st.remove_flow(id).is_some()
        };
        if removed {
            self.on_change();
        }
    }
}

/// In-flight transfer future returned by [`FairShareLink::transfer`].
///
/// Dropping the future cancels the transfer and returns its share to the
/// other flows.
pub struct Transfer {
    link: FairShareLink,
    bytes: u64,
    cap: Option<Bps>,
    flow: Option<u64>,
}

impl Future for Transfer {
    type Output = ();

    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<()> {
        let this = self.get_mut();
        match this.flow {
            None => {
                if this.bytes == 0 {
                    this.flow = Some(u64::MAX); // sentinel: completed
                    return Poll::Ready(());
                }
                let id =
                    this.link
                        .add_flow(this.bytes as f64 * 8.0, this.cap, cx.waker().clone());
                // The flow may already be done if rates were huge; check.
                if this.link.poll_flow(id, cx.waker()) {
                    this.flow = Some(u64::MAX);
                    return Poll::Ready(());
                }
                this.flow = Some(id);
                Poll::Pending
            }
            Some(u64::MAX) => Poll::Ready(()),
            Some(id) => {
                if this.link.poll_flow(id, cx.waker()) {
                    this.flow = Some(u64::MAX);
                    Poll::Ready(())
                } else {
                    Poll::Pending
                }
            }
        }
    }
}

impl Drop for Transfer {
    fn drop(&mut self) {
        if let Some(id) = self.flow {
            if id != u64::MAX {
                self.link.cancel_flow(id);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cell::Cell;
    use std::rc::Rc;

    fn secs(s: f64) -> SimDuration {
        SimDuration::from_secs_f64(s)
    }

    #[test]
    fn lone_transfer_takes_bytes_over_capacity() {
        let sim = Sim::new(1);
        let link = FairShareLink::new(&sim, mbps(8.0)); // 1 MB/s
        let l = link.clone();
        sim.block_on(async move {
            l.transfer(1_000_000, None).await;
        });
        // 1 MB at 1 MB/s = 1 s (within rounding).
        let t = sim.now().as_secs_f64();
        assert!((t - 1.0).abs() < 1e-6, "took {t}s");
    }

    #[test]
    fn per_flow_cap_limits_lone_transfer() {
        let sim = Sim::new(1);
        let link = FairShareLink::new(&sim, mbps(1000.0));
        let l = link.clone();
        sim.block_on(async move {
            l.transfer(1_000_000, Some(mbps(8.0))).await;
        });
        let t = sim.now().as_secs_f64();
        assert!((t - 1.0).abs() < 1e-6, "took {t}s");
    }

    #[test]
    fn two_flows_share_fairly() {
        let sim = Sim::new(1);
        let link = FairShareLink::new(&sim, mbps(8.0));
        for _ in 0..2 {
            let l = link.clone();
            sim.spawn(async move {
                l.transfer(1_000_000, None).await;
            });
        }
        sim.run();
        // Two 1 MB transfers over a 1 MB/s pipe, concurrent: 2 s each.
        let t = sim.now().as_secs_f64();
        assert!((t - 2.0).abs() < 1e-6, "took {t}s");
    }

    #[test]
    fn twenty_flows_get_one_twentieth() {
        // The paper's packing experiment shape: per-flow rate collapses
        // proportionally to the number of co-located functions.
        let sim = Sim::new(1);
        let link = FairShareLink::new(&sim, mbps(574.0));
        let finish = Rc::new(RefCell::new(Vec::new()));
        for i in 0..20 {
            let l = link.clone();
            let s = sim.clone();
            let fin = finish.clone();
            sim.spawn(async move {
                l.transfer(10_000_000, Some(mbps(538.0))).await;
                fin.borrow_mut().push((i, s.now()));
            });
        }
        sim.run();
        // Each flow: 80 Mbit at 574/20 = 28.7 Mbps -> 2.787 s.
        let want = 80.0 / 28.7;
        for (_, t) in finish.borrow().iter() {
            assert!((t.as_secs_f64() - want).abs() < 1e-3, "{t}");
        }
    }

    #[test]
    fn late_joiner_slows_existing_flow() {
        let sim = Sim::new(1);
        let link = FairShareLink::new(&sim, mbps(8.0)); // 1 MB/s
        let done_a = Rc::new(Cell::new(0.0f64));
        let da = done_a.clone();
        let la = link.clone();
        let sa = sim.clone();
        sim.spawn(async move {
            la.transfer(1_000_000, None).await;
            da.set(sa.now().as_secs_f64());
        });
        let lb = link.clone();
        let sb = sim.clone();
        let done_b = Rc::new(Cell::new(0.0f64));
        let db = done_b.clone();
        sim.spawn(async move {
            sb.sleep(secs(0.5)).await;
            lb.transfer(500_000, None).await;
            db.set(sb.now().as_secs_f64());
        });
        sim.run();
        // A alone for 0.5 s moves 500 KB; then both share 0.5 MB/s.
        // A's remaining 500 KB takes 1 s -> done at 1.5 s.
        // B's 500 KB at 0.5 MB/s while sharing... B finishes when A does
        // (both have 500 KB left at t=0.5): done at 1.5 s too.
        assert!((done_a.get() - 1.5).abs() < 1e-6, "A at {}", done_a.get());
        assert!((done_b.get() - 1.5).abs() < 1e-6, "B at {}", done_b.get());
    }

    #[test]
    fn capped_flow_gives_slack_to_uncapped() {
        let sim = Sim::new(1);
        let link = FairShareLink::new(&sim, mbps(10.0));
        // Flow A capped at 2 Mbps, flow B uncapped -> B gets 8 Mbps.
        let done_b = Rc::new(Cell::new(0.0f64));
        let la = link.clone();
        sim.spawn(async move {
            la.transfer(10_000_000, Some(mbps(2.0))).await; // 80 Mb / 2 Mbps = 40 s
        });
        let lb = link.clone();
        let sb = sim.clone();
        let db = done_b.clone();
        sim.spawn(async move {
            lb.transfer(1_000_000, None).await; // 8 Mb / 8 Mbps = 1 s
            db.set(sb.now().as_secs_f64());
        });
        sim.run();
        assert!((done_b.get() - 1.0).abs() < 1e-6, "B at {}", done_b.get());
    }

    #[test]
    fn zero_byte_transfer_is_instant() {
        let sim = Sim::new(1);
        let link = FairShareLink::new(&sim, mbps(1.0));
        let l = link.clone();
        sim.block_on(async move {
            l.transfer(0, None).await;
        });
        assert_eq!(sim.now(), SimTime::ZERO);
    }

    #[test]
    fn canceled_transfer_returns_bandwidth() {
        let sim = Sim::new(1);
        let link = FairShareLink::new(&sim, mbps(8.0)); // 1 MB/s
        let s = sim.clone();
        let la = link.clone();
        // A transfer that gets dropped via timeout at t=0.5s.
        sim.spawn(async move {
            let got = s
                .timeout(secs(0.5), la.transfer(10_000_000, None))
                .await;
            assert!(got.is_none());
        });
        let done_b = Rc::new(Cell::new(0.0f64));
        let db = done_b.clone();
        let lb = link.clone();
        let sb = sim.clone();
        sim.spawn(async move {
            lb.transfer(1_000_000, None).await;
            db.set(sb.now().as_secs_f64());
        });
        sim.run();
        // B shares until t=0.5 (moves 250 KB), then gets the full link:
        // remaining 750 KB at 1 MB/s -> done at 1.25 s.
        assert!(
            (done_b.get() - 1.25).abs() < 1e-6,
            "B at {}",
            done_b.get()
        );
        assert_eq!(link.active_flows(), 0);
    }

    #[test]
    fn sequential_transfers_full_rate_each() {
        let sim = Sim::new(1);
        let link = FairShareLink::new(&sim, mbps(8.0));
        let l = link.clone();
        sim.block_on(async move {
            for _ in 0..3 {
                l.transfer(1_000_000, None).await;
            }
        });
        let t = sim.now().as_secs_f64();
        assert!((t - 3.0).abs() < 1e-5, "took {t}s");
    }

    #[test]
    fn heavy_churn_with_mixed_caps_stays_fair() {
        // Exercises the incremental order vec: staggered joins (binary
        // search insert), cancels and completions (lazy removal), and
        // enough turnover to trigger compaction.
        let sim = Sim::new(1);
        let link = FairShareLink::new(&sim, mbps(100.0));
        for i in 0..60u64 {
            let l = link.clone();
            let s = sim.clone();
            sim.spawn(async move {
                s.sleep(SimDuration::from_millis(i * 7)).await;
                let cap = if i % 3 == 0 { Some(mbps(5.0)) } else { None };
                if i % 5 == 0 {
                    // Some transfers are abandoned mid-flight.
                    s.timeout(SimDuration::from_millis(40), l.transfer(2_000_000, cap))
                        .await;
                } else {
                    l.transfer(200_000, cap).await;
                }
            });
        }
        sim.run();
        assert_eq!(link.active_flows(), 0);
        assert!(sim.now() > SimTime::ZERO);
    }

    #[test]
    fn churn_replays_byte_identically() {
        fn run() -> String {
            let sim = Sim::new(7);
            let link = FairShareLink::new(&sim, mbps(80.0));
            let log = Rc::new(RefCell::new(String::new()));
            for i in 0..25u64 {
                let l = link.clone();
                let s = sim.clone();
                let log = log.clone();
                sim.spawn(async move {
                    s.sleep(SimDuration::from_millis(i * 3)).await;
                    let cap = if i % 2 == 0 { Some(mbps(3.0)) } else { None };
                    l.transfer(100_000 + i * 10_000, cap).await;
                    log.borrow_mut()
                        .push_str(&format!("{i}@{}\n", s.now().as_nanos()));
                });
            }
            sim.run();
            let out = log.borrow().clone();
            out
        }
        assert_eq!(run(), run());
    }

    #[test]
    fn unit_helpers() {
        assert_eq!(mbps(1.0), 1e6);
        assert_eq!(gbps(1.0), 1e9);
        assert_eq!(mbytes_per_sec(1.0), 8e6);
    }
}
