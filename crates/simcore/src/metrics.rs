//! Measurement collection: counters, gauges, and sample histograms.
//!
//! Experiments record latencies and throughputs into a [`Recorder`], then
//! summarize them into the tables printed by the bench harnesses. The
//! histogram keeps raw samples (experiments here record at most a few
//! hundred thousand), which makes quantiles exact and the determinism
//! tests trivial: identical runs produce identical sample vectors.
//!
//! Metric names are interned: the first `record`/`add` under a name pays
//! one allocation to register it, and every subsequent hit is a hash
//! lookup into a `u32` handle — no per-record `String` allocation, no
//! `BTreeMap` walk. Hot call sites can hoist even the hash lookup out of
//! their loop with [`Recorder::hist_id`] / [`Recorder::counter_id`].

use std::cell::{Cell, RefCell};
use std::collections::HashMap;
use std::fmt;
use std::rc::Rc;

use crate::time::SimDuration;

/// An exact-sample histogram.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Histogram {
    samples: Vec<f64>,
    sorted: bool,
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Histogram {
        Histogram::default()
    }

    /// Record one sample. Non-finite samples are rejected with a panic —
    /// they always indicate a modeling bug.
    pub fn record(&mut self, v: f64) {
        assert!(v.is_finite(), "histogram sample must be finite, got {v}");
        self.samples.push(v);
        self.sorted = false;
    }

    /// Record a duration in seconds.
    pub fn record_duration(&mut self, d: SimDuration) {
        self.record(d.as_secs_f64());
    }

    /// Number of samples.
    pub fn count(&self) -> usize {
        self.samples.len()
    }

    /// True if no samples were recorded.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Arithmetic mean; 0 when empty.
    pub fn mean(&self) -> f64 {
        if self.samples.is_empty() {
            return 0.0;
        }
        self.samples.iter().sum::<f64>() / self.samples.len() as f64
    }

    /// Sample standard deviation; 0 with fewer than two samples.
    pub fn std_dev(&self) -> f64 {
        let n = self.samples.len();
        if n < 2 {
            return 0.0;
        }
        let mean = self.mean();
        let var = self
            .samples
            .iter()
            .map(|x| (x - mean) * (x - mean))
            .sum::<f64>()
            / (n - 1) as f64;
        var.sqrt()
    }

    /// Smallest sample; 0 when empty.
    pub fn min(&self) -> f64 {
        self.samples
            .iter()
            .copied()
            .fold(f64::INFINITY, f64::min)
            .min(f64::INFINITY)
            .pipe_finite()
    }

    /// Largest sample; 0 when empty.
    pub fn max(&self) -> f64 {
        self.samples
            .iter()
            .copied()
            .fold(f64::NEG_INFINITY, f64::max)
            .pipe_finite()
    }

    fn ensure_sorted(&mut self) {
        if !self.sorted {
            self.samples
                .sort_by(|a, b| a.partial_cmp(b).expect("finite samples"));
            self.sorted = true;
        }
    }

    /// Quantile `q in [0,1]` by nearest-rank on sorted samples; 0 when empty.
    pub fn quantile(&mut self, q: f64) -> f64 {
        if self.samples.is_empty() {
            return 0.0;
        }
        self.ensure_sorted();
        let q = q.clamp(0.0, 1.0);
        let idx = ((self.samples.len() as f64 - 1.0) * q).round() as usize;
        self.samples[idx]
    }

    /// Median.
    pub fn p50(&mut self) -> f64 {
        self.quantile(0.50)
    }

    /// 95th percentile.
    pub fn p95(&mut self) -> f64 {
        self.quantile(0.95)
    }

    /// 99th percentile.
    pub fn p99(&mut self) -> f64 {
        self.quantile(0.99)
    }

    /// Sum of all samples.
    pub fn total(&self) -> f64 {
        self.samples.iter().sum()
    }

    /// Immutable view of the raw samples (insertion order not guaranteed
    /// after a quantile call).
    pub fn samples(&self) -> &[f64] {
        &self.samples
    }

    /// Merge another histogram's samples into this one.
    pub fn merge(&mut self, other: &Histogram) {
        self.samples.extend_from_slice(&other.samples);
        self.sorted = false;
    }
}

trait PipeFinite {
    fn pipe_finite(self) -> f64;
}

impl PipeFinite for f64 {
    fn pipe_finite(self) -> f64 {
        if self.is_finite() {
            self
        } else {
            0.0
        }
    }
}

/// Interned handle to a histogram series (see [`Recorder::hist_id`]).
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug)]
pub struct HistId(u32);

/// Interned handle to a counter series (see [`Recorder::counter_id`]).
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug)]
pub struct CounterId(u32);

/// A counter handle that interns its name on first increment, then hits
/// the `u32` fast path forever after.
///
/// Services embed these for their hot-path counters. The lazy resolve
/// matters for determinism, not just startup cost: [`Recorder::digest`]
/// prints *every* interned series, zero-valued ones included, so
/// interning at construction would leak `counter x = 0` lines into the
/// digests of runs that never touch the counter. First-use interning is
/// byte-identical to recording by name.
///
/// Not valid across [`Recorder::reset`] (nothing in this workspace
/// resets mid-run).
pub struct LazyCounter {
    name: &'static str,
    id: Cell<Option<CounterId>>,
}

impl LazyCounter {
    /// A handle for `name`, not yet interned.
    pub const fn new(name: &'static str) -> LazyCounter {
        LazyCounter {
            name,
            id: Cell::new(None),
        }
    }

    /// Add `n`, interning the name on first use.
    pub fn add(&self, recorder: &Recorder, n: u64) {
        let id = match self.id.get() {
            Some(id) => id,
            None => {
                let id = recorder.counter_id(self.name);
                self.id.set(Some(id));
                id
            }
        };
        recorder.add_id(id, n);
    }

    /// Add 1, interning the name on first use.
    pub fn incr(&self, recorder: &Recorder) {
        self.add(recorder, 1);
    }
}

/// A histogram handle that interns its name on first sample; the
/// histogram twin of [`LazyCounter`], with the same digest rationale.
pub struct LazyHist {
    name: &'static str,
    id: Cell<Option<HistId>>,
}

impl LazyHist {
    /// A handle for `name`, not yet interned.
    pub const fn new(name: &'static str) -> LazyHist {
        LazyHist {
            name,
            id: Cell::new(None),
        }
    }

    /// Record one sample, interning the name on first use.
    pub fn record(&self, recorder: &Recorder, v: f64) {
        let id = match self.id.get() {
            Some(id) => id,
            None => {
                let id = recorder.hist_id(self.name);
                self.id.set(Some(id));
                id
            }
        };
        recorder.record_id(id, v);
    }

    /// Record a duration in seconds, interning the name on first use.
    pub fn record_duration(&self, recorder: &Recorder, d: SimDuration) {
        self.record(recorder, d.as_secs_f64());
    }
}

/// One side of the registry: an intern table from name to `u32` handle
/// plus the values, indexed by handle.
struct Series<T> {
    index: HashMap<Box<str>, u32>,
    names: Vec<Box<str>>,
    values: Vec<T>,
}

impl<T> Default for Series<T> {
    fn default() -> Series<T> {
        Series {
            index: HashMap::new(),
            names: Vec::new(),
            values: Vec::new(),
        }
    }
}

impl<T: Default> Series<T> {
    /// Handle for `name`, interning it on first use. The fast path is a
    /// single hash lookup with no allocation.
    fn intern(&mut self, name: &str) -> u32 {
        if let Some(&id) = self.index.get(name) {
            return id;
        }
        let id = self.names.len() as u32;
        self.index.insert(Box::from(name), id);
        self.names.push(Box::from(name));
        self.values.push(T::default());
        id
    }

    fn get(&self, name: &str) -> Option<&T> {
        self.index.get(name).map(|&id| &self.values[id as usize])
    }

    /// Handles in name-sorted order, so reports stay byte-identical to
    /// the old `BTreeMap` layout regardless of interning order.
    fn sorted_ids(&self) -> Vec<u32> {
        let mut ids: Vec<u32> = (0..self.names.len() as u32).collect();
        ids.sort_by(|&a, &b| self.names[a as usize].cmp(&self.names[b as usize]));
        ids
    }

    fn sorted_names(&self) -> Vec<String> {
        let mut names: Vec<String> = self.names.iter().map(|n| n.to_string()).collect();
        names.sort();
        names
    }

    fn clear(&mut self) {
        self.index.clear();
        self.names.clear();
        self.values.clear();
    }
}

/// A shared registry of named histograms and counters.
///
/// Names are free-form; the convention in this workspace is
/// `"<service>.<operation>"`, e.g. `"blob.get"` or `"faas.invoke.cold"`.
#[derive(Clone, Default)]
pub struct Recorder {
    inner: Rc<RefCell<RecorderInner>>,
}

#[derive(Default)]
struct RecorderInner {
    histograms: Series<Histogram>,
    counters: Series<u64>,
}

impl Recorder {
    /// A fresh, empty recorder.
    pub fn new() -> Recorder {
        Recorder::default()
    }

    /// Interned handle for histogram `name`; lets hot loops skip the
    /// per-record name lookup entirely via [`Recorder::record_id`].
    pub fn hist_id(&self, name: &str) -> HistId {
        HistId(self.inner.borrow_mut().histograms.intern(name))
    }

    /// Interned handle for counter `name` (see [`Recorder::add_id`]).
    pub fn counter_id(&self, name: &str) -> CounterId {
        CounterId(self.inner.borrow_mut().counters.intern(name))
    }

    /// Record a floating-point sample under `name`.
    pub fn record(&self, name: &str, v: f64) {
        let mut inner = self.inner.borrow_mut();
        let id = inner.histograms.intern(name);
        inner.histograms.values[id as usize].record(v);
    }

    /// Record a sample under a pre-interned handle — no name lookup.
    pub fn record_id(&self, id: HistId, v: f64) {
        self.inner.borrow_mut().histograms.values[id.0 as usize].record(v);
    }

    /// Record a duration sample (stored in seconds) under `name`.
    pub fn record_duration(&self, name: &str, d: SimDuration) {
        self.record(name, d.as_secs_f64());
    }

    /// Record a duration under a pre-interned handle.
    pub fn record_duration_id(&self, id: HistId, d: SimDuration) {
        self.record_id(id, d.as_secs_f64());
    }

    /// Add `n` to the counter `name`.
    pub fn add(&self, name: &str, n: u64) {
        let mut inner = self.inner.borrow_mut();
        let id = inner.counters.intern(name);
        inner.counters.values[id as usize] += n;
    }

    /// Add `n` under a pre-interned handle — no name lookup.
    pub fn add_id(&self, id: CounterId, n: u64) {
        self.inner.borrow_mut().counters.values[id.0 as usize] += n;
    }

    /// Increment the counter `name`.
    pub fn incr(&self, name: &str) {
        self.add(name, 1);
    }

    /// Increment under a pre-interned handle.
    pub fn incr_id(&self, id: CounterId) {
        self.add_id(id, 1);
    }

    /// Current value of counter `name` (0 if never touched).
    pub fn counter(&self, name: &str) -> u64 {
        self.inner
            .borrow()
            .counters
            .get(name)
            .copied()
            .unwrap_or(0)
    }

    /// Snapshot of the histogram `name` (empty if never touched).
    pub fn histogram(&self, name: &str) -> Histogram {
        self.inner
            .borrow()
            .histograms
            .get(name)
            .cloned()
            .unwrap_or_default()
    }

    /// Mean of histogram `name` in seconds, as a [`SimDuration`].
    pub fn mean_duration(&self, name: &str) -> SimDuration {
        SimDuration::from_secs_f64(self.histogram(name).mean())
    }

    /// All histogram names with at least one sample, sorted.
    pub fn histogram_names(&self) -> Vec<String> {
        self.inner.borrow().histograms.sorted_names()
    }

    /// All counter names, sorted.
    pub fn counter_names(&self) -> Vec<String> {
        self.inner.borrow().counters.sorted_names()
    }

    /// Drop all recorded data. Interned handles from before the reset are
    /// invalidated; re-intern after resetting.
    pub fn reset(&self) {
        let mut inner = self.inner.borrow_mut();
        inner.histograms.clear();
        inner.counters.clear();
    }

    /// A human-oriented summary table: one row per histogram with count,
    /// mean, p50/p95/p99 and min/max (values in the units recorded —
    /// durations are seconds), followed by the counters.
    pub fn summary(&self) -> String {
        use fmt::Write;
        let inner = self.inner.borrow();
        let mut out = String::new();
        let hist_ids = inner.histograms.sorted_ids();
        if !hist_ids.is_empty() {
            writeln!(
                out,
                "{:<28} {:>8} {:>12} {:>12} {:>12} {:>12}",
                "histogram", "n", "mean", "p50", "p95", "p99"
            )
            .unwrap();
            for id in hist_ids {
                let name = &inner.histograms.names[id as usize];
                let mut h = inner.histograms.values[id as usize].clone();
                writeln!(
                    out,
                    "{:<28} {:>8} {:>12.6} {:>12.6} {:>12.6} {:>12.6}",
                    name,
                    h.count(),
                    h.mean(),
                    h.p50(),
                    h.p95(),
                    h.p99()
                )
                .unwrap();
            }
        }
        let counter_ids = inner.counters.sorted_ids();
        if !counter_ids.is_empty() {
            writeln!(out, "{:<28} {:>8}", "counter", "value").unwrap();
            for id in counter_ids {
                let name = &inner.counters.names[id as usize];
                let count = inner.counters.values[id as usize];
                writeln!(out, "{name:<28} {count:>8}").unwrap();
            }
        }
        out
    }

    /// A plain-text digest of everything recorded, for debugging and for
    /// byte-exact determinism assertions in tests.
    pub fn digest(&self) -> String {
        let inner = self.inner.borrow();
        let mut out = String::new();
        use fmt::Write;
        for id in inner.counters.sorted_ids() {
            let name = &inner.counters.names[id as usize];
            let count = inner.counters.values[id as usize];
            writeln!(out, "counter {name} = {count}").unwrap();
        }
        for id in inner.histograms.sorted_ids() {
            let name = &inner.histograms.names[id as usize];
            let h = &inner.histograms.values[id as usize];
            writeln!(
                out,
                "hist {name}: n={} mean={:.9} min={:.9} max={:.9}",
                h.count(),
                h.mean(),
                h.min(),
                h.max()
            )
            .unwrap();
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_histogram_is_safe() {
        let mut h = Histogram::new();
        assert_eq!(h.count(), 0);
        assert!(h.is_empty());
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.std_dev(), 0.0);
        assert_eq!(h.min(), 0.0);
        assert_eq!(h.max(), 0.0);
        assert_eq!(h.p50(), 0.0);
    }

    #[test]
    fn basic_statistics() {
        let mut h = Histogram::new();
        for v in [1.0, 2.0, 3.0, 4.0, 5.0] {
            h.record(v);
        }
        assert_eq!(h.count(), 5);
        assert_eq!(h.mean(), 3.0);
        assert_eq!(h.min(), 1.0);
        assert_eq!(h.max(), 5.0);
        assert_eq!(h.p50(), 3.0);
        assert_eq!(h.total(), 15.0);
        assert!((h.std_dev() - (2.5f64).sqrt()).abs() < 1e-12);
    }

    #[test]
    fn quantiles_nearest_rank() {
        let mut h = Histogram::new();
        for v in 1..=100 {
            h.record(v as f64);
        }
        assert_eq!(h.quantile(0.0), 1.0);
        assert_eq!(h.quantile(1.0), 100.0);
        assert_eq!(h.p95(), 95.0);
        assert_eq!(h.p99(), 99.0);
        // Out-of-range q clamps.
        assert_eq!(h.quantile(2.0), 100.0);
        assert_eq!(h.quantile(-1.0), 1.0);
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn non_finite_sample_panics() {
        Histogram::new().record(f64::NAN);
    }

    #[test]
    fn merge_combines_samples() {
        let mut a = Histogram::new();
        a.record(1.0);
        let mut b = Histogram::new();
        b.record(3.0);
        a.merge(&b);
        assert_eq!(a.count(), 2);
        assert_eq!(a.mean(), 2.0);
    }

    #[test]
    fn recorder_counters_and_histograms() {
        let r = Recorder::new();
        r.incr("faas.invocations");
        r.add("faas.invocations", 2);
        r.record("blob.get", 0.05);
        r.record("blob.get", 0.07);
        r.record_duration("blob.put", SimDuration::from_millis(53));
        assert_eq!(r.counter("faas.invocations"), 3);
        assert_eq!(r.counter("missing"), 0);
        assert_eq!(r.histogram("blob.get").count(), 2);
        assert!((r.histogram("blob.get").mean() - 0.06).abs() < 1e-12);
        assert_eq!(
            r.mean_duration("blob.put"),
            SimDuration::from_millis(53)
        );
        assert_eq!(r.histogram_names(), vec!["blob.get", "blob.put"]);
        assert_eq!(r.counter_names(), vec!["faas.invocations"]);
    }

    #[test]
    fn recorder_reset_and_digest() {
        let r = Recorder::new();
        r.incr("x");
        r.record("y", 1.0);
        let d1 = r.digest();
        assert!(d1.contains("counter x = 1"));
        assert!(d1.contains("hist y"));
        // Digest is deterministic.
        assert_eq!(d1, r.digest());
        r.reset();
        assert_eq!(r.counter("x"), 0);
        assert!(r.digest().is_empty());
    }

    #[test]
    fn summary_renders_all_series() {
        let r = Recorder::new();
        r.record("lat", 0.1);
        r.record("lat", 0.3);
        r.incr("hits");
        let s = r.summary();
        assert!(s.contains("lat"));
        assert!(s.contains("hits"));
        assert!(s.contains("p99"));
        assert!(Recorder::new().summary().is_empty());
    }

    #[test]
    fn recorder_clones_share_state() {
        let r = Recorder::new();
        let r2 = r.clone();
        r2.incr("shared");
        assert_eq!(r.counter("shared"), 1);
    }

    #[test]
    fn interned_ids_alias_names() {
        let r = Recorder::new();
        let h = r.hist_id("lat");
        let c = r.counter_id("hits");
        r.record_id(h, 1.0);
        r.record("lat", 3.0);
        r.record_duration_id(h, SimDuration::from_secs(5));
        r.incr_id(c);
        r.add_id(c, 2);
        r.add("hits", 4);
        assert_eq!(r.histogram("lat").count(), 3);
        assert_eq!(r.histogram("lat").mean(), 3.0);
        assert_eq!(r.counter("hits"), 7);
        // Re-interning the same name yields the same handle.
        assert_eq!(r.hist_id("lat"), h);
        assert_eq!(r.counter_id("hits"), c);
    }

    #[test]
    fn digest_is_name_sorted_regardless_of_interning_order() {
        let r = Recorder::new();
        r.record("zzz", 1.0);
        r.record("aaa", 2.0);
        r.incr("m");
        r.incr("b");
        let d = r.digest();
        let aaa = d.find("hist aaa").unwrap();
        let zzz = d.find("hist zzz").unwrap();
        assert!(aaa < zzz, "{d}");
        let b = d.find("counter b").unwrap();
        let m = d.find("counter m").unwrap();
        assert!(b < m, "{d}");
        assert_eq!(r.histogram_names(), vec!["aaa", "zzz"]);
        assert_eq!(r.counter_names(), vec!["b", "m"]);
    }
}
