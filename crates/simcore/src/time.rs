//! Virtual time for the simulation.
//!
//! The simulator advances a virtual clock measured in integer nanoseconds.
//! [`SimTime`] is an instant on that clock (nanoseconds since simulation
//! start) and [`SimDuration`] is a span between instants. Both are distinct
//! from `std::time` types on purpose: nothing in a simulation should ever
//! consult the host's clock.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// An instant in virtual time, in nanoseconds since simulation start.
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

/// A span of virtual time, in nanoseconds.
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(u64);

impl SimTime {
    /// The simulation epoch (t = 0).
    pub const ZERO: SimTime = SimTime(0);
    /// The greatest representable instant; used as "never".
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Construct from raw nanoseconds since simulation start.
    #[inline]
    pub const fn from_nanos(ns: u64) -> Self {
        SimTime(ns)
    }

    /// Nanoseconds since simulation start.
    #[inline]
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Seconds since simulation start, as floating point.
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// The span from `earlier` to `self`, saturating to zero if `earlier`
    /// is actually later.
    #[inline]
    pub fn duration_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// Checked addition of a duration; `None` on overflow.
    #[inline]
    pub fn checked_add(self, d: SimDuration) -> Option<SimTime> {
        self.0.checked_add(d.0).map(SimTime)
    }

    /// Addition that saturates at [`SimTime::MAX`] instead of overflowing.
    #[inline]
    pub fn saturating_add(self, d: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(d.0))
    }
}

impl SimDuration {
    /// The empty span.
    pub const ZERO: SimDuration = SimDuration(0);
    /// The greatest representable span; used as "forever".
    pub const MAX: SimDuration = SimDuration(u64::MAX);

    /// Construct from nanoseconds.
    #[inline]
    pub const fn from_nanos(ns: u64) -> Self {
        SimDuration(ns)
    }

    /// Construct from microseconds.
    #[inline]
    pub const fn from_micros(us: u64) -> Self {
        SimDuration(us * 1_000)
    }

    /// Construct from milliseconds.
    #[inline]
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms * 1_000_000)
    }

    /// Construct from whole seconds.
    #[inline]
    pub const fn from_secs(s: u64) -> Self {
        SimDuration(s * 1_000_000_000)
    }

    /// Construct from whole minutes.
    #[inline]
    pub const fn from_mins(m: u64) -> Self {
        SimDuration(m * 60 * 1_000_000_000)
    }

    /// Construct from whole hours.
    #[inline]
    pub const fn from_hours(h: u64) -> Self {
        SimDuration(h * 3_600 * 1_000_000_000)
    }

    /// Construct from fractional seconds. Negative and non-finite inputs
    /// clamp to zero; values beyond the representable range clamp to
    /// [`SimDuration::MAX`].
    pub fn from_secs_f64(s: f64) -> Self {
        if s.is_nan() || s <= 0.0 {
            return SimDuration::ZERO;
        }
        let ns = s * 1e9;
        if ns >= u64::MAX as f64 {
            SimDuration::MAX
        } else {
            SimDuration(ns as u64)
        }
    }

    /// Nanoseconds in this span.
    #[inline]
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Microseconds in this span (truncating).
    #[inline]
    pub const fn as_micros(self) -> u64 {
        self.0 / 1_000
    }

    /// Milliseconds in this span (truncating).
    #[inline]
    pub const fn as_millis(self) -> u64 {
        self.0 / 1_000_000
    }

    /// Seconds in this span, as floating point.
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Milliseconds in this span, as floating point.
    #[inline]
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// True if this is the empty span.
    #[inline]
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Checked addition; `None` on overflow.
    #[inline]
    pub fn checked_add(self, other: SimDuration) -> Option<SimDuration> {
        self.0.checked_add(other.0).map(SimDuration)
    }

    /// Saturating subtraction.
    #[inline]
    pub fn saturating_sub(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(other.0))
    }

    /// Multiply by a float factor, saturating; negative/NaN factors give zero.
    pub fn mul_f64(self, k: f64) -> SimDuration {
        SimDuration::from_secs_f64(self.as_secs_f64() * k)
    }

    /// The larger of two spans.
    #[inline]
    pub fn max(self, other: SimDuration) -> SimDuration {
        if self >= other {
            self
        } else {
            other
        }
    }

    /// The smaller of two spans.
    #[inline]
    pub fn min(self, other: SimDuration) -> SimDuration {
        if self <= other {
            self
        } else {
            other
        }
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    #[inline]
    fn add(self, d: SimDuration) -> SimTime {
        SimTime(self.0 + d.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    #[inline]
    fn add_assign(&mut self, d: SimDuration) {
        self.0 += d.0;
    }
}

impl Sub<SimDuration> for SimTime {
    type Output = SimTime;
    #[inline]
    fn sub(self, d: SimDuration) -> SimTime {
        SimTime(self.0 - d.0)
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    #[inline]
    fn sub(self, other: SimTime) -> SimDuration {
        SimDuration(self.0 - other.0)
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn add(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0 + other.0)
    }
}

impl AddAssign for SimDuration {
    #[inline]
    fn add_assign(&mut self, other: SimDuration) {
        self.0 += other.0;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn sub(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0 - other.0)
    }
}

impl SubAssign for SimDuration {
    #[inline]
    fn sub_assign(&mut self, other: SimDuration) {
        self.0 -= other.0;
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn mul(self, k: u64) -> SimDuration {
        SimDuration(self.0 * k)
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn div(self, k: u64) -> SimDuration {
        SimDuration(self.0 / k)
    }
}

impl Div<SimDuration> for SimDuration {
    type Output = f64;
    #[inline]
    fn div(self, other: SimDuration) -> f64 {
        self.0 as f64 / other.0 as f64
    }
}

impl Sum for SimDuration {
    fn sum<I: Iterator<Item = SimDuration>>(iter: I) -> SimDuration {
        iter.fold(SimDuration::ZERO, Add::add)
    }
}

fn fmt_nanos(ns: u64, f: &mut fmt::Formatter<'_>) -> fmt::Result {
    // Pick the largest unit that keeps the integer part nonzero.
    if ns == u64::MAX {
        return write!(f, "forever");
    }
    if ns >= 60_000_000_000 {
        let secs = ns as f64 / 1e9;
        if secs >= 3_600.0 {
            return write!(f, "{:.2}h", secs / 3_600.0);
        }
        return write!(f, "{:.2}min", secs / 60.0);
    }
    if ns >= 1_000_000_000 {
        return write!(f, "{:.3}s", ns as f64 / 1e9);
    }
    if ns >= 1_000_000 {
        return write!(f, "{:.3}ms", ns as f64 / 1e6);
    }
    if ns >= 1_000 {
        return write!(f, "{:.3}us", ns as f64 / 1e3);
    }
    write!(f, "{ns}ns")
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt_nanos(self.0, f)
    }
}

impl fmt::Debug for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt_nanos(self.0, f)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t+")?;
        fmt_nanos(self.0, f)
    }
}

impl fmt::Debug for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t+")?;
        fmt_nanos(self.0, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_agree() {
        assert_eq!(SimDuration::from_secs(2).as_nanos(), 2_000_000_000);
        assert_eq!(SimDuration::from_millis(3).as_micros(), 3_000);
        assert_eq!(SimDuration::from_micros(7).as_nanos(), 7_000);
        assert_eq!(SimDuration::from_mins(2), SimDuration::from_secs(120));
        assert_eq!(SimDuration::from_hours(1), SimDuration::from_secs(3600));
    }

    #[test]
    fn float_roundtrip() {
        let d = SimDuration::from_secs_f64(1.25);
        assert_eq!(d.as_nanos(), 1_250_000_000);
        assert!((d.as_secs_f64() - 1.25).abs() < 1e-12);
    }

    #[test]
    fn float_edge_cases_clamp() {
        assert_eq!(SimDuration::from_secs_f64(-1.0), SimDuration::ZERO);
        assert_eq!(SimDuration::from_secs_f64(f64::NAN), SimDuration::ZERO);
        assert_eq!(SimDuration::from_secs_f64(f64::INFINITY), SimDuration::MAX);
    }

    #[test]
    fn instant_arithmetic() {
        let t0 = SimTime::ZERO;
        let t1 = t0 + SimDuration::from_millis(5);
        assert_eq!(t1 - t0, SimDuration::from_millis(5));
        assert_eq!(t0.duration_since(t1), SimDuration::ZERO);
        assert_eq!(t1.duration_since(t0), SimDuration::from_millis(5));
    }

    #[test]
    fn saturating_behaviour() {
        assert_eq!(
            SimTime::MAX.saturating_add(SimDuration::from_secs(1)),
            SimTime::MAX
        );
        assert_eq!(
            SimDuration::from_secs(1).saturating_sub(SimDuration::from_secs(2)),
            SimDuration::ZERO
        );
        assert!(SimTime::MAX.checked_add(SimDuration::from_nanos(1)).is_none());
    }

    #[test]
    fn scaling() {
        let d = SimDuration::from_millis(10);
        assert_eq!(d * 3, SimDuration::from_millis(30));
        assert_eq!(d / 2, SimDuration::from_millis(5));
        assert!((d.mul_f64(2.5).as_millis_f64() - 25.0).abs() < 1e-9);
        assert!(((d / SimDuration::from_millis(4)) - 2.5).abs() < 1e-12);
    }

    #[test]
    fn ratio_and_sum() {
        let parts = vec![
            SimDuration::from_millis(1),
            SimDuration::from_millis(2),
            SimDuration::from_millis(3),
        ];
        let total: SimDuration = parts.into_iter().sum();
        assert_eq!(total, SimDuration::from_millis(6));
    }

    #[test]
    fn display_units() {
        assert_eq!(SimDuration::from_nanos(12).to_string(), "12ns");
        assert_eq!(SimDuration::from_micros(12).to_string(), "12.000us");
        assert_eq!(SimDuration::from_millis(12).to_string(), "12.000ms");
        assert_eq!(SimDuration::from_secs(12).to_string(), "12.000s");
        assert_eq!(SimDuration::from_secs(90).to_string(), "1.50min");
        assert_eq!(SimDuration::from_hours(2).to_string(), "2.00h");
        assert_eq!(SimDuration::MAX.to_string(), "forever");
        assert_eq!(
            SimTime::from_nanos(1_500_000).to_string(),
            "t+1.500ms"
        );
    }

    #[test]
    fn min_max_helpers() {
        let a = SimDuration::from_millis(1);
        let b = SimDuration::from_millis(2);
        assert_eq!(a.max(b), b);
        assert_eq!(a.min(b), a);
        assert!(!b.is_zero());
        assert!(SimDuration::ZERO.is_zero());
    }
}
