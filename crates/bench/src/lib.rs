//! # faasim-bench
//!
//! Shared helpers for the bench harnesses that regenerate the paper's
//! tables and figures. Each harness is a `harness = false` bench target:
//! `cargo bench -p faasim-bench --bench <name>` prints the corresponding
//! table, and `cargo bench --workspace` regenerates everything.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod compare;
pub mod wallclock;

/// Print a section header.
pub fn section(title: &str) {
    println!();
    println!("=== {title} ===");
    println!();
}

/// Print a paper-vs-measured comparison line with the relative deviation.
/// A zero paper value has no meaningful relative deviation, so it prints
/// `n/a` instead of a misleading `+0.0%`.
pub fn compare(label: &str, paper: f64, measured: f64, unit: &str) {
    let dev = if paper != 0.0 {
        format!("{:+.1}%", (measured - paper) / paper * 100.0)
    } else {
        "n/a".to_owned()
    };
    println!("  {label:<44} paper {paper:>10.3} {unit:<5} measured {measured:>10.3} {unit:<5} ({dev})");
}

/// The seed used by every harness, so printed tables are reproducible.
pub const BENCH_SEED: u64 = 2019;

#[cfg(test)]
mod tests {
    #[test]
    fn compare_does_not_panic_on_zero() {
        super::compare("x", 0.0, 1.0, "ms");
        super::section("t");
    }
}
