//! The wall-clock performance baseline: how fast is the simulator
//! *itself*?
//!
//! Every other harness in this crate measures **virtual** time — what the
//! simulated cloud experiences. This one measures **host** time: events
//! per second through the DES kernel, wall-clock per experiment, and
//! seeds per second through the chaos sweep, serial and fanned out across
//! cores with [`ParallelSweep`]. The numbers land in
//! `BENCH_baseline.json` so the repo carries a perf trajectory and future
//! PRs can be gated against regressions (the SeBS lesson: a benchmark
//! suite without reproducible throughput baselines is a demo, not a
//! measurement).
//!
//! Run it with `make bench` (or
//! `cargo bench -p faasim-bench --bench wallclock`).

use std::fmt::Write as _;
use std::time::Instant;

use faasim::experiments::{
    agents_cmp, bandwidth, cold_starts, data_shipping, election, prediction, table1, training,
};
use faasim::simcore::{mbps, FairShareLink, Sim, SimDuration};
use faasim_chaos::{sweep, CrdtSync, ParallelSweep};

use crate::BENCH_SEED;

/// One kernel microbenchmark: wall-clock plus the kernel's own event
/// counter, giving events/sec.
#[derive(Clone, Debug)]
pub struct KernelBench {
    /// Benchmark name, `kernel/<what>`.
    pub name: String,
    /// Host seconds elapsed.
    pub wall_secs: f64,
    /// Events the kernel processed (task polls + timer firings).
    pub events: u64,
}

impl KernelBench {
    /// Events per host second.
    pub fn events_per_sec(&self) -> f64 {
        if self.wall_secs > 0.0 {
            self.events as f64 / self.wall_secs
        } else {
            0.0
        }
    }
}

/// Wall-clock for one experiment at `quick()` params.
#[derive(Clone, Debug)]
pub struct ExperimentBench {
    /// Experiment name as used in EXPERIMENTS.md.
    pub name: String,
    /// Host seconds elapsed.
    pub wall_secs: f64,
}

/// Serial-vs-parallel sweep throughput.
#[derive(Clone, Debug)]
pub struct SweepBench {
    /// Seeds swept (each runs twice — the replay check).
    pub seeds: usize,
    /// Cores the host reports (recorded alongside `workers` so a
    /// baseline taken on a different machine is interpretable).
    pub cores: usize,
    /// Worker threads the parallel arm used (defaults to `cores` via
    /// [`ParallelSweep::auto`]).
    pub workers: usize,
    /// Host seconds, serial arm.
    pub serial_secs: f64,
    /// Host seconds, parallel arm.
    pub parallel_secs: f64,
}

impl SweepBench {
    /// Serial seeds per host second.
    pub fn serial_seeds_per_sec(&self) -> f64 {
        self.seeds as f64 / self.serial_secs.max(1e-9)
    }

    /// Parallel seeds per host second.
    pub fn parallel_seeds_per_sec(&self) -> f64 {
        self.seeds as f64 / self.parallel_secs.max(1e-9)
    }

    /// Wall-clock speedup of the parallel arm over the serial arm.
    pub fn speedup(&self) -> f64 {
        self.serial_secs / self.parallel_secs.max(1e-9)
    }
}

/// Everything `make bench` measures.
#[derive(Clone, Debug)]
pub struct Baseline {
    /// Cores the host reports.
    pub cores: usize,
    /// DES-kernel microbenchmarks.
    pub kernel: Vec<KernelBench>,
    /// Per-experiment wall-clock at `quick()` params.
    pub experiments: Vec<ExperimentBench>,
    /// Chaos-sweep throughput, serial vs parallel.
    pub sweep: SweepBench,
}

fn time<T>(f: impl FnOnce() -> T) -> (f64, T) {
    let start = Instant::now();
    let out = f();
    (start.elapsed().as_secs_f64(), out)
}

fn kernel_bench(name: &str, f: impl FnOnce() -> u64) -> KernelBench {
    let (wall_secs, events) = time(f);
    KernelBench {
        name: name.to_owned(),
        wall_secs,
        events,
    }
}

/// The DES-kernel microbenchmarks: each returns the kernel's event count
/// so the score is events/sec, not iterations/sec.
pub fn run_kernel_benches() -> Vec<KernelBench> {
    vec![
        kernel_bench("kernel/sequential_sleeps_100k", || {
            let sim = Sim::new(BENCH_SEED);
            let s = sim.clone();
            sim.block_on(async move {
                for _ in 0..100_000 {
                    s.sleep(SimDuration::from_micros(1)).await;
                }
            });
            sim.stats().events_processed
        }),
        kernel_bench("kernel/concurrent_tasks_10k", || {
            let sim = Sim::new(BENCH_SEED);
            for i in 0..10_000u64 {
                let s = sim.clone();
                sim.spawn(async move {
                    for _ in 0..10 {
                        s.sleep(SimDuration::from_nanos(1 + i % 977)).await;
                    }
                });
            }
            sim.run();
            sim.stats().events_processed
        }),
        kernel_bench("kernel/timer_cancel_churn_50k", || {
            // Timeouts that never fire: every sleep is registered and
            // then canceled — the slab-recycling hot path.
            let sim = Sim::new(BENCH_SEED);
            let s = sim.clone();
            sim.block_on(async move {
                for _ in 0..50_000 {
                    s.timeout(SimDuration::from_secs(3600), s.sleep(SimDuration::from_nanos(10)))
                        .await;
                }
            });
            sim.stats().events_processed
        }),
        kernel_bench("kernel/link_fanin_5k_flows", || {
            // The data-shipping hot path: thousands of staggered flows
            // fanning into one shared link, so every join/leave reshapes
            // the fair share and churns the flow slab.
            let sim = Sim::new(BENCH_SEED);
            let link = FairShareLink::new(&sim, mbps(1000.0));
            for i in 0..5_000u64 {
                let l = link.clone();
                let s = sim.clone();
                sim.spawn(async move {
                    s.sleep(SimDuration::from_micros(i * 13)).await;
                    let cap = if i % 4 == 0 { Some(mbps(10.0)) } else { None };
                    l.transfer(250_000, cap).await;
                });
            }
            sim.run();
            sim.stats().events_processed
        }),
    ]
}

/// Wall-clock each of the eight experiments at `quick()` params.
pub fn run_experiment_benches() -> Vec<ExperimentBench> {
    fn one(name: &str, f: impl FnOnce()) -> ExperimentBench {
        let (wall_secs, ()) = time(f);
        ExperimentBench {
            name: name.to_owned(),
            wall_secs,
        }
    }
    vec![
        one("table1", || {
            std::hint::black_box(table1::run(&table1::Table1Params::quick(), BENCH_SEED));
        }),
        one("cold_starts", || {
            std::hint::black_box(cold_starts::run(
                &cold_starts::ColdStartParams::quick(),
                BENCH_SEED,
            ));
        }),
        one("bandwidth", || {
            std::hint::black_box(bandwidth::run(
                &bandwidth::BandwidthParams::quick(),
                BENCH_SEED,
            ));
        }),
        one("data_shipping", || {
            std::hint::black_box(data_shipping::run(
                &data_shipping::DataShippingParams::quick(),
                BENCH_SEED,
            ));
        }),
        // The default sweep ends at the 30 GB paper-scale point where the
        // 15-minute guillotine forces execution chaining. Symbolic
        // payloads are what make this affordable: the acceptance bar is
        // < 0.8 s wall for the whole five-point sweep.
        one("data_shipping_paper_scale", || {
            std::hint::black_box(data_shipping::run(
                &data_shipping::DataShippingParams::default(),
                BENCH_SEED,
            ));
        }),
        one("training", || {
            std::hint::black_box(training::run(&training::TrainingParams::quick(), BENCH_SEED));
        }),
        one("prediction", || {
            std::hint::black_box(prediction::run(
                &prediction::PredictionParams::quick(),
                BENCH_SEED,
            ));
        }),
        one("election", || {
            std::hint::black_box(election::run(&election::ElectionParams::quick(), BENCH_SEED));
        }),
        one("agents_cmp", || {
            std::hint::black_box(agents_cmp::run(
                &agents_cmp::AgentsCmpParams::quick(),
                BENCH_SEED,
            ));
        }),
    ]
}

/// Sweep `seeds` seeds of the chaotic CRDT-sync scenario serially and
/// through [`ParallelSweep`], asserting the reports are byte-identical
/// before reporting throughput.
pub fn run_sweep_bench(seeds: usize) -> SweepBench {
    let scenario = CrdtSync::chaotic();
    let seed_list: Vec<u64> = (1..=seeds as u64).collect();
    let (serial_secs, serial_report) = time(|| sweep(&scenario, &seed_list));
    let pool = ParallelSweep::auto();
    let (parallel_secs, parallel_report) = time(|| pool.sweep(&scenario, &seed_list));
    assert_eq!(
        serial_report, parallel_report,
        "parallel sweep must be byte-identical to serial"
    );
    SweepBench {
        seeds,
        cores: ParallelSweep::available_cores(),
        workers: pool.workers(),
        serial_secs,
        parallel_secs,
    }
}

/// Run the full baseline: kernel, experiments, and a `seeds`-seed sweep.
pub fn run_baseline(seeds: usize) -> Baseline {
    Baseline {
        cores: ParallelSweep::available_cores(),
        kernel: run_kernel_benches(),
        experiments: run_experiment_benches(),
        sweep: run_sweep_bench(seeds),
    }
}

fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v:.6}")
    } else {
        "null".to_owned()
    }
}

impl Baseline {
    /// Serialize to the `BENCH_baseline.json` schema (no external JSON
    /// dependency — the build is offline).
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        out.push_str("  \"schema\": \"faasim-bench/wallclock/1\",\n");
        writeln!(out, "  \"cores\": {},", self.cores).unwrap();
        out.push_str("  \"kernel\": [\n");
        for (i, k) in self.kernel.iter().enumerate() {
            let comma = if i + 1 < self.kernel.len() { "," } else { "" };
            writeln!(
                out,
                "    {{\"name\": \"{}\", \"wall_secs\": {}, \"events\": {}, \"events_per_sec\": {}}}{comma}",
                k.name,
                json_f64(k.wall_secs),
                k.events,
                json_f64(k.events_per_sec()),
            )
            .unwrap();
        }
        out.push_str("  ],\n");
        out.push_str("  \"experiments\": [\n");
        for (i, e) in self.experiments.iter().enumerate() {
            let comma = if i + 1 < self.experiments.len() { "," } else { "" };
            writeln!(
                out,
                "    {{\"name\": \"{}\", \"wall_secs\": {}}}{comma}",
                e.name,
                json_f64(e.wall_secs),
            )
            .unwrap();
        }
        out.push_str("  ],\n");
        let s = &self.sweep;
        out.push_str("  \"sweep\": {\n");
        writeln!(out, "    \"scenario\": \"crdt-sync/chaotic\",").unwrap();
        writeln!(out, "    \"seeds\": {},", s.seeds).unwrap();
        writeln!(out, "    \"cores\": {},", s.cores).unwrap();
        writeln!(out, "    \"workers\": {},", s.workers).unwrap();
        writeln!(out, "    \"serial_secs\": {},", json_f64(s.serial_secs)).unwrap();
        writeln!(out, "    \"parallel_secs\": {},", json_f64(s.parallel_secs)).unwrap();
        writeln!(
            out,
            "    \"serial_seeds_per_sec\": {},",
            json_f64(s.serial_seeds_per_sec())
        )
        .unwrap();
        writeln!(
            out,
            "    \"parallel_seeds_per_sec\": {},",
            json_f64(s.parallel_seeds_per_sec())
        )
        .unwrap();
        writeln!(out, "    \"speedup\": {}", json_f64(s.speedup())).unwrap();
        out.push_str("  }\n");
        out.push_str("}\n");
        out
    }

    /// Human-readable table, printed by the bench target.
    pub fn render(&self) -> String {
        let mut out = String::new();
        writeln!(out, "wall-clock baseline ({} core(s))", self.cores).unwrap();
        writeln!(out).unwrap();
        writeln!(
            out,
            "{:<34} {:>10} {:>12} {:>14}",
            "kernel bench", "wall (s)", "events", "events/sec"
        )
        .unwrap();
        for k in &self.kernel {
            writeln!(
                out,
                "{:<34} {:>10.3} {:>12} {:>14.0}",
                k.name,
                k.wall_secs,
                k.events,
                k.events_per_sec()
            )
            .unwrap();
        }
        writeln!(out).unwrap();
        writeln!(out, "{:<34} {:>10}", "experiment (quick)", "wall (s)").unwrap();
        for e in &self.experiments {
            writeln!(out, "{:<34} {:>10.3}", e.name, e.wall_secs).unwrap();
        }
        writeln!(out).unwrap();
        let s = &self.sweep;
        writeln!(
            out,
            "sweep: {} seeds  serial {:.3}s ({:.1} seeds/s)  parallel[{} workers / {} cores] {:.3}s ({:.1} seeds/s)  speedup {:.2}x",
            s.seeds,
            s.serial_secs,
            s.serial_seeds_per_sec(),
            s.workers,
            s.cores,
            s.parallel_secs,
            s.parallel_seeds_per_sec(),
            s.speedup()
        )
        .unwrap();
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn baseline_json_is_well_formed() {
        // A tiny baseline (2-seed sweep) to keep the test fast; the JSON
        // must contain every section and balanced braces/brackets.
        let b = Baseline {
            cores: 4,
            kernel: vec![KernelBench {
                name: "kernel/x".into(),
                wall_secs: 0.5,
                events: 1000,
            }],
            experiments: vec![ExperimentBench {
                name: "table1".into(),
                wall_secs: 0.25,
            }],
            sweep: SweepBench {
                seeds: 2,
                cores: 4,
                workers: 4,
                serial_secs: 1.0,
                parallel_secs: 0.5,
            },
        };
        let json = b.to_json();
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
        for key in [
            "\"schema\"",
            "\"cores\"",
            "\"kernel\"",
            "\"events_per_sec\"",
            "\"experiments\"",
            "\"sweep\"",
            "\"speedup\"",
        ] {
            assert!(json.contains(key), "missing {key} in {json}");
        }
        assert!(json.contains("\"speedup\": 2.000000"));
        let table = b.render();
        assert!(table.contains("speedup 2.00x"), "{table}");
    }

    #[test]
    fn kernel_events_per_sec_handles_zero_wall() {
        let k = KernelBench {
            name: "kernel/x".into(),
            wall_secs: 0.0,
            events: 10,
        };
        assert_eq!(k.events_per_sec(), 0.0);
    }

    #[test]
    fn sweep_bench_runs_and_matches_serial() {
        // Smoke: 3 seeds through the real scenario, serial vs parallel.
        let b = run_sweep_bench(3);
        assert_eq!(b.seeds, 3);
        assert!(b.serial_secs > 0.0 && b.parallel_secs > 0.0);
    }
}
