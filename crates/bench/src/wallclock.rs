//! The wall-clock performance baseline: how fast is the simulator
//! *itself*?
//!
//! Every other harness in this crate measures **virtual** time — what the
//! simulated cloud experiences. This one measures **host** time: events
//! per second through the DES kernel, wall-clock per experiment, and
//! seeds per second through the chaos sweep, serial and fanned out across
//! cores with [`ParallelSweep`]. The numbers land in
//! `BENCH_baseline.json` so the repo carries a perf trajectory and future
//! PRs can be gated against regressions (the SeBS lesson: a benchmark
//! suite without reproducible throughput baselines is a demo, not a
//! measurement).
//!
//! Run it with `make bench` (or
//! `cargo bench -p faasim-bench --bench wallclock`).

use std::fmt::Write as _;
use std::rc::Rc;
use std::time::Instant;

use bytes::Bytes;
use faasim::blob::{BlobProfile, BlobStore};
use faasim::experiments::{
    agents_cmp, bandwidth, cold_starts, data_shipping, election, prediction, table1, training,
};
use faasim::net::{Fabric, Host, NetProfile, NicConfig};
use faasim::payload::Payload;
use faasim::pricing::{Ledger, PriceBook};
use faasim::query::{Aggregate, QueryProfile, QueryService, QuerySpec};
use faasim::simcore::{gbps, mbps, FairShareLink, Recorder, Sim, SimDuration};
use faasim_chaos::{sweep, CrdtSync, ParallelSweep};
use faasim_trace::{replay, ReplayConfig};

use crate::BENCH_SEED;

/// One kernel microbenchmark: wall-clock plus the kernel's own event
/// counter, giving events/sec.
#[derive(Clone, Debug)]
pub struct KernelBench {
    /// Benchmark name, `kernel/<what>`.
    pub name: String,
    /// Host seconds elapsed.
    pub wall_secs: f64,
    /// Events the kernel processed (task polls + timer firings).
    pub events: u64,
    /// Rendered engine [`SimProfile`](faasim::simcore::SimProfile) for
    /// benches that surface one (the replay kernels) — deterministic, so
    /// it doubles as a cross-round identity check.
    pub profile: Option<String>,
}

impl KernelBench {
    /// Events per host second.
    pub fn events_per_sec(&self) -> f64 {
        if self.wall_secs > 0.0 {
            self.events as f64 / self.wall_secs
        } else {
            0.0
        }
    }
}

/// Wall-clock for one experiment at `quick()` params.
#[derive(Clone, Debug)]
pub struct ExperimentBench {
    /// Experiment name as used in EXPERIMENTS.md.
    pub name: String,
    /// Host seconds elapsed.
    pub wall_secs: f64,
}

/// Serial-vs-parallel sweep throughput.
#[derive(Clone, Debug)]
pub struct SweepBench {
    /// Seeds swept (each runs twice — the replay check).
    pub seeds: usize,
    /// Cores the host reports (recorded alongside `workers` so a
    /// baseline taken on a different machine is interpretable).
    pub cores: usize,
    /// Worker threads the parallel arm used (defaults to `cores` via
    /// [`ParallelSweep::auto`]).
    pub workers: usize,
    /// Host seconds, serial arm.
    pub serial_secs: f64,
    /// Host seconds, parallel arm.
    pub parallel_secs: f64,
}

impl SweepBench {
    /// Serial seeds per host second.
    pub fn serial_seeds_per_sec(&self) -> f64 {
        self.seeds as f64 / self.serial_secs.max(1e-9)
    }

    /// Parallel seeds per host second.
    pub fn parallel_seeds_per_sec(&self) -> f64 {
        self.seeds as f64 / self.parallel_secs.max(1e-9)
    }

    /// Wall-clock speedup of the parallel arm over the serial arm.
    pub fn speedup(&self) -> f64 {
        self.serial_secs / self.parallel_secs.max(1e-9)
    }
}

/// Everything `make bench` measures.
#[derive(Clone, Debug)]
pub struct Baseline {
    /// Cores the host reports.
    pub cores: usize,
    /// DES-kernel microbenchmarks.
    pub kernel: Vec<KernelBench>,
    /// Per-experiment wall-clock at `quick()` params.
    pub experiments: Vec<ExperimentBench>,
    /// Chaos-sweep throughput, serial vs parallel.
    pub sweep: SweepBench,
}

fn time<T>(f: impl FnOnce() -> T) -> (f64, T) {
    let start = Instant::now();
    let out = f();
    (start.elapsed().as_secs_f64(), out)
}

/// Kernel and experiment timings are best-of-N **suite rounds**: on a
/// shared host, single-shot wall-clock is right-skewed by interference
/// (another tenant's burst can double a 20 ms measurement), and the
/// minimum of a few runs is the classic antidote — it estimates the
/// undisturbed cost, which is what the regression gate wants to track.
/// The rounds loop over the whole suite rather than re-running each
/// bench back-to-back, so the N samples of any one bench are separated
/// by seconds: a load burst that swallows one round rarely survives
/// into the next.
const BENCH_RUNS: usize = 3;

fn kernel_bench(name: &str, f: impl FnOnce() -> u64) -> KernelBench {
    let (wall_secs, events) = time(f);
    KernelBench {
        name: name.to_owned(),
        wall_secs,
        events,
        profile: None,
    }
}

/// Like [`kernel_bench`] for kernels that also report an engine
/// [`SimProfile`](faasim::simcore::SimProfile) line.
fn kernel_bench_profiled(name: &str, f: impl FnOnce() -> (u64, String)) -> KernelBench {
    let (wall_secs, (events, profile)) = time(f);
    KernelBench {
        name: name.to_owned(),
        wall_secs,
        events,
        profile: Some(profile),
    }
}

/// Fold one suite round into the best-of-rounds accumulator: keep the
/// fastest wall-clock per entry (event counts are deterministic and
/// must agree across rounds).
fn merge_min_wall(acc: &mut Vec<KernelBench>, round: Vec<KernelBench>) {
    if acc.is_empty() {
        *acc = round;
        return;
    }
    for (best, sample) in acc.iter_mut().zip(round) {
        assert_eq!(best.name, sample.name, "bench rounds must line up");
        assert_eq!(best.events, sample.events, "{}: nondeterministic events", best.name);
        assert_eq!(
            best.profile, sample.profile,
            "{}: nondeterministic engine profile",
            best.name
        );
        best.wall_secs = best.wall_secs.min(sample.wall_secs);
    }
}

/// One round of the DES-kernel microbenchmarks: each returns the
/// kernel's event count so the score is events/sec, not iterations/sec.
/// [`run_baseline`] runs [`BENCH_RUNS`] rounds and keeps the fastest
/// wall-clock per bench.
pub fn run_kernel_benches() -> Vec<KernelBench> {
    let mut out = base_kernel_benches();
    out.extend(query_scan_kernel_benches(
        10 * 1024 * 1024,   // 10 inline objects of ~10 MB -> a ~100 MB corpus
        10,
        1024 * 1024 * 1024, // 30 synthetic objects of 1 GB -> the 30 GB paper scale
        30,
    ));
    out.push(gateway_admission_bench());
    out.push(trace_replay_bench(false));
    out.push(trace_replay_bench(true));
    out.push(trace_replay_1m_bench());
    out
}

/// The gateway admission hot path in isolation: one million `try_admit`
/// decisions spread over a thousand tenants, with virtual time advanced
/// between batches so the lazy token-bucket refill, the watermark check,
/// and the breaker gate all stay on the measured path. `events` is the
/// decision count; the conservation identity is asserted at the end.
fn gateway_admission_bench() -> KernelBench {
    use faasim_gateway::{Gateway, GatewayConfig, TenantConfig};

    const TENANTS: u64 = 1_000;
    const DECISIONS: u64 = 1_000_000;
    let cloud = faasim::Cloud::new(faasim::CloudProfile::aws_2018().exact(), BENCH_SEED);
    let gw = Gateway::new(
        &cloud.sim,
        &cloud.faas,
        cloud.ledger.clone(),
        cloud.recorder.clone(),
        &cloud.prices,
        GatewayConfig::new(
            (0..TENANTS)
                .map(|t| TenantConfig {
                    rate: 50.0,
                    burst: 100.0,
                    max_concurrent: 64,
                    priority: (t % 4) as u8,
                })
                .collect(),
        ),
    );
    let sim = cloud.sim.clone();
    kernel_bench("gateway/admission_1m_decisions", move || {
        for batch in 0..(DECISIONS / TENANTS) {
            for t in 0..TENANTS {
                if let Ok(admission) = gw.try_admit(t as u32) {
                    admission.complete(true);
                }
            }
            // Advance virtual time so buckets refill mid-benchmark and
            // the admitted/shed mix keeps flipping: 8 decisions per
            // tenant cost 8 tokens but 40 ms only refills 2, so buckets
            // drain from their initial burst into a steady shed regime.
            if batch % 8 == 7 {
                sim.run_until(sim.now() + SimDuration::from_millis(40));
            }
        }
        let stats = gw.stats();
        assert_eq!(stats.totals.offered, DECISIONS);
        assert!(
            stats.totals.conserved(),
            "admission accounting broken: {:?}",
            stats.totals
        );
        assert!(stats.totals.admitted > 0 && stats.totals.shed() > 0);
        DECISIONS
    })
}

/// The 100k-invocation replay kernel config (shared with `make
/// profile`): 256 apps at 500 req/s for four minutes, with or without
/// the gateway tier.
pub fn replay_100k_config(gateway: bool) -> ReplayConfig {
    let mut cfg = ReplayConfig::small();
    cfg.trace.apps = 256;
    cfg.trace.total_rate = 500.0;
    cfg.trace.duration = SimDuration::from_mins(4);
    cfg.trace.max_events = 100_000;
    if !gateway {
        cfg.gateway = None;
    }
    cfg
}

/// The million-invocation replay kernel config (shared with `make
/// profile`): the full paper-scale trace — 3000 apps, 12k functions, 32
/// tenants, gateway tier on — capped at one million arrivals.
pub fn replay_1m_config() -> ReplayConfig {
    let mut cfg = ReplayConfig::paper_scale();
    cfg.trace.max_events = 1_000_000;
    cfg
}

/// Assert what a calm (fault-free) replay must satisfy: through the
/// gateway every failure is an admission shed and admissions conserve;
/// without it nothing may fail at all. Shared by the replay kernels and
/// `make profile`.
pub fn assert_calm_replay(out: &faasim_trace::ReplayOutcome, gateway: bool) {
    if gateway {
        // These traces deliberately saturate the in-flight cap, so the
        // shedder fires: every failure must be a gateway shed (never an
        // execution error) and admissions must conserve.
        assert_eq!(
            out.report.failed, out.report.gw_shed_requests,
            "calm replay may only fail by shedding"
        );
        assert!(out.report.gw_offered >= out.report.invocations);
        assert_eq!(
            out.report.gw_offered,
            out.report.gw_admitted
                + out.report.gw_rate_shed
                + out.report.gw_load_shed
                + out.report.gw_breaker_rejected,
        );
    } else {
        assert_eq!(out.report.failed, 0, "calm replay must not fail");
    }
}

/// A 100k-invocation trace replay end to end: generator, platform,
/// retrying invoker, reaper, sketch, and report — optionally through the
/// multi-tenant gateway tier, so the pair prices the front door's
/// per-request overhead at scale. `events` is the invocation count —
/// deterministic across rounds, so the gate scores replayed invocations
/// per host second.
fn trace_replay_bench(gateway: bool) -> KernelBench {
    let cfg = replay_100k_config(gateway);
    let name = if gateway {
        "trace/replay_100k_invocations_gateway"
    } else {
        "trace/replay_100k_invocations"
    };
    kernel_bench_profiled(name, || {
        let out = replay(&cfg, BENCH_SEED, &|_| {});
        assert_calm_replay(&out, gateway);
        (out.report.invocations, out.report.engine.to_string())
    })
}

/// The acceptance-scale replay kernel: one million invocations of the
/// paper-scale trace through the gateway tier, end to end. This is the
/// scale every future policy shoot-out wants to sweep at, so its
/// events/sec is the headline number the baseline carries.
fn trace_replay_1m_bench() -> KernelBench {
    let cfg = replay_1m_config();
    kernel_bench_profiled("trace/replay_1m_invocations", || {
        let out = replay(&cfg, BENCH_SEED, &|_| {});
        assert_calm_replay(&out, true);
        assert!(
            out.report.invocations >= 1_000_000,
            "paper-scale trace must reach the million-arrival cap, got {}",
            out.report.invocations
        );
        (out.report.invocations, out.report.engine.to_string())
    })
}

fn base_kernel_benches() -> Vec<KernelBench> {
    vec![
        kernel_bench("kernel/sequential_sleeps_100k", || {
            let sim = Sim::new(BENCH_SEED);
            let s = sim.clone();
            sim.block_on(async move {
                for _ in 0..100_000 {
                    s.sleep(SimDuration::from_micros(1)).await;
                }
            });
            sim.stats().events_processed
        }),
        kernel_bench("kernel/concurrent_tasks_10k", || {
            let sim = Sim::new(BENCH_SEED);
            for i in 0..10_000u64 {
                let s = sim.clone();
                sim.spawn(async move {
                    for _ in 0..10 {
                        s.sleep(SimDuration::from_nanos(1 + i % 977)).await;
                    }
                });
            }
            sim.run();
            sim.stats().events_processed
        }),
        kernel_bench("kernel/timer_cancel_churn_50k", || {
            // Timeouts that never fire: every sleep is registered and
            // then canceled — the slab-recycling hot path.
            let sim = Sim::new(BENCH_SEED);
            let s = sim.clone();
            sim.block_on(async move {
                for _ in 0..50_000 {
                    s.timeout(SimDuration::from_secs(3600), s.sleep(SimDuration::from_nanos(10)))
                        .await;
                }
            });
            sim.stats().events_processed
        }),
        kernel_bench("kernel/link_fanin_5k_flows", || {
            // The data-shipping hot path: thousands of staggered flows
            // fanning into one shared link, so every join/leave reshapes
            // the fair share and churns the flow slab.
            let sim = Sim::new(BENCH_SEED);
            let link = FairShareLink::new(&sim, mbps(1000.0));
            for i in 0..5_000u64 {
                let l = link.clone();
                let s = sim.clone();
                sim.spawn(async move {
                    s.sleep(SimDuration::from_micros(i * 13)).await;
                    let cap = if i % 4 == 0 { Some(mbps(10.0)) } else { None };
                    l.transfer(250_000, cap).await;
                });
            }
            sim.run();
            sim.stats().events_processed
        }),
        kernel_bench("kernel/link_fanin_100k_flows", || {
            link_fanin_at_scale(100_000)
        }),
        kernel_bench("kernel/link_fanin_1m_flows", || {
            link_fanin_at_scale(1_000_000)
        }),
    ]
}

/// The virtual-time fair-queueing stress: `n` staggered flows pile onto
/// one 10 Gbps link until every one of them is concurrently in flight,
/// then drain. Transfers are sized so the last joiner arrives long
/// before the first completion — peak concurrency equals `n` — and one
/// flow in sixteen is rate-capped so the class buckets and the
/// water-level crossings stay on the measured path. Returns the event
/// count; the score is events/sec at the target scale the ROADMAP set
/// (100k–1M concurrent flows).
fn link_fanin_at_scale(n: u64) -> u64 {
    let sim = Sim::new(BENCH_SEED);
    let link = FairShareLink::new(&sim, gbps(10.0));
    let done = Rc::new(std::cell::Cell::new(0u64));
    for i in 0..n {
        let l = link.clone();
        let s = sim.clone();
        let d = done.clone();
        sim.spawn(async move {
            s.sleep(SimDuration::from_nanos(i * 500)).await;
            let cap = if i % 16 == 0 { Some(mbps(1.0)) } else { None };
            l.transfer(1_000_000, cap).await;
            d.set(d.get() + 1);
        });
    }
    sim.run();
    assert_eq!(done.get(), n, "all flows must drain");
    assert_eq!(link.active_flows(), 0);
    sim.stats().events_processed
}

/// A minimal blob + query world for the scan benches. Exact profiles so
/// the simulated timeline is deterministic and the wall-clock measures
/// the scan pipeline, not RNG noise.
fn query_scan_world() -> (Sim, BlobStore, QueryService, Host) {
    let sim = Sim::new(BENCH_SEED);
    let recorder = Recorder::new();
    let fabric = Fabric::new(&sim, NetProfile::aws_2018().exact(), recorder.clone());
    let prices = Rc::new(PriceBook::aws_2018());
    let ledger = Ledger::new();
    let blob = BlobStore::new(
        &sim,
        BlobProfile::aws_2018().exact(),
        prices.clone(),
        ledger.clone(),
        recorder.clone(),
    );
    blob.create_bucket("logs");
    let query = QueryService::new(
        &sim,
        &fabric,
        &blob,
        QueryProfile::aws_2018().exact(),
        prices,
        ledger,
        recorder,
    );
    let client = fabric.add_host(1, NicConfig::simple(gbps(1.0)));
    (sim, blob, query, client)
}

/// ~`bytes` of varied access-log lines (whole lines only, so the object
/// may run a few bytes over).
fn inline_log_object(bytes: usize, salt: u64) -> Vec<u8> {
    let mut out = Vec::with_capacity(bytes + 64);
    let mut i = salt;
    while out.len() < bytes {
        let line = format!("GET /p/{} {} {}\n", i % 997, 200 + (i % 4) * 101, i % 31);
        out.extend_from_slice(line.as_bytes());
        i += 1;
    }
    out
}

/// Host-side replica of the pre-streaming scan: materialize every
/// object, then one eager pass that builds the full distinct-line
/// `BTreeMap<String, u64>` — a `String` allocation per line visit —
/// exactly like the old `Accumulator` did regardless of the aggregate.
/// Returns the line count so its `events` are comparable 1:1 with the
/// streaming bench.
fn eager_reference_scan(objects: &[Vec<u8>]) -> u64 {
    let mut lines: std::collections::BTreeMap<String, u64> = std::collections::BTreeMap::new();
    for obj in objects {
        for line in obj.split(|&b| b == b'\n') {
            let line = match line.last() {
                Some(b'\r') => &line[..line.len() - 1],
                _ => line,
            };
            if line.is_empty() {
                continue;
            }
            *lines
                .entry(String::from_utf8_lossy(line).into_owned())
                .or_default() += 1;
        }
    }
    lines.values().sum()
}

/// The query-scan benches. `events` is the number of log lines the
/// query counted, so `events/sec` is a line-scan rate and the
/// streaming-vs-eager pair compares directly (same corpus, same count):
///
/// - `query_scan_inline_100mb`: the streaming pipeline over real inline
///   bytes — ranged reads, chunked folds, zero-allocation `CountAll`;
/// - `query_scan_inline_100mb_eager`: the pre-streaming reference scan
///   over the identical corpus (fetch-all + distinct-line histogram);
/// - `query_scan_synthetic_30gb`: the paper-scale corpus as symbolic
///   `Synthetic` payloads — the scan folds per-pattern results scaled by
///   the repeat count, so 30 GB is queried without materializing it.
fn query_scan_kernel_benches(
    inline_object_bytes: usize,
    inline_objects: usize,
    synth_object_bytes: u64,
    synth_objects: usize,
) -> Vec<KernelBench> {
    // The corpus is shared by both inline arms and built outside the
    // timed sections.
    let corpus: Vec<Vec<u8>> = (0..inline_objects)
        .map(|i| inline_log_object(inline_object_bytes, i as u64 * 1_000_003))
        .collect();

    let (sim, blob, query, client) = query_scan_world();
    for (i, obj) in corpus.iter().enumerate() {
        let blob = blob.clone();
        let client = client.clone();
        let body = Bytes::from(obj.clone());
        let key = format!("obj-{i:03}");
        sim.block_on(async move {
            blob.put(&client, "logs", &key, body).await.expect("put");
        });
    }
    let streaming = kernel_bench("kernel/query_scan_inline_100mb", || {
        let q = query.clone();
        let c = client.clone();
        let out = sim
            .block_on(async move {
                q.run(&c, QuerySpec::new("logs", "obj-", Aggregate::CountAll))
                    .await
            })
            .expect("query");
        out.rows[0].1 as u64
    });

    let eager = kernel_bench("kernel/query_scan_inline_100mb_eager", || {
        eager_reference_scan(&corpus)
    });
    assert_eq!(
        streaming.events, eager.events,
        "streaming and eager scans must count the same lines"
    );

    let (sim, blob, query, client) = query_scan_world();
    let line = "GET /assets/app.js 200\n";
    let reps = synth_object_bytes / line.len() as u64;
    for i in 0..synth_objects {
        let blob = blob.clone();
        let client = client.clone();
        let body = Payload::synthetic(line, reps);
        let key = format!("part-{i:04}");
        sim.block_on(async move {
            blob.put(&client, "logs", &key, body).await.expect("put");
        });
    }
    let synthetic = kernel_bench("kernel/query_scan_synthetic_30gb", || {
        let q = query.clone();
        let c = client.clone();
        let out = sim
            .block_on(async move {
                q.run(&c, QuerySpec::new("logs", "part-", Aggregate::CountAll))
                    .await
            })
            .expect("query");
        out.rows[0].1 as u64
    });

    vec![streaming, eager, synthetic]
}

/// One round of wall-clocking each experiment at `quick()` params;
/// [`run_baseline`] keeps the best of [`BENCH_RUNS`] rounds.
pub fn run_experiment_benches() -> Vec<ExperimentBench> {
    fn one(name: &str, f: impl FnOnce()) -> ExperimentBench {
        let (wall_secs, ()) = time(f);
        ExperimentBench {
            name: name.to_owned(),
            wall_secs,
        }
    }
    vec![
        one("table1", || {
            std::hint::black_box(table1::run(&table1::Table1Params::quick(), BENCH_SEED));
        }),
        one("cold_starts", || {
            std::hint::black_box(cold_starts::run(
                &cold_starts::ColdStartParams::quick(),
                BENCH_SEED,
            ));
        }),
        one("bandwidth", || {
            std::hint::black_box(bandwidth::run(
                &bandwidth::BandwidthParams::quick(),
                BENCH_SEED,
            ));
        }),
        one("data_shipping", || {
            std::hint::black_box(data_shipping::run(
                &data_shipping::DataShippingParams::quick(),
                BENCH_SEED,
            ));
        }),
        // The default sweep ends at the 30 GB paper-scale point where the
        // 15-minute guillotine forces execution chaining. Symbolic
        // payloads are what make this affordable: the acceptance bar is
        // < 0.8 s wall for the whole five-point sweep.
        one("data_shipping_paper_scale", || {
            std::hint::black_box(data_shipping::run(
                &data_shipping::DataShippingParams::default(),
                BENCH_SEED,
            ));
        }),
        one("training", || {
            std::hint::black_box(training::run(&training::TrainingParams::quick(), BENCH_SEED));
        }),
        one("prediction", || {
            std::hint::black_box(prediction::run(
                &prediction::PredictionParams::quick(),
                BENCH_SEED,
            ));
        }),
        one("election", || {
            std::hint::black_box(election::run(&election::ElectionParams::quick(), BENCH_SEED));
        }),
        one("agents_cmp", || {
            std::hint::black_box(agents_cmp::run(
                &agents_cmp::AgentsCmpParams::quick(),
                BENCH_SEED,
            ));
        }),
    ]
}

/// Sweep `seeds` seeds of the chaotic CRDT-sync scenario serially and
/// through [`ParallelSweep`], asserting the reports are byte-identical
/// before reporting throughput.
pub fn run_sweep_bench(seeds: usize) -> SweepBench {
    let scenario = CrdtSync::chaotic();
    let seed_list: Vec<u64> = (1..=seeds as u64).collect();
    let mut serial_secs = f64::INFINITY;
    let mut parallel_secs = f64::INFINITY;
    let pool = ParallelSweep::auto();
    // Best-of-BENCH_RUNS on each arm, like the kernel benches — the
    // replay-identity assertion runs every round.
    for _ in 0..BENCH_RUNS {
        let (serial, serial_report) = time(|| sweep(&scenario, &seed_list));
        let (parallel, parallel_report) = time(|| pool.sweep(&scenario, &seed_list));
        assert_eq!(
            serial_report, parallel_report,
            "parallel sweep must be byte-identical to serial"
        );
        serial_secs = serial_secs.min(serial);
        parallel_secs = parallel_secs.min(parallel);
    }
    SweepBench {
        seeds,
        cores: ParallelSweep::available_cores(),
        workers: pool.workers(),
        serial_secs,
        parallel_secs,
    }
}

/// Run the full baseline: kernel, experiments, and a `seeds`-seed sweep.
/// Kernel and experiment suites run [`BENCH_RUNS`] interleaved rounds,
/// keeping each entry's fastest wall-clock (see [`BENCH_RUNS`]).
pub fn run_baseline(seeds: usize) -> Baseline {
    let mut kernel = Vec::new();
    let mut experiments: Vec<ExperimentBench> = Vec::new();
    for _ in 0..BENCH_RUNS {
        merge_min_wall(&mut kernel, run_kernel_benches());
        let round = run_experiment_benches();
        if experiments.is_empty() {
            experiments = round;
        } else {
            for (best, sample) in experiments.iter_mut().zip(round) {
                assert_eq!(best.name, sample.name, "experiment rounds must line up");
                best.wall_secs = best.wall_secs.min(sample.wall_secs);
            }
        }
    }
    Baseline {
        cores: ParallelSweep::available_cores(),
        kernel,
        experiments,
        sweep: run_sweep_bench(seeds),
    }
}

fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v:.6}")
    } else {
        "null".to_owned()
    }
}

impl Baseline {
    /// Serialize to the `BENCH_baseline.json` schema (no external JSON
    /// dependency — the build is offline).
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        out.push_str("  \"schema\": \"faasim-bench/wallclock/1\",\n");
        writeln!(out, "  \"cores\": {},", self.cores).unwrap();
        out.push_str("  \"kernel\": [\n");
        for (i, k) in self.kernel.iter().enumerate() {
            let comma = if i + 1 < self.kernel.len() { "," } else { "" };
            writeln!(
                out,
                "    {{\"name\": \"{}\", \"wall_secs\": {}, \"events\": {}, \"events_per_sec\": {}}}{comma}",
                k.name,
                json_f64(k.wall_secs),
                k.events,
                json_f64(k.events_per_sec()),
            )
            .unwrap();
        }
        out.push_str("  ],\n");
        out.push_str("  \"experiments\": [\n");
        for (i, e) in self.experiments.iter().enumerate() {
            let comma = if i + 1 < self.experiments.len() { "," } else { "" };
            writeln!(
                out,
                "    {{\"name\": \"{}\", \"wall_secs\": {}}}{comma}",
                e.name,
                json_f64(e.wall_secs),
            )
            .unwrap();
        }
        out.push_str("  ],\n");
        let s = &self.sweep;
        out.push_str("  \"sweep\": {\n");
        writeln!(out, "    \"scenario\": \"crdt-sync/chaotic\",").unwrap();
        writeln!(out, "    \"seeds\": {},", s.seeds).unwrap();
        writeln!(out, "    \"cores\": {},", s.cores).unwrap();
        writeln!(out, "    \"workers\": {},", s.workers).unwrap();
        writeln!(out, "    \"serial_secs\": {},", json_f64(s.serial_secs)).unwrap();
        writeln!(out, "    \"parallel_secs\": {},", json_f64(s.parallel_secs)).unwrap();
        writeln!(
            out,
            "    \"serial_seeds_per_sec\": {},",
            json_f64(s.serial_seeds_per_sec())
        )
        .unwrap();
        writeln!(
            out,
            "    \"parallel_seeds_per_sec\": {},",
            json_f64(s.parallel_seeds_per_sec())
        )
        .unwrap();
        writeln!(out, "    \"speedup\": {}", json_f64(s.speedup())).unwrap();
        out.push_str("  }\n");
        out.push_str("}\n");
        out
    }

    /// Human-readable table, printed by the bench target.
    pub fn render(&self) -> String {
        let mut out = String::new();
        writeln!(out, "wall-clock baseline ({} core(s))", self.cores).unwrap();
        writeln!(out).unwrap();
        writeln!(
            out,
            "{:<34} {:>10} {:>12} {:>14}",
            "kernel bench", "wall (s)", "events", "events/sec"
        )
        .unwrap();
        for k in &self.kernel {
            writeln!(
                out,
                "{:<34} {:>10.3} {:>12} {:>14.0}",
                k.name,
                k.wall_secs,
                k.events,
                k.events_per_sec()
            )
            .unwrap();
            if let Some(profile) = &k.profile {
                writeln!(out, "    engine: {profile}").unwrap();
            }
        }
        writeln!(out).unwrap();
        writeln!(out, "{:<34} {:>10}", "experiment (quick)", "wall (s)").unwrap();
        for e in &self.experiments {
            writeln!(out, "{:<34} {:>10.3}", e.name, e.wall_secs).unwrap();
        }
        writeln!(out).unwrap();
        let s = &self.sweep;
        writeln!(
            out,
            "sweep: {} seeds  serial {:.3}s ({:.1} seeds/s)  parallel[{} workers / {} cores] {:.3}s ({:.1} seeds/s)  speedup {:.2}x",
            s.seeds,
            s.serial_secs,
            s.serial_seeds_per_sec(),
            s.workers,
            s.cores,
            s.parallel_secs,
            s.parallel_seeds_per_sec(),
            s.speedup()
        )
        .unwrap();
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn baseline_json_is_well_formed() {
        // A tiny baseline (2-seed sweep) to keep the test fast; the JSON
        // must contain every section and balanced braces/brackets.
        let b = Baseline {
            cores: 4,
            kernel: vec![KernelBench {
                name: "kernel/x".into(),
                wall_secs: 0.5,
                events: 1000,
                profile: None,
            }],
            experiments: vec![ExperimentBench {
                name: "table1".into(),
                wall_secs: 0.25,
            }],
            sweep: SweepBench {
                seeds: 2,
                cores: 4,
                workers: 4,
                serial_secs: 1.0,
                parallel_secs: 0.5,
            },
        };
        let json = b.to_json();
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
        for key in [
            "\"schema\"",
            "\"cores\"",
            "\"kernel\"",
            "\"events_per_sec\"",
            "\"experiments\"",
            "\"sweep\"",
            "\"speedup\"",
        ] {
            assert!(json.contains(key), "missing {key} in {json}");
        }
        assert!(json.contains("\"speedup\": 2.000000"));
        let table = b.render();
        assert!(table.contains("speedup 2.00x"), "{table}");
    }

    #[test]
    fn kernel_events_per_sec_handles_zero_wall() {
        let k = KernelBench {
            name: "kernel/x".into(),
            wall_secs: 0.0,
            events: 10,
            profile: None,
        };
        assert_eq!(k.events_per_sec(), 0.0);
    }

    #[test]
    fn query_scan_benches_smoke() {
        // The real entries scan 100 MB / 30 GB; the smoke run shrinks to
        // ~200 KB inline and 2x1 MB synthetic but exercises the exact
        // same pipeline, reference scan, and line-count cross-check.
        let benches = query_scan_kernel_benches(100 * 1024, 2, 1024 * 1024, 2);
        assert_eq!(benches.len(), 3);
        let by_name: std::collections::BTreeMap<&str, &KernelBench> =
            benches.iter().map(|b| (b.name.as_str(), b)).collect();
        let streaming = by_name["kernel/query_scan_inline_100mb"];
        let eager = by_name["kernel/query_scan_inline_100mb_eager"];
        let synth = by_name["kernel/query_scan_synthetic_30gb"];
        // Identical corpus -> identical line counts (also asserted
        // inside the harness).
        assert_eq!(streaming.events, eager.events);
        assert!(streaming.events > 1_000);
        // 2 objects x 1 MB of the 23-byte log line.
        assert_eq!(synth.events, 2 * (1024 * 1024 / 23));
    }

    #[test]
    fn gateway_admission_bench_smoke() {
        // The full kernel: one million decisions over a thousand
        // tenants. The harness itself asserts conservation and that both
        // admitted and shed outcomes occurred; here we just check the
        // event accounting.
        let b = gateway_admission_bench();
        assert_eq!(b.name, "gateway/admission_1m_decisions");
        assert_eq!(b.events, 1_000_000);
    }

    #[test]
    fn link_fanin_100k_smoke() {
        // CI gate for the virtual-time fair-queueing scale target: 100k
        // concurrent flows (every sixteenth rate-capped) must fully
        // drain — the helper asserts completion and an empty link — and
        // the event count must stay linear in the flow count, not
        // quadratic as the pre-rewrite O(n)-rescan allocator was.
        let events = link_fanin_at_scale(100_000);
        assert!(
            (200_000..2_000_000).contains(&events),
            "100k-flow fan-in event count off the linear envelope: {events}"
        );
    }

    #[test]
    fn sweep_bench_runs_and_matches_serial() {
        // Smoke: 3 seeds through the real scenario, serial vs parallel.
        let b = run_sweep_bench(3);
        assert_eq!(b.seeds, 3);
        assert!(b.serial_secs > 0.0 && b.parallel_secs > 0.0);
    }
}
