//! `make bench-compare`: the regression gate over the wall-clock
//! baseline.
//!
//! Re-runs the [`crate::wallclock`] suite and diffs it against the
//! committed `BENCH_baseline.json`: kernel benches on **events/sec**,
//! experiments on **wall-clock ratio**, and the chaos sweep on
//! **seeds/sec** (per-seed normalized, so a 4-seed CI smoke gates
//! against a 64-seed baseline; the parallel arm only when the baseline
//! machine had enough cores for its number to mean anything and the
//! worker count matches the baseline's). Any entry more than the
//! tolerance
//! (default 25%) slower than the baseline fails the gate with a nonzero
//! exit, so a PR that quietly regresses the simulator's throughput
//! turns red in CI.
//!
//! The baseline file is our own schema (`faasim-bench/wallclock/1`) and
//! the build is offline, so parsing is a small hand-rolled extractor
//! rather than an external JSON dependency.

use std::fmt::Write as _;

use crate::wallclock::Baseline;

/// The subset of `BENCH_baseline.json` the gate compares against.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct BaselineNumbers {
    /// Kernel bench name → events per host second.
    pub kernel: Vec<(String, f64)>,
    /// Experiment name → host seconds.
    pub experiments: Vec<(String, f64)>,
    /// Chaos-sweep throughput, if the baseline recorded one.
    pub sweep: Option<SweepNumbers>,
}

/// The baseline's chaos-sweep arm.
#[derive(Clone, Debug, PartialEq)]
pub struct SweepNumbers {
    /// Seeds the baseline swept.
    pub seeds: f64,
    /// Host cores the baseline machine had (0 when the baseline predates
    /// recording it). A parallel arm measured on fewer than
    /// [`MIN_PARALLEL_CORES`] cores is contention noise, not a speedup.
    pub cores: f64,
    /// Worker threads its parallel arm used.
    pub workers: f64,
    /// Host seconds, serial arm.
    pub serial_secs: f64,
    /// Host seconds, parallel arm.
    pub parallel_secs: f64,
}

/// One entry that breached the tolerance.
#[derive(Clone, Debug)]
pub struct Regression {
    /// Bench or experiment name.
    pub name: String,
    /// Which metric regressed (`events/sec` or `wall_secs`).
    pub metric: &'static str,
    /// Baseline value.
    pub baseline: f64,
    /// Freshly measured value.
    pub current: f64,
}

/// Extract a `"key": "string"` field from a flat JSON object body.
fn field_str(obj: &str, key: &str) -> Option<String> {
    let pat = format!("\"{key}\": \"");
    let start = obj.find(&pat)? + pat.len();
    let end = obj[start..].find('"')? + start;
    Some(obj[start..end].to_owned())
}

/// Extract a `"key": <number>` field from a flat JSON object body.
fn field_f64(obj: &str, key: &str) -> Option<f64> {
    let pat = format!("\"{key}\": ");
    let start = obj.find(&pat)? + pat.len();
    let rest = &obj[start..];
    let end = rest
        .find(|c: char| !matches!(c, '0'..='9' | '.' | '-' | '+' | 'e' | 'E'))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// The body of the `"key": [ ... ]` array in `json`.
fn array_section<'a>(json: &'a str, key: &str) -> Option<&'a str> {
    let pat = format!("\"{key}\": [");
    let start = json.find(&pat)? + pat.len();
    let end = json[start..].find(']')? + start;
    Some(&json[start..end])
}

/// The body of the `"key": { ... }` object in `json`. Scoping matters:
/// keys like `"cores"` appear both top-level and inside `"sweep"`, so
/// sweep fields must be extracted from this section, never the whole
/// file.
fn object_section<'a>(json: &'a str, key: &str) -> Option<&'a str> {
    let pat = format!("\"{key}\": {{");
    let start = json.find(&pat)? + pat.len();
    let end = json[start..].find('}')? + start;
    Some(&json[start..end])
}

/// Split an array body into the `{...}` object bodies it contains.
fn objects(section: &str) -> Vec<&str> {
    let mut out = Vec::new();
    let mut rest = section;
    while let Some(open) = rest.find('{') {
        let Some(close) = rest[open..].find('}') else {
            break;
        };
        out.push(&rest[open + 1..open + close]);
        rest = &rest[open + close + 1..];
    }
    out
}

/// Parse the committed baseline. Returns `None` if the schema line or a
/// required section is missing — regenerate with `make bench`.
pub fn parse_baseline(json: &str) -> Option<BaselineNumbers> {
    if !json.contains("\"schema\": \"faasim-bench/wallclock/1\"") {
        return None;
    }
    let mut numbers = BaselineNumbers::default();
    for obj in objects(array_section(json, "kernel")?) {
        numbers
            .kernel
            .push((field_str(obj, "name")?, field_f64(obj, "events_per_sec")?));
    }
    for obj in objects(array_section(json, "experiments")?) {
        numbers
            .experiments
            .push((field_str(obj, "name")?, field_f64(obj, "wall_secs")?));
    }
    // Older baselines may predate sweep gating: absent numbers simply
    // leave the sweep ungated rather than rejecting the file.
    numbers.sweep = object_section(json, "sweep").and_then(|obj| {
        Some(SweepNumbers {
            seeds: field_f64(obj, "seeds")?,
            // Absent in pre-cores baselines: 0 means "unknown", which
            // (like any count below MIN_PARALLEL_CORES) skips the
            // parallel-arm gate.
            cores: field_f64(obj, "cores").unwrap_or(0.0),
            workers: field_f64(obj, "workers")?,
            serial_secs: field_f64(obj, "serial_secs")?,
            parallel_secs: field_f64(obj, "parallel_secs")?,
        })
    });
    Some(numbers)
}

/// Experiments faster than this in both runs are never flagged: at
/// sub-10 ms scale the measurement is scheduler noise, not a trend.
const WALL_NOISE_FLOOR_SECS: f64 = 0.010;

/// A sweep arm faster than this (in either run) is never gated: a
/// handful of smoke seeds finishes in milliseconds, where per-seed
/// normalization amplifies startup noise instead of measuring a trend.
const SWEEP_NOISE_FLOOR_SECS: f64 = 0.050;

/// Minimum baseline core count for the parallel-sweep arm to be gated.
/// A baseline recorded on a 1- or 2-core box shows a ~1.0x (or worse)
/// parallel "speedup" that is pool overhead and scheduler contention,
/// not a throughput trend worth holding future runs to.
const MIN_PARALLEL_CORES: f64 = 4.0;

/// Diff `current` against `baseline` with a relative `tolerance`
/// (0.25 = fail beyond 25% slower). Returns the human-readable report
/// and every regression found. Entries present on only one side are
/// reported but never fail the gate — renames and new benches are not
/// regressions.
pub fn compare(
    baseline: &BaselineNumbers,
    current: &Baseline,
    tolerance: f64,
) -> (String, Vec<Regression>) {
    let mut out = String::new();
    let mut regressions = Vec::new();
    let lookup = |side: &[(String, f64)], name: &str| -> Option<f64> {
        side.iter().find(|(n, _)| n == name).map(|&(_, v)| v)
    };

    writeln!(
        out,
        "{:<34} {:>14} {:>14} {:>8}  verdict",
        "kernel bench", "base ev/s", "now ev/s", "ratio"
    )
    .unwrap();
    for k in &current.kernel {
        let now = k.events_per_sec();
        let Some(base) = lookup(&baseline.kernel, &k.name) else {
            writeln!(out, "{:<34} {:>14} {now:>14.0} {:>8}  new", k.name, "-", "-").unwrap();
            continue;
        };
        // Kernel benches regress when throughput drops.
        let ratio = now / base.max(1e-9);
        let bad = ratio < 1.0 - tolerance;
        writeln!(
            out,
            "{:<34} {base:>14.0} {now:>14.0} {ratio:>7.2}x  {}",
            k.name,
            if bad { "REGRESSION" } else { "ok" }
        )
        .unwrap();
        if bad {
            regressions.push(Regression {
                name: k.name.clone(),
                metric: "events/sec",
                baseline: base,
                current: now,
            });
        }
    }

    writeln!(out).unwrap();
    writeln!(
        out,
        "{:<34} {:>14} {:>14} {:>8}  verdict",
        "experiment", "base wall(s)", "now wall(s)", "ratio"
    )
    .unwrap();
    for e in &current.experiments {
        let now = e.wall_secs;
        let Some(base) = lookup(&baseline.experiments, &e.name) else {
            writeln!(out, "{:<34} {:>14} {now:>14.3} {:>8}  new", e.name, "-", "-").unwrap();
            continue;
        };
        // Experiments regress when wall-clock grows.
        let ratio = now / base.max(1e-9);
        let bad =
            ratio > 1.0 + tolerance && (now > WALL_NOISE_FLOOR_SECS || base > WALL_NOISE_FLOOR_SECS);
        writeln!(
            out,
            "{:<34} {base:>14.3} {now:>14.3} {ratio:>7.2}x  {}",
            e.name,
            if bad { "REGRESSION" } else { "ok" }
        )
        .unwrap();
        if bad {
            regressions.push(Regression {
                name: e.name.clone(),
                metric: "wall_secs",
                baseline: base,
                current: now,
            });
        }
    }
    for (name, _) in &baseline.experiments {
        if !current.experiments.iter().any(|e| &e.name == name) {
            writeln!(out, "{name:<34} dropped from suite (not a failure)").unwrap();
        }
    }

    writeln!(out).unwrap();
    let s = &current.sweep;
    match &baseline.sweep {
        None => {
            writeln!(out, "sweep: baseline has no sweep numbers (not gated)").unwrap();
        }
        Some(b) => {
            // Seeds/sec is already per-seed normalized: the serial arm
            // scales linearly in seed count, so a 4-seed smoke gates
            // cleanly against a 64-seed baseline.
            let base_sps = b.seeds / b.serial_secs.max(1e-9);
            let now_sps = s.serial_seeds_per_sec();
            let ratio = now_sps / base_sps.max(1e-9);
            let measurable =
                b.serial_secs > SWEEP_NOISE_FLOOR_SECS && s.serial_secs > SWEEP_NOISE_FLOOR_SECS;
            let bad = measurable && ratio < 1.0 - tolerance;
            writeln!(
                out,
                "{:<34} {base_sps:>14.1} {now_sps:>14.1} {ratio:>7.2}x  {}",
                format!("sweep/serial ({} seeds)", s.seeds),
                if bad {
                    "REGRESSION"
                } else if measurable {
                    "ok"
                } else {
                    "too fast to gate"
                }
            )
            .unwrap();
            if bad {
                regressions.push(Regression {
                    name: "sweep/serial".to_owned(),
                    metric: "seeds/sec",
                    baseline: base_sps,
                    current: now_sps,
                });
            }
            // The parallel arm's fan-out overhead depends on the pool
            // size, which does not normalize away: gate it only when
            // the baseline machine had enough cores for its parallel
            // number to mean anything, and this machine used the same
            // worker count as the baseline.
            if b.cores < MIN_PARALLEL_CORES {
                writeln!(
                    out,
                    "sweep/parallel: baseline measured on {} core(s) < {} — \
                     parallel ratio is contention noise, not gated",
                    b.cores as u64, MIN_PARALLEL_CORES as u64
                )
                .unwrap();
            } else if (s.workers as f64 - b.workers).abs() < 0.5 {
                let base_psps = b.seeds / b.parallel_secs.max(1e-9);
                let now_psps = s.parallel_seeds_per_sec();
                let ratio = now_psps / base_psps.max(1e-9);
                let measurable = b.parallel_secs > SWEEP_NOISE_FLOOR_SECS
                    && s.parallel_secs > SWEEP_NOISE_FLOOR_SECS;
                let bad = measurable && ratio < 1.0 - tolerance;
                writeln!(
                    out,
                    "{:<34} {base_psps:>14.1} {now_psps:>14.1} {ratio:>7.2}x  {}",
                    format!("sweep/parallel ({} workers)", s.workers),
                    if bad {
                        "REGRESSION"
                    } else if measurable {
                        "ok"
                    } else {
                        "too fast to gate"
                    }
                )
                .unwrap();
                if bad {
                    regressions.push(Regression {
                        name: "sweep/parallel".to_owned(),
                        metric: "seeds/sec",
                        baseline: base_psps,
                        current: now_psps,
                    });
                }
            } else {
                writeln!(
                    out,
                    "sweep/parallel: {} workers vs baseline {} (not gated)",
                    s.workers, b.workers
                )
                .unwrap();
            }
        }
    }

    writeln!(out).unwrap();
    if regressions.is_empty() {
        writeln!(
            out,
            "bench-compare: OK — no entry more than {:.0}% slower than baseline",
            tolerance * 100.0
        )
        .unwrap();
    } else {
        writeln!(
            out,
            "bench-compare: FAIL — {} entr{} beyond the {:.0}% tolerance",
            regressions.len(),
            if regressions.len() == 1 { "y" } else { "ies" },
            tolerance * 100.0
        )
        .unwrap();
    }
    (out, regressions)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wallclock::{ExperimentBench, KernelBench, SweepBench};

    fn sample_current() -> Baseline {
        Baseline {
            cores: 1,
            kernel: vec![KernelBench {
                name: "kernel/x".into(),
                wall_secs: 1.0,
                events: 1_000_000,
                profile: None,
            }],
            experiments: vec![
                ExperimentBench {
                    name: "table1".into(),
                    wall_secs: 0.5,
                },
                ExperimentBench {
                    name: "data_shipping_paper_scale".into(),
                    wall_secs: 0.3,
                },
            ],
            sweep: SweepBench {
                seeds: 4,
                cores: 1,
                workers: 1,
                serial_secs: 1.0,
                parallel_secs: 1.0,
            },
        }
    }

    #[test]
    fn roundtrip_through_json_is_clean() {
        let current = sample_current();
        let parsed = parse_baseline(&current.to_json()).expect("parse own output");
        assert_eq!(parsed.kernel, vec![("kernel/x".to_owned(), 1_000_000.0)]);
        assert_eq!(parsed.experiments.len(), 2);
        // Comparing a run against its own numbers never regresses.
        let (report, regressions) = compare(&parsed, &current, 0.25);
        assert!(regressions.is_empty(), "{report}");
        assert!(report.contains("bench-compare: OK"));
    }

    #[test]
    fn slow_kernel_and_experiment_fail_the_gate() {
        let current = sample_current();
        let mut base = parse_baseline(&current.to_json()).unwrap();
        base.kernel[0].1 = 2_000_000.0; // we now run at half that: fail
        base.experiments[0].1 = 0.2; // we now take 2.5x as long: fail
        let (report, regressions) = compare(&base, &current, 0.25);
        assert_eq!(regressions.len(), 2, "{report}");
        assert_eq!(regressions[0].metric, "events/sec");
        assert_eq!(regressions[1].metric, "wall_secs");
        assert!(report.contains("bench-compare: FAIL"));
    }

    #[test]
    fn tolerance_and_noise_floor_are_respected() {
        let current = sample_current();
        let mut base = parse_baseline(&current.to_json()).unwrap();
        // 20% slower than baseline: within the 25% tolerance.
        base.experiments[0].1 = current.experiments[0].wall_secs / 1.2;
        let (_, regressions) = compare(&base, &current, 0.25);
        assert!(regressions.is_empty());
        // Sub-10ms entries never regress, whatever the ratio.
        let mut tiny = sample_current();
        tiny.experiments[0].wall_secs = 0.009;
        base.experiments[0].1 = 0.001;
        let (_, regressions) = compare(&base, &tiny, 0.25);
        assert!(regressions.is_empty());
    }

    #[test]
    fn renames_and_new_entries_do_not_fail() {
        let current = sample_current();
        let mut base = parse_baseline(&current.to_json()).unwrap();
        base.experiments[0].0 = "renamed_away".into();
        let (report, regressions) = compare(&base, &current, 0.25);
        assert!(regressions.is_empty(), "{report}");
        assert!(report.contains("new"));
        assert!(report.contains("dropped from suite"));
    }

    #[test]
    fn sweep_gate_normalizes_across_seed_counts() {
        // Current run: 4 seeds in 1 s = 4 seeds/s on both arms.
        let current = sample_current();
        let mut base = parse_baseline(&current.to_json()).unwrap();
        // Baseline took 64 seeds in 16 s — the same 4 seeds/s — so a
        // 16x smaller smoke run still gates clean.
        base.sweep = Some(SweepNumbers {
            seeds: 64.0,
            cores: 8.0,
            workers: 1.0,
            serial_secs: 16.0,
            parallel_secs: 16.0,
        });
        let (report, regressions) = compare(&base, &current, 0.25);
        assert!(regressions.is_empty(), "{report}");
        // Baseline at 8 seeds/s: we now run at half that rate — fail,
        // on both arms (workers match).
        base.sweep = Some(SweepNumbers {
            seeds: 64.0,
            cores: 8.0,
            workers: 1.0,
            serial_secs: 8.0,
            parallel_secs: 8.0,
        });
        let (report, regressions) = compare(&base, &current, 0.25);
        assert_eq!(regressions.len(), 2, "{report}");
        assert_eq!(regressions[0].name, "sweep/serial");
        assert_eq!(regressions[0].metric, "seeds/sec");
        assert_eq!(regressions[1].name, "sweep/parallel");
        assert!(report.contains("bench-compare: FAIL"));
    }

    #[test]
    fn sweep_parallel_arm_gated_only_with_matching_workers() {
        let current = sample_current(); // parallel arm: 1 worker
        let mut base = parse_baseline(&current.to_json()).unwrap();
        base.sweep = Some(SweepNumbers {
            seeds: 64.0,
            cores: 8.0,
            workers: 8.0, // baseline machine fanned out 8-wide
            serial_secs: 16.0,
            parallel_secs: 2.0, // 32 seeds/s we could never match 1-wide
        });
        let (report, regressions) = compare(&base, &current, 0.25);
        assert!(regressions.is_empty(), "{report}");
        assert!(report.contains("not gated"), "{report}");
    }

    #[test]
    fn sweep_parallel_arm_skipped_when_baseline_cores_low() {
        let current = sample_current();
        let mut base = parse_baseline(&current.to_json()).unwrap();
        // Baseline's parallel arm was measured on a 1-core box: even an
        // arbitrarily bad parallel ratio must not gate.
        base.sweep = Some(SweepNumbers {
            seeds: 64.0,
            cores: 1.0,
            workers: 1.0,
            serial_secs: 16.0,
            parallel_secs: 0.5, // 128 seeds/s "speedup" no 1-wide run matches
        });
        let (report, regressions) = compare(&base, &current, 0.25);
        assert!(regressions.is_empty(), "{report}");
        assert!(
            report.contains("parallel ratio is contention noise, not gated"),
            "{report}"
        );
        // The serial arm is still gated: half its 4 seeds/s rate fails.
        base.sweep.as_mut().unwrap().serial_secs = 8.0;
        let (report, regressions) = compare(&base, &current, 0.25);
        assert_eq!(regressions.len(), 1, "{report}");
        assert_eq!(regressions[0].name, "sweep/serial");
    }

    #[test]
    fn sweep_noise_floor_and_missing_numbers_skip_the_gate() {
        // A millisecond-scale smoke sweep is never gated.
        let mut current = sample_current();
        current.sweep.serial_secs = 0.004;
        current.sweep.parallel_secs = 0.004;
        let mut base = parse_baseline(&sample_current().to_json()).unwrap();
        base.sweep = Some(SweepNumbers {
            seeds: 64.0,
            cores: 8.0,
            workers: 1.0,
            serial_secs: 1.0, // 64 seeds/s; we measure 1000/s anyway
            parallel_secs: 1.0,
        });
        let (report, regressions) = compare(&base, &current, 0.25);
        assert!(regressions.is_empty(), "{report}");
        assert!(report.contains("too fast to gate"), "{report}");
        // A pre-sweep-gate baseline leaves the sweep ungated.
        base.sweep = None;
        let (report, regressions) = compare(&base, &current, 0.25);
        assert!(regressions.is_empty(), "{report}");
        assert!(report.contains("no sweep numbers"), "{report}");
    }

    #[test]
    fn malformed_baselines_are_rejected() {
        assert!(parse_baseline("").is_none());
        assert!(parse_baseline("{\"schema\": \"other/2\"}").is_none());
        let valid = sample_current().to_json();
        assert!(parse_baseline(&valid.replace("\"kernel\"", "\"k\"")).is_none());
    }
}
