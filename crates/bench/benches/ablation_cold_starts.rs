//! A6 — cold-start fraction and latency vs request inter-arrival time,
//! under the 2018 sandbox and under Firecracker (§3 constraint (1) and
//! footnote 5).

use faasim::experiments::cold_starts::{self, ColdStartParams};
use faasim_bench::{section, BENCH_SEED};

fn main() {
    section("Ablation: cold starts vs request inter-arrival time");
    let base = cold_starts::run(&ColdStartParams::default(), BENCH_SEED);
    println!("{}", base.render("2018 Lambda (5 s sandbox start, 10 min keep-alive)"));

    let fc = cold_starts::run(
        &ColdStartParams {
            firecracker: true,
            ..ColdStartParams::default()
        },
        BENCH_SEED,
    );
    println!("{}", fc.render("Firecracker (125 ms microVM start, same keep-alive)"));

    let slo = cold_starts::run(
        &ColdStartParams {
            provisioned: 1,
            ..ColdStartParams::default()
        },
        BENCH_SEED,
    );
    println!("{}", slo.render("2018 Lambda + 1 provisioned container (the §4 'SLO' knob)"));

    println!(
        "the keep-alive cliff is the lifecycle, not the sandbox: Firecracker\n\
         shrinks the cold *penalty* ~40x but the cold *fraction* is identical.\n\
         Reserving capacity (provisioned concurrency) removes the cliff entirely\n\
         — for a per-GB-hour fee, which is exactly the paper's point about SLOs\n\
         needing to be a priced, first-class platform concept."
    );
}
