//! A2 — sensitivity of the election case study to the polling rate. The
//! paper's footnote 6 fixes 4 polls/s; this sweep shows the latency/cost
//! trade-off the blackboard design forces: faster failover is purchasable
//! only with proportionally more storage requests (and dollars), which is
//! the §3 argument in one chart.

use faasim::experiments::election::{self, ElectionParams};
use faasim::report::Table;
use faasim_bench::{section, BENCH_SEED};

fn main() {
    section("Ablation: election poll-rate sweep (latency vs cost)");
    let mut table = Table::new(
        "bully over blackboard, 10 nodes, scaled timeouts",
        &[
            "polls/s",
            "round (s)",
            "% time electing",
            "KV req/node/s",
            "$/hr @1,000 nodes",
        ],
    );
    for polls in [1.0, 2.0, 4.0, 8.0, 16.0] {
        // Scale protocol timeouts with the polling period so each
        // configuration is "equally conservative" in polling windows.
        let params = ElectionParams {
            polls_per_second: polls,
            rounds: 3,
            ..ElectionParams::default()
        };
        let result = election::run(&params, BENCH_SEED);
        table.row(&[
            format!("{polls:.0}"),
            format!("{:.1}", result.mean_round.as_secs_f64()),
            format!("{:.2}%", result.fraction_electing * 100.0),
            format!("{:.1}", result.requests_per_node_second),
            format!("{:.0}", result.hourly_cost_extrapolated),
        ]);
    }
    println!("{}", table.render());
    println!(
        "the 4 polls/s column is the paper's configuration (~16.7 s, ~$450/hr);\n\
         halving latency doubles the bill — storage-mediated coordination has no good operating point."
    );
}

