//! A1 — the paper's footnote 5: "AWS announced Firecracker, a microVM
//! framework that supports 125ms startup time ... This would have at best
//! modest effects on our results in Table 1; it is still orders of
//! magnitude slower than traditional network messaging."
//!
//! We rerun Table 1 with the 5 s cold start replaced by 125 ms and show
//! the table barely moves — the warm invocation path and the storage
//! round trips, not sandbox startup, dominate.

use faasim::experiments::table1::{self, Table1Params};
use faasim_bench::{section, BENCH_SEED};

fn main() {
    section("Ablation: Table 1 with Firecracker-style 125 ms cold starts");
    let baseline = table1::run(&Table1Params::default(), BENCH_SEED);
    let firecracker = table1::run(
        &Table1Params {
            firecracker: true,
            ..Table1Params::default()
        },
        BENCH_SEED,
    );

    println!(
        "{:<24} {:>14} {:>14} {:>10}",
        "", "2018 Lambda", "Firecracker", "change"
    );
    println!("{}", "-".repeat(66));
    for row in &baseline.rows {
        let fc = firecracker.mean_of(row.label);
        let base_ms = row.mean.as_secs_f64() * 1e3;
        let fc_ms = fc.as_secs_f64() * 1e3;
        let change = (fc_ms - base_ms) / base_ms * 100.0;
        println!(
            "{:<24} {:>12.2}ms {:>12.2}ms {:>+9.2}%",
            row.label, base_ms, fc_ms, change
        );
    }
    println!();
    let zmq = firecracker.mean_of("EC2 NW (0MQ)").as_secs_f64();
    let invoc = firecracker.mean_of("Func. Invoc. (1KB)").as_secs_f64();
    println!(
        "footnote 5 confirmed: even with Firecracker, invocation is still {:.0}x slower \
         than direct messaging",
        invoc / zmq
    );
}
