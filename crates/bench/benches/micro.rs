//! Criterion micro-benchmarks of the simulator and workload kernels —
//! these measure *our* implementation (wall-clock), complementing the
//! virtual-time harnesses.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use faasim::simcore::{mbps, FairShareLink, Sim, SimDuration};
use faasim_ml::{BagOfWords, DirtyWordModel, SparseVec, Trainer};

fn bench_executor(c: &mut Criterion) {
    c.bench_function("sim/10k_sequential_sleeps", |b| {
        b.iter(|| {
            let sim = Sim::new(1);
            let s = sim.clone();
            sim.block_on(async move {
                for _ in 0..10_000 {
                    s.sleep(SimDuration::from_micros(1)).await;
                }
            });
            black_box(sim.now())
        })
    });
    c.bench_function("sim/1k_concurrent_tasks", |b| {
        b.iter(|| {
            let sim = Sim::new(1);
            for i in 0..1_000u64 {
                let s = sim.clone();
                sim.spawn(async move {
                    s.sleep(SimDuration::from_nanos(i)).await;
                });
            }
            sim.run();
            black_box(sim.stats().events_processed)
        })
    });
}

fn bench_fair_link(c: &mut Criterion) {
    c.bench_function("link/100_flow_churn", |b| {
        b.iter(|| {
            let sim = Sim::new(1);
            let link = FairShareLink::new(&sim, mbps(1000.0));
            for _ in 0..100 {
                let l = link.clone();
                sim.spawn(async move {
                    l.transfer(100_000, None).await;
                });
            }
            sim.run();
            black_box(sim.now())
        })
    });
}

fn bench_ml(c: &mut Criterion) {
    let mut trainer = Trainer::paper_setup(1);
    let xs: Vec<SparseVec> = (0..32)
        .map(|i| {
            SparseVec::from_pairs(
                (0..60)
                    .map(|j| (((i * 97 + j * 31) % 6787) as u32, 0.5f32))
                    .collect(),
            )
        })
        .collect();
    let ys: Vec<f32> = (0..32).map(|i| (i % 5) as f32 + 1.0).collect();
    c.bench_function("ml/paper_mlp_batch32_step", |b| {
        b.iter(|| black_box(trainer.train_batch(&xs, &ys)))
    });

    let docs: Vec<String> = (0..64)
        .map(|i| faasim_ml::synthetic_document(500, 100, i))
        .collect();
    let bow = BagOfWords::fit(docs.iter().map(String::as_str), 2000);
    c.bench_function("ml/featurize_64_docs", |b| {
        b.iter(|| black_box(bow.transform_batch(docs.iter().map(String::as_str))))
    });

    let model = DirtyWordModel::synthetic(500);
    c.bench_function("ml/censor_64_docs", |b| {
        b.iter(|| {
            black_box(model.censor_batch(docs.iter().map(String::as_str)))
        })
    });
}

fn bench_protocols_and_query(c: &mut Criterion) {
    use faasim::protocols::{Crdt, GCounter, OrSet};
    c.bench_function("crdt/gcounter_merge_64_replicas", |b| {
        let mut left = GCounter::new();
        let mut right = GCounter::new();
        for r in 0..64u64 {
            left.increment(r, r + 1);
            right.increment(r + 32, r + 1);
        }
        b.iter(|| {
            let mut m = left.clone();
            m.merge(&right);
            black_box(m.value())
        })
    });
    c.bench_function("crdt/orset_merge_1k_tags", |b| {
        let mut left: OrSet<u32> = OrSet::new();
        let mut right: OrSet<u32> = OrSet::new();
        for i in 0..1_000u32 {
            left.add(1, i % 100);
            right.add(2, i % 100);
        }
        b.iter(|| {
            let mut m = left.clone();
            m.merge(&right);
            black_box(m.len())
        })
    });
}

fn bench_experiment(c: &mut Criterion) {
    use faasim::experiments::table1::{self, Table1Params};
    let mut group = c.benchmark_group("experiments");
    group.sample_size(10);
    group.bench_function("table1_quick_wallclock", |b| {
        b.iter(|| black_box(table1::run(&Table1Params::quick(), 1)))
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_executor,
    bench_fair_link,
    bench_ml,
    bench_protocols_and_query,
    bench_experiment
);
criterion_main!(benches);
