//! E6 — regenerate §3(2)'s per-function bandwidth collapse under
//! container packing (the Wang et al. measurement the paper builds on).

use faasim::experiments::bandwidth::{self, BandwidthParams, MemorySweepParams};
use faasim_bench::{compare, section, BENCH_SEED};

fn main() {
    section("Per-function network bandwidth vs co-located functions");
    let params = BandwidthParams::default();
    let result = bandwidth::run(&params, BENCH_SEED);
    println!("{}", result.render());

    println!("paper-vs-measured:");
    compare(
        "single function Mbps",
        538.0,
        result.at(1).per_function_mbps,
        "Mbps",
    );
    compare(
        "20 functions, per-function Mbps",
        28.7,
        result.at(20).per_function_mbps,
        "Mbps",
    );
    println!();
    println!(
        "context: a 2018 SATA SSD streams ~4 Gbps; 28.7 Mbps is {:.0}x slower — \
         the paper's \"2.5 orders of magnitude\"",
        4000.0 / result.at(20).per_function_mbps
    );

    // Wang et al.'s companion observation: memory buys bandwidth, because
    // bigger functions pack fewer neighbors.
    println!();
    let mem = bandwidth::run_memory_sweep(&MemorySweepParams::default(), BENCH_SEED);
    println!("{}", mem.render());
    println!(
        "the only resource knob FaaS exposes (memory) also sets your NIC share\n\
         via packing — paying for RAM you don't need is 2018's only bandwidth lever."
    );
}
