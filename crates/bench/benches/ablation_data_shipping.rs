//! A5 — "ship data to code" vs "ship code to data" (§3's corollary and
//! §4's *fluid code and data placement*), swept over dataset size.

use faasim::experiments::data_shipping::{self, DataShippingParams};
use faasim_bench::{section, BENCH_SEED};

fn main() {
    section("Ablation: data-to-code vs code-to-data (pushed-down queries)");
    let params = DataShippingParams::default();
    let result = data_shipping::run(&params, BENCH_SEED);
    println!("{}", result.render());

    // Locate the crossover.
    let crossover = result
        .points
        .windows(2)
        .find(|w| w[0].speedup() < 1.0 && w[1].speedup() >= 1.0)
        .map(|w| (w[0].dataset_mb, w[1].dataset_mb));
    match crossover {
        Some((lo, hi)) => println!(
            "crossover between {lo} MB and {hi} MB: below it, the query service's\n\
             planning latency dominates; above it, the data-shipping tax grows\n\
             linearly while the pushed-down scan parallelizes."
        ),
        None => println!("no crossover in range (one variant dominates throughout)"),
    }
    let last = result.points.last().expect("points");
    println!(
        "\nat {} MB: {}x faster and the orchestrating function needed {} execution(s)\n\
         instead of {} (the 15-minute guillotine forces chaining when data must\n\
         flow through the function).",
        last.dataset_mb,
        last.speedup() as u64,
        1,
        last.data_to_code_executions,
    );
}
