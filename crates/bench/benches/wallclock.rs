//! `make bench`: the wall-clock performance baseline.
//!
//! Times the DES kernel (events/sec), every experiment at `quick()`
//! params, and a 64-seed chaos sweep serial vs parallel, then writes
//! `BENCH_baseline.json` (override the path with `BENCH_OUT`, the seed
//! count with `BENCH_SWEEP_SEEDS`).

use faasim_bench::wallclock;

fn main() {
    // `cargo bench` passes harness flags like `--bench`; ignore them.
    let seeds = std::env::var("BENCH_SWEEP_SEEDS")
        .ok()
        .and_then(|s| s.parse::<usize>().ok())
        .unwrap_or(64);
    // Default next to the workspace root regardless of the CWD cargo
    // gives bench binaries (the package dir).
    let out_path = std::env::var("BENCH_OUT").unwrap_or_else(|_| {
        concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_baseline.json").to_owned()
    });

    faasim_bench::section("wall-clock baseline (host time, not virtual time)");
    let baseline = wallclock::run_baseline(seeds);
    println!("{}", baseline.render());

    std::fs::write(&out_path, baseline.to_json()).expect("write baseline json");
    println!("wrote {out_path}");
}
