//! E4 — regenerate §3.1 case study 2 (prediction serving via batching)
//! at paper scale: 1,000 batches of 10 documents, four deployments, plus
//! the 1M msg/s cost extrapolation.

use faasim::experiments::prediction::{self, PredictionParams};
use faasim_bench::{compare, section, BENCH_SEED};

fn main() {
    section("Case study 2: low-latency prediction serving via batching (paper scale)");
    let params = PredictionParams::default();
    let result = prediction::run(&params, BENCH_SEED);
    println!("{}", result.render());

    println!("paper-vs-measured (per-batch ms):");
    let paper = [
        ("Lambda + S3 model", 559.0),
        ("Lambda optimized (model baked in, SQS out)", 447.0),
        ("EC2 + SQS", 13.0),
        ("EC2 + ZeroMQ", 2.8),
    ];
    for (label, p) in paper {
        compare(label, p, result.latency_of(label).as_secs_f64() * 1e3, "ms");
    }
    println!("\npaper-vs-measured (costs at 1M msg/s):");
    compare("SQS $/hr", 1584.0, result.sqs_hourly_at_rate, "$");
    compare(
        "EC2 instances",
        290.0,
        result.ec2_instances_at_rate as f64,
        "",
    );
    compare("EC2 fleet $/hr", 27.84, result.ec2_hourly_at_rate, "$");
    compare("cost advantage", 57.0, result.cost_ratio(), "x");
    compare(
        "per-instance throughput",
        3500.0,
        result.ec2_throughput_per_instance,
        "r/s",
    );
}
