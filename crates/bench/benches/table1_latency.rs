//! E1 — regenerate the paper's Table 1 at full trial counts.

use faasim::experiments::table1::{self, Table1Params};
use faasim_bench::{compare, section, BENCH_SEED};

fn main() {
    section("Table 1: latency of communicating 1KB (paper trial counts)");
    let params = Table1Params::default();
    let result = table1::run(&params, BENCH_SEED);
    println!("{}", result.render());

    println!("paper-vs-measured (means):");
    let paper_ms = [
        ("Func. Invoc. (1KB)", 303.0),
        ("Lambda I/O (S3)", 108.0),
        ("Lambda I/O (DynamoDB)", 11.0),
        ("EC2 I/O (S3)", 106.0),
        ("EC2 I/O (DynamoDB)", 11.0),
        ("EC2 NW (0MQ)", 0.29),
    ];
    for (label, paper) in paper_ms {
        let measured = result.mean_of(label).as_secs_f64() * 1e3;
        compare(label, paper, measured, "ms");
    }
    println!("\npaper-vs-measured (ratio to best):");
    let paper_ratio = [
        ("Func. Invoc. (1KB)", 1045.0),
        ("Lambda I/O (S3)", 372.0),
        ("Lambda I/O (DynamoDB)", 37.9),
        ("EC2 I/O (S3)", 365.0),
        ("EC2 I/O (DynamoDB)", 37.9),
        ("EC2 NW (0MQ)", 1.0),
    ];
    for (label, paper) in paper_ratio {
        compare(label, paper, result.ratio_of(label), "x");
    }
}
