//! A4 — the §4 counterfactual: the same bully election run over
//! storage-mediated communication (today's FaaS) and over long-running
//! addressable agents (the paper's proposal), at matching cluster size.

use faasim::experiments::agents_cmp::{self, AgentsCmpParams};
use faasim_bench::{compare, section, BENCH_SEED};

fn main() {
    section("Ablation: storage-mediated vs addressable-agent coordination (§4)");
    let params = AgentsCmpParams::default();
    let result = agents_cmp::run(&params, BENCH_SEED);
    println!("{}", result.render());

    println!("context:");
    compare(
        "blackboard round (paper)",
        16.7,
        result.blackboard_round.as_secs_f64(),
        "s",
    );
    println!(
        "  agents round: {:.3} s -> {:.0}x faster failover with the same protocol,\n\
         purely from directly addressable, long-running endpoints.",
        result.agents_round.as_secs_f64(),
        result.speedup()
    );
}
