//! E5 — regenerate §3.1 case study 3: bully leader election over a
//! DynamoDB-style blackboard polled at 4 Hz.

use faasim::experiments::election::{self, ChurnParams, ElectionParams};
use faasim_bench::{compare, section, BENCH_SEED};

fn main() {
    section("Case study 3: leader election over blackboard storage");
    let params = ElectionParams::default();
    let result = election::run(&params, BENCH_SEED);
    println!("{}", result.render(&params));

    println!("measured rounds:");
    for (i, r) in result.rounds.iter().enumerate() {
        println!("  round {i}: {:.2}s", r.as_secs_f64());
    }
    println!();
    println!("paper-vs-measured:");
    compare(
        "election round seconds",
        16.7,
        result.mean_round.as_secs_f64(),
        "s",
    );
    compare(
        "% aggregate time electing",
        1.9,
        result.fraction_electing * 100.0,
        "%",
    );
    compare(
        "steady KV requests/node/s (4 polls x 2 reads)",
        8.0,
        result.requests_per_node_second,
        "r/s",
    );
    compare(
        "1,000-node cluster $/hr",
        450.0,
        result.hourly_cost_extrapolated,
        "$",
    );

    // The paper derives its 1.9% from round/lifetime; we can also measure
    // it empirically under real Lambda-lifetime churn (every node dies at
    // 15 minutes and a replacement with the same identity rejoins).
    println!();
    section("empirical churn: 15-minute lifetimes, deaths AND rejoins disturb agreement");
    let churn = election::run_churn(&ChurnParams::default(), BENCH_SEED);
    println!(
        "window {:.0} min, disturbed {:.1} s across {} agreement rounds",
        churn.window.as_secs_f64() / 60.0,
        churn.disturbed.as_secs_f64(),
        churn.rounds
    );
    compare(
        "% time without agreement (paper derives >=1.9%)",
        1.9,
        churn.fraction * 100.0,
        "%",
    );
}
