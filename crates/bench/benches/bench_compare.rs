//! `make bench-compare`: re-run the wall-clock suite and gate it
//! against the committed `BENCH_baseline.json`.
//!
//! Exits nonzero if any kernel bench's events/sec, any experiment's
//! wall-clock, or the chaos sweep's seeds/sec is more than
//! `BENCH_COMPARE_TOLERANCE` (default 0.25 = 25%) worse than the
//! baseline. Sweep throughput is per-seed normalized, so
//! `BENCH_SWEEP_SEEDS` can shrink the sweep for smoke runs (CI uses 4)
//! and still gate against the 64-seed baseline — though runs under the
//! noise floor (~50 ms per arm) are reported but not gated, and the
//! parallel arm is only gated when this machine's worker count matches
//! the baseline's.

use faasim_bench::{compare, wallclock};

fn main() {
    let seeds = std::env::var("BENCH_SWEEP_SEEDS")
        .ok()
        .and_then(|s| s.parse::<usize>().ok())
        .unwrap_or(64);
    let tolerance = std::env::var("BENCH_COMPARE_TOLERANCE")
        .ok()
        .and_then(|s| s.parse::<f64>().ok())
        .unwrap_or(0.25);
    let baseline_path = std::env::var("BENCH_BASELINE").unwrap_or_else(|_| {
        concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_baseline.json").to_owned()
    });

    let json = std::fs::read_to_string(&baseline_path)
        .unwrap_or_else(|e| panic!("read {baseline_path}: {e} — run `make bench` first"));
    let baseline = compare::parse_baseline(&json)
        .unwrap_or_else(|| panic!("unrecognized baseline schema in {baseline_path}"));

    faasim_bench::section("bench-compare (fresh run vs committed baseline)");
    let current = wallclock::run_baseline(seeds);
    let (report, regressions) = compare::compare(&baseline, &current, tolerance);
    println!("{report}");

    if !regressions.is_empty() {
        std::process::exit(1);
    }
}
