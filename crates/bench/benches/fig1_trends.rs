//! E2 — regenerate Figure 1: search interest for "serverless" vs
//! "map reduce", 2004–2018 (synthetic adoption model; see DESIGN.md §1.6).

use faasim::trends;
use faasim_bench::section;

fn main() {
    section("Figure 1: Google-Trends-style interest, \"map reduce\" vs \"serverless\"");
    let points = trends::generate();
    println!("{}", trends::ascii_chart(&points, 64));

    println!("year-end values (normalized to 100):");
    println!("{:>6}  {:>10}  {:>10}", "year", "map reduce", "serverless");
    for p in points.iter().filter(|p| p.month == 12) {
        println!("{:>6}  {:>10.1}  {:>10.1}", p.year, p.map_reduce, p.serverless);
    }

    let (mr_peak, sv_final, crossover) = trends::headline_claims(&points);
    println!();
    println!("map-reduce historic peak : {mr_peak:.1}");
    println!("serverless at publication: {sv_final:.1}");
    match crossover {
        Some((y, m)) => println!("crossover                : {y}-{m:02}"),
        None => println!("crossover                : (none)"),
    }
    println!();
    println!(
        "figure claim reproduced: serverless reaches {:.0}% of the MapReduce peak by Dec 2018",
        sv_final / mr_peak * 100.0
    );
}
