//! E3 — regenerate §3.1 case study 1 (model training) at paper scale:
//! 90 GB, 100 MB batches, 10 epochs, Lambda 640 MB vs EC2 m4.large.

use faasim::experiments::training::{self, TrainingParams};
use faasim_bench::{compare, section, BENCH_SEED};

fn main() {
    section("Case study 1: model training, Lambda vs EC2 (paper scale)");
    let params = TrainingParams::default();
    let result = training::run(&params, BENCH_SEED);
    println!("{}", result.render());

    println!("paper-vs-measured:");
    compare(
        "Lambda s/iteration",
        3.08,
        result.lambda.per_iteration.as_secs_f64(),
        "s",
    );
    compare(
        "EC2 s/iteration",
        0.14,
        result.ec2.per_iteration.as_secs_f64(),
        "s",
    );
    compare(
        "Lambda sequential executions",
        31.0,
        result.lambda.executions as f64,
        "",
    );
    compare(
        "Lambda total minutes",
        465.0,
        result.lambda.total_time.as_secs_f64() / 60.0,
        "min",
    );
    compare(
        "EC2 total seconds",
        1300.0,
        result.ec2.total_time.as_secs_f64(),
        "s",
    );
    compare("Lambda cost", 0.29, result.lambda.compute_cost, "$");
    compare("EC2 cost", 0.04, result.ec2.compute_cost, "$");
    compare("slowdown", 21.0, result.slowdown(), "x");
    compare("cost ratio", 7.3, result.cost_ratio(), "x");
}
