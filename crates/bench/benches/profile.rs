//! `make profile`: run the replay kernels once each and dump the
//! engine's [`SimProfile`](faasim::simcore::SimProfile) counters next to
//! events/sec, so perf work can attribute wins (poll count? timer
//! traffic? spawn volume?) instead of guessing from wall-clock alone.
//!
//! Scale is picked by `PROFILE_SCALE`:
//! - `100k` (default): both 100k replay kernels, direct and gateway.
//! - `1m`: the full million-invocation paper-scale kernel.
//! - `1m-smoke`: the 1m kernel's trace shape capped at 20k arrivals —
//!   the CI smoke gate, seconds instead of minutes on a loaded runner.

use std::time::Instant;

use faasim_bench::wallclock::{assert_calm_replay, replay_100k_config, replay_1m_config};
use faasim_bench::BENCH_SEED;
use faasim_trace::{replay, ReplayConfig};

fn profile_one(name: &str, cfg: &ReplayConfig, gateway: bool) {
    let start = Instant::now();
    let out = replay(cfg, BENCH_SEED, &|_| {});
    let wall = start.elapsed().as_secs_f64();
    assert_calm_replay(&out, gateway);
    let inv = out.report.invocations;
    println!(
        "{name}: {inv} invocations in {wall:.3}s = {:.0} invocations/sec",
        inv as f64 / wall.max(1e-9)
    );
    println!("    engine: {}", out.report.engine);
}

fn main() {
    let scale = std::env::var("PROFILE_SCALE").unwrap_or_else(|_| "100k".to_owned());
    faasim_bench::section(&format!("engine profile, replay kernels ({scale})"));
    match scale.as_str() {
        "100k" => {
            profile_one(
                "trace/replay_100k_invocations",
                &replay_100k_config(false),
                false,
            );
            profile_one(
                "trace/replay_100k_invocations_gateway",
                &replay_100k_config(true),
                true,
            );
        }
        "1m" => profile_one("trace/replay_1m_invocations", &replay_1m_config(), true),
        "1m-smoke" => {
            let mut cfg = replay_1m_config();
            cfg.trace.max_events = 20_000;
            profile_one("trace/replay_1m_invocations (20k smoke)", &cfg, true);
        }
        other => {
            eprintln!("unknown PROFILE_SCALE '{other}' (expected 100k, 1m, or 1m-smoke)");
            std::process::exit(2);
        }
    }
}
