//! A3 — sensitivity of the prediction-serving case study to batch size.
//! The paper notes "SQS only allows batches of 10 messages at a time, so
//! we limited all experiments here to 10-message batches"; this sweep
//! shows what that cap costs: request-billed services amortize per-batch
//! overhead, so the forced small batch inflates both per-message latency
//! and per-message price.

use faasim::experiments::prediction::{self, PredictionParams};
use faasim::report::Table;
use faasim_bench::{section, BENCH_SEED};

fn main() {
    section("Ablation: prediction serving batch-size sweep (SQS caps at 10)");
    let mut table = Table::new(
        "per-message latency by batch size (1,000-batch averages / batch size)",
        &[
            "batch",
            "Lambda opt (ms/msg)",
            "EC2+SQS (ms/msg)",
            "EC2+0MQ (ms/msg)",
            "SQS $/M msgs",
        ],
    );
    for batch in [1usize, 2, 5, 10] {
        let params = PredictionParams {
            batches: 200,
            batch_size: batch,
            ..PredictionParams::default()
        };
        let r = prediction::run(&params, BENCH_SEED + batch as u64);
        let per = |label: &str| r.latency_of(label).as_secs_f64() * 1e3 / batch as f64;
        // SQS requests per message: 1 send + (receive + delete)/batch.
        let reqs_per_msg = 1.0 + 2.0 / batch as f64;
        let sqs_per_million = reqs_per_msg * 0.40;
        table.row(&[
            batch.to_string(),
            format!("{:.1}", per("Lambda optimized (model baked in, SQS out)")),
            format!("{:.2}", per("EC2 + SQS")),
            format!("{:.3}", per("EC2 + ZeroMQ")),
            format!("${sqs_per_million:.2}"),
        ]);
    }
    println!("{}", table.render());
    println!(
        "larger batches amortize the fixed invocation/queue overheads, but the\n\
         hard cap at 10 stops the curve exactly where the paper had to stop."
    );
}
