//! # faasim-kv
//!
//! A DynamoDB-like key-value table service: low-latency item get/put,
//! conditional writes (the primitive the blackboard transport and the
//! leader-election case study are built on), prefix scans, optional
//! eventually consistent reads, item-size limits, and per-request pricing.
//!
//! Calibration: 5.5 ms mean per operation → Table 1's 11 ms write+read for
//! 1 KB from both Lambda and EC2 (the paper observes the latency lives in
//! the storage service, not in the caller).

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::fmt;
use std::rc::Rc;

use faasim_net::Host;
use faasim_payload::Payload;
use faasim_pricing::{Ledger, PriceBook, Service};
use faasim_simcore::{LatencyModel, Recorder, Sim, SimDuration, SimRng, SimTime};

/// DynamoDB's item size ceiling (400 KB), enforced here too.
pub const MAX_ITEM_BYTES: usize = 400 * 1024;

/// Read consistency level.
#[derive(Copy, Clone, PartialEq, Eq, Debug, Default)]
pub enum Consistency {
    /// Linearizable read of the latest committed write.
    #[default]
    Strong,
    /// May observe a version as stale as the profile's replication lag.
    Eventual,
}

/// Errors returned by table operations.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum KvError {
    /// The table does not exist.
    NoSuchTable(String),
    /// The key does not exist.
    NoSuchKey(String),
    /// A conditional write's precondition failed.
    ConditionFailed,
    /// The item exceeds [`MAX_ITEM_BYTES`].
    ItemTooLarge(usize),
    /// The service throttled this request (transient; retryable). Only
    /// produced when chaos injection is enabled via [`KvStore::set_faults`].
    Throttled,
}

impl KvError {
    /// Whether a retry of the same request may succeed.
    pub fn is_transient(&self) -> bool {
        matches!(self, KvError::Throttled)
    }
}

impl fmt::Display for KvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            KvError::NoSuchTable(t) => write!(f, "no such table: {t}"),
            KvError::NoSuchKey(k) => write!(f, "no such key: {k}"),
            KvError::ConditionFailed => write!(f, "condition failed"),
            KvError::ItemTooLarge(n) => write!(f, "item too large: {n} bytes"),
            KvError::Throttled => write!(f, "request throttled"),
        }
    }
}

impl std::error::Error for KvError {}

/// Precondition for [`KvStore::put_if`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Condition {
    /// Succeed only if the key does not currently exist.
    NotExists,
    /// Succeed only if the key exists with exactly this version.
    VersionIs(u64),
}

/// Performance profile of the table service.
#[derive(Clone, Debug)]
pub struct KvProfile {
    /// Per-operation latency.
    pub op_latency: LatencyModel,
    /// Replication lag observed by [`Consistency::Eventual`] reads.
    pub eventual_lag: LatencyModel,
}

impl KvProfile {
    /// Calibrated to Table 1 (11 ms write+read for 1 KB).
    pub fn aws_2018() -> KvProfile {
        KvProfile {
            op_latency: LatencyModel::LogNormal {
                mean: SimDuration::from_micros(5_500),
                cv: 0.15,
                floor: SimDuration::from_millis(1),
            },
            eventual_lag: LatencyModel::LogNormal {
                mean: SimDuration::from_millis(100),
                cv: 0.5,
                floor: SimDuration::from_millis(5),
            },
        }
    }

    /// Collapse latencies to their means for exact reproduction runs.
    pub fn exact(mut self) -> KvProfile {
        self.op_latency = self.op_latency.to_constant();
        self.eventual_lag = self.eventual_lag.to_constant();
        self
    }
}

/// An item returned by reads: value plus its monotonically increasing
/// version (usable with [`Condition::VersionIs`]).
#[derive(Clone, Debug, PartialEq)]
pub struct Item {
    /// Item payload.
    pub value: Payload,
    /// Version of this item; bumps on every successful write.
    pub version: u64,
}

#[derive(Clone)]
struct StoredItem {
    value: Payload,
    version: u64,
    committed_at: SimTime,
    prev: Option<(Payload, u64)>,
}

#[derive(Default)]
struct Table {
    items: BTreeMap<String, StoredItem>,
    next_version: u64,
}

/// Deterministic fault knobs for the table service. Zero by default; no
/// RNG draws are consumed while every probability is zero, so enabling
/// chaos never perturbs a fault-free run at the same seed.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct KvFaults {
    /// Probability that a request is throttled ([`KvError::Throttled`])
    /// after paying its round-trip latency.
    pub throttle_prob: f64,
}

struct KvState {
    tables: BTreeMap<String, Table>,
    rng: SimRng,
    faults: KvFaults,
}

/// The key-value service handle. Cheap to clone.
#[derive(Clone)]
pub struct KvStore {
    sim: Sim,
    profile: Rc<KvProfile>,
    prices: Rc<PriceBook>,
    ledger: Ledger,
    recorder: Recorder,
    state: Rc<RefCell<KvState>>,
}

impl KvStore {
    /// Create the service.
    pub fn new(
        sim: &Sim,
        profile: KvProfile,
        prices: Rc<PriceBook>,
        ledger: Ledger,
        recorder: Recorder,
    ) -> KvStore {
        KvStore {
            sim: sim.clone(),
            profile: Rc::new(profile),
            prices,
            ledger,
            recorder,
            state: Rc::new(RefCell::new(KvState {
                tables: BTreeMap::new(),
                rng: sim.rng("kv.store"),
                faults: KvFaults::default(),
            })),
        }
    }

    /// Create a table (idempotent).
    pub fn create_table(&self, name: &str) {
        self.state
            .borrow_mut()
            .tables
            .entry(name.to_owned())
            .or_default();
    }

    /// Install chaos knobs; pass `KvFaults::default()` to disable.
    pub fn set_faults(&self, faults: KvFaults) {
        self.state.borrow_mut().faults = faults;
    }

    async fn pay_latency(&self, op: &str) {
        let latency = {
            let mut st = self.state.borrow_mut();
            self.profile.op_latency.sample(&mut st.rng)
        };
        self.sim.sleep(latency).await;
        self.recorder.record_duration(op, latency);
    }

    /// Chaos gate at the head of every operation: a throttled request
    /// pays a full round trip before the error reaches the caller (like
    /// a real HTTP 400 ProvisionedThroughputExceededException), but is
    /// not billed.
    async fn chaos_gate(&self, op: &str) -> Result<(), KvError> {
        let throttled = {
            let mut st = self.state.borrow_mut();
            let p = st.faults.throttle_prob;
            p > 0.0 && st.rng.chance(p)
        };
        if throttled {
            self.pay_latency(op).await;
            self.recorder.incr("kv.throttled");
            return Err(KvError::Throttled);
        }
        Ok(())
    }

    fn charge_read(&self, n: f64) {
        self.ledger.charge(
            Service::Kv,
            "read-requests",
            n,
            n * self.prices.kv_read_per_request,
        );
        self.recorder.add("kv.reads", n as u64);
    }

    fn charge_write(&self, n: f64) {
        self.ledger.charge(
            Service::Kv,
            "write-requests",
            n,
            n * self.prices.kv_write_per_request,
        );
        self.recorder.add("kv.writes", n as u64);
    }

    /// Unconditional write. Returns the new version.
    pub async fn put(
        &self,
        _caller: &Host,
        table: &str,
        key: &str,
        value: impl Into<Payload>,
    ) -> Result<u64, KvError> {
        let value = value.into();
        if value.len() > MAX_ITEM_BYTES {
            return Err(KvError::ItemTooLarge(value.len()));
        }
        self.chaos_gate("kv.put.latency").await?;
        self.pay_latency("kv.put.latency").await;
        let now = self.sim.now();
        let version = {
            let mut st = self.state.borrow_mut();
            let t = st
                .tables
                .get_mut(table)
                .ok_or_else(|| KvError::NoSuchTable(table.to_owned()))?;
            t.next_version += 1;
            let version = t.next_version;
            let prev = t
                .items
                .get(key)
                .map(|old| (old.value.clone(), old.version));
            t.items.insert(
                key.to_owned(),
                StoredItem {
                    value,
                    version,
                    committed_at: now,
                    prev,
                },
            );
            version
        };
        self.charge_write(1.0);
        Ok(version)
    }

    /// Conditional write (compare-and-set). Returns the new version, or
    /// [`KvError::ConditionFailed`] without modifying the item.
    pub async fn put_if(
        &self,
        _caller: &Host,
        table: &str,
        key: &str,
        value: impl Into<Payload>,
        cond: Condition,
    ) -> Result<u64, KvError> {
        let value = value.into();
        if value.len() > MAX_ITEM_BYTES {
            return Err(KvError::ItemTooLarge(value.len()));
        }
        self.chaos_gate("kv.put.latency").await?;
        self.pay_latency("kv.put.latency").await;
        let now = self.sim.now();
        let result = {
            let mut st = self.state.borrow_mut();
            let t = st
                .tables
                .get_mut(table)
                .ok_or_else(|| KvError::NoSuchTable(table.to_owned()))?;
            let current = t.items.get(key);
            let ok = match (&cond, current) {
                (Condition::NotExists, None) => true,
                (Condition::NotExists, Some(_)) => false,
                (Condition::VersionIs(v), Some(item)) => item.version == *v,
                (Condition::VersionIs(_), None) => false,
            };
            if !ok {
                Err(KvError::ConditionFailed)
            } else {
                t.next_version += 1;
                let version = t.next_version;
                let prev = t
                    .items
                    .get(key)
                    .map(|old| (old.value.clone(), old.version));
                t.items.insert(
                    key.to_owned(),
                    StoredItem {
                        value,
                        version,
                        committed_at: now,
                        prev,
                    },
                );
                Ok(version)
            }
        };
        // Failed conditional writes still consume (and bill) a request.
        self.charge_write(1.0);
        result
    }

    /// Read one item.
    pub async fn get(
        &self,
        _caller: &Host,
        table: &str,
        key: &str,
        consistency: Consistency,
    ) -> Result<Item, KvError> {
        self.chaos_gate("kv.get.latency").await?;
        self.pay_latency("kv.get.latency").await;
        let lag = match consistency {
            Consistency::Strong => SimDuration::ZERO,
            Consistency::Eventual => {
                let mut st = self.state.borrow_mut();
                self.profile.eventual_lag.sample(&mut st.rng)
            }
        };
        let horizon = self.sim.now().duration_since(SimTime::ZERO);
        let cutoff = SimTime::ZERO + horizon.saturating_sub(lag);
        let out = {
            let st = self.state.borrow();
            let t = st
                .tables
                .get(table)
                .ok_or_else(|| KvError::NoSuchTable(table.to_owned()))?;
            let item = t
                .items
                .get(key)
                .ok_or_else(|| KvError::NoSuchKey(key.to_owned()))?;
            if item.committed_at <= cutoff {
                Item {
                    value: item.value.clone(),
                    version: item.version,
                }
            } else if let Some((value, version)) = &item.prev {
                // Replication lag: serve the previous committed version.
                Item {
                    value: value.clone(),
                    version: *version,
                }
            } else {
                // Item newer than the replica horizon with no prior
                // version: an eventual read misses it entirely.
                return Err(KvError::NoSuchKey(key.to_owned()));
            }
        };
        self.charge_read(1.0);
        Ok(out)
    }

    /// Delete an item (idempotent).
    pub async fn delete(&self, _caller: &Host, table: &str, key: &str) -> Result<(), KvError> {
        self.chaos_gate("kv.delete.latency").await?;
        self.pay_latency("kv.delete.latency").await;
        {
            let mut st = self.state.borrow_mut();
            let t = st
                .tables
                .get_mut(table)
                .ok_or_else(|| KvError::NoSuchTable(table.to_owned()))?;
            t.items.remove(key);
        }
        self.charge_write(1.0);
        Ok(())
    }

    /// Scan all items whose key starts with `prefix`, strongly consistent.
    /// Bills one read request per returned item (minimum one), roughly
    /// matching DynamoDB's capacity-unit accounting for small items.
    pub async fn scan_prefix(
        &self,
        _caller: &Host,
        table: &str,
        prefix: &str,
    ) -> Result<Vec<(String, Item)>, KvError> {
        self.chaos_gate("kv.scan.latency").await?;
        self.pay_latency("kv.scan.latency").await;
        let out: Vec<(String, Item)> = {
            let st = self.state.borrow();
            let t = st
                .tables
                .get(table)
                .ok_or_else(|| KvError::NoSuchTable(table.to_owned()))?;
            t.items
                .range(prefix.to_owned()..)
                .take_while(|(k, _)| k.starts_with(prefix))
                .map(|(k, item)| {
                    (
                        k.clone(),
                        Item {
                            value: item.value.clone(),
                            version: item.version,
                        },
                    )
                })
                .collect()
        };
        self.charge_read(out.len().max(1) as f64);
        Ok(out)
    }

    /// Number of items in a table (0 for unknown tables).
    pub fn table_len(&self, table: &str) -> usize {
        self.state
            .borrow()
            .tables
            .get(table)
            .map(|t| t.items.len())
            .unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;
    use faasim_net::{Fabric, NetProfile, NicConfig};
    use faasim_simcore::mbps;

    fn setup() -> (Sim, KvStore, Host, Ledger) {
        let sim = Sim::new(11);
        let recorder = Recorder::new();
        let fabric = Fabric::new(&sim, NetProfile::aws_2018().exact(), recorder.clone());
        let host = fabric.add_host(0, NicConfig::simple(mbps(10_000.0)));
        let ledger = Ledger::new();
        let store = KvStore::new(
            &sim,
            KvProfile::aws_2018().exact(),
            Rc::new(PriceBook::aws_2018()),
            ledger.clone(),
            recorder,
        );
        store.create_table("t");
        (sim, store, host, ledger)
    }

    #[test]
    fn put_get_roundtrip_and_version() {
        let (sim, kv, host, _) = setup();
        sim.block_on(async move {
            let v1 = kv
                .put(&host, "t", "k", Bytes::from_static(b"a"))
                .await
                .unwrap();
            let item = kv.get(&host, "t", "k", Consistency::Strong).await.unwrap();
            assert!(item.value.eq_bytes(b"a"));
            assert_eq!(item.version, v1);
            let v2 = kv
                .put(&host, "t", "k", Bytes::from_static(b"b"))
                .await
                .unwrap();
            assert!(v2 > v1);
        });
    }

    #[test]
    fn one_kb_write_read_matches_table1() {
        // Table 1: 11 ms write+read for DynamoDB.
        let (sim, kv, host, _) = setup();
        sim.block_on(async move {
            let data = Bytes::from(vec![0u8; 1024]);
            kv.put(&host, "t", "k", data).await.unwrap();
            kv.get(&host, "t", "k", Consistency::Strong).await.unwrap();
        });
        let ms = sim.now().as_secs_f64() * 1e3;
        assert!((ms - 11.0).abs() < 0.5, "write+read took {ms} ms");
    }

    #[test]
    fn conditional_create_races_one_winner() {
        let (sim, kv, host, _) = setup();
        sim.block_on(async move {
            let a = kv
                .put_if(
                    &host,
                    "t",
                    "leader",
                    Bytes::from_static(b"n1"),
                    Condition::NotExists,
                )
                .await;
            let b = kv
                .put_if(
                    &host,
                    "t",
                    "leader",
                    Bytes::from_static(b"n2"),
                    Condition::NotExists,
                )
                .await;
            assert!(a.is_ok());
            assert_eq!(b.unwrap_err(), KvError::ConditionFailed);
            let item = kv
                .get(&host, "t", "leader", Consistency::Strong)
                .await
                .unwrap();
            assert!(item.value.eq_bytes(b"n1"));
        });
    }

    #[test]
    fn version_cas_detects_interleaving() {
        let (sim, kv, host, _) = setup();
        sim.block_on(async move {
            let v1 = kv
                .put(&host, "t", "k", Bytes::from_static(b"a"))
                .await
                .unwrap();
            // Writer B sneaks in.
            kv.put(&host, "t", "k", Bytes::from_static(b"b"))
                .await
                .unwrap();
            // Writer A's CAS on the old version must fail.
            let res = kv
                .put_if(
                    &host,
                    "t",
                    "k",
                    Bytes::from_static(b"c"),
                    Condition::VersionIs(v1),
                )
                .await;
            assert_eq!(res.unwrap_err(), KvError::ConditionFailed);
            let cur = kv.get(&host, "t", "k", Consistency::Strong).await.unwrap();
            assert!(cur.value.eq_bytes(b"b"));
        });
    }

    #[test]
    fn item_size_limit_enforced() {
        let (sim, kv, host, _) = setup();
        sim.block_on(async move {
            let big = Bytes::from(vec![0u8; MAX_ITEM_BYTES + 1]);
            assert!(matches!(
                kv.put(&host, "t", "k", big.clone()).await,
                Err(KvError::ItemTooLarge(_))
            ));
            assert!(matches!(
                kv.put_if(&host, "t", "k", big, Condition::NotExists).await,
                Err(KvError::ItemTooLarge(_))
            ));
        });
    }

    #[test]
    fn eventual_reads_can_be_stale() {
        let sim = Sim::new(12);
        let recorder = Recorder::new();
        let fabric = Fabric::new(&sim, NetProfile::aws_2018().exact(), recorder.clone());
        let host = fabric.add_host(0, NicConfig::simple(mbps(10_000.0)));
        let mut profile = KvProfile::aws_2018().exact();
        profile.eventual_lag = LatencyModel::Constant(SimDuration::from_secs(1));
        let kv = KvStore::new(
            &sim,
            profile,
            Rc::new(PriceBook::aws_2018()),
            Ledger::new(),
            recorder,
        );
        kv.create_table("t");
        sim.block_on({
            let kv = kv.clone();
            async move {
                kv.put(&host, "t", "k", Bytes::from_static(b"old"))
                    .await
                    .unwrap();
                kv.sim.sleep(SimDuration::from_secs(2)).await;
                kv.put(&host, "t", "k", Bytes::from_static(b"new"))
                    .await
                    .unwrap();
                // Within the replication lag, an eventual read sees "old"...
                let stale = kv
                    .get(&host, "t", "k", Consistency::Eventual)
                    .await
                    .unwrap();
                assert!(stale.value.eq_bytes(b"old"));
                // ...while a strong read sees "new".
                let strong = kv.get(&host, "t", "k", Consistency::Strong).await.unwrap();
                assert!(strong.value.eq_bytes(b"new"));
                // And once the lag passes, eventual catches up.
                kv.sim.sleep(SimDuration::from_secs(2)).await;
                let fresh = kv
                    .get(&host, "t", "k", Consistency::Eventual)
                    .await
                    .unwrap();
                assert!(fresh.value.eq_bytes(b"new"));
            }
        });
    }

    #[test]
    fn scan_prefix_returns_matching_sorted() {
        let (sim, kv, host, _) = setup();
        let keys = sim.block_on(async move {
            for k in ["inbox/3/b", "inbox/3/a", "inbox/4/x", "other"] {
                kv.put(&host, "t", k, Bytes::from_static(b"m"))
                    .await
                    .unwrap();
            }
            kv.scan_prefix(&host, "t", "inbox/3/")
                .await
                .unwrap()
                .into_iter()
                .map(|(k, _)| k)
                .collect::<Vec<_>>()
        });
        assert_eq!(keys, vec!["inbox/3/a".to_owned(), "inbox/3/b".to_owned()]);
    }

    #[test]
    fn delete_then_get_missing() {
        let (sim, kv, host, _) = setup();
        sim.block_on(async move {
            kv.put(&host, "t", "k", Bytes::from_static(b"x"))
                .await
                .unwrap();
            kv.delete(&host, "t", "k").await.unwrap();
            assert!(matches!(
                kv.get(&host, "t", "k", Consistency::Strong).await,
                Err(KvError::NoSuchKey(_))
            ));
            assert_eq!(kv.table_len("t"), 0);
        });
    }

    #[test]
    fn billing_counts_reads_writes_and_failed_cas() {
        let (sim, kv, host, ledger) = setup();
        sim.block_on(async move {
            kv.put(&host, "t", "k", Bytes::from_static(b"x"))
                .await
                .unwrap();
            kv.get(&host, "t", "k", Consistency::Strong).await.unwrap();
            let _ = kv
                .put_if(
                    &host,
                    "t",
                    "k",
                    Bytes::from_static(b"y"),
                    Condition::NotExists,
                )
                .await; // fails, still billed
        });
        assert_eq!(ledger.item_quantity(Service::Kv, "write-requests"), 2.0);
        assert_eq!(ledger.item_quantity(Service::Kv, "read-requests"), 1.0);
    }

    #[test]
    fn scan_bills_per_item() {
        let (sim, kv, host, ledger) = setup();
        sim.block_on(async move {
            for i in 0..5 {
                kv.put(&host, "t", &format!("p/{i}"), Bytes::from_static(b"v"))
                    .await
                    .unwrap();
            }
            kv.scan_prefix(&host, "t", "p/").await.unwrap();
            // Empty scan still bills one request.
            kv.scan_prefix(&host, "t", "zzz/").await.unwrap();
        });
        assert_eq!(ledger.item_quantity(Service::Kv, "read-requests"), 6.0);
    }
}
