//! # faasim-queue
//!
//! An SQS-like message queue service plus an SNS-like topic fanout.
//!
//! Faithful to the properties the paper leans on in §3.1's prediction-
//! serving case study:
//! - batches are capped at **10 messages** ("SQS only allows batches of 10
//!   messages at a time, so we limited all experiments here to 10-message
//!   batches");
//! - at-least-once delivery with **visibility timeouts** and receipt
//!   handles;
//! - **per-request pricing** ($0.40 per million requests) — the mechanism
//!   behind the $1,584/hr figure at 1M messages/s;
//! - long polling.
//!
//! Latency calibration: an EC2 consumer's receive+delete of a ready batch
//! costs ~13 ms (11 ms receive + 2 ms delete), the paper's EC2+SQS number.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::fmt;
use std::rc::Rc;

use faasim_net::Host;
use faasim_payload::Payload;
use faasim_pricing::{Ledger, PriceBook, Service};
use faasim_simcore::{
    select2, Either, LatencyModel, Notify, Recorder, Sim, SimDuration, SimRng, SimTime,
};

/// The SQS batch ceiling.
pub const MAX_BATCH: usize = 10;

/// Errors returned by queue operations.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum QueueError {
    /// The queue does not exist.
    NoSuchQueue(String),
    /// A receipt was stale (message already redelivered or deleted).
    InvalidReceipt,
    /// A batch exceeded [`MAX_BATCH`].
    BatchTooLarge(usize),
}

impl fmt::Display for QueueError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QueueError::NoSuchQueue(q) => write!(f, "no such queue: {q}"),
            QueueError::InvalidReceipt => write!(f, "invalid receipt"),
            QueueError::BatchTooLarge(n) => write!(f, "batch of {n} exceeds {MAX_BATCH}"),
        }
    }
}

impl std::error::Error for QueueError {}

/// Latency profile of the queue service.
#[derive(Clone, Debug)]
pub struct QueueProfile {
    /// Latency of a send request.
    pub send_latency: LatencyModel,
    /// Latency of a receive request that finds messages ready.
    pub receive_latency: LatencyModel,
    /// Latency of a delete request.
    pub delete_latency: LatencyModel,
}

impl QueueProfile {
    /// Calibrated to §3.1 CS-2 (13 ms receive+delete per ready batch).
    pub fn aws_2018() -> QueueProfile {
        QueueProfile {
            send_latency: LatencyModel::LogNormal {
                mean: SimDuration::from_millis(5),
                cv: 0.2,
                floor: SimDuration::from_millis(1),
            },
            receive_latency: LatencyModel::LogNormal {
                mean: SimDuration::from_millis(11),
                cv: 0.2,
                floor: SimDuration::from_millis(2),
            },
            delete_latency: LatencyModel::LogNormal {
                mean: SimDuration::from_millis(2),
                cv: 0.2,
                floor: SimDuration::from_micros(500),
            },
        }
    }

    /// Collapse to constant means for exact reproduction.
    pub fn exact(mut self) -> QueueProfile {
        self.send_latency = self.send_latency.to_constant();
        self.receive_latency = self.receive_latency.to_constant();
        self.delete_latency = self.delete_latency.to_constant();
        self
    }
}

/// Per-queue configuration.
#[derive(Clone, Debug)]
pub struct QueueConfig {
    /// How long a received message stays invisible before redelivery.
    pub visibility_timeout: SimDuration,
    /// Dead-letter routing: after `max_receives` receives without a
    /// delete, the message moves to `queue`.
    pub dead_letter: Option<DeadLetterConfig>,
}

/// Dead-letter queue wiring.
#[derive(Clone, Debug)]
pub struct DeadLetterConfig {
    /// Target queue for poisoned messages.
    pub queue: String,
    /// Maximum receives before dead-lettering.
    pub max_receives: u32,
}

impl Default for QueueConfig {
    fn default() -> Self {
        QueueConfig {
            visibility_timeout: SimDuration::from_secs(30),
            dead_letter: None,
        }
    }
}

/// Identifier of an enqueued message.
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct MessageId(pub u64);

/// Receipt handle required to delete a received message.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Receipt {
    queue: String,
    id: MessageId,
    generation: u32,
}

/// A message delivered by [`QueueService::receive`].
#[derive(Clone, Debug)]
pub struct ReceivedMessage {
    /// The message id.
    pub id: MessageId,
    /// Payload.
    pub body: Payload,
    /// Receipt handle for deletion.
    pub receipt: Receipt,
    /// How many times this message has been received (including this one).
    pub receive_count: u32,
    /// When the message was first enqueued.
    pub enqueued_at: SimTime,
}

struct StoredMessage {
    id: MessageId,
    body: Payload,
    visible_at: SimTime,
    receive_count: u32,
    generation: u32,
    enqueued_at: SimTime,
    deleted: bool,
}

struct QueueState {
    config: QueueConfig,
    messages: Vec<StoredMessage>,
    arrivals: Notify,
}

impl QueueState {
    fn next_visible_at(&self, now: SimTime) -> Option<SimTime> {
        self.messages
            .iter()
            .filter(|m| !m.deleted && m.visible_at > now)
            .map(|m| m.visible_at)
            .min()
    }
}

/// Deterministic fault knobs for the queue service, modeling the rough
/// edges of at-least-once delivery. Zero by default; no RNG draws are
/// consumed while every probability is zero, so enabling chaos never
/// perturbs a fault-free run at the same seed.
#[derive(Clone, Debug, PartialEq)]
pub struct QueueFaults {
    /// Probability that a client-sent message is enqueued twice with two
    /// distinct ids (upstream duplication — the sender's retry after a
    /// lost acknowledgment).
    pub duplicate_prob: f64,
    /// Probability that a client-sent message only becomes visible after
    /// an extra [`QueueFaults::delay`] (a slow shard).
    pub delay_prob: f64,
    /// The extra delay applied when [`QueueFaults::delay_prob`] hits.
    pub delay: LatencyModel,
}

impl Default for QueueFaults {
    fn default() -> Self {
        QueueFaults {
            duplicate_prob: 0.0,
            delay_prob: 0.0,
            delay: LatencyModel::Constant(SimDuration::from_secs(1)),
        }
    }
}

struct ServiceState {
    queues: BTreeMap<String, QueueState>,
    topics: BTreeMap<String, Vec<String>>,
    next_id: u64,
    rng: SimRng,
    faults: QueueFaults,
}

/// The queue service handle. Cheap to clone.
#[derive(Clone)]
pub struct QueueService {
    sim: Sim,
    profile: Rc<QueueProfile>,
    prices: Rc<PriceBook>,
    ledger: Ledger,
    recorder: Recorder,
    state: Rc<RefCell<ServiceState>>,
}

impl QueueService {
    /// Create the service.
    pub fn new(
        sim: &Sim,
        profile: QueueProfile,
        prices: Rc<PriceBook>,
        ledger: Ledger,
        recorder: Recorder,
    ) -> QueueService {
        QueueService {
            sim: sim.clone(),
            profile: Rc::new(profile),
            prices,
            ledger,
            recorder,
            state: Rc::new(RefCell::new(ServiceState {
                queues: BTreeMap::new(),
                topics: BTreeMap::new(),
                next_id: 0,
                rng: sim.rng("queue.service"),
                faults: QueueFaults::default(),
            })),
        }
    }

    /// Create a queue (idempotent; reconfigures if it exists).
    pub fn create_queue(&self, name: &str, config: QueueConfig) {
        let mut st = self.state.borrow_mut();
        match st.queues.get_mut(name) {
            Some(q) => q.config = config,
            None => {
                st.queues.insert(
                    name.to_owned(),
                    QueueState {
                        config,
                        messages: Vec::new(),
                        arrivals: Notify::new(),
                    },
                );
            }
        }
    }

    fn sample(&self, model: &LatencyModel) -> SimDuration {
        let mut st = self.state.borrow_mut();
        model.sample(&mut st.rng)
    }

    fn charge_request(&self, n: f64) {
        self.ledger.charge(
            Service::Queue,
            "requests",
            n,
            n * self.prices.queue_per_request,
        );
    }

    /// Install chaos knobs; pass `QueueFaults::default()` to disable.
    pub fn set_faults(&self, faults: QueueFaults) {
        self.state.borrow_mut().faults = faults;
    }

    /// Enqueue message bodies. `client_send` marks messages arriving from
    /// a client request — only those are subject to chaos duplication and
    /// delay (internal dead-letter moves are exempt).
    fn enqueue_now(
        &self,
        queue: &str,
        bodies: Vec<Payload>,
        client_send: bool,
    ) -> Result<Vec<MessageId>, QueueError> {
        let now = self.sim.now();
        let mut st = self.state.borrow_mut();
        // Decide per-body faults before touching the queue map (rng and
        // queues live in the same RefCell'd struct). `copies` is 1 or 2;
        // `extra_delay` shifts initial visibility.
        let plans: Vec<(u32, SimDuration)> = bodies
            .iter()
            .map(|_| {
                if !client_send {
                    return (1, SimDuration::ZERO);
                }
                let faults = st.faults.clone();
                let copies = if faults.duplicate_prob > 0.0 && st.rng.chance(faults.duplicate_prob)
                {
                    2
                } else {
                    1
                };
                let delay = if faults.delay_prob > 0.0 && st.rng.chance(faults.delay_prob) {
                    faults.delay.sample(&mut st.rng)
                } else {
                    SimDuration::ZERO
                };
                (copies, delay)
            })
            .collect();
        let total: u64 = plans.iter().map(|(c, _)| *c as u64).sum();
        let base = st.next_id;
        st.next_id += total;
        let q = st
            .queues
            .get_mut(queue)
            .ok_or_else(|| QueueError::NoSuchQueue(queue.to_owned()))?;
        let mut ids = Vec::with_capacity(bodies.len());
        let mut next = base;
        let mut duplicated = 0u64;
        let mut delayed = 0u64;
        for (body, (copies, extra_delay)) in bodies.into_iter().zip(plans) {
            if copies > 1 {
                duplicated += 1;
            }
            if extra_delay > SimDuration::ZERO {
                delayed += 1;
            }
            for copy in 0..copies {
                let id = MessageId(next);
                next += 1;
                q.messages.push(StoredMessage {
                    id,
                    body: body.clone(),
                    visible_at: now + extra_delay,
                    receive_count: 0,
                    generation: 0,
                    enqueued_at: now,
                    deleted: false,
                });
                // The caller learns one id per body, like a sender whose
                // retry created an invisible second copy.
                if copy == 0 {
                    ids.push(id);
                }
            }
        }
        q.arrivals.notify_all();
        drop(st);
        // Conservation ledger: every stored copy (including chaos
        // duplicates and internal dead-letter moves) is accounted for,
        // so `queue.enqueued == queue.deleted_messages +
        // queue.dead_lettered + total_remaining()` holds at quiescence.
        if total > 0 {
            self.recorder.add("queue.enqueued", total);
        }
        if duplicated > 0 {
            self.recorder.add("queue.chaos_duplicated", duplicated);
        }
        if delayed > 0 {
            self.recorder.add("queue.chaos_delayed", delayed);
        }
        Ok(ids)
    }

    /// Send one message (one billed request).
    pub async fn send(
        &self,
        _caller: &Host,
        queue: &str,
        body: impl Into<Payload>,
    ) -> Result<MessageId, QueueError> {
        let latency = self.sample(&self.profile.send_latency);
        self.sim.sleep(latency).await;
        let ids = self.enqueue_now(queue, vec![body.into()], true)?;
        self.charge_request(1.0);
        self.recorder.incr("queue.send");
        Ok(ids[0])
    }

    /// Send up to [`MAX_BATCH`] messages as one billed request.
    pub async fn send_batch(
        &self,
        _caller: &Host,
        queue: &str,
        bodies: Vec<impl Into<Payload>>,
    ) -> Result<Vec<MessageId>, QueueError> {
        if bodies.len() > MAX_BATCH {
            return Err(QueueError::BatchTooLarge(bodies.len()));
        }
        let latency = self.sample(&self.profile.send_latency);
        self.sim.sleep(latency).await;
        let n = bodies.len();
        let bodies: Vec<Payload> = bodies.into_iter().map(Into::into).collect();
        let ids = self.enqueue_now(queue, bodies, true)?;
        self.charge_request(1.0);
        self.recorder.add("queue.send", n as u64);
        Ok(ids)
    }

    /// Receive up to `max` (≤ [`MAX_BATCH`]) messages, long-polling up to
    /// `wait`. One billed request per poll attempt, matching SQS. Returns
    /// an empty vector on timeout.
    pub async fn receive(
        &self,
        _caller: &Host,
        queue: &str,
        max: usize,
        wait: SimDuration,
    ) -> Result<Vec<ReceivedMessage>, QueueError> {
        let max = max.clamp(1, MAX_BATCH);
        let deadline = self.sim.now().saturating_add(wait);
        // Pay one request regardless of outcome.
        self.charge_request(1.0);
        self.recorder.incr("queue.receive");
        loop {
            // Dead-letter sweep + claim attempt.
            let claimed = self.try_claim(queue, max)?;
            if !claimed.is_empty() {
                let latency = self.sample(&self.profile.receive_latency);
                self.sim.sleep(latency).await;
                self.recorder.add("queue.received", claimed.len() as u64);
                return Ok(claimed);
            }
            let now = self.sim.now();
            if now >= deadline {
                // Empty long poll still pays response latency.
                let latency = self.sample(&self.profile.receive_latency);
                self.sim.sleep(latency).await;
                return Ok(Vec::new());
            }
            // Wait for an arrival or the next visibility boundary.
            let (arrivals, wake_at) = {
                let st = self.state.borrow();
                let q = st
                    .queues
                    .get(queue)
                    .ok_or_else(|| QueueError::NoSuchQueue(queue.to_owned()))?;
                let next_vis = q.next_visible_at(now).unwrap_or(SimTime::MAX);
                (q.arrivals.clone(), next_vis.min(deadline))
            };
            // With nothing scheduled to become visible and an unbounded
            // wait, park on the arrival notifier alone: registering a
            // timer at the far-future instant would keep the simulation
            // from quiescing.
            if wake_at == SimTime::MAX {
                arrivals.notified().await;
                continue;
            }
            match select2(arrivals.notified(), self.sim.sleep_until(wake_at)).await {
                Either::Left(()) | Either::Right(()) => continue,
            }
        }
    }

    fn try_claim(&self, queue: &str, max: usize) -> Result<Vec<ReceivedMessage>, QueueError> {
        let now = self.sim.now();
        let mut dead_lettered: Vec<Payload> = Vec::new();
        let mut dlq_target: Option<String> = None;
        let mut out = Vec::new();
        {
            let mut st = self.state.borrow_mut();
            let q = st
                .queues
                .get_mut(queue)
                .ok_or_else(|| QueueError::NoSuchQueue(queue.to_owned()))?;
            let vt = q.config.visibility_timeout;
            let dl = q.config.dead_letter.clone();
            for m in q.messages.iter_mut() {
                if out.len() >= max {
                    break;
                }
                if m.deleted || m.visible_at > now {
                    continue;
                }
                // Dead-letter check happens on the receive *after* the
                // max'th failed processing attempt.
                if let Some(dl) = &dl {
                    if m.receive_count >= dl.max_receives {
                        m.deleted = true;
                        dead_lettered.push(m.body.clone());
                        dlq_target = Some(dl.queue.clone());
                        continue;
                    }
                }
                m.receive_count += 1;
                m.generation += 1;
                m.visible_at = now + vt;
                out.push(ReceivedMessage {
                    id: m.id,
                    body: m.body.clone(),
                    receipt: Receipt {
                        queue: queue.to_owned(),
                        id: m.id,
                        generation: m.generation,
                    },
                    receive_count: m.receive_count,
                    enqueued_at: m.enqueued_at,
                });
            }
            q.messages.retain(|m| !m.deleted);
        }
        if let (Some(target), false) = (dlq_target, dead_lettered.is_empty()) {
            let n = dead_lettered.len() as u64;
            // Internal move: not billed to the customer, exempt from chaos.
            let _ = self.enqueue_now(&target, dead_lettered, false);
            self.recorder.add("queue.dead_lettered", n);
        }
        Ok(out)
    }

    /// Delete one received message (one billed request).
    pub async fn delete(&self, caller: &Host, receipt: Receipt) -> Result<(), QueueError> {
        self.delete_batch(caller, vec![receipt]).await
    }

    /// Delete up to [`MAX_BATCH`] received messages as one billed request.
    pub async fn delete_batch(
        &self,
        _caller: &Host,
        receipts: Vec<Receipt>,
    ) -> Result<(), QueueError> {
        if receipts.len() > MAX_BATCH {
            return Err(QueueError::BatchTooLarge(receipts.len()));
        }
        let latency = self.sample(&self.profile.delete_latency);
        self.sim.sleep(latency).await;
        self.charge_request(1.0);
        let now = self.sim.now();
        let mut st = self.state.borrow_mut();
        // Track how many messages this batch actually removed: on a
        // partial failure the earlier receipts in the batch have already
        // deleted their messages, and the conservation ledger must see
        // them.
        let mut removed = 0u64;
        let mut failed: Option<QueueError> = None;
        for receipt in receipts {
            let q = match st.queues.get_mut(&receipt.queue) {
                Some(q) => q,
                None => {
                    failed = Some(QueueError::NoSuchQueue(receipt.queue.clone()));
                    break;
                }
            };
            let msg = q
                .messages
                .iter_mut()
                .find(|m| m.id == receipt.id && !m.deleted);
            // A receipt is only valid while its generation holds the
            // message invisible.
            match msg {
                Some(m) if m.generation == receipt.generation && m.visible_at > now => {
                    m.deleted = true;
                    removed += 1;
                }
                _ => {
                    failed = Some(QueueError::InvalidReceipt);
                    break;
                }
            }
        }
        drop(st);
        if removed > 0 {
            self.recorder.add("queue.deleted_messages", removed);
        }
        match failed {
            Some(e) => Err(e),
            None => {
                self.recorder.incr("queue.delete");
                Ok(())
            }
        }
    }

    /// Messages currently in the queue (visible or in flight).
    pub fn queue_len(&self, queue: &str) -> usize {
        self.state
            .borrow()
            .queues
            .get(queue)
            .map(|q| q.messages.iter().filter(|m| !m.deleted).count())
            .unwrap_or(0)
    }

    /// Messages still stored across *all* queues (visible or in
    /// flight), dead-letter queues included — the "remaining" term of
    /// the conservation invariant
    /// `enqueued == deleted + dead_lettered + remaining`.
    pub fn total_remaining(&self) -> u64 {
        self.state
            .borrow()
            .queues
            .values()
            .map(|q| q.messages.iter().filter(|m| !m.deleted).count() as u64)
            .sum()
    }

    /// Messages visible for receive right now.
    pub fn visible_len(&self, queue: &str) -> usize {
        let now = self.sim.now();
        self.state
            .borrow()
            .queues
            .get(queue)
            .map(|q| {
                q.messages
                    .iter()
                    .filter(|m| !m.deleted && m.visible_at <= now)
                    .count()
            })
            .unwrap_or(0)
    }

    // --- SNS-like topics -------------------------------------------------

    /// Create a topic (idempotent).
    pub fn create_topic(&self, name: &str) {
        self.state
            .borrow_mut()
            .topics
            .entry(name.to_owned())
            .or_default();
    }

    /// Subscribe `queue` to `topic`.
    pub fn subscribe_queue(&self, topic: &str, queue: &str) {
        let mut st = self.state.borrow_mut();
        let subs = st.topics.entry(topic.to_owned()).or_default();
        if !subs.iter().any(|q| q == queue) {
            subs.push(queue.to_owned());
        }
    }

    /// Publish to a topic: the message is fanned out to every subscribed
    /// queue. One billed request.
    pub async fn publish(
        &self,
        _caller: &Host,
        topic: &str,
        body: impl Into<Payload>,
    ) -> Result<usize, QueueError> {
        let body = body.into();
        let latency = self.sample(&self.profile.send_latency);
        self.sim.sleep(latency).await;
        let subs: Vec<String> = self
            .state
            .borrow()
            .topics
            .get(topic)
            .cloned()
            .unwrap_or_default();
        for q in &subs {
            let _ = self.enqueue_now(q, vec![body.clone()], true);
        }
        self.charge_request(1.0);
        self.recorder.incr("queue.publish");
        Ok(subs.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;
    use faasim_net::{Fabric, NetProfile, NicConfig};
    use faasim_simcore::mbps;

    fn setup() -> (Sim, QueueService, Host, Ledger) {
        let sim = Sim::new(21);
        let recorder = Recorder::new();
        let fabric = Fabric::new(&sim, NetProfile::aws_2018().exact(), recorder.clone());
        let host = fabric.add_host(0, NicConfig::simple(mbps(10_000.0)));
        let ledger = Ledger::new();
        let svc = QueueService::new(
            &sim,
            QueueProfile::aws_2018().exact(),
            Rc::new(PriceBook::aws_2018()),
            ledger.clone(),
            recorder,
        );
        svc.create_queue("q", QueueConfig::default());
        (sim, svc, host, ledger)
    }

    #[test]
    fn send_receive_delete_roundtrip() {
        let (sim, svc, host, _) = setup();
        sim.block_on(async move {
            svc.send(&host, "q", Bytes::from_static(b"m1")).await.unwrap();
            let got = svc
                .receive(&host, "q", 10, SimDuration::from_secs(1))
                .await
                .unwrap();
            assert_eq!(got.len(), 1);
            assert!(got[0].body.eq_bytes(b"m1"));
            svc.delete(&host, got[0].receipt.clone()).await.unwrap();
            assert_eq!(svc.queue_len("q"), 0);
        });
    }

    #[test]
    fn ready_batch_receive_delete_is_13ms() {
        // §3.1 CS-2: EC2 receive+delete of a ready 10-message batch = 13 ms.
        let (sim, svc, host, _) = setup();
        sim.block_on({
            let svc = svc.clone();
            async move {
                let bodies: Vec<Bytes> =
                    (0..10).map(|_| Bytes::from_static(b"doc")).collect();
                svc.send_batch(&host, "q", bodies).await.unwrap();
                let t0 = svc.sim.now();
                let got = svc
                    .receive(&host, "q", 10, SimDuration::from_secs(1))
                    .await
                    .unwrap();
                assert_eq!(got.len(), 10);
                let receipts = got.into_iter().map(|m| m.receipt).collect();
                svc.delete_batch(&host, receipts).await.unwrap();
                let ms = (svc.sim.now() - t0).as_secs_f64() * 1e3;
                assert!((ms - 13.0).abs() < 0.5, "receive+delete {ms} ms");
            }
        });
    }

    #[test]
    fn batch_cap_enforced() {
        let (sim, svc, host, _) = setup();
        sim.block_on(async move {
            let bodies: Vec<Bytes> = (0..11).map(|_| Bytes::new()).collect();
            assert!(matches!(
                svc.send_batch(&host, "q", bodies).await,
                Err(QueueError::BatchTooLarge(11))
            ));
            // receive() clamps silently to 10.
            for _ in 0..15 {
                svc.send(&host, "q", Bytes::new()).await.unwrap();
            }
            let got = svc
                .receive(&host, "q", 100, SimDuration::ZERO)
                .await
                .unwrap();
            assert_eq!(got.len(), 10);
        });
    }

    #[test]
    fn long_poll_wakes_on_arrival() {
        let (sim, svc, host, _) = setup();
        let svc2 = svc.clone();
        let host2 = host.clone();
        let s = sim.clone();
        sim.spawn(async move {
            s.sleep(SimDuration::from_secs(2)).await;
            svc2.send(&host2, "q", Bytes::from_static(b"late")).await.unwrap();
        });
        let got = sim.block_on(async move {
            svc.receive(&host, "q", 10, SimDuration::from_secs(20)).await.unwrap()
        });
        assert_eq!(got.len(), 1);
        // Woke shortly after the 2 s arrival, not at the 20 s deadline.
        assert!(sim.now().as_secs_f64() < 3.0, "{}", sim.now());
    }

    #[test]
    fn long_poll_times_out_empty() {
        let (sim, svc, host, _) = setup();
        let got = sim.block_on(async move {
            svc.receive(&host, "q", 10, SimDuration::from_secs(5)).await.unwrap()
        });
        assert!(got.is_empty());
        assert!(sim.now().as_secs_f64() >= 5.0);
    }

    #[test]
    fn visibility_timeout_redelivers() {
        let (sim, svc, host, _) = setup();
        svc.create_queue(
            "q",
            QueueConfig {
                visibility_timeout: SimDuration::from_secs(10),
                dead_letter: None,
            },
        );
        sim.block_on({
            let svc = svc.clone();
            async move {
                svc.send(&host, "q", Bytes::from_static(b"m")).await.unwrap();
                let first = svc
                    .receive(&host, "q", 1, SimDuration::ZERO)
                    .await
                    .unwrap();
                assert_eq!(first.len(), 1);
                // Invisible while the first consumer holds it.
                let none = svc
                    .receive(&host, "q", 1, SimDuration::from_secs(1))
                    .await
                    .unwrap();
                assert!(none.is_empty());
                // After the visibility timeout it comes back...
                let again = svc
                    .receive(&host, "q", 1, SimDuration::from_secs(30))
                    .await
                    .unwrap();
                assert_eq!(again.len(), 1);
                assert_eq!(again[0].receive_count, 2);
                // ...and the stale first receipt can no longer delete it.
                assert_eq!(
                    svc.delete(&host, first[0].receipt.clone()).await,
                    Err(QueueError::InvalidReceipt)
                );
                svc.delete(&host, again[0].receipt.clone()).await.unwrap();
            }
        });
    }

    #[test]
    fn dead_letter_after_max_receives() {
        let (sim, svc, host, _) = setup();
        svc.create_queue("dlq", QueueConfig::default());
        svc.create_queue(
            "q",
            QueueConfig {
                visibility_timeout: SimDuration::from_millis(100),
                dead_letter: Some(DeadLetterConfig {
                    queue: "dlq".to_owned(),
                    max_receives: 2,
                }),
            },
        );
        sim.block_on({
            let svc = svc.clone();
            async move {
                svc.send(&host, "q", Bytes::from_static(b"poison")).await.unwrap();
                // Receive twice without deleting (processing "fails").
                for _ in 0..2 {
                    let got = svc
                        .receive(&host, "q", 1, SimDuration::from_secs(1))
                        .await
                        .unwrap();
                    assert_eq!(got.len(), 1);
                    svc.sim.sleep(SimDuration::from_millis(200)).await;
                }
                // Third receive dead-letters instead of delivering.
                let got = svc
                    .receive(&host, "q", 1, SimDuration::ZERO)
                    .await
                    .unwrap();
                assert!(got.is_empty());
                assert_eq!(svc.queue_len("q"), 0);
                assert_eq!(svc.queue_len("dlq"), 1);
            }
        });
    }

    #[test]
    fn billing_counts_requests_not_messages() {
        let (sim, svc, host, ledger) = setup();
        sim.block_on(async move {
            let bodies: Vec<Bytes> = (0..10).map(|_| Bytes::new()).collect();
            svc.send_batch(&host, "q", bodies).await.unwrap(); // 1 request
            let got = svc
                .receive(&host, "q", 10, SimDuration::ZERO)
                .await
                .unwrap(); // 1 request
            let receipts = got.into_iter().map(|m| m.receipt).collect();
            svc.delete_batch(&host, receipts).await.unwrap(); // 1 request
        });
        assert_eq!(ledger.item_quantity(Service::Queue, "requests"), 3.0);
        let expect = 3.0 * 0.40 / 1e6;
        assert!((ledger.total() - expect).abs() < 1e-12);
    }

    #[test]
    fn unknown_queue_errors() {
        let (sim, svc, host, _) = setup();
        sim.block_on(async move {
            assert!(matches!(
                svc.send(&host, "ghost", Bytes::new()).await,
                Err(QueueError::NoSuchQueue(_))
            ));
            assert!(matches!(
                svc.receive(&host, "ghost", 1, SimDuration::ZERO).await,
                Err(QueueError::NoSuchQueue(_))
            ));
        });
    }

    #[test]
    fn topic_fanout_reaches_all_queues() {
        let (sim, svc, host, _) = setup();
        svc.create_queue("a", QueueConfig::default());
        svc.create_queue("b", QueueConfig::default());
        svc.create_topic("t");
        svc.subscribe_queue("t", "a");
        svc.subscribe_queue("t", "b");
        svc.subscribe_queue("t", "b"); // duplicate ignored
        let n = sim.block_on({
            let svc = svc.clone();
            async move {
                svc.publish(&host, "t", Bytes::from_static(b"announce"))
                    .await
                    .unwrap()
            }
        });
        assert_eq!(n, 2);
        assert_eq!(svc.queue_len("a"), 1);
        assert_eq!(svc.queue_len("b"), 1);
    }

    #[test]
    fn fifo_order_within_queue() {
        let (sim, svc, host, _) = setup();
        let got = sim.block_on(async move {
            for i in 0..5u8 {
                svc.send(&host, "q", Bytes::from(vec![i])).await.unwrap();
            }
            svc.receive(&host, "q", 10, SimDuration::ZERO).await.unwrap()
        });
        let order: Vec<u8> = got.iter().map(|m| m.body.bytes()[0]).collect();
        assert_eq!(order, vec![0, 1, 2, 3, 4]);
    }
}
