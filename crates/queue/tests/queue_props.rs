//! Property tests for the queue's at-least-once state machine.
//!
//! For arbitrary interleavings of sends, receives, deletes, and clock
//! advances against a queue with a dead-letter policy, every message is
//! in exactly one of four states — delivered-and-deleted, in flight,
//! visible, or dead-lettered. Two properties must hold at every step
//! and at the end of every run:
//!
//! - **terminal exclusivity**: a deleted message is never redelivered
//!   and never dead-letters; a dead-lettered message is never deleted
//!   from the origin queue (stale receipts are rejected);
//! - **conservation**: nothing is ever silently lost — at quiescence
//!   every sent message is either in the deleted set or the DLQ, and
//!   the recorder's `enqueued == deleted + dead_lettered + remaining`
//!   identity balances.

use std::collections::BTreeSet;
use std::rc::Rc;

use faasim_net::{Fabric, NetProfile, NicConfig};
use faasim_payload::Payload;
use faasim_pricing::{Ledger, PriceBook};
use faasim_queue::{
    DeadLetterConfig, QueueConfig, QueueError, QueueProfile, QueueService, ReceivedMessage,
    Receipt,
};
use faasim_simcore::{mbps, Recorder, Sim, SimDuration};
use proptest::prelude::*;

const VISIBILITY: SimDuration = SimDuration::from_millis(100);
const MAX_RECEIVES: u32 = 3;

#[derive(Clone, Debug)]
enum Op {
    /// Send the next uniquely-bodied message.
    Send,
    /// Receive up to `max` messages (zero wait).
    Receive { max: usize },
    /// Delete the `idx % held`-th outstanding receipt (may be stale).
    DeleteHeld { idx: usize },
    /// Advance the clock, possibly across visibility boundaries.
    Sleep { ms: u64 },
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        Just(Op::Send),
        (1usize..10).prop_map(|max| Op::Receive { max }),
        (0usize..16).prop_map(|idx| Op::DeleteHeld { idx }),
        (10u64..400).prop_map(|ms| Op::Sleep { ms }),
    ]
}

fn setup(seed: u64) -> (Sim, QueueService, faasim_net::Host, Recorder) {
    let sim = Sim::new(seed);
    let recorder = Recorder::new();
    let fabric = Fabric::new(&sim, NetProfile::aws_2018().exact(), recorder.clone());
    let host = fabric.add_host(0, NicConfig::simple(mbps(10_000.0)));
    let svc = QueueService::new(
        &sim,
        QueueProfile::aws_2018().exact(),
        Rc::new(PriceBook::aws_2018()),
        Ledger::new(),
        recorder.clone(),
    );
    svc.create_queue("dlq", QueueConfig::default());
    svc.create_queue(
        "q",
        QueueConfig {
            visibility_timeout: VISIBILITY,
            dead_letter: Some(DeadLetterConfig {
                queue: "dlq".into(),
                max_receives: MAX_RECEIVES,
            }),
        },
    );
    (sim, svc, host, recorder)
}

fn body_of(m: &ReceivedMessage) -> String {
    String::from_utf8(m.body.to_vec()).expect("utf8 body")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn message_states_are_exclusive_and_nothing_is_lost(
        seed in 0u64..10_000,
        ops in prop::collection::vec(op_strategy(), 1..40),
    ) {
        let (sim, svc, host, recorder) = setup(seed);
        let script = ops.clone();
        let outcome = sim.clone().block_on(async move {
            let mut sent: BTreeSet<String> = BTreeSet::new();
            let mut deleted: BTreeSet<String> = BTreeSet::new();
            let mut held: Vec<(String, Receipt)> = Vec::new();
            let mut next = 0u32;
            for op in &script {
                match op {
                    Op::Send => {
                        let body = format!("m-{next:04}");
                        next += 1;
                        svc.send(&host, "q", Payload::inline(body.clone()))
                            .await
                            .expect("send");
                        sent.insert(body);
                    }
                    Op::Receive { max } => {
                        let got = svc
                            .receive(&host, "q", *max, SimDuration::ZERO)
                            .await
                            .expect("receive");
                        for m in got {
                            let body = body_of(&m);
                            if deleted.contains(&body) {
                                return Err(format!("deleted message {body} was redelivered"));
                            }
                            held.push((body, m.receipt));
                        }
                    }
                    Op::DeleteHeld { idx } => {
                        if held.is_empty() {
                            continue;
                        }
                        let (body, receipt) = held.remove(idx % held.len());
                        match svc.delete(&host, receipt).await {
                            Ok(()) => {
                                // First successful delete of this body: the
                                // queue must never hand it out again.
                                deleted.insert(body);
                            }
                            // Stale receipt: the message was redelivered or
                            // dead-lettered since this claim. Rejection IS
                            // the correct behaviour — deleting through a
                            // stale receipt could erase someone else's
                            // in-flight claim.
                            Err(QueueError::InvalidReceipt) => {}
                            Err(e) => return Err(format!("delete failed oddly: {e}")),
                        }
                    }
                    Op::Sleep { ms } => {
                        sim.sleep(SimDuration::from_millis(*ms)).await;
                    }
                }
            }

            // Drive every undeleted message to its terminal state: stop
            // deleting, keep receiving, and let the receive budget move
            // the remainder to the DLQ.
            let mut spins = 0;
            while svc.queue_len("q") > 0 {
                spins += 1;
                if spins > 200 {
                    return Err(format!(
                        "queue did not drain: {} messages still present",
                        svc.queue_len("q")
                    ));
                }
                sim.sleep(VISIBILITY + SimDuration::from_millis(50)).await;
                let got = svc
                    .receive(&host, "q", 10, SimDuration::ZERO)
                    .await
                    .expect("drain receive");
                for m in got {
                    let body = body_of(&m);
                    if deleted.contains(&body) {
                        return Err(format!("deleted message {body} was redelivered"));
                    }
                }
            }

            // Empty the DLQ, collecting terminal dead-lettered bodies.
            let mut dead: BTreeSet<String> = BTreeSet::new();
            loop {
                let got = svc
                    .receive(&host, "dlq", 10, SimDuration::ZERO)
                    .await
                    .expect("dlq receive");
                if got.is_empty() {
                    break;
                }
                for m in got {
                    let body = body_of(&m);
                    if deleted.contains(&body) {
                        return Err(format!("{body} is both deleted and dead-lettered"));
                    }
                    if !dead.insert(body.clone()) {
                        return Err(format!("{body} dead-lettered twice"));
                    }
                    svc.delete(&host, m.receipt).await.expect("dlq delete");
                }
            }

            // Conservation: every sent message reached exactly one
            // terminal state.
            let mut accounted = deleted.clone();
            accounted.extend(dead.iter().cloned());
            if accounted != sent {
                return Err(format!(
                    "lost or invented messages: sent {} != deleted {} + dead {}",
                    sent.len(),
                    deleted.len(),
                    dead.len()
                ));
            }
            Ok(svc.total_remaining())
        });
        let remaining = match outcome {
            Ok(n) => n,
            Err(msg) => panic!("invariant violated with ops {ops:?}: {msg}"),
        };
        prop_assert_eq!(remaining, 0, "queues must be empty at quiescence");
        // Counter identity at quiescence.
        let enqueued = recorder.counter("queue.enqueued");
        let del = recorder.counter("queue.deleted_messages");
        let dl = recorder.counter("queue.dead_lettered");
        prop_assert_eq!(
            enqueued,
            del + dl,
            "enqueued != deleted + dead_lettered at empty queues"
        );
    }
}
