//! The [`FaultPlan`]: one declarative description of everything that
//! goes wrong, applied to a [`Cloud`] in a single call.

use faasim::{Cloud, CloudProfile};
use faasim_blob::BlobFaults;
use faasim_faas::FaasFaults;
use faasim_kv::KvFaults;
use faasim_net::{HostId, NetFaults};
use faasim_queue::QueueFaults;
use faasim_simcore::SimDuration;

/// A scheduled network partition: at `at` (relative to when the plan is
/// applied) the fabric splits `side_a` from `side_b`, healing after
/// `duration`. Windows must not overlap — the fabric models one
/// partition at a time.
#[derive(Clone, Debug)]
pub struct PartitionWindow {
    /// Offset from plan application at which the partition begins.
    pub at: SimDuration,
    /// How long the partition lasts.
    pub duration: SimDuration,
    /// One side of the split.
    pub side_a: Vec<HostId>,
    /// The other side.
    pub side_b: Vec<HostId>,
}

/// Every fault knob for every service tier, in one struct.
///
/// The default plan is completely calm: all probabilities zero, no
/// scheduled events. Because each service's fault hook only draws from
/// its RNG stream when the relevant probability is non-zero, applying
/// the default plan is byte-for-byte indistinguishable from never
/// applying a plan at all.
#[derive(Clone, Debug, Default)]
pub struct FaultPlan {
    /// Network-tier faults: latency spikes and packet loss.
    pub net: NetFaults,
    /// KV-store faults: transient `Throttled` errors.
    pub kv: KvFaults,
    /// Blob-store faults: transient 503-style `Unavailable` errors.
    pub blob: BlobFaults,
    /// Queue faults: duplicate and delayed deliveries.
    pub queue: QueueFaults,
    /// FaaS faults: mid-flight container kills.
    pub faas: FaasFaults,
    /// Scheduled partition windows (non-overlapping).
    pub partitions: Vec<PartitionWindow>,
    /// Cold-start storms: at each offset, every idle container is
    /// evicted, so the next wave of invocations pays cold starts.
    pub storms: Vec<SimDuration>,
}

impl FaultPlan {
    /// A plan with no faults at all — the control arm of any sweep.
    pub fn calm() -> FaultPlan {
        FaultPlan::default()
    }

    /// A moderately hostile preset touching every tier: 5% network
    /// delay spikes, 2% packet loss, 10% KV throttling, 5% blob 503s,
    /// 10% queue duplicates, 5% queue delays, 3% function kills.
    pub fn hostile() -> FaultPlan {
        let mut plan = FaultPlan::default();
        plan.net.delay_spike_prob = 0.05;
        plan.net.loss_prob = 0.02;
        plan.kv.throttle_prob = 0.10;
        plan.blob.unavailable_prob = 0.05;
        plan.queue.duplicate_prob = 0.10;
        plan.queue.delay_prob = 0.05;
        plan.faas.kill_prob = 0.03;
        plan
    }

    /// Install every knob on `cloud` and schedule the timed events
    /// (partitions, storms) relative to the current virtual time.
    pub fn apply(&self, cloud: &Cloud) {
        cloud.fabric.set_faults(self.net.clone());
        cloud.kv.set_faults(self.kv);
        cloud.blob.set_faults(self.blob);
        cloud.queue.set_faults(self.queue.clone());
        cloud.faas.set_faults(self.faas);

        let t0 = cloud.sim.now();
        for w in &self.partitions {
            let fabric = cloud.fabric.clone();
            let (side_a, side_b) = (w.side_a.clone(), w.side_b.clone());
            cloud.sim.call_at(t0 + w.at, move || {
                fabric.partition(&side_a, &side_b);
            });
            let fabric = cloud.fabric.clone();
            cloud.sim.call_at(t0 + w.at + w.duration, move || {
                fabric.heal_partition();
            });
        }
        for &at in &self.storms {
            let faas = cloud.faas.clone();
            cloud.sim.call_at(t0 + at, move || {
                faas.evict_warm();
            });
        }
    }

    /// Build a fresh cloud from `profile` at `seed` with this plan
    /// already applied.
    pub fn build(&self, profile: CloudProfile, seed: u64) -> Cloud {
        let cloud = Cloud::new(profile, seed);
        self.apply(&cloud);
        cloud
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;

    fn digest_of(plan: Option<&FaultPlan>, seed: u64) -> String {
        let cloud = Cloud::new(CloudProfile::aws_2018().exact(), seed);
        if let Some(p) = plan {
            p.apply(&cloud);
        }
        cloud.blob.create_bucket("b");
        cloud.kv.create_table("t");
        let host = cloud.client_host();
        let blob = cloud.blob.clone();
        let kv = cloud.kv.clone();
        cloud.sim.block_on(async move {
            for i in 0..20u8 {
                // Faults are allowed (and expected) under a hostile plan.
                let _ = blob
                    .put(&host, "b", &format!("k{i}"), Bytes::from(vec![i; 64]))
                    .await;
                let _ = kv.put(&host, "t", &format!("k{i}"), Bytes::from(vec![i])).await;
            }
        });
        cloud.recorder.digest()
    }

    fn stormy() -> FaultPlan {
        let mut plan = FaultPlan::hostile();
        // Crank the storage-tier probabilities so 40 ops are guaranteed
        // to hit faults at any seed.
        plan.kv.throttle_prob = 0.5;
        plan.blob.unavailable_prob = 0.5;
        plan
    }

    #[test]
    fn calm_plan_is_invisible() {
        // Applying an all-zero plan must not perturb the RNG schedule.
        assert_eq!(digest_of(None, 7), digest_of(Some(&FaultPlan::calm()), 7));
    }

    #[test]
    fn hostile_plan_injects_faults_deterministically() {
        let plan = stormy();
        let a = digest_of(Some(&plan), 7);
        let b = digest_of(Some(&plan), 7);
        assert_eq!(a, b, "same seed, same plan => same digest");
        assert!(a.contains("kv.throttled"), "throttling fired:\n{a}");
        assert!(a.contains("blob.unavailable"), "503s fired:\n{a}");
        assert_ne!(
            a,
            digest_of(None, 7),
            "a hostile plan should actually change behaviour"
        );
    }

    #[test]
    fn storms_evict_idle_containers() {
        use faasim_faas::FunctionSpec;
        let mut plan = FaultPlan::calm();
        plan.storms.push(SimDuration::from_secs(30));
        let cloud = plan.build(CloudProfile::aws_2018().exact(), 3);
        cloud.faas.register(FunctionSpec::new(
            "f",
            128,
            SimDuration::from_secs(10),
            |_ctx, _| async move { Ok(Bytes::new()) },
        ));
        let faas = cloud.faas.clone();
        let sim = cloud.sim.clone();
        cloud.sim.block_on(async move {
            faas.invoke("f", Bytes::new()).await.result.unwrap();
            sim.sleep(SimDuration::from_secs(60)).await;
            // The storm at t=30s evicted the idle container, so this
            // invocation is cold again.
            faas.invoke("f", Bytes::new()).await.result.unwrap();
        });
        assert_eq!(cloud.recorder.counter("faas.chaos_evicted"), 1);
        assert_eq!(cloud.recorder.counter("faas.invoke.cold"), 2);
    }
}
