//! The seed-sweep harness: run a scenario across many seeds, prove
//! every run replays byte-identically, and report the minimal failing
//! seed.

use std::fmt;

/// What one scenario run produced.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RunReport {
    /// Byte-exact digest of the run's [`Recorder`](faasim_simcore::Recorder)
    /// — counters and histogram summaries.
    pub digest: String,
    /// The formatted bill from the run's ledger.
    pub bill: String,
    /// Invariant violations found by the scenario (empty = pass).
    pub violations: Vec<String>,
}

/// A chaos scenario: a workload plus its invariants, parameterised only
/// by the seed. `run` must be a pure function of `seed` — the harness
/// replays every seed twice and treats any divergence as a failure.
pub trait Scenario {
    /// Short name for reports.
    fn name(&self) -> &'static str;
    /// Execute the scenario at `seed` and report.
    fn run(&self, seed: u64) -> RunReport;
}

/// The outcome at one seed.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SeedReport {
    /// The seed swept.
    pub seed: u64,
    /// Violations: the scenario's own, plus any replay divergence.
    pub violations: Vec<String>,
}

impl SeedReport {
    /// Did this seed pass every check?
    pub fn passed(&self) -> bool {
        self.violations.is_empty()
    }
}

/// The outcome of a whole sweep. Comparable with `==` so the parallel
/// engine can be asserted byte-identical to the serial path.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SweepReport {
    /// The scenario's name.
    pub scenario: String,
    /// One report per seed, in sweep order.
    pub results: Vec<SeedReport>,
}

impl SweepReport {
    /// True when every seed passed.
    pub fn passed(&self) -> bool {
        self.results.iter().all(SeedReport::passed)
    }

    /// The smallest failing seed — the one to reproduce first, since
    /// `scenario.run(seed)` is deterministic.
    pub fn minimal_failing_seed(&self) -> Option<u64> {
        self.results
            .iter()
            .filter(|r| !r.passed())
            .map(|r| r.seed)
            .min()
    }

    /// Count of failing seeds.
    pub fn failures(&self) -> usize {
        self.results.iter().filter(|r| !r.passed()).count()
    }
}

impl fmt::Display for SweepReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "sweep {}: {} seeds, {} failed",
            self.scenario,
            self.results.len(),
            self.failures()
        )?;
        for r in &self.results {
            if r.passed() {
                continue;
            }
            writeln!(f, "  seed {} FAILED:", r.seed)?;
            for v in &r.violations {
                writeln!(f, "    - {v}")?;
            }
        }
        if let Some(seed) = self.minimal_failing_seed() {
            writeln!(
                f,
                "  reproduce with: scenario.run({seed}) — runs are deterministic"
            )?;
        }
        Ok(())
    }
}

/// Sweep `scenario` over `seeds`. Each seed runs **twice**; beyond the
/// scenario's own invariants, the two runs must produce byte-identical
/// recorder digests and bills, or the seed fails with a replay-divergence
/// violation. Determinism is not an aspiration here — it is an invariant.
pub fn sweep(scenario: &dyn Scenario, seeds: &[u64]) -> SweepReport {
    let mut results = Vec::with_capacity(seeds.len());
    for &seed in seeds {
        let first = scenario.run(seed);
        let second = scenario.run(seed);
        let mut violations = first.violations.clone();
        if first.digest != second.digest {
            violations.push(format!(
                "replay divergence at seed {seed}: recorder digests differ \
                 between two identical runs"
            ));
        }
        if first.bill != second.bill {
            violations.push(format!(
                "replay divergence at seed {seed}: bills differ between two \
                 identical runs"
            ));
        }
        results.push(SeedReport { seed, violations });
    }
    SweepReport {
        scenario: scenario.name().to_owned(),
        results,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct FailsOdd;
    impl Scenario for FailsOdd {
        fn name(&self) -> &'static str {
            "fails-odd"
        }
        fn run(&self, seed: u64) -> RunReport {
            RunReport {
                digest: format!("digest-{seed}"),
                bill: "$0".to_owned(),
                violations: if seed % 2 == 1 {
                    vec![format!("odd seed {seed}")]
                } else {
                    vec![]
                },
            }
        }
    }

    #[test]
    fn sweep_finds_minimal_failing_seed() {
        let report = sweep(&FailsOdd, &[2, 9, 4, 3, 6]);
        assert!(!report.passed());
        assert_eq!(report.failures(), 2);
        assert_eq!(report.minimal_failing_seed(), Some(3));
        let text = report.to_string();
        assert!(text.contains("seed 9 FAILED"), "{text}");
    }

    struct NonDeterministic(std::cell::Cell<u64>);
    impl Scenario for NonDeterministic {
        fn name(&self) -> &'static str {
            "flaky"
        }
        fn run(&self, _seed: u64) -> RunReport {
            self.0.set(self.0.get() + 1);
            RunReport {
                digest: format!("run-{}", self.0.get()),
                bill: "$0".to_owned(),
                violations: vec![],
            }
        }
    }

    #[test]
    fn replay_divergence_is_a_failure() {
        let report = sweep(&NonDeterministic(Default::default()), &[1]);
        assert!(!report.passed());
        assert!(report.results[0].violations[0].contains("replay divergence"));
    }
}
