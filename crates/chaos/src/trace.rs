//! Trace-replay scenarios for the seed sweep: stream a generated
//! workload trace through the platform under a [`FaultPlan`] and check
//! that every request is accounted for, the cross-service invariants
//! hold, and (under a calm plan) nothing fails — while the sweep harness
//! itself proves each seed replays byte-identically, report included.

use faasim_simcore::SimDuration;
use faasim_trace::{replay_with, ReplayConfig, ReplayOutcome};

use crate::faults::FaultPlan;
use crate::invariants::check_cloud;
use crate::sweep::{RunReport, Scenario};

/// A trace replay under a fault plan, as a sweepable [`Scenario`].
pub struct TraceReplay {
    name: &'static str,
    plan: FaultPlan,
    cfg: ReplayConfig,
    /// A calm plan must complete every request successfully.
    expect_no_failures: bool,
}

impl TraceReplay {
    /// Build a scenario from explicit parts.
    pub fn new(
        name: &'static str,
        plan: FaultPlan,
        cfg: ReplayConfig,
        expect_no_failures: bool,
    ) -> TraceReplay {
        TraceReplay {
            name,
            plan,
            cfg,
            expect_no_failures,
        }
    }

    /// CI-smoke trace (~1,500 invocations over two minutes).
    fn smoke_config() -> ReplayConfig {
        let mut cfg = ReplayConfig::small();
        cfg.trace.total_rate = 12.0;
        cfg.trace.duration = SimDuration::from_mins(2);
        cfg.trace.max_events = 1_500;
        cfg
    }

    /// Small trace under a fault-free plan: every request must succeed.
    pub fn small_calm() -> TraceReplay {
        TraceReplay::new(
            "trace-replay/calm",
            FaultPlan::calm(),
            TraceReplay::smoke_config(),
            true,
        )
    }

    /// Small trace under the hostile plan (kills, storms, delays):
    /// failures are allowed, accounting still has to balance.
    pub fn small_hostile() -> TraceReplay {
        TraceReplay::new(
            "trace-replay/hostile",
            FaultPlan::hostile(),
            TraceReplay::smoke_config(),
            false,
        )
    }

    /// The replay configuration this scenario runs.
    pub fn config(&self) -> &ReplayConfig {
        &self.cfg
    }

    /// Run the replay and return its full outcome (used by tests that
    /// want the report, not just the sweep verdict).
    pub fn replay(&self, seed: u64) -> ReplayOutcome {
        replay_with(&self.cfg, seed, &|cloud| self.plan.apply(cloud), &mut |_| {})
    }
}

impl Scenario for TraceReplay {
    fn name(&self) -> &'static str {
        self.name
    }

    fn run(&self, seed: u64) -> RunReport {
        let mut violations = Vec::new();
        let out = replay_with(
            &self.cfg,
            seed,
            &|cloud| self.plan.apply(cloud),
            &mut |cloud| violations.extend(check_cloud(cloud)),
        );
        let r = &out.report;
        if r.invocations != r.generated {
            violations.push(format!(
                "lost requests: {} generated but {} completed",
                r.generated, r.invocations
            ));
        }
        if r.succeeded + r.failed != r.invocations {
            violations.push(format!(
                "outcome accounting broken: {} ok + {} failed != {} invocations",
                r.succeeded, r.failed, r.invocations
            ));
        }
        if r.attempts < r.succeeded {
            violations.push(format!(
                "impossible attempt count: {} attempts for {} successes",
                r.attempts, r.succeeded
            ));
        }
        if r.cold_starts > r.attempts {
            violations.push(format!(
                "cold starts over-counted: {} cold of {} attempts",
                r.cold_starts, r.attempts
            ));
        }
        if r.gw_offered != r.gw_admitted + r.gw_rate_shed + r.gw_load_shed + r.gw_breaker_rejected {
            violations.push(format!(
                "gateway admission accounting broken: {} offered != {} admitted + {} rate + {} load + {} breaker",
                r.gw_offered, r.gw_admitted, r.gw_rate_shed, r.gw_load_shed, r.gw_breaker_rejected
            ));
        }
        if r.gw_shed_requests > r.failed {
            violations.push(format!(
                "{} requests shed for good but only {} failed",
                r.gw_shed_requests, r.failed
            ));
        }
        if self.expect_no_failures && r.failed > 0 {
            violations.push(format!("{} requests failed under a calm plan", r.failed));
        }
        RunReport {
            // Fold the report into the digest so the sweep's byte-exact
            // replay check covers every published metric too.
            digest: format!("{}\nreport {:?}", out.digest, r),
            bill: out.bill,
            violations,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sweep::sweep;

    #[test]
    fn calm_smoke_sweep_passes() {
        let report = sweep(&TraceReplay::small_calm(), &[1, 2]);
        assert!(report.passed(), "{report}");
    }

    #[test]
    fn hostile_smoke_sweep_passes() {
        let report = sweep(&TraceReplay::small_hostile(), &[1, 2]);
        assert!(report.passed(), "{report}");
    }

    #[test]
    fn hostile_plan_actually_bites() {
        let out = TraceReplay::small_hostile().replay(3);
        assert!(
            out.report.chaos_kills > 0 || out.report.chaos_evicted > 0,
            "hostile plan produced no faults: {:?}",
            out.report
        );
    }
}
