//! Built-in chaos scenarios: the two §2/§3 compositions the repo's
//! integration suite already exercises, now run under fault injection.
//!
//! Both are pure functions of the seed, so the [`sweep`](crate::sweep)
//! harness can replay any failure exactly.

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::rc::Rc;

use bytes::Bytes;
use faasim::protocols::{Crdt, GCounter};
use faasim::{Cloud, CloudProfile};
use faasim_faas::{add_queue_trigger, decode_batch, FunctionSpec};
use faasim_gateway::{Gateway, GatewayConfig, RetryingGateway, TenantConfig, TenantStats};
use faasim_kv::{Consistency, KvError};
use faasim_payload::Payload;
use faasim_queue::QueueConfig;
use faasim_simcore::{LatencyModel, SimDuration};

use faasim_resilience::RetryingKv;
use crate::faults::FaultPlan;
use crate::invariants::check_cloud;
use faasim_resilience::{Deadline, RetryPolicy};
use crate::sweep::{RunReport, Scenario};

fn base_profile() -> CloudProfile {
    CloudProfile::aws_2018().exact()
}

/// §3.2's "disorderly" claim under fire: G-counter replicas gossip
/// snapshots through the *eventually consistent* KV tier while chaos
/// throttles the store and spikes the network, and every replica must
/// still converge to the exact global count once writes quiesce.
///
/// Each replica's KV traffic goes through a [`RetryingKv`] client, so
/// the scenario also demonstrates the retry discipline absorbing
/// `Throttled` errors.
#[derive(Clone, Debug)]
pub struct CrdtSync {
    /// The faults to inject.
    pub plan: FaultPlan,
    /// Number of gossiping replicas.
    pub replicas: u64,
    /// Increments each replica performs.
    pub increments_each: u64,
    /// Retry policy for the replicas' KV clients.
    pub policy: RetryPolicy,
}

impl Default for CrdtSync {
    fn default() -> CrdtSync {
        CrdtSync {
            plan: FaultPlan::calm(),
            replicas: 4,
            increments_each: 25,
            policy: RetryPolicy {
                max_attempts: 8,
                call_timeout: Some(SimDuration::from_secs(10)),
                ..RetryPolicy::default()
            },
        }
    }
}

impl CrdtSync {
    /// The chaotic arm: 15% KV throttling, 5% network delay spikes, 2%
    /// packet loss.
    pub fn chaotic() -> CrdtSync {
        let mut s = CrdtSync::default();
        s.plan.kv.throttle_prob = 0.15;
        s.plan.net.delay_spike_prob = 0.05;
        s.plan.net.loss_prob = 0.02;
        s
    }
}

impl Scenario for CrdtSync {
    fn name(&self) -> &'static str {
        "crdt-sync"
    }

    fn run(&self, seed: u64) -> RunReport {
        let mut profile = base_profile();
        // A deliberately laggy store: eventual reads can be 2 s stale.
        profile.kv.eventual_lag = LatencyModel::Constant(SimDuration::from_secs(2));
        let cloud = Cloud::new(profile, seed);
        self.plan.apply(&cloud);
        cloud.kv.create_table("crdt");

        let replicas = self.replicas;
        let increments_each = self.increments_each;
        let states: Rc<RefCell<Vec<GCounter>>> =
            Rc::new(RefCell::new((0..replicas).map(|_| GCounter::new()).collect()));
        let stuck: Rc<RefCell<Vec<String>>> = Rc::new(RefCell::new(Vec::new()));

        for r in 1..=replicas {
            let kv = RetryingKv::new(
                &cloud.sim,
                &cloud.kv,
                cloud.recorder.clone(),
                self.policy.clone(),
                &format!("chaos.crdt.replica-{r}"),
            );
            let sim = cloud.sim.clone();
            let host = cloud.client_host();
            let states = states.clone();
            let stuck = stuck.clone();
            cloud.sim.spawn(async move {
                let idx = (r - 1) as usize;
                let my_key = format!("replica-{r}");
                for step in 0..increments_each {
                    states.borrow_mut()[idx].increment(r, 1);
                    let snapshot = Bytes::from(states.borrow()[idx].encode());
                    // A publish that exhausts its retries is not fatal —
                    // the next step republishes a superseding snapshot.
                    let _ = kv.put(&host, "crdt", &my_key, snapshot).await;
                    let peer = (r + step) % replicas + 1;
                    if peer != r {
                        match kv
                            .get(&host, "crdt", &format!("replica-{peer}"), Consistency::Eventual)
                            .await
                        {
                            Ok(item) => {
                                if let Some(other) = GCounter::decode(&item.value.bytes()) {
                                    states.borrow_mut()[idx].merge(&other);
                                }
                            }
                            Err(e) if matches!(e.as_fatal(), Some(KvError::NoSuchKey(_))) => {}
                            Err(_) => {} // retries exhausted: gossip again later
                        }
                    }
                    sim.sleep(SimDuration::from_millis(500)).await;
                }
                // Quiesce: keep publishing + merging until propagated.
                for _round in 0..20u64 {
                    let snapshot = Bytes::from(states.borrow()[idx].encode());
                    if kv.put(&host, "crdt", &my_key, snapshot).await.is_err() {
                        stuck
                            .borrow_mut()
                            .push(format!("replica {r}: quiesce publish exhausted retries"));
                    }
                    for peer in 1..=replicas {
                        if peer == r {
                            continue;
                        }
                        if let Ok(item) = kv
                            .get(&host, "crdt", &format!("replica-{peer}"), Consistency::Eventual)
                            .await
                        {
                            if let Some(other) = GCounter::decode(&item.value.bytes()) {
                                states.borrow_mut()[idx].merge(&other);
                            }
                        }
                    }
                    sim.sleep(SimDuration::from_secs(1)).await;
                }
            });
        }
        cloud.sim.run();

        let mut violations = stuck.borrow().clone();
        let want = replicas * increments_each;
        for (i, s) in states.borrow().iter().enumerate() {
            if s.value() != want {
                violations.push(format!(
                    "replica {i} did not converge: {} != {want}",
                    s.value()
                ));
            }
        }
        violations.extend(check_cloud(&cloud));
        RunReport {
            digest: cloud.recorder.digest(),
            bill: cloud.ledger.report(),
            violations,
        }
    }
}

/// The §2 queue-to-function pipeline under at-least-once chaos: a
/// producer sends `messages` distinct payloads, the queue duplicates
/// and delays deliveries, the platform kills workers mid-flight — and
/// the worker fleet must still process **exactly** the expected payload
/// set (dedup makes redelivery idempotent) and drain the queue.
#[derive(Clone, Debug)]
pub struct QueuePipeline {
    /// The faults to inject.
    pub plan: FaultPlan,
    /// Number of distinct payloads sent.
    pub messages: u32,
    /// Virtual time allowed for the pipeline to drain.
    pub deadline: SimDuration,
}

impl Default for QueuePipeline {
    fn default() -> QueuePipeline {
        QueuePipeline {
            plan: FaultPlan::calm(),
            messages: 30,
            deadline: SimDuration::from_secs(180),
        }
    }
}

impl QueuePipeline {
    /// The chaotic arm: 20% duplicate delivery, 10% delayed delivery,
    /// 5% mid-flight kills, 2% packet loss.
    pub fn chaotic() -> QueuePipeline {
        let mut s = QueuePipeline::default();
        s.plan.queue.duplicate_prob = 0.20;
        s.plan.queue.delay_prob = 0.10;
        s.plan.faas.kill_prob = 0.05;
        s.plan.net.loss_prob = 0.02;
        s
    }
}

impl Scenario for QueuePipeline {
    fn name(&self) -> &'static str {
        "queue-pipeline"
    }

    fn run(&self, seed: u64) -> RunReport {
        let cloud = Cloud::new(base_profile(), seed);
        self.plan.apply(&cloud);
        cloud.queue.create_queue(
            "jobs",
            QueueConfig {
                visibility_timeout: SimDuration::from_secs(5),
                dead_letter: None,
            },
        );

        // payload -> delivery count; duplicates and redeliveries bump the
        // count, the invariant only demands the *set* be exact.
        let seen: Rc<RefCell<BTreeMap<u32, u32>>> = Rc::new(RefCell::new(BTreeMap::new()));
        let s = seen.clone();
        cloud.faas.register(FunctionSpec::new(
            "worker",
            256,
            // A short limit keeps the chaos kill window tight enough that
            // kills actually land mid-handler.
            SimDuration::from_secs(1),
            move |ctx, payload| {
                let s = s.clone();
                async move {
                    // Real work before the side effect, so a mid-flight
                    // kill can strike first and force a redelivery.
                    ctx.cpu(SimDuration::from_millis(100)).await;
                    for m in decode_batch(&payload).expect("batch codec") {
                        let id = u32::from_le_bytes(m.bytes()[..4].try_into().expect("4-byte payload"));
                        *s.borrow_mut().entry(id).or_insert(0) += 1;
                    }
                    Ok(Bytes::new())
                }
            },
        ));
        let trigger =
            add_queue_trigger(&cloud.faas, &cloud.queue, &cloud.fabric, "worker", "jobs", 10);

        let host = cloud.client_host();
        let queue = cloud.queue.clone();
        let messages = self.messages;
        cloud.sim.spawn(async move {
            for i in 0..messages {
                queue
                    .send(&host, "jobs", Bytes::from(i.to_le_bytes().to_vec()))
                    .await
                    .expect("queue exists");
            }
        });
        cloud.sim.run_until(cloud.sim.now() + self.deadline);
        trigger.stop();

        let mut violations = Vec::new();
        {
            let seen = seen.borrow();
            for i in 0..self.messages {
                if !seen.contains_key(&i) {
                    violations.push(format!("payload {i} was never delivered"));
                }
            }
            for id in seen.keys() {
                if *id >= self.messages {
                    violations.push(format!("unexpected payload {id} delivered"));
                }
            }
        }
        let backlog = cloud.queue.queue_len("jobs");
        if backlog != 0 {
            violations.push(format!("queue not drained: {backlog} messages left"));
        }
        violations.extend(check_cloud(&cloud));
        RunReport {
            digest: cloud.recorder.digest(),
            bill: cloud.ledger.report(),
            violations,
        }
    }
}

/// Determinism regression for the virtual-time fair-sharing link: a
/// seeded storm of transfers (staggered joins, five cap classes, a slice
/// of mid-flight cancels and zero-byte sends) fans into one link, and
/// every completion is folded into the recorder. The sweep harness runs
/// each seed twice, so any nondeterminism in the heap/bucket machinery —
/// iteration order, lazy compaction, stale-entry handling — shows up as
/// a digest divergence at a pinpointed seed.
#[derive(Clone, Debug)]
pub struct LinkChurn {
    /// Transfers launched into the link.
    pub flows: u64,
    /// Link capacity in bits/sec.
    pub capacity: f64,
}

impl Default for LinkChurn {
    fn default() -> LinkChurn {
        LinkChurn {
            flows: 2_000,
            capacity: faasim_simcore::mbps(1000.0),
        }
    }
}

impl Scenario for LinkChurn {
    fn name(&self) -> &'static str {
        "link-churn"
    }

    fn run(&self, seed: u64) -> RunReport {
        use faasim_simcore::{FairShareLink, Recorder, Sim};

        let sim = Sim::new(seed);
        let recorder = Recorder::new();
        let link = FairShareLink::new(&sim, self.capacity);
        let mut rng = sim.rng("chaos.link_churn");
        let completed = Rc::new(RefCell::new(0u64));
        let canceled = Rc::new(RefCell::new(0u64));
        let mut expect_completed = 0u64;
        for i in 0..self.flows {
            let delay = SimDuration::from_micros(rng.range_u64(0..200_000));
            let bytes = if rng.chance(0.03) {
                0
            } else {
                rng.range_u64(1..2_000_000)
            };
            let cap = if rng.chance(0.4) {
                Some(self.capacity * [0.002, 0.01, 0.05, 0.2, 1.5][rng.range_usize(0..5)])
            } else {
                None
            };
            let cancel_after = if rng.chance(0.15) {
                Some(SimDuration::from_micros(rng.range_u64(1..150_000)))
            } else {
                expect_completed += 1;
                None
            };
            let l = link.clone();
            let s = sim.clone();
            let rec = recorder.clone();
            let completed = completed.clone();
            let canceled = canceled.clone();
            sim.spawn(async move {
                s.sleep(delay).await;
                let fut = l.transfer(bytes, cap);
                let finished = match cancel_after {
                    Some(c) => s.timeout(c, fut).await.is_some(),
                    None => {
                        fut.await;
                        true
                    }
                };
                if finished {
                    *completed.borrow_mut() += 1;
                    rec.record(
                        &format!("link.completion.{}", i % 8),
                        s.now().as_nanos() as f64,
                    );
                } else {
                    *canceled.borrow_mut() += 1;
                    rec.incr("link.canceled");
                }
            });
        }
        sim.run();

        let mut violations = Vec::new();
        if *completed.borrow() < expect_completed {
            violations.push(format!(
                "only {} of {} un-canceled transfers completed",
                completed.borrow(),
                expect_completed
            ));
        }
        if link.active_flows() != 0 {
            violations.push(format!(
                "{} flows still active after drain",
                link.active_flows()
            ));
        }
        RunReport {
            digest: recorder.digest(),
            bill: String::new(),
            violations,
        }
    }
}

/// The front door's reason to exist, as a two-arm experiment: a victim
/// tenant sends steady, in-allotment traffic while an aggressor tenant
/// bursts at `burst_multiplier`× the victim's rate through the same
/// gateway. The scenario runs both arms from the same seed — aggressor
/// idle, then aggressor bursting — and demands that
///
/// 1. the victim's exact p99 latency in the hostile arm stays within
///    `p99_bound`× of the quiet arm (plus a small absolute slack for
///    quantile granularity),
/// 2. the victim is never shed in either arm,
/// 3. the aggressor's overload is absorbed at the door: admissions stay
///    within its token allotment and the overwhelming majority of its
///    burst is shed, and
/// 4. per-tenant admission accounting conserves
///    (`offered == admitted + shed`) in both arms.
///
/// Both arms fold into one digest, so the sweep harness's double-run
/// check also proves the isolation result replays byte-identically.
#[derive(Clone, Debug)]
pub struct NoisyNeighbor {
    name: &'static str,
    /// The faults both arms run under.
    pub plan: FaultPlan,
    /// Aggressor burst rate as a multiple of the victim's rate.
    pub burst_multiplier: f64,
    /// Victim request rate (req/s); both tenants' gateway allotment is
    /// twice this.
    pub victim_rate: f64,
    /// Length of the experiment; the aggressor bursts through the middle
    /// half of it.
    pub duration: SimDuration,
    /// Allowed victim p99 inflation factor, hostile vs quiet arm.
    pub p99_bound: f64,
    /// Whether the victim must complete every request (true under a calm
    /// plan; chaos kills can legitimately exhaust retries).
    pub expect_no_failures: bool,
}

impl Default for NoisyNeighbor {
    fn default() -> NoisyNeighbor {
        NoisyNeighbor {
            name: "noisy-neighbor/calm",
            plan: FaultPlan::calm(),
            burst_multiplier: 50.0,
            victim_rate: 10.0,
            duration: SimDuration::from_secs(60),
            p99_bound: 1.5,
            expect_no_failures: true,
        }
    }
}

impl NoisyNeighbor {
    /// The hostile arm: the same 50× burst under the all-tier hostile
    /// fault plan. Chaos draws are shared across tenants, so the bound
    /// is looser — kills and delay spikes land on different victim
    /// requests in the two arms.
    pub fn chaotic() -> NoisyNeighbor {
        NoisyNeighbor {
            name: "noisy-neighbor/hostile",
            plan: FaultPlan::hostile(),
            p99_bound: 3.0,
            expect_no_failures: false,
            ..NoisyNeighbor::default()
        }
    }
}

/// Victim tenant id in the [`NoisyNeighbor`] gateway.
const VICTIM: u32 = 0;
/// Aggressor tenant id.
const AGGRESSOR: u32 = 1;

struct NeighborArm {
    p99: f64,
    victim: TenantStats,
    aggressor: TenantStats,
    victim_failed: u64,
    digest: String,
    bill: String,
    violations: Vec<String>,
}

impl NoisyNeighbor {
    /// Per-tenant token allotment (req/s): headroom over the victim's
    /// offered rate, far under the aggressor's burst.
    fn allotment(&self) -> f64 {
        self.victim_rate * 2.0
    }

    fn arm(&self, seed: u64, aggressor_on: bool) -> NeighborArm {
        let cloud = Cloud::new(base_profile(), seed);
        self.plan.apply(&cloud);
        let sim = cloud.sim.clone();

        cloud.faas.register(FunctionSpec::new(
            "work",
            256,
            SimDuration::from_secs(5),
            |ctx, _payload| async move {
                ctx.cpu(SimDuration::from_millis(20)).await;
                Ok(Bytes::new())
            },
        ));

        let allot = self.allotment();
        let gw = Gateway::new(
            &sim,
            &cloud.faas,
            cloud.ledger.clone(),
            cloud.recorder.clone(),
            &cloud.prices,
            GatewayConfig::new(vec![
                TenantConfig {
                    rate: allot,
                    burst: allot * 2.0,
                    // Generous: the cold-start era alone holds
                    // rate × ~5 s in flight; concurrency is not the
                    // isolation mechanism under test here.
                    max_concurrent: 256,
                    priority: 3,
                },
                TenantConfig {
                    rate: allot,
                    burst: allot * 2.0,
                    max_concurrent: 32,
                    priority: 0,
                },
            ]),
        );
        let victim_client = RetryingGateway::new(
            &sim,
            &gw,
            cloud.recorder.clone(),
            RetryPolicy::default(),
            "chaos.noisy.victim",
        );

        // Victim: a fixed count of in-allotment Poisson arrivals, so both
        // arms offer the identical request stream (its own RNG stream).
        // Only requests arriving inside the aggressor's window count
        // toward the p99 — by then the victim's containers are warm, so
        // the quantile measures steady-state service, not the shared
        // cold-start era both arms pay identically.
        let victim_n = (self.victim_rate * self.duration.as_secs_f64()).round() as u64;
        let window_start = SimDuration::from_secs_f64(self.duration.as_secs_f64() * 0.25);
        let window = SimDuration::from_secs_f64(self.duration.as_secs_f64() * 0.5);
        let latencies: Rc<RefCell<Vec<f64>>> = Rc::new(RefCell::new(Vec::new()));
        let failed = Rc::new(RefCell::new(0u64));
        {
            let sim2 = sim.clone();
            let mean = 1.0 / self.victim_rate;
            let (latencies, failed) = (latencies.clone(), failed.clone());
            let (w0, w1) = (
                faasim_simcore::SimTime::ZERO + window_start,
                faasim_simcore::SimTime::ZERO + window_start + window,
            );
            sim.spawn(async move {
                let mut rng = sim2.rng("chaos.noisy.victim");
                for _ in 0..victim_n {
                    sim2.sleep(SimDuration::from_secs_f64(rng.exponential(mean)))
                        .await;
                    let client = victim_client.clone();
                    let s = sim2.clone();
                    let (latencies, failed) = (latencies.clone(), failed.clone());
                    sim2.spawn(async move {
                        let t0 = s.now();
                        let ok = client
                            .invoke(VICTIM, "work", &Payload::zeros(512), Deadline::unbounded())
                            .await
                            .is_ok();
                        if !ok {
                            *failed.borrow_mut() += 1;
                        }
                        if t0 >= w0 && t0 < w1 {
                            latencies
                                .borrow_mut()
                                .push(s.now().duration_since(t0).as_secs_f64());
                        }
                    });
                }
            });
        }

        // Aggressor: bursts at `burst_multiplier`× the victim's rate
        // through the middle half of the run, single-shot (a client that
        // hammers without backoff — the tenant the door exists for).
        if aggressor_on {
            let sim2 = sim.clone();
            let gw2 = gw.clone();
            let mean = 1.0 / (self.victim_rate * self.burst_multiplier);
            sim.spawn(async move {
                sim2.sleep(window_start).await;
                let mut rng = sim2.rng("chaos.noisy.aggressor");
                let end = sim2.now() + window;
                while sim2.now() < end {
                    sim2.sleep(SimDuration::from_secs_f64(rng.exponential(mean)))
                        .await;
                    let gw3 = gw2.clone();
                    sim2.spawn(async move {
                        let _ = gw3.invoke(AGGRESSOR, "work", Payload::zeros(512)).await;
                    });
                }
            });
        }

        sim.run();

        let mut lats = latencies.borrow().clone();
        lats.sort_by(f64::total_cmp);
        let p99 = if lats.is_empty() {
            0.0
        } else {
            lats[((lats.len() - 1) as f64 * 0.99).round() as usize]
        };
        let victim_failed = *failed.borrow();
        NeighborArm {
            p99,
            victim: gw.tenant_stats(VICTIM),
            aggressor: gw.tenant_stats(AGGRESSOR),
            victim_failed,
            digest: cloud.recorder.digest(),
            bill: cloud.ledger.report(),
            violations: check_cloud(&cloud),
        }
    }
}

impl Scenario for NoisyNeighbor {
    fn name(&self) -> &'static str {
        self.name
    }

    fn run(&self, seed: u64) -> RunReport {
        let quiet = self.arm(seed, false);
        let hostile = self.arm(seed, true);
        let mut violations = quiet.violations.clone();
        violations.extend(hostile.violations.iter().cloned());

        for (arm, label) in [(&quiet, "quiet"), (&hostile, "hostile")] {
            for (st, tenant) in [(&arm.victim, "victim"), (&arm.aggressor, "aggressor")] {
                if !st.conserved() {
                    violations.push(format!(
                        "{label} arm: {tenant} admission accounting broken: {st:?}"
                    ));
                }
            }
            if arm.victim.shed() > 0 {
                violations.push(format!(
                    "{label} arm: victim was shed {} times despite staying in allotment",
                    arm.victim.shed()
                ));
            }
        }
        if quiet.aggressor.offered != 0 {
            violations.push(format!(
                "quiet arm: aggressor offered {} requests, expected 0",
                quiet.aggressor.offered
            ));
        }

        // The door must clamp the aggressor to its token allotment...
        let window_secs = self.duration.as_secs_f64() * 0.5;
        let admit_cap = (self.allotment() * window_secs + self.allotment() * 2.0 + 16.0) as u64;
        if hostile.aggressor.admitted > admit_cap {
            violations.push(format!(
                "hostile arm: aggressor admitted {} > cap {}",
                hostile.aggressor.admitted, admit_cap
            ));
        }
        // ...shedding the overwhelming majority of a 50× burst.
        if hostile.aggressor.shed() < 5 * hostile.aggressor.admitted {
            violations.push(format!(
                "hostile arm: aggressor shed {} vs {} admitted — the burst was not absorbed",
                hostile.aggressor.shed(),
                hostile.aggressor.admitted
            ));
        }

        // The isolation claim itself: the burst must not move the
        // victim's p99 beyond the documented bound (absolute slack
        // covers quantile granularity at small victim counts).
        if hostile.p99 > quiet.p99 * self.p99_bound + 0.005 {
            violations.push(format!(
                "victim p99 moved {:.1} ms -> {:.1} ms under a {}x burst (bound {}x)",
                quiet.p99 * 1e3,
                hostile.p99 * 1e3,
                self.burst_multiplier,
                self.p99_bound
            ));
        }
        if self.expect_no_failures && quiet.victim_failed + hostile.victim_failed > 0 {
            violations.push(format!(
                "victim failed {} quiet / {} hostile requests under a calm plan",
                quiet.victim_failed, hostile.victim_failed
            ));
        }

        RunReport {
            // Both arms and the measured quantiles fold into the digest,
            // so the sweep's double-run check covers the whole result.
            digest: format!(
                "quiet {}\nhostile {}\nvictim p99 quiet {:.9} hostile {:.9}",
                quiet.digest, hostile.digest, quiet.p99, hostile.p99
            ),
            bill: format!("quiet arm\n{}\nhostile arm\n{}", quiet.bill, hostile.bill),
            violations,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn calm_scenarios_pass_at_one_seed() {
        let crdt = CrdtSync::default().run(1);
        assert_eq!(crdt.violations, Vec::<String>::new());
        let pipe = QueuePipeline::default().run(1);
        assert_eq!(pipe.violations, Vec::<String>::new());
    }

    #[test]
    fn link_churn_replays_byte_identically() {
        let sc = LinkChurn::default();
        for seed in [1, 9, 42] {
            let a = sc.run(seed);
            let b = sc.run(seed);
            assert_eq!(a.violations, Vec::<String>::new(), "seed {seed}");
            assert_eq!(a, b, "seed {seed} diverged on replay");
        }
    }

    #[test]
    fn chaotic_pipeline_duplicates_but_still_delivers() {
        let report = QueuePipeline::chaotic().run(5);
        assert_eq!(report.violations, Vec::<String>::new());
        assert!(
            report.digest.contains("queue.chaos_duplicated"),
            "expected duplicate deliveries in\n{}",
            report.digest
        );
    }

    #[test]
    fn noisy_neighbor_holds_the_isolation_bound() {
        for seed in [1, 2, 3, 4] {
            let report = NoisyNeighbor::default().run(seed);
            assert_eq!(report.violations, Vec::<String>::new(), "seed {seed}");
        }
    }

    #[test]
    fn noisy_neighbor_survives_the_hostile_plan() {
        let report = NoisyNeighbor::chaotic().run(1);
        assert_eq!(report.violations, Vec::<String>::new());
    }

    #[test]
    fn noisy_neighbor_replays_byte_identically() {
        let sc = NoisyNeighbor::default();
        let a = sc.run(7);
        let b = sc.run(7);
        assert_eq!(a, b, "noisy-neighbor diverged on replay");
    }
}
