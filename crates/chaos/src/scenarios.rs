//! Built-in chaos scenarios: the two §2/§3 compositions the repo's
//! integration suite already exercises, now run under fault injection.
//!
//! Both are pure functions of the seed, so the [`sweep`](crate::sweep)
//! harness can replay any failure exactly.

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::rc::Rc;

use bytes::Bytes;
use faasim::protocols::{Crdt, GCounter};
use faasim::{Cloud, CloudProfile};
use faasim_faas::{add_queue_trigger, decode_batch, FunctionSpec};
use faasim_kv::{Consistency, KvError};
use faasim_queue::QueueConfig;
use faasim_simcore::{LatencyModel, SimDuration};

use faasim_resilience::RetryingKv;
use crate::faults::FaultPlan;
use crate::invariants::check_cloud;
use faasim_resilience::RetryPolicy;
use crate::sweep::{RunReport, Scenario};

fn base_profile() -> CloudProfile {
    CloudProfile::aws_2018().exact()
}

/// §3.2's "disorderly" claim under fire: G-counter replicas gossip
/// snapshots through the *eventually consistent* KV tier while chaos
/// throttles the store and spikes the network, and every replica must
/// still converge to the exact global count once writes quiesce.
///
/// Each replica's KV traffic goes through a [`RetryingKv`] client, so
/// the scenario also demonstrates the retry discipline absorbing
/// `Throttled` errors.
#[derive(Clone, Debug)]
pub struct CrdtSync {
    /// The faults to inject.
    pub plan: FaultPlan,
    /// Number of gossiping replicas.
    pub replicas: u64,
    /// Increments each replica performs.
    pub increments_each: u64,
    /// Retry policy for the replicas' KV clients.
    pub policy: RetryPolicy,
}

impl Default for CrdtSync {
    fn default() -> CrdtSync {
        CrdtSync {
            plan: FaultPlan::calm(),
            replicas: 4,
            increments_each: 25,
            policy: RetryPolicy {
                max_attempts: 8,
                call_timeout: Some(SimDuration::from_secs(10)),
                ..RetryPolicy::default()
            },
        }
    }
}

impl CrdtSync {
    /// The chaotic arm: 15% KV throttling, 5% network delay spikes, 2%
    /// packet loss.
    pub fn chaotic() -> CrdtSync {
        let mut s = CrdtSync::default();
        s.plan.kv.throttle_prob = 0.15;
        s.plan.net.delay_spike_prob = 0.05;
        s.plan.net.loss_prob = 0.02;
        s
    }
}

impl Scenario for CrdtSync {
    fn name(&self) -> &'static str {
        "crdt-sync"
    }

    fn run(&self, seed: u64) -> RunReport {
        let mut profile = base_profile();
        // A deliberately laggy store: eventual reads can be 2 s stale.
        profile.kv.eventual_lag = LatencyModel::Constant(SimDuration::from_secs(2));
        let cloud = Cloud::new(profile, seed);
        self.plan.apply(&cloud);
        cloud.kv.create_table("crdt");

        let replicas = self.replicas;
        let increments_each = self.increments_each;
        let states: Rc<RefCell<Vec<GCounter>>> =
            Rc::new(RefCell::new((0..replicas).map(|_| GCounter::new()).collect()));
        let stuck: Rc<RefCell<Vec<String>>> = Rc::new(RefCell::new(Vec::new()));

        for r in 1..=replicas {
            let kv = RetryingKv::new(
                &cloud.sim,
                &cloud.kv,
                cloud.recorder.clone(),
                self.policy.clone(),
                &format!("chaos.crdt.replica-{r}"),
            );
            let sim = cloud.sim.clone();
            let host = cloud.client_host();
            let states = states.clone();
            let stuck = stuck.clone();
            cloud.sim.spawn(async move {
                let idx = (r - 1) as usize;
                let my_key = format!("replica-{r}");
                for step in 0..increments_each {
                    states.borrow_mut()[idx].increment(r, 1);
                    let snapshot = Bytes::from(states.borrow()[idx].encode());
                    // A publish that exhausts its retries is not fatal —
                    // the next step republishes a superseding snapshot.
                    let _ = kv.put(&host, "crdt", &my_key, snapshot).await;
                    let peer = (r + step) % replicas + 1;
                    if peer != r {
                        match kv
                            .get(&host, "crdt", &format!("replica-{peer}"), Consistency::Eventual)
                            .await
                        {
                            Ok(item) => {
                                if let Some(other) = GCounter::decode(&item.value.bytes()) {
                                    states.borrow_mut()[idx].merge(&other);
                                }
                            }
                            Err(e) if matches!(e.as_fatal(), Some(KvError::NoSuchKey(_))) => {}
                            Err(_) => {} // retries exhausted: gossip again later
                        }
                    }
                    sim.sleep(SimDuration::from_millis(500)).await;
                }
                // Quiesce: keep publishing + merging until propagated.
                for _round in 0..20u64 {
                    let snapshot = Bytes::from(states.borrow()[idx].encode());
                    if kv.put(&host, "crdt", &my_key, snapshot).await.is_err() {
                        stuck
                            .borrow_mut()
                            .push(format!("replica {r}: quiesce publish exhausted retries"));
                    }
                    for peer in 1..=replicas {
                        if peer == r {
                            continue;
                        }
                        if let Ok(item) = kv
                            .get(&host, "crdt", &format!("replica-{peer}"), Consistency::Eventual)
                            .await
                        {
                            if let Some(other) = GCounter::decode(&item.value.bytes()) {
                                states.borrow_mut()[idx].merge(&other);
                            }
                        }
                    }
                    sim.sleep(SimDuration::from_secs(1)).await;
                }
            });
        }
        cloud.sim.run();

        let mut violations = stuck.borrow().clone();
        let want = replicas * increments_each;
        for (i, s) in states.borrow().iter().enumerate() {
            if s.value() != want {
                violations.push(format!(
                    "replica {i} did not converge: {} != {want}",
                    s.value()
                ));
            }
        }
        violations.extend(check_cloud(&cloud));
        RunReport {
            digest: cloud.recorder.digest(),
            bill: cloud.ledger.report(),
            violations,
        }
    }
}

/// The §2 queue-to-function pipeline under at-least-once chaos: a
/// producer sends `messages` distinct payloads, the queue duplicates
/// and delays deliveries, the platform kills workers mid-flight — and
/// the worker fleet must still process **exactly** the expected payload
/// set (dedup makes redelivery idempotent) and drain the queue.
#[derive(Clone, Debug)]
pub struct QueuePipeline {
    /// The faults to inject.
    pub plan: FaultPlan,
    /// Number of distinct payloads sent.
    pub messages: u32,
    /// Virtual time allowed for the pipeline to drain.
    pub deadline: SimDuration,
}

impl Default for QueuePipeline {
    fn default() -> QueuePipeline {
        QueuePipeline {
            plan: FaultPlan::calm(),
            messages: 30,
            deadline: SimDuration::from_secs(180),
        }
    }
}

impl QueuePipeline {
    /// The chaotic arm: 20% duplicate delivery, 10% delayed delivery,
    /// 5% mid-flight kills, 2% packet loss.
    pub fn chaotic() -> QueuePipeline {
        let mut s = QueuePipeline::default();
        s.plan.queue.duplicate_prob = 0.20;
        s.plan.queue.delay_prob = 0.10;
        s.plan.faas.kill_prob = 0.05;
        s.plan.net.loss_prob = 0.02;
        s
    }
}

impl Scenario for QueuePipeline {
    fn name(&self) -> &'static str {
        "queue-pipeline"
    }

    fn run(&self, seed: u64) -> RunReport {
        let cloud = Cloud::new(base_profile(), seed);
        self.plan.apply(&cloud);
        cloud.queue.create_queue(
            "jobs",
            QueueConfig {
                visibility_timeout: SimDuration::from_secs(5),
                dead_letter: None,
            },
        );

        // payload -> delivery count; duplicates and redeliveries bump the
        // count, the invariant only demands the *set* be exact.
        let seen: Rc<RefCell<BTreeMap<u32, u32>>> = Rc::new(RefCell::new(BTreeMap::new()));
        let s = seen.clone();
        cloud.faas.register(FunctionSpec::new(
            "worker",
            256,
            // A short limit keeps the chaos kill window tight enough that
            // kills actually land mid-handler.
            SimDuration::from_secs(1),
            move |ctx, payload| {
                let s = s.clone();
                async move {
                    // Real work before the side effect, so a mid-flight
                    // kill can strike first and force a redelivery.
                    ctx.cpu(SimDuration::from_millis(100)).await;
                    for m in decode_batch(&payload).expect("batch codec") {
                        let id = u32::from_le_bytes(m.bytes()[..4].try_into().expect("4-byte payload"));
                        *s.borrow_mut().entry(id).or_insert(0) += 1;
                    }
                    Ok(Bytes::new())
                }
            },
        ));
        let trigger =
            add_queue_trigger(&cloud.faas, &cloud.queue, &cloud.fabric, "worker", "jobs", 10);

        let host = cloud.client_host();
        let queue = cloud.queue.clone();
        let messages = self.messages;
        cloud.sim.spawn(async move {
            for i in 0..messages {
                queue
                    .send(&host, "jobs", Bytes::from(i.to_le_bytes().to_vec()))
                    .await
                    .expect("queue exists");
            }
        });
        cloud.sim.run_until(cloud.sim.now() + self.deadline);
        trigger.stop();

        let mut violations = Vec::new();
        {
            let seen = seen.borrow();
            for i in 0..self.messages {
                if !seen.contains_key(&i) {
                    violations.push(format!("payload {i} was never delivered"));
                }
            }
            for id in seen.keys() {
                if *id >= self.messages {
                    violations.push(format!("unexpected payload {id} delivered"));
                }
            }
        }
        let backlog = cloud.queue.queue_len("jobs");
        if backlog != 0 {
            violations.push(format!("queue not drained: {backlog} messages left"));
        }
        violations.extend(check_cloud(&cloud));
        RunReport {
            digest: cloud.recorder.digest(),
            bill: cloud.ledger.report(),
            violations,
        }
    }
}

/// Determinism regression for the virtual-time fair-sharing link: a
/// seeded storm of transfers (staggered joins, five cap classes, a slice
/// of mid-flight cancels and zero-byte sends) fans into one link, and
/// every completion is folded into the recorder. The sweep harness runs
/// each seed twice, so any nondeterminism in the heap/bucket machinery —
/// iteration order, lazy compaction, stale-entry handling — shows up as
/// a digest divergence at a pinpointed seed.
#[derive(Clone, Debug)]
pub struct LinkChurn {
    /// Transfers launched into the link.
    pub flows: u64,
    /// Link capacity in bits/sec.
    pub capacity: f64,
}

impl Default for LinkChurn {
    fn default() -> LinkChurn {
        LinkChurn {
            flows: 2_000,
            capacity: faasim_simcore::mbps(1000.0),
        }
    }
}

impl Scenario for LinkChurn {
    fn name(&self) -> &'static str {
        "link-churn"
    }

    fn run(&self, seed: u64) -> RunReport {
        use faasim_simcore::{FairShareLink, Recorder, Sim};

        let sim = Sim::new(seed);
        let recorder = Recorder::new();
        let link = FairShareLink::new(&sim, self.capacity);
        let mut rng = sim.rng("chaos.link_churn");
        let completed = Rc::new(RefCell::new(0u64));
        let canceled = Rc::new(RefCell::new(0u64));
        let mut expect_completed = 0u64;
        for i in 0..self.flows {
            let delay = SimDuration::from_micros(rng.range_u64(0..200_000));
            let bytes = if rng.chance(0.03) {
                0
            } else {
                rng.range_u64(1..2_000_000)
            };
            let cap = if rng.chance(0.4) {
                Some(self.capacity * [0.002, 0.01, 0.05, 0.2, 1.5][rng.range_usize(0..5)])
            } else {
                None
            };
            let cancel_after = if rng.chance(0.15) {
                Some(SimDuration::from_micros(rng.range_u64(1..150_000)))
            } else {
                expect_completed += 1;
                None
            };
            let l = link.clone();
            let s = sim.clone();
            let rec = recorder.clone();
            let completed = completed.clone();
            let canceled = canceled.clone();
            sim.spawn(async move {
                s.sleep(delay).await;
                let fut = l.transfer(bytes, cap);
                let finished = match cancel_after {
                    Some(c) => s.timeout(c, fut).await.is_some(),
                    None => {
                        fut.await;
                        true
                    }
                };
                if finished {
                    *completed.borrow_mut() += 1;
                    rec.record(
                        &format!("link.completion.{}", i % 8),
                        s.now().as_nanos() as f64,
                    );
                } else {
                    *canceled.borrow_mut() += 1;
                    rec.incr("link.canceled");
                }
            });
        }
        sim.run();

        let mut violations = Vec::new();
        if *completed.borrow() < expect_completed {
            violations.push(format!(
                "only {} of {} un-canceled transfers completed",
                completed.borrow(),
                expect_completed
            ));
        }
        if link.active_flows() != 0 {
            violations.push(format!(
                "{} flows still active after drain",
                link.active_flows()
            ));
        }
        RunReport {
            digest: recorder.digest(),
            bill: String::new(),
            violations,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn calm_scenarios_pass_at_one_seed() {
        let crdt = CrdtSync::default().run(1);
        assert_eq!(crdt.violations, Vec::<String>::new());
        let pipe = QueuePipeline::default().run(1);
        assert_eq!(pipe.violations, Vec::<String>::new());
    }

    #[test]
    fn link_churn_replays_byte_identically() {
        let sc = LinkChurn::default();
        for seed in [1, 9, 42] {
            let a = sc.run(seed);
            let b = sc.run(seed);
            assert_eq!(a.violations, Vec::<String>::new(), "seed {seed}");
            assert_eq!(a, b, "seed {seed} diverged on replay");
        }
    }

    #[test]
    fn chaotic_pipeline_duplicates_but_still_delivers() {
        let report = QueuePipeline::chaotic().run(5);
        assert_eq!(report.violations, Vec::<String>::new());
        assert!(
            report.digest.contains("queue.chaos_duplicated"),
            "expected duplicate deliveries in\n{}",
            report.digest
        );
    }
}
