//! # faasim-chaos
//!
//! Deterministic fault injection and a seed-sweep chaos harness for the
//! simulated cloud.
//!
//! The paper's §3 argues that today's FaaS platforms force applications
//! into "data-shipping" compositions glued together by storage, queues,
//! and triggers — exactly the compositions that fail in interesting ways
//! when the platform misbehaves. This crate makes the misbehaviour a
//! first-class, *reproducible* experiment input:
//!
//! - [`FaultPlan`] configures every service tier's fault hooks in one
//!   place — network delay spikes and packet loss, KV throttling, blob
//!   503s, queue duplicate/delayed delivery, mid-flight function kills —
//!   plus scheduled partition windows and cold-start storms.
//! - [`RetryPolicy`] is the resilience counterpart: exponential backoff
//!   with bounded jitter and optional per-call timeouts, wired into
//!   [`RetryingKv`] / [`RetryingBlob`] client wrappers that retry
//!   transient errors.
//! - [`sweep`] runs a [`Scenario`] across many seeds, replays every seed
//!   twice to prove the run is deterministic (byte-identical recorder
//!   digest and bill), checks invariants, and reports the minimal
//!   failing seed so a failure is a one-liner to reproduce.
//! - [`ParallelSweep`] is the multi-core twin of [`sweep`]: each
//!   single-threaded DES instance is a pure function of its seed, so
//!   seeds fan out across `std::thread` workers and reassemble in seed
//!   order — the report is byte-identical to the serial path, just
//!   faster.
//!
//! Every random draw comes from the simulation's named RNG streams, and
//! every fault hook only consumes randomness when its probability is
//! non-zero — so enabling chaos never perturbs a fault-free run at the
//! same seed, and a failing seed replays exactly.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

mod experiments;
mod faults;
mod invariants;
mod parallel;
mod scenarios;
mod sweep;
mod trace;

pub use experiments::{experiment_scenarios, ExperimentScenario};
pub use faults::{FaultPlan, PartitionWindow};
pub use invariants::{
    check_cloud, ledger_consistent, message_conservation, queue_conservation,
};
pub use parallel::ParallelSweep;
// The resilience layer grew into its own crate (`faasim-resilience`) so
// the core experiments can use it without a dependency cycle; re-export
// the whole surface here so chaos users keep a single import path.
pub use faasim_resilience::{
    hedged, BreakerConfig, BreakerError, BreakerState, CircuitBreaker, Deadline, DeleteOutcome,
    Effect, IdempotencyStore, RetryError, RetryPolicy, RetryingBlob, RetryingInvoker, RetryingKv,
    RetryingQueue,
};
pub use scenarios::{CrdtSync, LinkChurn, NoisyNeighbor, QueuePipeline};
pub use sweep::{sweep, RunReport, Scenario, SeedReport, SweepReport};
pub use trace::TraceReplay;
