//! Cross-cutting invariants a chaotic run must still satisfy.
//!
//! Fault injection is only useful if something checks that the system
//! *under* fault keeps its promises. These checks are deliberately
//! global — they read the shared [`Recorder`] and [`Ledger`] rather
//! than scenario state, so every scenario gets them for free.

use faasim::Cloud;
use faasim_pricing::Ledger;
use faasim_simcore::Recorder;

/// Message conservation: every message the fabric accepted must be
/// accounted for as delivered, dropped (dead host / no socket),
/// partitioned, or chaos-lost. Chaos may *reclassify* messages, but it
/// must never make one vanish without a counter.
pub fn message_conservation(recorder: &Recorder) -> Option<String> {
    let sent = recorder.counter("net.messages_sent");
    let delivered = recorder.counter("net.messages_delivered");
    let dropped = recorder.counter("net.messages_dropped");
    let partitioned = recorder.counter("net.messages_partitioned");
    let lost = recorder.counter("net.messages_lost");
    let accounted = delivered + dropped + partitioned + lost;
    if sent != accounted {
        return Some(format!(
            "message conservation violated: sent={sent} != \
             delivered={delivered} + dropped={dropped} + \
             partitioned={partitioned} + lost={lost} (= {accounted})"
        ));
    }
    None
}

/// Billing-ledger consistency: every line item finite and non-negative,
/// per-service subtotals summing to the grand total. Chaos must never
/// corrupt the bill — throttled and crashed requests are either billed
/// like AWS bills them or not billed at all, but never billed NaN.
pub fn ledger_consistent(ledger: &Ledger) -> Option<String> {
    let items = ledger.breakdown();
    let mut sum = 0.0;
    for (service, item, quantity, dollars) in &items {
        if !quantity.is_finite() || *quantity < 0.0 {
            return Some(format!("bad quantity {quantity} for {service}/{item}"));
        }
        if !dollars.is_finite() || *dollars < 0.0 {
            return Some(format!("bad charge ${dollars} for {service}/{item}"));
        }
        sum += dollars;
    }
    let total = ledger.total();
    let tolerance = 1e-9 * (1.0 + total.abs());
    if (total - sum).abs() > tolerance {
        return Some(format!(
            "ledger total ${total} != sum of line items ${sum}"
        ));
    }
    None
}

/// Run every global invariant against a cloud; returns the list of
/// violations (empty means healthy).
pub fn check_cloud(cloud: &Cloud) -> Vec<String> {
    let mut violations = Vec::new();
    if let Some(v) = message_conservation(&cloud.recorder) {
        violations.push(v);
    }
    if let Some(v) = ledger_consistent(&cloud.ledger) {
        violations.push(v);
    }
    violations
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clean_recorder_and_ledger_pass() {
        let r = Recorder::new();
        let l = Ledger::new();
        assert_eq!(message_conservation(&r), None);
        assert_eq!(ledger_consistent(&l), None);
    }

    #[test]
    fn unaccounted_messages_are_flagged() {
        let r = Recorder::new();
        r.add("net.messages_sent", 10);
        r.add("net.messages_delivered", 9);
        let v = message_conservation(&r).expect("one message vanished");
        assert!(v.contains("sent=10"), "{v}");
    }

    #[test]
    fn balanced_counters_pass() {
        let r = Recorder::new();
        r.add("net.messages_sent", 10);
        r.add("net.messages_delivered", 7);
        r.add("net.messages_dropped", 1);
        r.add("net.messages_partitioned", 1);
        r.add("net.messages_lost", 1);
        assert_eq!(message_conservation(&r), None);
    }

    #[test]
    fn consistent_ledger_passes() {
        use faasim_pricing::Service;
        let l = Ledger::new();
        l.charge(Service::Kv, "write-requests", 3.0, 0.000004);
        l.charge(Service::Blob, "put-requests", 1.0, 0.000005);
        assert_eq!(ledger_consistent(&l), None);
    }
}
