//! Cross-cutting invariants a chaotic run must still satisfy.
//!
//! The recorder/ledger-level checks live in `faasim-resilience` (so the
//! core experiments can assert them without a dependency cycle); this
//! module re-exports them and adds [`check_cloud`], the one-call bundle
//! over a whole [`Cloud`].

use faasim::Cloud;

pub use faasim_resilience::{ledger_consistent, message_conservation, queue_conservation};

/// Run every global invariant against a cloud; returns the list of
/// violations (empty means healthy).
pub fn check_cloud(cloud: &Cloud) -> Vec<String> {
    let mut violations = Vec::new();
    if let Some(v) = message_conservation(&cloud.recorder) {
        violations.push(v);
    }
    if let Some(v) = queue_conservation(&cloud.recorder, &cloud.queue) {
        violations.push(v);
    }
    if let Some(v) = ledger_consistent(&cloud.ledger) {
        violations.push(v);
    }
    violations
}

#[cfg(test)]
mod tests {
    use super::*;
    use faasim_pricing::Ledger;
    use faasim_simcore::Recorder;

    #[test]
    fn clean_recorder_and_ledger_pass() {
        let r = Recorder::new();
        let l = Ledger::new();
        assert_eq!(message_conservation(&r), None);
        assert_eq!(ledger_consistent(&l), None);
    }

    #[test]
    fn unaccounted_messages_are_flagged() {
        let r = Recorder::new();
        r.add("net.messages_sent", 10);
        r.add("net.messages_delivered", 9);
        let v = message_conservation(&r).expect("one message vanished");
        assert!(v.contains("sent=10"), "{v}");
    }

    #[test]
    fn balanced_counters_pass() {
        let r = Recorder::new();
        r.add("net.messages_sent", 10);
        r.add("net.messages_delivered", 7);
        r.add("net.messages_dropped", 1);
        r.add("net.messages_partitioned", 1);
        r.add("net.messages_lost", 1);
        assert_eq!(message_conservation(&r), None);
    }

    #[test]
    fn queue_conservation_balances_through_dlq_flow() {
        use faasim::{Cloud, CloudProfile};
        use faasim_queue::{DeadLetterConfig, QueueConfig};
        use faasim_simcore::SimDuration;

        let cloud = Cloud::new(CloudProfile::aws_2018().exact(), 7);
        cloud.queue.create_queue("dlq", QueueConfig::default());
        cloud.queue.create_queue(
            "q",
            QueueConfig {
                // Wider than the queue's RPC latency, so the receipt is
                // still live when the delete lands.
                visibility_timeout: SimDuration::from_millis(100),
                dead_letter: Some(DeadLetterConfig {
                    queue: "dlq".into(),
                    max_receives: 2,
                }),
            },
        );
        let host = cloud.client_host();
        let q = cloud.queue.clone();
        let sim = cloud.sim.clone();
        cloud.sim.block_on(async move {
            q.send(&host, "q", "poison").await.unwrap();
            q.send(&host, "q", "good").await.unwrap();
            // First receive claims both; delete only one.
            let got = q.receive(&host, "q", 10, SimDuration::ZERO).await.unwrap();
            assert_eq!(got.len(), 2);
            let keep = got
                .into_iter()
                .find(|m| m.body.eq_bytes(b"good"))
                .unwrap();
            q.delete(&host, keep.receipt).await.unwrap();
            // Drive the poison message through its receive budget.
            for _ in 0..3 {
                sim.sleep(SimDuration::from_millis(150)).await;
                let _ = q.receive(&host, "q", 10, SimDuration::ZERO).await.unwrap();
            }
        });
        assert!(
            cloud.recorder.counter("queue.dead_lettered") > 0,
            "the poison message must have dead-lettered"
        );
        assert_eq!(
            queue_conservation(&cloud.recorder, &cloud.queue),
            None,
            "enqueued == deleted + dead_lettered + remaining"
        );
    }

    #[test]
    fn consistent_ledger_passes() {
        use faasim_pricing::Service;
        let l = Ledger::new();
        l.charge(Service::Kv, "write-requests", 3.0, 0.000004);
        l.charge(Service::Blob, "put-requests", 1.0, 0.000005);
        assert_eq!(ledger_consistent(&l), None);
    }
}
