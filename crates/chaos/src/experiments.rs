//! The paper's experiments as chaos scenarios: every `resilient()`
//! variant from `faasim::experiments`, wrapped so the seed-sweep
//! harness can drive all eight under a [`FaultPlan`] and hold them to
//! the same standard as the synthetic scenarios — end-to-end invariants
//! plus byte-identical replay at every seed.
//!
//! Under [`FaultPlan::calm`] this doubles as a regression net for the
//! experiments themselves; under [`FaultPlan::hostile`] it is the
//! paper's §2 platform contract made executable: at-least-once
//! invocation, throttling storage, duplicating queues — and the
//! resilience layer keeping every observable effect exactly-once.

use faasim::experiments::{
    agents_cmp, bandwidth, cold_starts, data_shipping, election, prediction, table1, training,
};
use faasim::experiments::ResilientReport;
use faasim::Cloud;

use crate::faults::FaultPlan;
use crate::sweep::{RunReport, Scenario};

/// Signature shared by every experiment's `resilient()` entry point.
type ResilientFn = fn(u64, &dyn Fn(&Cloud)) -> ResilientReport;

/// (calm name, hostile name, entry point) for each of the eight
/// experiments. Names are static so [`Scenario::name`] can return them.
const EXPERIMENTS: [(&str, &str, ResilientFn); 8] = [
    ("table1/calm", "table1/hostile", table1::resilient),
    ("cold_starts/calm", "cold_starts/hostile", cold_starts::resilient),
    ("bandwidth/calm", "bandwidth/hostile", bandwidth::resilient),
    (
        "data_shipping/calm",
        "data_shipping/hostile",
        data_shipping::resilient,
    ),
    ("training/calm", "training/hostile", training::resilient),
    ("prediction/calm", "prediction/hostile", prediction::resilient),
    ("election/calm", "election/hostile", election::resilient),
    ("agents_cmp/calm", "agents_cmp/hostile", agents_cmp::resilient),
];

/// One paper experiment's chaos-hardened variant, run under a fixed
/// fault plan. Pure function of the seed, so the sweep harness can
/// replay it and demand byte-identical digests.
pub struct ExperimentScenario {
    name: &'static str,
    plan: FaultPlan,
    entry: ResilientFn,
}

impl Scenario for ExperimentScenario {
    fn name(&self) -> &'static str {
        self.name
    }

    fn run(&self, seed: u64) -> RunReport {
        let plan = self.plan.clone();
        let report = (self.entry)(seed, &|cloud: &Cloud| plan.apply(cloud));
        RunReport {
            digest: report.probe.digests.join("\n"),
            bill: report.probe.bills.join("\n"),
            violations: report.violations,
        }
    }
}

/// All eight experiments under one fault plan: [`FaultPlan::hostile`]
/// when `hostile`, [`FaultPlan::calm`] otherwise.
pub fn experiment_scenarios(hostile: bool) -> Vec<ExperimentScenario> {
    let plan = if hostile {
        FaultPlan::hostile()
    } else {
        FaultPlan::calm()
    };
    EXPERIMENTS
        .iter()
        .map(|&(calm, hostile_name, entry)| ExperimentScenario {
            name: if hostile { hostile_name } else { calm },
            plan: plan.clone(),
            entry,
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sweep::sweep;

    #[test]
    fn all_eight_experiments_are_wrapped() {
        let calm = experiment_scenarios(false);
        let hostile = experiment_scenarios(true);
        assert_eq!(calm.len(), 8);
        assert_eq!(hostile.len(), 8);
        assert!(calm.iter().all(|s| s.name().ends_with("/calm")));
        assert!(hostile.iter().all(|s| s.name().ends_with("/hostile")));
    }

    #[test]
    fn cold_starts_survives_hostility_and_replays() {
        let scenario = experiment_scenarios(true)
            .into_iter()
            .find(|s| s.name() == "cold_starts/hostile")
            .expect("scenario");
        let report = sweep(&scenario, &[11, 12]);
        assert!(report.passed(), "{report}");
    }

    #[test]
    fn prediction_is_exactly_once_under_duplication() {
        let scenario = experiment_scenarios(true)
            .into_iter()
            .find(|s| s.name() == "prediction/hostile")
            .expect("scenario");
        let report = sweep(&scenario, &[5]);
        assert!(report.passed(), "{report}");
    }
}
