//! Multi-core seed fan-out: run deterministic single-threaded simulations
//! on every core at once.
//!
//! Each DES instance is single-threaded and a pure function of its seed,
//! which makes a seed sweep embarrassingly parallel — the same structure
//! Lambada exploits for interactive-speed serverless analytics. The
//! [`ParallelSweep`] engine fans seeds out across plain `std::thread`
//! workers pulling from a shared atomic cursor, then reassembles results
//! **in seed order**, so a parallel sweep is byte-identical to the serial
//! one: same [`SweepReport`], same digests, same minimal failing seed.
//!
//! Determinism is preserved because no simulation state crosses threads —
//! only seeds go in and finished reports come out. Thread scheduling can
//! reorder *completion*, never *content* or *placement*.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

use crate::sweep::{Scenario, SeedReport, SweepReport};

/// A worker pool for fanning pure `seed -> result` jobs across cores.
#[derive(Clone, Copy, Debug)]
pub struct ParallelSweep {
    workers: usize,
}

impl ParallelSweep {
    /// A pool with an explicit worker count (clamped to ≥ 1).
    pub fn new(workers: usize) -> ParallelSweep {
        ParallelSweep {
            workers: workers.max(1),
        }
    }

    /// A pool sized to the machine: one worker per available core.
    pub fn auto() -> ParallelSweep {
        ParallelSweep::new(Self::available_cores())
    }

    /// Cores the OS reports as available (1 if unknown).
    pub fn available_cores() -> usize {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    }

    /// Number of worker threads this pool uses.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Run `job` once per seed across the pool and return the outputs in
    /// **seed order** (index-aligned with `seeds`), regardless of which
    /// worker finished first. `job` must be a pure function of the seed;
    /// every simulation it builds lives and dies on one thread.
    ///
    /// A panic in any job is propagated to the caller after the other
    /// workers drain.
    pub fn map<T, F>(&self, seeds: &[u64], job: F) -> Vec<T>
    where
        T: Send,
        F: Fn(u64) -> T + Sync,
    {
        if seeds.is_empty() {
            return Vec::new();
        }
        let workers = self.workers.min(seeds.len());
        if workers == 1 {
            return seeds.iter().map(|&s| job(s)).collect();
        }
        let cursor = AtomicUsize::new(0);
        let slots: Vec<Mutex<Option<T>>> =
            seeds.iter().map(|_| Mutex::new(None)).collect();
        std::thread::scope(|scope| {
            let mut handles = Vec::with_capacity(workers);
            for _ in 0..workers {
                let cursor = &cursor;
                let slots = &slots;
                let job = &job;
                handles.push(scope.spawn(move || loop {
                    let i = cursor.fetch_add(1, Ordering::Relaxed);
                    let Some(&seed) = seeds.get(i) else { break };
                    let out = job(seed);
                    *slots[i].lock().expect("slot poisoned") = Some(out);
                }));
            }
            for h in handles {
                if let Err(panic) = h.join() {
                    std::panic::resume_unwind(panic);
                }
            }
        });
        slots
            .into_iter()
            .map(|slot| {
                slot.into_inner()
                    .expect("slot poisoned")
                    .expect("every seed slot filled")
            })
            .collect()
    }

    /// Parallel counterpart of [`sweep`](crate::sweep::sweep): identical
    /// semantics (every seed runs twice, replay divergence is a failure)
    /// and a byte-identical [`SweepReport`], just spread across cores.
    pub fn sweep(&self, scenario: &(dyn Scenario + Sync), seeds: &[u64]) -> SweepReport {
        let results: Vec<SeedReport> = self.map(seeds, |seed| {
            let first = scenario.run(seed);
            let second = scenario.run(seed);
            let mut violations = first.violations.clone();
            if first.digest != second.digest {
                violations.push(format!(
                    "replay divergence at seed {seed}: recorder digests differ \
                     between two identical runs"
                ));
            }
            if first.bill != second.bill {
                violations.push(format!(
                    "replay divergence at seed {seed}: bills differ between two \
                     identical runs"
                ));
            }
            SeedReport { seed, violations }
        });
        SweepReport {
            scenario: scenario.name().to_owned(),
            results,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sweep::{sweep, RunReport};

    struct FailsOdd;
    impl Scenario for FailsOdd {
        fn name(&self) -> &'static str {
            "fails-odd"
        }
        fn run(&self, seed: u64) -> RunReport {
            RunReport {
                digest: format!("digest-{seed}"),
                bill: format!("bill-{seed}"),
                violations: if seed % 2 == 1 {
                    vec![format!("odd seed {seed}")]
                } else {
                    vec![]
                },
            }
        }
    }

    #[test]
    fn map_preserves_seed_order() {
        let pool = ParallelSweep::new(4);
        let seeds: Vec<u64> = (0..37).collect();
        let out = pool.map(&seeds, |s| s * 10);
        assert_eq!(out, seeds.iter().map(|s| s * 10).collect::<Vec<_>>());
    }

    #[test]
    fn map_on_empty_and_single() {
        let pool = ParallelSweep::new(8);
        assert!(pool.map(&[], |s| s).is_empty());
        assert_eq!(pool.map(&[9], |s| s + 1), vec![10]);
    }

    #[test]
    fn parallel_sweep_matches_serial_byte_for_byte() {
        let seeds: Vec<u64> = (1..=23).collect();
        let serial = sweep(&FailsOdd, &seeds);
        for workers in [1, 2, 3, 8] {
            let parallel = ParallelSweep::new(workers).sweep(&FailsOdd, &seeds);
            assert_eq!(serial, parallel, "workers={workers}");
        }
    }

    #[test]
    fn worker_count_is_clamped() {
        assert_eq!(ParallelSweep::new(0).workers(), 1);
        assert!(ParallelSweep::auto().workers() >= 1);
    }

    #[test]
    fn panics_propagate() {
        let pool = ParallelSweep::new(2);
        let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            pool.map(&[1, 2, 3, 4], |s| {
                if s == 3 {
                    panic!("boom at {s}");
                }
                s
            })
        }));
        assert!(caught.is_err());
    }
}
