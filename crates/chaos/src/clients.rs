//! Resilient service clients: the raw stores wrapped in a
//! [`RetryPolicy`], so experiments can opt into the retry discipline
//! that real serverless applications are forced to adopt.
//!
//! Only *transient* errors (KV throttling, blob 503s, per-call
//! timeouts) are retried; logic errors such as a missing table or a
//! failed conditional write surface immediately as
//! [`RetryError::Fatal`].

use std::cell::RefCell;
use std::rc::Rc;

use bytes::Bytes;
use faasim_kv::{Consistency, Item, KvError, KvStore};
use faasim_blob::{BlobError, BlobStore};
use faasim_net::Host;
use faasim_simcore::{Recorder, Sim, SimRng};

use crate::retry::{RetryError, RetryPolicy};

/// A [`KvStore`] client that retries transient failures with the given
/// policy. Cheap to clone; clones share the jitter RNG stream.
#[derive(Clone)]
pub struct RetryingKv {
    kv: KvStore,
    sim: Sim,
    policy: RetryPolicy,
    rng: Rc<RefCell<SimRng>>,
    recorder: Recorder,
}

impl RetryingKv {
    /// Wrap `kv`. `label` names the jitter RNG stream, so two clients
    /// with different labels draw independent jitter.
    pub fn new(sim: &Sim, kv: &KvStore, recorder: Recorder, policy: RetryPolicy, label: &str) -> RetryingKv {
        RetryingKv {
            kv: kv.clone(),
            sim: sim.clone(),
            policy,
            rng: Rc::new(RefCell::new(sim.rng(label))),
            recorder,
        }
    }

    /// Retrying unconditional write. Returns the new version.
    pub async fn put(
        &self,
        caller: &Host,
        table: &str,
        key: &str,
        value: Bytes,
    ) -> Result<u64, RetryError<KvError>> {
        let rec = self.recorder.clone();
        self.policy
            .run(&self.sim, &self.rng, KvError::is_transient, || {
                rec.incr("chaos.kv.attempts");
                self.kv.put(caller, table, key, value.clone())
            })
            .await
    }

    /// Retrying read.
    pub async fn get(
        &self,
        caller: &Host,
        table: &str,
        key: &str,
        consistency: Consistency,
    ) -> Result<Item, RetryError<KvError>> {
        let rec = self.recorder.clone();
        self.policy
            .run(&self.sim, &self.rng, KvError::is_transient, || {
                rec.incr("chaos.kv.attempts");
                self.kv.get(caller, table, key, consistency)
            })
            .await
    }

    /// Retrying delete (idempotent, so retries are safe).
    pub async fn delete(
        &self,
        caller: &Host,
        table: &str,
        key: &str,
    ) -> Result<(), RetryError<KvError>> {
        let rec = self.recorder.clone();
        self.policy
            .run(&self.sim, &self.rng, KvError::is_transient, || {
                rec.incr("chaos.kv.attempts");
                self.kv.delete(caller, table, key)
            })
            .await
    }

    /// The wrapped store, for operations that should not retry.
    pub fn inner(&self) -> &KvStore {
        &self.kv
    }
}

/// A [`BlobStore`] client that retries transient failures.
#[derive(Clone)]
pub struct RetryingBlob {
    blob: BlobStore,
    sim: Sim,
    policy: RetryPolicy,
    rng: Rc<RefCell<SimRng>>,
    recorder: Recorder,
}

impl RetryingBlob {
    /// Wrap `blob`; `label` names the jitter RNG stream.
    pub fn new(
        sim: &Sim,
        blob: &BlobStore,
        recorder: Recorder,
        policy: RetryPolicy,
        label: &str,
    ) -> RetryingBlob {
        RetryingBlob {
            blob: blob.clone(),
            sim: sim.clone(),
            policy,
            rng: Rc::new(RefCell::new(sim.rng(label))),
            recorder,
        }
    }

    /// Retrying object write (PUT is idempotent, so retries are safe).
    pub async fn put(
        &self,
        caller: &Host,
        bucket: &str,
        key: &str,
        data: Bytes,
    ) -> Result<(), RetryError<BlobError>> {
        let rec = self.recorder.clone();
        self.policy
            .run(&self.sim, &self.rng, BlobError::is_transient, || {
                rec.incr("chaos.blob.attempts");
                self.blob.put(caller, bucket, key, data.clone())
            })
            .await
    }

    /// Retrying object read.
    pub async fn get(
        &self,
        caller: &Host,
        bucket: &str,
        key: &str,
    ) -> Result<faasim_payload::Payload, RetryError<BlobError>> {
        let rec = self.recorder.clone();
        self.policy
            .run(&self.sim, &self.rng, BlobError::is_transient, || {
                rec.incr("chaos.blob.attempts");
                self.blob.get(caller, bucket, key)
            })
            .await
    }

    /// The wrapped store, for operations that should not retry.
    pub fn inner(&self) -> &BlobStore {
        &self.blob
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use faasim::{Cloud, CloudProfile};
    use faasim_kv::KvFaults;

    #[test]
    fn retrying_kv_survives_heavy_throttling() {
        let cloud = Cloud::new(CloudProfile::aws_2018().exact(), 11);
        cloud.kv.set_faults(KvFaults { throttle_prob: 0.5 });
        cloud.kv.create_table("t");
        let client = RetryingKv::new(
            &cloud.sim,
            &cloud.kv,
            cloud.recorder.clone(),
            RetryPolicy {
                max_attempts: 10,
                ..RetryPolicy::default()
            },
            "chaos.test",
        );
        let host = cloud.client_host();
        let ok = cloud.sim.block_on(async move {
            for i in 0..50u8 {
                client
                    .put(&host, "t", &format!("k{i}"), Bytes::from(vec![i]))
                    .await?;
                client.get(&host, "t", &format!("k{i}"), Consistency::Strong).await?;
            }
            Ok::<(), RetryError<KvError>>(())
        });
        ok.expect("retries should absorb 50% throttling");
        assert!(cloud.recorder.counter("kv.throttled") > 0, "faults fired");
        assert!(
            cloud.recorder.counter("chaos.kv.attempts") > 100,
            "extra attempts were made"
        );
    }

    #[test]
    fn fatal_errors_are_not_retried() {
        let cloud = Cloud::new(CloudProfile::aws_2018().exact(), 11);
        let client = RetryingKv::new(
            &cloud.sim,
            &cloud.kv,
            cloud.recorder.clone(),
            RetryPolicy::default(),
            "chaos.test",
        );
        let host = cloud.client_host();
        let got = cloud.sim.block_on(async move {
            client.get(&host, "missing", "k", Consistency::Strong).await
        });
        assert!(matches!(got, Err(RetryError::Fatal(KvError::NoSuchTable(_)))));
        assert_eq!(cloud.recorder.counter("chaos.kv.attempts"), 1);
    }
}
