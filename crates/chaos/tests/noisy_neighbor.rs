//! The noisy-neighbor acceptance sweep: across several seeds, a tenant
//! bursting at 50× its allotment must not move a well-behaved tenant's
//! in-window p99 beyond the documented bound, the sweep harness must
//! prove each seed replays byte-identically (both arms fold into the
//! digest), and every per-tenant admission ledger must conserve.

use faasim_chaos::{sweep, NoisyNeighbor, Scenario};

#[test]
fn isolation_bound_holds_across_the_ci_seed_sweep() {
    let report = sweep(&NoisyNeighbor::default(), &[1, 2, 3, 4]);
    assert!(report.passed(), "{report}");
}

#[test]
fn isolation_survives_the_hostile_fault_plan() {
    let report = sweep(&NoisyNeighbor::chaotic(), &[1, 2]);
    assert!(report.passed(), "{report}");
}

#[test]
fn measured_p99s_are_sane() {
    // The digest's last line carries the measured quantiles; parse them
    // back out and sanity-check the experiment actually measured a warm
    // steady state (tens of ms, not cold-start seconds) in both arms.
    for seed in [1, 2, 3, 4] {
        let run = NoisyNeighbor::default().run(seed);
        let line = run
            .digest
            .lines()
            .last()
            .expect("digest has a quantile line");
        let nums: Vec<f64> = line
            .split_whitespace()
            .filter_map(|w| w.parse().ok())
            .collect();
        assert_eq!(nums.len(), 2, "unexpected quantile line: {line}");
        let (quiet, hostile) = (nums[0], nums[1]);
        println!("seed {seed}: victim p99 quiet {quiet:.6}s hostile {hostile:.6}s");
        assert!(quiet > 0.02 && quiet < 1.0, "quiet p99 {quiet} out of range");
        assert!(hostile > 0.02, "hostile p99 {hostile} out of range");
    }
}
