//! Determinism regression for the trace-replay scenario: a 10k-event
//! trace replayed serially and through the multi-threaded sweep must
//! produce byte-identical recorder digests and an identical
//! [`faasim_trace::ReplayReport`] — thread fan-out must not be able to
//! perturb a single seed's outcome.

use faasim_chaos::{sweep, FaultPlan, ParallelSweep, TraceReplay};
use faasim_trace::ReplayConfig;

fn ten_k() -> ReplayConfig {
    let mut cfg = ReplayConfig::small();
    cfg.trace.max_events = 10_000;
    cfg
}

fn scenario() -> TraceReplay {
    TraceReplay::new("trace-replay/determinism", FaultPlan::hostile(), ten_k(), false)
}

#[test]
fn ten_k_trace_serial_and_parallel_sweeps_are_byte_identical() {
    let seeds: Vec<u64> = (1..=4).collect();
    let s = scenario();
    let serial = sweep(&s, &seeds);
    let parallel = ParallelSweep::auto().sweep(&s, &seeds);
    assert!(serial.passed(), "{serial}");
    // The scenario folds the full report into each seed's digest, so this
    // equality covers every metric, not just the recorder counters.
    assert_eq!(serial, parallel, "parallel sweep diverged from serial");
}

#[test]
fn ten_k_trace_report_is_identical_across_replays() {
    let s = scenario();
    let a = s.replay(9);
    let b = s.replay(9);
    assert_eq!(a.report, b.report);
    assert_eq!(a.digest, b.digest);
    assert_eq!(a.bill, b.bill);
}
