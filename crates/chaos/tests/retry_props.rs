//! Property tests for [`RetryPolicy`]: for arbitrary (bounded) policies,
//! the deterministic backoff spine is monotone non-decreasing and capped,
//! and the jittered delay always lands inside the advertised envelope
//! `[backoff * (1 - jitter), backoff * (1 + jitter)]`.

use faasim_chaos::RetryPolicy;
use faasim_simcore::{SimDuration, SimRng};
use proptest::prelude::*;

/// Strategy over policies with bounded but varied shapes: bases from 1 ms
/// to 10 s, factors from sub-1 (clamped internally) to 8x, caps from 10 ms
/// to 100 s, full jitter range.
fn policy(
    base_ms: u64,
    factor: f64,
    cap_ms: u64,
    jitter: f64,
) -> RetryPolicy {
    RetryPolicy {
        max_attempts: 8,
        base: SimDuration::from_millis(base_ms),
        factor,
        cap: SimDuration::from_millis(cap_ms),
        jitter,
        call_timeout: None,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn backoff_is_monotone_nondecreasing(
        base_ms in 1u64..10_000,
        factor in 0.5f64..8.0,
        cap_ms in 10u64..100_000,
    ) {
        let p = policy(base_ms, factor, cap_ms, 0.0);
        let mut prev = p.backoff(0);
        for attempt in 1..12u32 {
            let next = p.backoff(attempt);
            prop_assert!(
                next >= prev,
                "backoff shrank at attempt {attempt}: {prev} -> {next} ({p:?})"
            );
            prev = next;
        }
    }

    #[test]
    fn backoff_is_bounded_by_the_cap(
        base_ms in 1u64..10_000,
        factor in 0.5f64..8.0,
        cap_ms in 10u64..100_000,
        attempt in 0u32..64,
    ) {
        let p = policy(base_ms, factor, cap_ms, 0.0);
        let b = p.backoff(attempt);
        prop_assert!(
            b <= p.cap,
            "backoff {b} exceeds cap {} at attempt {attempt}",
            p.cap
        );
        // And it never undercuts the base (factor is clamped to >= 1),
        // unless the cap itself is below the base. Small slack for the
        // f64 secs -> SimDuration round-trip.
        let floor = p.base.min(p.cap).as_secs_f64();
        prop_assert!(
            b.as_secs_f64() >= floor - 1e-9,
            "backoff {b} undercuts min(base, cap) {floor}s"
        );
    }

    #[test]
    fn jittered_delay_stays_in_the_envelope(
        base_ms in 1u64..10_000,
        factor in 0.5f64..8.0,
        cap_ms in 10u64..100_000,
        jitter in 0.0f64..=1.0,
        attempt in 0u32..16,
        seed in 0u64..1_000_000,
    ) {
        let p = policy(base_ms, factor, cap_ms, jitter);
        let mut rng = SimRng::from_seed(seed);
        let b = p.backoff(attempt).as_secs_f64();
        let d = p.delay(attempt, &mut rng).as_secs_f64();
        // Small absolute slack for the f64 secs -> SimDuration round-trip.
        let eps = 1e-9 + b * 1e-12;
        prop_assert!(
            d >= b * (1.0 - jitter) - eps,
            "delay {d}s below envelope floor {}s (jitter {jitter})",
            b * (1.0 - jitter)
        );
        prop_assert!(
            d <= b * (1.0 + jitter) + eps,
            "delay {d}s above envelope ceiling {}s (jitter {jitter})",
            b * (1.0 + jitter)
        );
    }

    #[test]
    fn zero_jitter_delay_equals_the_spine(
        base_ms in 1u64..10_000,
        factor in 0.5f64..8.0,
        cap_ms in 10u64..100_000,
        attempt in 0u32..16,
    ) {
        let p = policy(base_ms, factor, cap_ms, 0.0);
        let mut rng = SimRng::from_seed(1);
        prop_assert_eq!(p.delay(attempt, &mut rng), p.backoff(attempt));
        // The same rng state must produce the same next draw as a fresh
        // one: no randomness was consumed.
        let mut fresh = SimRng::from_seed(1);
        prop_assert_eq!(rng.range_u64(0..1_000_000), fresh.range_u64(0..1_000_000));
    }
}
