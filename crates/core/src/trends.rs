//! Figure 1 substitute: search-interest curves for "map reduce" vs
//! "serverless", 2004–2018.
//!
//! Google Trends data cannot be redistributed or regenerated offline, so
//! this module models the figure's *claim* instead: MapReduce interest
//! rises from the mid-2000s, peaks around 2014–15, and declines;
//! serverless interest is negligible until ~2016, then rises steeply to
//! match MapReduce's historic peak by the end of 2018 (the paper's
//! publication window). The model is a pair of logistic adoption curves
//! (one with decay) plus mild seasonality, normalized to 100 like Trends.

/// One month of the two series.
#[derive(Copy, Clone, Debug, PartialEq)]
pub struct TrendPoint {
    /// Year (2004..=2018).
    pub year: u32,
    /// Month (1..=12).
    pub month: u32,
    /// Normalized interest for "map reduce" (0–100).
    pub map_reduce: f64,
    /// Normalized interest for "serverless" (0–100).
    pub serverless: f64,
}

fn logistic(t: f64, mid: f64, rate: f64) -> f64 {
    1.0 / (1.0 + (-(t - mid) * rate).exp())
}

/// Generate the monthly series from January 2004 through December 2018.
pub fn generate() -> Vec<TrendPoint> {
    let mut raw = Vec::new();
    for year in 2004..=2018u32 {
        for month in 1..=12u32 {
            let t = (year - 2004) as f64 + (month - 1) as f64 / 12.0; // years since 2004-01
            // MapReduce: adoption from ~2006, peak 2013–14, slow decline.
            let mr_rise = logistic(t, 5.5, 0.7);
            let mr_decline = 1.0 - 0.5 * logistic(t, 12.0, 1.0);
            let mr = mr_rise * mr_decline;
            // Serverless: takeoff ~2016.8, still climbing at publication.
            let sv = logistic(t, 13.8, 1.8);
            // Mild seasonality (search interest dips in (northern) summer
            // and December).
            let season = 1.0
                - 0.04 * ((month as f64 - 7.0).abs() < 1.5) as u8 as f64
                - 0.03 * (month == 12) as u8 as f64;
            raw.push((year, month, mr * season, sv * season));
        }
    }
    // Normalize like Trends: global max across both series = 100.
    let max = raw
        .iter()
        .flat_map(|&(_, _, a, b)| [a, b])
        .fold(f64::MIN, f64::max);
    raw.into_iter()
        .map(|(year, month, mr, sv)| TrendPoint {
            year,
            month,
            map_reduce: mr / max * 100.0,
            serverless: sv / max * 100.0,
        })
        .collect()
}

/// Render an ASCII chart of both series (one row per quarter).
pub fn ascii_chart(points: &[TrendPoint], width: usize) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{:<8} {:<width$}  (M = \"map reduce\", S = \"serverless\", X = both)\n",
        "month", "interest 0..100",
    ));
    for p in points.iter().filter(|p| p.month % 3 == 1) {
        let m_pos = (p.map_reduce / 100.0 * (width - 1) as f64).round() as usize;
        let s_pos = (p.serverless / 100.0 * (width - 1) as f64).round() as usize;
        let mut line = vec![b' '; width];
        line[m_pos] = b'M';
        if s_pos == m_pos {
            line[s_pos] = b'X';
        } else {
            line[s_pos] = b'S';
        }
        out.push_str(&format!(
            "{:04}-{:02}  {}\n",
            p.year,
            p.month,
            String::from_utf8(line).expect("ascii")
        ));
    }
    out
}

/// The figure's quantitative claims, extracted for assertions:
/// `(mapreduce_peak, serverless_final, crossover)` where `crossover` is
/// the first `(year, month)` at which serverless exceeds map reduce.
pub fn headline_claims(points: &[TrendPoint]) -> (f64, f64, Option<(u32, u32)>) {
    let mr_peak = points.iter().map(|p| p.map_reduce).fold(f64::MIN, f64::max);
    let sv_final = points.last().map(|p| p.serverless).unwrap_or(0.0);
    let crossover = points
        .iter()
        .find(|p| p.serverless > p.map_reduce)
        .map(|p| (p.year, p.month));
    (mr_peak, sv_final, crossover)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn series_covers_publication_window() {
        let pts = generate();
        assert_eq!(pts.len(), 15 * 12);
        assert_eq!((pts[0].year, pts[0].month), (2004, 1));
        let last = pts.last().unwrap();
        assert_eq!((last.year, last.month), (2018, 12));
    }

    #[test]
    fn values_normalized_to_100() {
        let pts = generate();
        let max = pts
            .iter()
            .flat_map(|p| [p.map_reduce, p.serverless])
            .fold(f64::MIN, f64::max);
        assert!((max - 100.0).abs() < 1e-9);
        assert!(pts
            .iter()
            .all(|p| p.map_reduce >= 0.0 && p.serverless >= 0.0));
    }

    #[test]
    fn reproduces_figure_one_claims() {
        let pts = generate();
        let (mr_peak, sv_final, crossover) = headline_claims(&pts);
        // Serverless matches MapReduce's historic peak by publication.
        assert!(
            sv_final > mr_peak * 0.9,
            "serverless {sv_final} vs MR peak {mr_peak}"
        );
        // The crossover happens in the 2017–2018 window.
        let (y, _m) = crossover.expect("series must cross");
        assert!((2017..=2018).contains(&y), "crossover in {y}");
        // MapReduce interest in 2004 is negligible, and by 2018 it has
        // declined well below its peak.
        assert!(pts[0].map_reduce < 5.0);
        let mr_final = pts.last().unwrap().map_reduce;
        assert!(mr_final < mr_peak * 0.7, "MR {mr_final} vs peak {mr_peak}");
    }

    #[test]
    fn mapreduce_peaks_mid_2010s() {
        let pts = generate();
        let peak = pts
            .iter()
            .max_by(|a, b| a.map_reduce.partial_cmp(&b.map_reduce).unwrap())
            .unwrap();
        assert!(
            (2012..=2016).contains(&peak.year),
            "MR peak at {}-{}",
            peak.year,
            peak.month
        );
    }

    #[test]
    fn ascii_chart_is_plottable() {
        let pts = generate();
        let chart = ascii_chart(&pts, 60);
        assert!(chart.contains("2018-10"));
        assert!(chart.contains('M'));
        assert!(chart.contains('S'));
    }

    #[test]
    fn generation_is_deterministic() {
        assert_eq!(generate(), generate());
    }
}
