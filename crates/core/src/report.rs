//! Plain-text tables in the paper's style, used by every bench harness.

use std::fmt::Write as _;

use faasim_simcore::SimDuration;

/// A column-aligned text table.
#[derive(Clone, Debug, Default)]
pub struct Table {
    /// Title printed above the table.
    pub title: String,
    /// Column headers.
    pub headers: Vec<String>,
    /// Rows of cells; ragged rows are padded with empty cells.
    pub rows: Vec<Vec<String>>,
}

impl Table {
    /// Start a table.
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Table {
        Table {
            title: title.into(),
            headers: headers.iter().map(|h| (*h).to_owned()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row.
    pub fn row(&mut self, cells: &[String]) -> &mut Table {
        self.rows.push(cells.to_vec());
        self
    }

    /// Append a row of string slices.
    pub fn row_str(&mut self, cells: &[&str]) -> &mut Table {
        self.rows
            .push(cells.iter().map(|c| (*c).to_owned()).collect());
        self
    }

    /// Render with aligned columns.
    pub fn render(&self) -> String {
        let cols = self
            .headers
            .len()
            .max(self.rows.iter().map(Vec::len).max().unwrap_or(0));
        let mut widths = vec![0usize; cols];
        let measure = |widths: &mut Vec<usize>, cells: &[String]| {
            for (i, c) in cells.iter().enumerate() {
                widths[i] = widths[i].max(c.chars().count());
            }
        };
        measure(&mut widths, &self.headers);
        for row in &self.rows {
            measure(&mut widths, row);
        }
        let mut out = String::new();
        if !self.title.is_empty() {
            writeln!(out, "{}", self.title).unwrap();
        }
        let write_row = |out: &mut String, cells: &[String]| {
            let mut line = String::new();
            for (i, width) in widths.iter().enumerate() {
                let cell = cells.get(i).map(String::as_str).unwrap_or("");
                let pad = width - cell.chars().count();
                if i == 0 {
                    // First column left-aligned.
                    line.push_str(cell);
                    line.push_str(&" ".repeat(pad));
                } else {
                    line.push_str(&" ".repeat(pad));
                    line.push_str(cell);
                }
                if i + 1 < widths.len() {
                    line.push_str("  ");
                }
            }
            writeln!(out, "{}", line.trim_end()).unwrap();
        };
        if !self.headers.is_empty() {
            write_row(&mut out, &self.headers);
            writeln!(out, "{}", "-".repeat(widths.iter().sum::<usize>() + 2 * (cols - 1)))
                .unwrap();
        }
        for row in &self.rows {
            write_row(&mut out, row);
        }
        out
    }
}

/// Format a duration for a table cell the way the paper does: µs under a
/// millisecond, ms under a minute, otherwise minutes.
pub fn fmt_latency(d: SimDuration) -> String {
    let s = d.as_secs_f64();
    if s < 1e-3 {
        format!("{:.0}\u{b5}s", s * 1e6)
    } else if s < 1.0 {
        format!("{:.1}ms", s * 1e3).replace(".0ms", "ms")
    } else if s < 120.0 {
        format!("{s:.2}s")
    } else {
        format!("{:.0}min", s / 60.0)
    }
}

/// Format a slowdown/ratio like the paper's "compared to best" row.
pub fn fmt_ratio(r: f64) -> String {
    if r >= 100.0 {
        let whole = r.round() as i64;
        let mut s = whole.to_string();
        let mut i = s.len() as i64 - 3;
        while i > 0 {
            s.insert(i as usize, ',');
            i -= 3;
        }
        format!("{s}\u{d7}")
    } else if r >= 10.0 {
        format!("{r:.1}\u{d7}")
    } else {
        format!("{r:.2}\u{d7}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned() {
        let mut t = Table::new("Latencies", &["", "A", "B"]);
        t.row_str(&["Latency", "303ms", "290\u{b5}s"]);
        t.row_str(&["Compared to best", "1,045\u{d7}", "1\u{d7}"]);
        let s = t.render();
        assert!(s.contains("Latencies"));
        assert!(s.contains("303ms"));
        // Header separator present.
        assert!(s.contains("---"));
        // All lines after the title have consistent structure.
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 5);
    }

    #[test]
    fn ragged_rows_padded() {
        let mut t = Table::new("", &["x", "y"]);
        t.row_str(&["only-one"]);
        let s = t.render();
        assert!(s.contains("only-one"));
    }

    #[test]
    fn latency_formatting() {
        assert_eq!(fmt_latency(SimDuration::from_micros(290)), "290\u{b5}s");
        assert_eq!(fmt_latency(SimDuration::from_millis(303)), "303ms");
        assert_eq!(fmt_latency(SimDuration::from_millis(11)), "11ms");
        assert_eq!(fmt_latency(SimDuration::from_secs(16)), "16.00s");
        assert_eq!(fmt_latency(SimDuration::from_mins(465)), "465min");
    }

    #[test]
    fn ratio_formatting() {
        assert_eq!(fmt_ratio(1.0), "1.00\u{d7}");
        assert_eq!(fmt_ratio(37.9), "37.9\u{d7}");
        assert_eq!(fmt_ratio(372.0), "372\u{d7}");
        assert_eq!(fmt_ratio(1045.0), "1,045\u{d7}");
    }
}
