//! # faasim
//!
//! A from-scratch reproduction of *"Serverless Computing: One Step
//! Forward, Two Steps Back"* (Hellerstein et al., CIDR 2019) on a
//! deterministic simulated cloud.
//!
//! The workspace builds every system the paper measures — a Lambda-like
//! FaaS platform, S3-like object store, DynamoDB-like KV store, SQS-like
//! queue, EC2-like serverful compute, and a datacenter network with
//! fair-shared NICs — over a discrete-event kernel, then re-runs the
//! paper's Table 1, Figure 1, and all three §3.1 case studies on it.
//!
//! Entry points:
//! - [`Cloud`] / [`CloudProfile`]: compose a calibrated cloud.
//! - [`experiments`]: each table/figure as a parameterized experiment.
//! - [`trends`]: the Figure 1 adoption-curve model.
//! - [`report`]: the plain-text tables the bench harnesses print.
//!
//! ```
//! use bytes::Bytes;
//! use faasim::{Cloud, CloudProfile};
//!
//! let cloud = Cloud::new(CloudProfile::aws_2018().exact(), 42);
//! cloud.blob.create_bucket("demo");
//! let host = cloud.client_host();
//! let blob = cloud.blob.clone();
//! cloud.sim.block_on(async move {
//!     blob.put(&host, "demo", "hello", Bytes::from_static(b"world"))
//!         .await
//!         .unwrap();
//!     blob.get(&host, "demo", "hello").await.unwrap();
//! });
//! // Table 1's S3 row: a 1KB-class write+read costs ~106 ms.
//! let ms = cloud.sim.now().as_secs_f64() * 1e3;
//! assert!((ms - 106.0).abs() < 2.0);
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

mod cloud;
pub mod experiments;
pub mod report;
pub mod trends;

pub use cloud::{Cloud, CloudProfile};

// Re-export the service crates so downstream users need only `faasim`.
pub use faasim_agents as agents;
pub use faasim_blob as blob;
pub use faasim_compute as compute;
pub use faasim_faas as faas;
pub use faasim_kv as kv;
pub use faasim_ml as ml;
pub use faasim_net as net;
pub use faasim_payload as payload;
pub use faasim_pricing as pricing;
pub use faasim_protocols as protocols;
pub use faasim_query as query;
pub use faasim_queue as queue;
pub use faasim_simcore as simcore;
