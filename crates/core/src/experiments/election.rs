//! Experiment E5 — §3.1 case study 3: **distributed computing** via bully
//! leader election over a DynamoDB-style blackboard.
//!
//! Reproduces the paper's three claims:
//! - each election round takes ~16.7 s at a 4 Hz poll rate;
//! - with the 15-minute function lifetime, a cluster spends ≥1.9% of its
//!   aggregate time electing;
//! - the polling traffic alone prices a 1,000-node cluster at ≥$450/hr.

use faasim_pricing::Service;
use faasim_protocols::{
    spawn_node, BlackboardTransport, BullyConfig, ElectionObserver, NodeId,
};
use faasim_simcore::{mbps, SimDuration};

use crate::cloud::{Cloud, CloudProfile};
use crate::experiments::probe::ExperimentProbe;
use crate::report::Table;

/// Parameters of the election study.
#[derive(Clone, Debug)]
pub struct ElectionParams {
    /// Cluster size actually simulated.
    pub nodes: u64,
    /// Poll rate (paper: 4 polls per second).
    pub polls_per_second: f64,
    /// Leader kills measured (averaged).
    pub rounds: usize,
    /// Cluster size for the cost extrapolation (paper: 1,000).
    pub extrapolate_nodes: u64,
    /// Function lifetime used for the %-time claim (paper: 900 s).
    pub lifetime: SimDuration,
    /// Scale the protocol timeouts with the polling period, keeping the
    /// configuration "equally conservative" in polling windows across a
    /// poll-rate sweep. At the paper's 4 Hz this is the identity.
    pub scale_timeouts_with_poll: bool,
}

impl Default for ElectionParams {
    fn default() -> Self {
        ElectionParams {
            nodes: 10,
            polls_per_second: 4.0,
            rounds: 5,
            extrapolate_nodes: 1_000,
            lifetime: SimDuration::from_secs(900),
            scale_timeouts_with_poll: true,
        }
    }
}

impl ElectionParams {
    /// Reduced scale for tests.
    pub fn quick() -> ElectionParams {
        ElectionParams {
            nodes: 5,
            rounds: 2,
            ..ElectionParams::default()
        }
    }
}

/// Outcome of the election study.
#[derive(Clone, Debug)]
pub struct ElectionResult {
    /// Mean re-election round (leader death → cluster-wide agreement).
    pub mean_round: SimDuration,
    /// Fraction of aggregate time spent electing under the 15-minute
    /// lifetime (the paper's best case: one election per lifetime).
    pub fraction_electing: f64,
    /// Steady-state KV requests per node-second.
    pub requests_per_node_second: f64,
    /// Extrapolated $/hr for `extrapolate_nodes` at the steady rate.
    pub hourly_cost_extrapolated: f64,
    /// All measured rounds.
    pub rounds: Vec<SimDuration>,
    /// Byte-exact replay probe.
    pub probe: ExperimentProbe,
}

impl ElectionResult {
    /// Render in the case study's structure.
    pub fn render(&self, params: &ElectionParams) -> String {
        let mut t = Table::new(
            "Case study 3: bully leader election over blackboard storage",
            &["metric", "value"],
        );
        t.row(&[
            "poll rate".into(),
            format!("{:.0}/s", params.polls_per_second),
        ]);
        t.row(&[
            "election round (mean)".into(),
            format!("{:.1}s", self.mean_round.as_secs_f64()),
        ]);
        t.row(&[
            "time spent electing".into(),
            format!("{:.1}%", self.fraction_electing * 100.0),
        ]);
        t.row(&[
            "steady KV requests".into(),
            format!("{:.1}/node/s", self.requests_per_node_second),
        ]);
        t.row(&[
            format!("cost at {} nodes", params.extrapolate_nodes),
            format!(
                "{}/hr",
                faasim_pricing::format_dollars(self.hourly_cost_extrapolated)
            ),
        ]);
        t.render()
    }
}

/// Run the study.
pub fn run(params: &ElectionParams, seed: u64) -> ElectionResult {
    let cloud = Cloud::new(CloudProfile::aws_2018().exact(), seed);
    BlackboardTransport::setup(&cloud.kv);
    let observer = ElectionObserver::new();
    let poll = SimDuration::from_secs_f64(1.0 / params.polls_per_second);
    let timeout_scale = if params.scale_timeouts_with_poll {
        (poll.as_secs_f64() / 0.25).max(1e-3)
    } else {
        1.0
    };
    let cfg = BullyConfig::blackboard_2018().scaled(timeout_scale);
    // Convergence windows must scale with the protocol timeouts.
    let settle = SimDuration::from_secs(60).mul_f64(timeout_scale.max(1.0));
    let failover_window = SimDuration::from_secs(200).mul_f64(timeout_scale.max(1.0));
    let members: Vec<NodeId> = (1..=params.nodes).collect();
    let mut handles = Vec::new();
    for &id in &members {
        let host = cloud
            .fabric
            .add_host(0, faasim_net::NicConfig::simple(mbps(1_000.0)));
        let t = BlackboardTransport::new(&cloud.sim, &cloud.kv, host, id, &members, poll);
        handles.push(spawn_node(&cloud.sim, t, cfg.clone(), observer.clone()));
    }

    // Initial convergence.
    cloud.sim.run_until(cloud.sim.now() + settle);
    assert_eq!(
        observer.current_leader(),
        Some(params.nodes),
        "cluster must elect the highest id"
    );

    // Steady-state request-rate measurement window (no elections).
    let window = SimDuration::from_secs(60);
    let reads0 = cloud.ledger.item_quantity(Service::Kv, "read-requests");
    let writes0 = cloud.ledger.item_quantity(Service::Kv, "write-requests");
    cloud.sim.run_until(cloud.sim.now() + window);
    let reads1 = cloud.ledger.item_quantity(Service::Kv, "read-requests");
    let writes1 = cloud.ledger.item_quantity(Service::Kv, "write-requests");
    let steady_requests =
        (reads1 - reads0 + writes1 - writes0) / window.as_secs_f64() / params.nodes as f64;

    // Kill the current highest live node repeatedly; measure each
    // re-election round.
    let mut rounds = Vec::new();
    let mut live_high = params.nodes;
    for _ in 0..params.rounds {
        if live_high <= 2 {
            break;
        }
        let idx = (live_high - 1) as usize;
        handles[idx].kill();
        observer.mark_dead(live_high, cloud.sim.now());
        let before = observer.rounds().len();
        cloud.sim.run_until(cloud.sim.now() + failover_window);
        let after = observer.rounds();
        assert!(
            after.len() > before,
            "round did not complete after killing {live_high}"
        );
        rounds.push(after.last().expect("round").duration());
        live_high -= 1;
    }
    for h in &handles {
        h.kill();
    }
    cloud
        .sim
        .run_until(cloud.sim.now() + SimDuration::from_secs(5));

    let mean_round = SimDuration::from_secs_f64(
        rounds.iter().map(|d| d.as_secs_f64()).sum::<f64>() / rounds.len().max(1) as f64,
    );
    let fraction = mean_round.as_secs_f64() / params.lifetime.as_secs_f64();
    let hourly = steady_requests
        * params.extrapolate_nodes as f64
        * 3600.0
        * cloud.prices.kv_read_per_request;
    let mut probe = ExperimentProbe::new();
    probe.capture(&cloud);
    ElectionResult {
        mean_round,
        fraction_electing: fraction,
        requests_per_node_second: steady_requests,
        hourly_cost_extrapolated: hourly,
        rounds,
        probe,
    }
}

/// Parameters for the empirical churn study (the paper's ≥1.9% claim,
/// measured instead of derived): every node is a Lambda with a bounded
/// lifetime; when it dies, a fresh invocation with the same identity
/// rejoins moments later, and each join/death disturbs agreement.
#[derive(Clone, Debug)]
pub struct ChurnParams {
    /// Cluster size.
    pub nodes: u64,
    /// Poll rate (paper: 4/s).
    pub polls_per_second: f64,
    /// Function lifetime (paper: 900 s).
    pub lifetime: SimDuration,
    /// Delay between a death and its replacement invocation joining.
    pub respawn_delay: SimDuration,
    /// Measurement window after initial convergence.
    pub window: SimDuration,
}

impl Default for ChurnParams {
    fn default() -> Self {
        ChurnParams {
            nodes: 10,
            polls_per_second: 4.0,
            lifetime: SimDuration::from_secs(900),
            respawn_delay: SimDuration::from_millis(300),
            window: SimDuration::from_hours(2),
        }
    }
}

impl ChurnParams {
    /// Reduced scale for tests.
    pub fn quick() -> ChurnParams {
        ChurnParams {
            nodes: 5,
            lifetime: SimDuration::from_secs(300),
            window: SimDuration::from_secs(1_800),
            ..ChurnParams::default()
        }
    }
}

/// Outcome of the churn study.
#[derive(Clone, Debug)]
pub struct ChurnResult {
    /// Measurement window.
    pub window: SimDuration,
    /// Time agreement was disturbed within the window.
    pub disturbed: SimDuration,
    /// `disturbed / window` — the paper claims ≥1.9% in the best case.
    pub fraction: f64,
    /// Agreement rounds completed during the window.
    pub rounds: usize,
    /// Byte-exact replay probe.
    pub probe: ExperimentProbe,
}

/// Run the churn study: nodes live for one Lambda lifetime, die, and are
/// replaced; measure the fraction of time the cluster lacks agreement.
pub fn run_churn(params: &ChurnParams, seed: u64) -> ChurnResult {
    use std::cell::RefCell;
    use std::rc::Rc;

    let cloud = Cloud::new(CloudProfile::aws_2018().exact(), seed);
    BlackboardTransport::setup(&cloud.kv);
    let observer = ElectionObserver::new();
    let poll = SimDuration::from_secs_f64(1.0 / params.polls_per_second);
    let cfg = BullyConfig::blackboard_2018().scaled(poll.as_secs_f64() / 0.25);
    let members: Vec<NodeId> = (1..=params.nodes).collect();

    // One driver task per identity: spawn, live one lifetime, die, rejoin.
    let handles: Rc<RefCell<Vec<faasim_protocols::NodeHandle>>> =
        Rc::new(RefCell::new(Vec::new()));
    for &id in &members {
        let sim = cloud.sim.clone();
        let kv = cloud.kv.clone();
        let fabric = cloud.fabric.clone();
        let observer = observer.clone();
        let cfg = cfg.clone();
        let members = members.clone();
        let lifetime = params.lifetime;
        let respawn = params.respawn_delay;
        let handles = handles.clone();
        let nodes = params.nodes;
        cloud.sim.clone().spawn(async move {
            // Stagger deaths uniformly across the lifetime.
            let stagger = lifetime.mul_f64(id as f64 / nodes as f64);
            let mut first = true;
            loop {
                let host = fabric.add_host(0, faasim_net::NicConfig::simple(mbps(1_000.0)));
                let t = BlackboardTransport::new(&sim, &kv, host, id, &members, poll);
                let handle = spawn_node(&sim, t, cfg.clone(), observer.clone());
                let this_life = if first { stagger } else { lifetime };
                first = false;
                sim.sleep(this_life).await;
                handle.kill();
                observer.mark_dead(id, sim.now());
                handles.borrow_mut().push(handle);
                sim.sleep(respawn).await;
            }
        });
    }

    // Let the cluster converge once, then measure.
    let settle = cfg.answer_timeout * 3;
    cloud.sim.run_until(cloud.sim.now() + settle);
    let from = cloud.sim.now();
    cloud.sim.run_until(from + params.window);
    let to = cloud.sim.now();

    let disturbed = observer.disturbed_time(from, to);
    let rounds = observer
        .rounds()
        .iter()
        .filter(|r| r.completed_at > from && r.completed_at <= to)
        .count();
    let mut probe = ExperimentProbe::new();
    probe.capture(&cloud);
    ChurnResult {
        window: params.window,
        disturbed,
        fraction: disturbed / params.window,
        rounds,
        probe,
    }
}

/// Chaos-hardened variant of the bully election: the same blackboard
/// cluster, but the KV blackboard now throttles ~10% of polls
/// (`FaultPlan::hostile`). The transport already tolerates storage
/// errors (a failed poll is just a missed beat), so the end-to-end
/// invariant is *liveness under brownout*: the cluster still elects the
/// highest id, and every leader kill still completes a failover round —
/// inside a generous but bounded convergence budget.
pub fn resilient(seed: u64, chaos: &dyn Fn(&Cloud)) -> super::ResilientReport {
    use faasim_resilience::{ledger_consistent, message_conservation, queue_conservation};

    const NODES: u64 = 5;
    const ROUNDS: usize = 2;

    let mut report = super::ResilientReport::new();
    let cloud = Cloud::new(CloudProfile::aws_2018().exact(), seed);
    chaos(&cloud);
    BlackboardTransport::setup(&cloud.kv);
    let observer = ElectionObserver::new();
    let poll = SimDuration::from_millis(250);
    let cfg = BullyConfig::blackboard_2018();
    let members: Vec<NodeId> = (1..=NODES).collect();
    let mut handles = Vec::new();
    for &id in &members {
        let host = cloud
            .fabric
            .add_host(0, faasim_net::NicConfig::simple(mbps(1_000.0)));
        let t = BlackboardTransport::new(&cloud.sim, &cloud.kv, host, id, &members, poll);
        handles.push(spawn_node(&cloud.sim, t, cfg.clone(), observer.clone()));
    }

    // Initial convergence: poll the observer in slices so a snapshot
    // taken mid-round (throttling stretches rounds) doesn't flake.
    let mut converged = false;
    for _ in 0..20 {
        cloud
            .sim
            .run_until(cloud.sim.now() + SimDuration::from_secs(30));
        if observer.current_leader() == Some(NODES) {
            converged = true;
            break;
        }
    }
    report.check(converged, || {
        format!(
            "election: no initial leader within budget (got {:?})",
            observer.current_leader()
        )
    });

    let mut live_high = NODES;
    for round in 0..ROUNDS {
        if live_high <= 2 {
            break;
        }
        handles[(live_high - 1) as usize].kill();
        observer.mark_dead(live_high, cloud.sim.now());
        let before = observer.rounds().len();
        let mut completed = false;
        for _ in 0..20 {
            cloud
                .sim
                .run_until(cloud.sim.now() + SimDuration::from_secs(60));
            if observer.rounds().len() > before {
                completed = true;
                break;
            }
        }
        report.check(completed, || {
            format!("election: failover round {round} did not complete after killing {live_high}")
        });
        live_high -= 1;
    }
    for h in &handles {
        h.kill();
    }
    cloud
        .sim
        .run_until(cloud.sim.now() + SimDuration::from_secs(5));

    if let Some(v) = message_conservation(&cloud.recorder) {
        report.violation(format!("election: {v}"));
    }
    if let Some(v) = queue_conservation(&cloud.recorder, &cloud.queue) {
        report.violation(format!("election: {v}"));
    }
    if let Some(v) = ledger_consistent(&cloud.ledger) {
        report.violation(format!("election: {v}"));
    }
    report.probe.capture(&cloud);
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_run_reproduces_case_study_shape() {
        let params = ElectionParams::quick();
        let r = run(&params, 42);
        // Paper: 16.7 s per round at 4 Hz polling.
        let secs = r.mean_round.as_secs_f64();
        assert!((10.0..25.0).contains(&secs), "round {secs} s");
        // Paper: ≥1.9% of aggregate time electing.
        assert!(
            (0.011..0.028).contains(&r.fraction_electing),
            "fraction {}",
            r.fraction_electing
        );
        // Paper footnote 6: 4 polls/s x 2 reads steady state.
        assert!(
            (7.0..10.5).contains(&r.requests_per_node_second),
            "steady rate {}",
            r.requests_per_node_second
        );
        // Paper: ≥$450/hr for 1,000 nodes.
        assert!(
            (380.0..560.0).contains(&r.hourly_cost_extrapolated),
            "hourly {}",
            r.hourly_cost_extrapolated
        );
        assert!(r.render(&params).contains("election round"));
    }

    #[test]
    fn churn_fraction_matches_paper_scale() {
        let r = run_churn(&ChurnParams::quick(), 42);
        // The paper claims >= 1.9% of aggregate time electing in the best
        // case; our empirical churn (deaths AND rejoins disturbing
        // agreement) should land in the low single-digit percents.
        assert!(
            (0.005..0.08).contains(&r.fraction),
            "churn fraction {} (disturbed {} of {})",
            r.fraction,
            r.disturbed,
            r.window
        );
        assert!(r.rounds > 0, "no agreement rounds during churn");
    }
}
