//! The paper's tables, figures, and case studies as runnable experiments.
//!
//! Each submodule exposes a `Params` struct (with paper-faithful
//! defaults plus a `quick()` variant for tests), a `run(params, seed)`
//! entry point, and a structured result with a `render()` method that
//! prints the paper-style table. The per-experiment index lives in
//! DESIGN.md §4.
//!
//! Every module additionally exposes a `resilient(seed, chaos)` variant
//! built on the `faasim-resilience` primitives (idempotency keys,
//! circuit breakers, deadline budgets, retrying clients). These run a
//! scaled-down workload, apply the caller's fault plan via the `chaos`
//! hook, never panic on platform failures, and return a
//! [`ResilientReport`] of invariant violations plus a determinism
//! probe — the substrate of the `chaos-experiments` sweep.

pub mod agents_cmp;
pub mod bandwidth;
pub mod cold_starts;
pub mod data_shipping;
pub mod election;
pub mod prediction;
pub mod probe;
pub mod table1;
pub mod training;

pub use probe::{ExperimentProbe, ResilientReport};
