//! The determinism probe: a byte-exact snapshot of every cloud an
//! experiment builds, captured so regression tests can assert that the
//! same seed reproduces the same run bit-for-bit.
//!
//! Experiments are only trustworthy if they replay: the paper's tables
//! are *numbers*, and a nondeterministic harness can't defend them.
//! Every experiment's result carries one of these; the chaos sweep
//! harness applies the same standard to fault-injected runs.

use crate::cloud::Cloud;

/// Recorder digests and bills from each cloud an experiment built, in
/// construction order. Two runs at the same seed must compare equal.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ExperimentProbe {
    /// One [`Recorder::digest`](faasim_simcore::Recorder::digest) per
    /// cloud.
    pub digests: Vec<String>,
    /// One [`Ledger::report`](faasim_pricing::Ledger::report) per cloud.
    pub bills: Vec<String>,
}

impl ExperimentProbe {
    /// A probe with nothing captured yet.
    pub fn new() -> ExperimentProbe {
        ExperimentProbe::default()
    }

    /// Snapshot `cloud`'s recorder and ledger. Call after the cloud's
    /// workload has fully run.
    pub fn capture(&mut self, cloud: &Cloud) {
        self.digests.push(cloud.recorder.digest());
        self.bills.push(cloud.ledger.report());
    }

    /// Number of clouds captured.
    pub fn len(&self) -> usize {
        self.digests.len()
    }

    /// True when nothing has been captured.
    pub fn is_empty(&self) -> bool {
        self.digests.is_empty()
    }
}

/// What a `resilient()` experiment variant hands back: the determinism
/// probe of every cloud it built, plus every end-to-end invariant
/// violation it observed. An empty `violations` means the workload
/// either completed correctly or declared failure cleanly — never
/// silently corrupted state.
#[derive(Clone, Debug, Default)]
pub struct ResilientReport {
    /// Byte-exact determinism probe (digests + bills, one per cloud).
    pub probe: ExperimentProbe,
    /// Human-readable invariant violations (empty means healthy).
    pub violations: Vec<String>,
}

impl ResilientReport {
    /// A report with nothing recorded yet.
    pub fn new() -> ResilientReport {
        ResilientReport::default()
    }

    /// Record a violation.
    pub fn violation(&mut self, msg: impl Into<String>) {
        self.violations.push(msg.into());
    }

    /// Record a violation unless `ok` holds.
    pub fn check(&mut self, ok: bool, msg: impl FnOnce() -> String) {
        if !ok {
            self.violations.push(msg());
        }
    }
}
