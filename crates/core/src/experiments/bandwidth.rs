//! Experiment E6 — §3's per-function network bandwidth under container
//! packing: "a single Lambda function can achieve on average 538 Mbps ...
//! With 20 Lambda functions, average network bandwidth was 28.7 Mbps".

use std::cell::RefCell;
use std::rc::Rc;

use bytes::Bytes;
use faasim_faas::FunctionSpec;
use faasim_simcore::{join_all, SimDuration};

use crate::cloud::{Cloud, CloudProfile};
use crate::experiments::probe::ExperimentProbe;
use crate::report::Table;

/// Parameters of the bandwidth sweep.
#[derive(Clone, Debug)]
pub struct BandwidthParams {
    /// Concurrency levels to measure.
    pub concurrency_levels: Vec<usize>,
    /// Bytes each function transfers per measurement.
    pub transfer_bytes: u64,
    /// Lambda memory (affects packing only; 640 MB packs 20 per host).
    pub memory_mb: u64,
}

impl Default for BandwidthParams {
    fn default() -> Self {
        BandwidthParams {
            concurrency_levels: vec![1, 2, 4, 8, 12, 16, 20],
            transfer_bytes: 25_000_000, // 200 Mbit per function
            memory_mb: 640,
        }
    }
}

impl BandwidthParams {
    /// Reduced scale for tests.
    pub fn quick() -> BandwidthParams {
        BandwidthParams {
            concurrency_levels: vec![1, 20],
            transfer_bytes: 5_000_000,
            ..BandwidthParams::default()
        }
    }
}

/// One sweep point.
#[derive(Clone, Debug)]
pub struct BandwidthPoint {
    /// Concurrent functions.
    pub concurrency: usize,
    /// Mean per-function achieved bandwidth, Mbps.
    pub per_function_mbps: f64,
    /// Aggregate bandwidth, Mbps.
    pub aggregate_mbps: f64,
    /// Hosts the containers landed on.
    pub hosts_used: usize,
}

/// The sweep.
#[derive(Clone, Debug)]
pub struct BandwidthResult {
    /// Points in ascending concurrency.
    pub points: Vec<BandwidthPoint>,
    /// Byte-exact replay probe (one capture per concurrency level).
    pub probe: ExperimentProbe,
}

impl BandwidthResult {
    /// Point at a given concurrency.
    pub fn at(&self, concurrency: usize) -> &BandwidthPoint {
        self.points
            .iter()
            .find(|p| p.concurrency == concurrency)
            .unwrap_or_else(|| panic!("no point at concurrency {concurrency}"))
    }

    /// Render as the figure's data series.
    pub fn render(&self) -> String {
        let mut t = Table::new(
            "Per-function network bandwidth under packing (cf. §3(2))",
            &["concurrent fns", "per-fn Mbps", "aggregate Mbps", "hosts"],
        );
        for p in &self.points {
            t.row(&[
                p.concurrency.to_string(),
                format!("{:.1}", p.per_function_mbps),
                format!("{:.1}", p.aggregate_mbps),
                p.hosts_used.to_string(),
            ]);
        }
        t.render()
    }
}

/// Run the sweep. Each concurrency level gets a fresh cloud so container
/// placement starts clean.
pub fn run(params: &BandwidthParams, seed: u64) -> BandwidthResult {
    let mut points = Vec::new();
    let mut probe = ExperimentProbe::new();
    for (i, &k) in params.concurrency_levels.iter().enumerate() {
        let cloud = Cloud::new(CloudProfile::aws_2018().exact(), seed + i as u64);
        let bytes = params.transfer_bytes;
        let rates: Rc<RefCell<Vec<f64>>> = Rc::new(RefCell::new(Vec::new()));
        let r = rates.clone();
        cloud.faas.register(FunctionSpec::new(
            "download",
            params.memory_mb,
            SimDuration::from_secs(900),
            move |ctx, _| {
                let r = r.clone();
                async move {
                    let t0 = ctx.sim().now();
                    ctx.host().nic_transfer(bytes).await;
                    let secs = (ctx.sim().now() - t0).as_secs_f64();
                    r.borrow_mut().push(bytes as f64 * 8.0 / secs / 1e6);
                    Ok(Bytes::new())
                }
            },
        ));
        let faas = cloud.faas.clone();
        cloud.sim.block_on(async move {
            let futs: Vec<_> = (0..k)
                .map(|_| {
                    let faas = faas.clone();
                    async move {
                        let out = faas.invoke("download", Bytes::new()).await;
                        out.result.expect("download cannot fail");
                    }
                })
                .collect();
            join_all(futs).await;
        });
        let rates = rates.borrow();
        let per_fn = rates.iter().sum::<f64>() / rates.len().max(1) as f64;
        probe.capture(&cloud);
        points.push(BandwidthPoint {
            concurrency: k,
            per_function_mbps: per_fn,
            aggregate_mbps: per_fn * k as f64,
            hosts_used: cloud.faas.host_count(),
        });
    }
    BandwidthResult { points, probe }
}

/// A second sweep, after Wang et al. (the source of the paper's §3(2)
/// numbers): per-function bandwidth as a function of *function memory* at
/// saturating concurrency. Memory buys isolation indirectly — a bigger
/// function packs fewer neighbors per host VM, so each one keeps a larger
/// NIC share.
#[derive(Clone, Debug)]
pub struct MemorySweepParams {
    /// Memory sizes to sweep (MB).
    pub memory_mbs: Vec<u64>,
    /// Concurrent functions per point (enough to saturate a host).
    pub concurrency: usize,
    /// Bytes each function transfers.
    pub transfer_bytes: u64,
}

impl Default for MemorySweepParams {
    fn default() -> Self {
        MemorySweepParams {
            memory_mbs: vec![128, 320, 640, 1_024, 1_536, 3_008],
            concurrency: 20,
            transfer_bytes: 25_000_000,
        }
    }
}

impl MemorySweepParams {
    /// Reduced scale for tests.
    pub fn quick() -> MemorySweepParams {
        MemorySweepParams {
            memory_mbs: vec![640, 3_008],
            transfer_bytes: 5_000_000,
            ..MemorySweepParams::default()
        }
    }
}

/// One memory-sweep point.
#[derive(Clone, Debug)]
pub struct MemorySweepPoint {
    /// Function memory (MB).
    pub memory_mb: u64,
    /// Containers that fit on one host VM at this size.
    pub containers_per_host: usize,
    /// Mean per-function bandwidth, Mbps.
    pub per_function_mbps: f64,
}

/// The memory sweep.
#[derive(Clone, Debug)]
pub struct MemorySweepResult {
    /// Points in ascending memory order.
    pub points: Vec<MemorySweepPoint>,
    /// Byte-exact replay probe (one capture per memory size).
    pub probe: ExperimentProbe,
}

impl MemorySweepResult {
    /// Point at a memory size.
    pub fn at(&self, memory_mb: u64) -> &MemorySweepPoint {
        self.points
            .iter()
            .find(|p| p.memory_mb == memory_mb)
            .unwrap_or_else(|| panic!("no point at {memory_mb} MB"))
    }

    /// Render as a table.
    pub fn render(&self) -> String {
        let mut t = Table::new(
            "Per-function bandwidth vs function memory at 20-way concurrency",
            &["memory (MB)", "containers/host", "per-fn Mbps"],
        );
        for p in &self.points {
            t.row(&[
                p.memory_mb.to_string(),
                p.containers_per_host.to_string(),
                format!("{:.1}", p.per_function_mbps),
            ]);
        }
        t.render()
    }
}

/// Run the memory sweep.
pub fn run_memory_sweep(params: &MemorySweepParams, seed: u64) -> MemorySweepResult {
    let mut points = Vec::new();
    let mut probe = ExperimentProbe::new();
    for (i, &memory_mb) in params.memory_mbs.iter().enumerate() {
        let cloud = Cloud::new(CloudProfile::aws_2018().exact(), seed + i as u64);
        let bytes = params.transfer_bytes;
        let rates: Rc<RefCell<Vec<f64>>> = Rc::new(RefCell::new(Vec::new()));
        let r = rates.clone();
        cloud.faas.register(FunctionSpec::new(
            "download",
            memory_mb,
            SimDuration::from_secs(900),
            move |ctx, _| {
                let r = r.clone();
                async move {
                    let t0 = ctx.sim().now();
                    ctx.host().nic_transfer(bytes).await;
                    let secs = (ctx.sim().now() - t0).as_secs_f64();
                    r.borrow_mut().push(bytes as f64 * 8.0 / secs / 1e6);
                    Ok(Bytes::new())
                }
            },
        ));
        let faas = cloud.faas.clone();
        let k = params.concurrency;
        cloud.sim.block_on(async move {
            let futs: Vec<_> = (0..k)
                .map(|_| {
                    let faas = faas.clone();
                    async move {
                        faas.invoke("download", Bytes::new())
                            .await
                            .result
                            .expect("download");
                    }
                })
                .collect();
            join_all(futs).await;
        });
        let profile = cloud.faas.profile();
        let by_mem = (profile.host_mem_mb / memory_mb).max(1) as usize;
        let containers_per_host = by_mem.min(profile.max_containers_per_host);
        let rates = rates.borrow();
        probe.capture(&cloud);
        points.push(MemorySweepPoint {
            memory_mb,
            containers_per_host,
            per_function_mbps: rates.iter().sum::<f64>() / rates.len().max(1) as f64,
        });
    }
    MemorySweepResult { points, probe }
}

/// Chaos-hardened variant of the bandwidth study: 20-way packed
/// downloads where each invocation may be killed mid-transfer
/// (`kill_prob`) and is retried by a
/// [`RetryingInvoker`](faasim_resilience::RetryingInvoker). The handler
/// records its achieved rate only *after* the final await, so a killed
/// attempt never double-counts — the invariant is exactly one recorded
/// rate per logical download, all positive, plus the global
/// conservation checks.
pub fn resilient(seed: u64, chaos: &dyn Fn(&Cloud)) -> super::ResilientReport {
    use faasim_payload::Payload;
    use faasim_resilience::{
        ledger_consistent, message_conservation, queue_conservation, Deadline, RetryPolicy,
        RetryingInvoker,
    };

    const CONCURRENCY: usize = 20;
    const TRANSFER_BYTES: u64 = 2_000_000;

    let mut report = super::ResilientReport::new();
    let cloud = Cloud::new(CloudProfile::aws_2018().exact(), seed);
    chaos(&cloud);
    let rates: Rc<RefCell<Vec<f64>>> = Rc::new(RefCell::new(Vec::new()));
    let r = rates.clone();
    cloud.faas.register(FunctionSpec::new(
        "download",
        640,
        SimDuration::from_secs(900),
        move |ctx, _| {
            let r = r.clone();
            async move {
                let t0 = ctx.sim().now();
                ctx.host().nic_transfer(TRANSFER_BYTES).await;
                let secs = (ctx.sim().now() - t0).as_secs_f64();
                // Recorded after the last await: a kill mid-transfer
                // leaves no partial entry for the retry to duplicate.
                r.borrow_mut().push(TRANSFER_BYTES as f64 * 8.0 / secs / 1e6);
                Ok(Bytes::new())
            }
        },
    ));
    let invoker = RetryingInvoker::new(
        &cloud.sim,
        &cloud.faas,
        cloud.recorder.clone(),
        RetryPolicy {
            max_attempts: 25,
            ..RetryPolicy::default()
        },
        "resil.bw.invoker",
    );
    let sim = cloud.sim.clone();
    let failures = cloud.sim.block_on(async move {
        let futs: Vec<_> = (0..CONCURRENCY)
            .map(|t| {
                let invoker = invoker.clone();
                let sim = sim.clone();
                async move {
                    let deadline = Deadline::within(&sim, SimDuration::from_secs(600));
                    invoker
                        .invoke("download", &Payload::zeros(0), deadline)
                        .await
                        .map_err(|e| format!("download {t}: {e}"))
                }
            })
            .collect();
        join_all(futs)
            .await
            .into_iter()
            .filter_map(|r| r.err())
            .collect::<Vec<_>>()
    });
    let completed = CONCURRENCY - failures.len();
    failures
        .into_iter()
        .for_each(|f| report.violation(format!("bandwidth: {f}")));
    let rates = rates.borrow();
    report.check(rates.len() == completed, || {
        format!(
            "bandwidth: {} recorded rates for {completed} completed downloads \
             (retries must not double-count)",
            rates.len()
        )
    });
    report.check(rates.iter().all(|&r| r.is_finite() && r > 0.0), || {
        "bandwidth: non-positive recorded rate".into()
    });
    drop(rates);
    cloud.sim.run();
    if let Some(v) = message_conservation(&cloud.recorder) {
        report.violation(format!("bandwidth: {v}"));
    }
    if let Some(v) = queue_conservation(&cloud.recorder, &cloud.queue) {
        report.violation(format!("bandwidth: {v}"));
    }
    if let Some(v) = ledger_consistent(&cloud.ledger) {
        report.violation(format!("bandwidth: {v}"));
    }
    report.probe.capture(&cloud);
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reproduces_bandwidth_collapse() {
        let r = run(&BandwidthParams::quick(), 42);
        // §3(2): 538 Mbps alone, 28.7 Mbps with 20 co-located functions.
        let solo = r.at(1).per_function_mbps;
        assert!((solo - 538.0).abs() < 5.0, "solo {solo} Mbps");
        let packed = r.at(20).per_function_mbps;
        assert!((packed - 28.7).abs() < 1.0, "packed {packed} Mbps");
        // 2.5 orders of magnitude slower than an SSD, per the paper: the
        // collapse itself is ~18.7x.
        let collapse = solo / packed;
        assert!((15.0..22.0).contains(&collapse), "collapse {collapse}x");
        assert_eq!(r.at(20).hosts_used, 1, "all twenty packed on one host");
        assert!(r.render().contains("per-fn Mbps"));
    }

    #[test]
    fn memory_buys_bandwidth_through_packing() {
        let r = run_memory_sweep(&MemorySweepParams::quick(), 42);
        let small = r.at(640);
        let big = r.at(3_008);
        // 640 MB packs 20/host (count cap); 3,008 MB packs 5/host (memory
        // cap), so each big function keeps ~4x the NIC share.
        assert_eq!(small.containers_per_host, 20);
        assert_eq!(big.containers_per_host, 5);
        assert!((small.per_function_mbps - 28.7).abs() < 1.0, "{small:?}");
        assert!(
            (big.per_function_mbps - 574.0 / 5.0).abs() < 6.0,
            "{big:?}"
        );
        assert!(r.render().contains("containers/host"));
    }

    #[test]
    fn per_function_bandwidth_is_monotonically_nonincreasing() {
        let params = BandwidthParams {
            concurrency_levels: vec![1, 2, 4, 8, 20],
            transfer_bytes: 5_000_000,
            memory_mb: 640,
        };
        let r = run(&params, 7);
        for w in r.points.windows(2) {
            assert!(
                w[1].per_function_mbps <= w[0].per_function_mbps + 1e-6,
                "bandwidth rose from {:?} to {:?}",
                w[0],
                w[1]
            );
        }
    }
}
