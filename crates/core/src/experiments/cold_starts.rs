//! Ablation A6 — §3 constraint (1) quantified: how the request
//! inter-arrival time determines the cold-start fraction (and therefore
//! tail latency), under the 2018 sandbox and under Firecracker
//! (footnote 5).
//!
//! The mechanism: a container stays warm for the platform's keep-alive
//! window; arrivals sparser than the window always cold-start. Bursty
//! concurrency also cold-starts: `k` simultaneous requests need `k`
//! containers no matter how warm one of them is.

use bytes::Bytes;
use faasim_faas::FunctionSpec;
use faasim_simcore::{Histogram, SimDuration};

use crate::cloud::{Cloud, CloudProfile};
use crate::experiments::probe::ExperimentProbe;
use crate::report::{fmt_latency, Table};

/// Parameters of the cold-start study.
#[derive(Clone, Debug)]
pub struct ColdStartParams {
    /// Inter-arrival times to sweep.
    pub inter_arrivals: Vec<SimDuration>,
    /// Invocations per sweep point.
    pub invocations: usize,
    /// Use Firecracker-era cold starts.
    pub firecracker: bool,
    /// Reserve this many always-warm containers (the §4 "SLO" knob;
    /// AWS's later provisioned concurrency). 0 = off.
    pub provisioned: usize,
}

impl Default for ColdStartParams {
    fn default() -> Self {
        ColdStartParams {
            inter_arrivals: vec![
                SimDuration::from_secs(1),
                SimDuration::from_secs(60),
                SimDuration::from_mins(5),
                SimDuration::from_mins(9),
                SimDuration::from_mins(11),
                SimDuration::from_mins(20),
            ],
            invocations: 50,
            firecracker: false,
            provisioned: 0,
        }
    }
}

impl ColdStartParams {
    /// Reduced scale for tests.
    pub fn quick() -> ColdStartParams {
        ColdStartParams {
            inter_arrivals: vec![SimDuration::from_secs(1), SimDuration::from_mins(20)],
            invocations: 10,
            ..ColdStartParams::default()
        }
    }
}

/// One sweep point.
#[derive(Clone, Debug)]
pub struct ColdStartPoint {
    /// Time between requests.
    pub inter_arrival: SimDuration,
    /// Fraction of invocations that cold-started.
    pub cold_fraction: f64,
    /// Mean invocation latency.
    pub mean_latency: SimDuration,
    /// Median invocation latency.
    pub p50_latency: SimDuration,
    /// p99 invocation latency.
    pub p99_latency: SimDuration,
}

/// The sweep.
#[derive(Clone, Debug)]
pub struct ColdStartResult {
    /// Points in ascending inter-arrival order.
    pub points: Vec<ColdStartPoint>,
    /// Byte-exact replay probe (one capture per sweep point).
    pub probe: ExperimentProbe,
}

impl ColdStartResult {
    /// Point for an inter-arrival time.
    pub fn at(&self, inter_arrival: SimDuration) -> &ColdStartPoint {
        self.points
            .iter()
            .find(|p| p.inter_arrival == inter_arrival)
            .unwrap_or_else(|| panic!("no point at {inter_arrival}"))
    }

    /// Render the sweep.
    pub fn render(&self, title: &str) -> String {
        let mut t = Table::new(title, &["inter-arrival", "cold %", "mean", "p50", "p99"]);
        for p in &self.points {
            t.row(&[
                fmt_latency(p.inter_arrival),
                format!("{:.0}%", p.cold_fraction * 100.0),
                fmt_latency(p.mean_latency),
                fmt_latency(p.p50_latency),
                fmt_latency(p.p99_latency),
            ]);
        }
        t.render()
    }
}

/// Run the sweep.
pub fn run(params: &ColdStartParams, seed: u64) -> ColdStartResult {
    let mut points = Vec::new();
    let mut probe = ExperimentProbe::new();
    for (i, &gap) in params.inter_arrivals.iter().enumerate() {
        let mut profile = CloudProfile::aws_2018().exact();
        if params.firecracker {
            profile = profile.firecracker();
        }
        let cloud = Cloud::new(profile, seed + i as u64);
        cloud.faas.register(FunctionSpec::new(
            "ping",
            256,
            SimDuration::from_secs(30),
            |_ctx, p| async move { Ok(p) },
        ));
        if params.provisioned > 0 {
            cloud.faas.set_provisioned_concurrency("ping", params.provisioned);
        }
        let faas = cloud.faas.clone();
        let sim = cloud.sim.clone();
        let n = params.invocations;
        let (colds, hist) = cloud.sim.block_on(async move {
            let mut colds = 0usize;
            let mut hist = Histogram::new();
            for _ in 0..n {
                // Arrivals sparser than the keep-alive window meet a
                // reclaimed container: reap like the platform would.
                faas.reap_idle();
                let out = faas.invoke("ping", Bytes::new()).await;
                if out.cold {
                    colds += 1;
                }
                hist.record_duration(out.total);
                sim.sleep(gap).await;
            }
            (colds, hist)
        });
        let mut hist = hist;
        probe.capture(&cloud);
        points.push(ColdStartPoint {
            inter_arrival: gap,
            cold_fraction: colds as f64 / params.invocations as f64,
            mean_latency: SimDuration::from_secs_f64(hist.mean()),
            p50_latency: SimDuration::from_secs_f64(hist.p50()),
            p99_latency: SimDuration::from_secs_f64(hist.p99()),
        });
    }
    ColdStartResult { points, probe }
}

/// Chaos-hardened variant of the cold-start study: the same
/// inter-arrival sweep, but every invocation goes through a
/// [`RetryingInvoker`](faasim_resilience::RetryingInvoker) so platform
/// kills (`FaultPlan::hostile`'s `kill_prob`) are retried inside a
/// per-request deadline budget. The invariant is *completion under
/// fault*: every arrival either produces an echoed payload or a clean
/// declared failure — never a hang — and the global conservation checks
/// still hold afterwards.
pub fn resilient(seed: u64, chaos: &dyn Fn(&Cloud)) -> super::ResilientReport {
    use faasim_payload::Payload;
    use faasim_resilience::{
        ledger_consistent, message_conservation, queue_conservation, Deadline, RetryPolicy,
        RetryingInvoker,
    };

    const INVOCATIONS: usize = 8;
    const PAYLOAD_BYTES: usize = 256;

    let mut report = super::ResilientReport::new();
    let gaps = [SimDuration::from_secs(1), SimDuration::from_mins(20)];
    for (i, gap) in gaps.into_iter().enumerate() {
        let cloud = Cloud::new(CloudProfile::aws_2018().exact(), seed + i as u64);
        chaos(&cloud);
        cloud.faas.register(FunctionSpec::new(
            "ping",
            256,
            SimDuration::from_secs(30),
            |_ctx, p| async move { Ok(p) },
        ));
        let invoker = RetryingInvoker::new(
            &cloud.sim,
            &cloud.faas,
            cloud.recorder.clone(),
            RetryPolicy {
                max_attempts: 25,
                ..RetryPolicy::default()
            },
            "resil.cold.invoker",
        );
        let faas = cloud.faas.clone();
        let sim = cloud.sim.clone();
        let payload = Payload::zeros(PAYLOAD_BYTES);
        let mut failures = Vec::new();
        let ((colds, total), failures) = cloud.sim.block_on(async move {
            let mut colds = 0usize;
            let mut total = 0usize;
            for t in 0..INVOCATIONS {
                faas.reap_idle();
                let deadline = Deadline::within(&sim, SimDuration::from_secs(120));
                match invoker.invoke("ping", &payload, deadline).await {
                    Ok(out) => {
                        total += 1;
                        if out.cold {
                            colds += 1;
                        }
                        let echoed = out.result.as_ref().expect("ok outcome").len();
                        if echoed != PAYLOAD_BYTES {
                            failures.push(format!("trial {t}: echoed {echoed} bytes"));
                        }
                    }
                    Err(e) => failures.push(format!("trial {t}: {e}")),
                }
                sim.sleep(gap).await;
            }
            ((colds, total), failures)
        });
        failures
            .into_iter()
            .for_each(|f| report.violation(format!("cold_starts/gap{i}: {f}")));
        let frac = colds as f64 / total.max(1) as f64;
        report.check((0.0..=1.0).contains(&frac), || {
            format!("cold_starts/gap{i}: cold fraction {frac} out of range")
        });
        cloud.sim.run();
        if let Some(v) = message_conservation(&cloud.recorder) {
            report.violation(format!("cold_starts/gap{i}: {v}"));
        }
        if let Some(v) = queue_conservation(&cloud.recorder, &cloud.queue) {
            report.violation(format!("cold_starts/gap{i}: {v}"));
        }
        if let Some(v) = ledger_consistent(&cloud.ledger) {
            report.violation(format!("cold_starts/gap{i}: {v}"));
        }
        report.probe.capture(&cloud);
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sparse_arrivals_always_cold_start() {
        let r = run(&ColdStartParams::quick(), 42);
        let hot = r.at(SimDuration::from_secs(1));
        let cold = r.at(SimDuration::from_mins(20));
        // Back-to-back requests: only the very first is cold.
        assert!(hot.cold_fraction <= 0.11, "hot {}", hot.cold_fraction);
        // Past the keep-alive window: every request is cold.
        assert!((cold.cold_fraction - 1.0).abs() < 1e-9);
        // Cold means ~5.3 s instead of ~0.3 s in 2018; the hot point's
        // *median* is the warm path even though its mean carries the one
        // initial cold start.
        assert!(cold.mean_latency.as_secs_f64() > 5.0);
        assert!(hot.p50_latency.as_secs_f64() < 0.35);
        assert!(hot.mean_latency < cold.mean_latency);
    }

    #[test]
    fn provisioned_concurrency_holds_the_slo() {
        let r = run(
            &ColdStartParams {
                provisioned: 1,
                ..ColdStartParams::quick()
            },
            44,
        );
        // Even 20-minute gaps never cold-start a reserved container.
        let cold_gap = r.at(SimDuration::from_mins(20));
        assert_eq!(cold_gap.cold_fraction, 0.0);
        assert!(cold_gap.mean_latency.as_secs_f64() < 0.35);
    }

    #[test]
    fn firecracker_shrinks_the_cold_penalty_only() {
        let base = run(&ColdStartParams::quick(), 43);
        let fc = run(
            &ColdStartParams {
                firecracker: true,
                ..ColdStartParams::quick()
            },
            43,
        );
        let gap = SimDuration::from_mins(20);
        // Same cold *fraction* — Firecracker doesn't change the lifecycle.
        assert_eq!(base.at(gap).cold_fraction, fc.at(gap).cold_fraction);
        // Much smaller cold *penalty*: ~0.43 s vs ~5.3 s.
        assert!(fc.at(gap).mean_latency.as_secs_f64() < 0.6);
        assert!(base.at(gap).mean_latency.as_secs_f64() > 5.0);
        // Warm latency unchanged: the invocation path still dominates.
        let hot = SimDuration::from_secs(1);
        assert_eq!(base.at(hot).p50_latency, fc.at(hot).p50_latency);
    }
}
