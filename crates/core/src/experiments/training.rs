//! Experiment E3 — §3.1 case study 1: **model training**, Lambda vs EC2.
//!
//! The workload is the paper's: 90 GB of featurized Amazon-review data in
//! 100 MB batches, an MLP (6,787 → 10 → 10 → 1, Adam, lr 0.001), ten full
//! passes. On Lambda each iteration fetches its batch from the object
//! store and computes on a 640 MB function's CPU slice; executions chain
//! sequentially because each one dies at the 15-minute cap. On EC2 the
//! batch comes from the attached volume and both cores compute.
//!
//! Compute cost per iteration is the calibrated 0.2 reference-core-seconds
//! (CS-1: 0.10 s on an m4.large's two cores, 0.59 s on a 640 MB Lambda).
//! The real MLP itself lives in `faasim-ml` and is exercised for real by
//! the tests and the `training_lambda_vs_ec2` example at laptop scale.

use std::cell::Cell;
use std::rc::Rc;

use bytes::Bytes;
use faasim_faas::{FnError, FunctionSpec};
use faasim_payload::Payload;
use faasim_pricing::Service;
use faasim_simcore::SimDuration;

use crate::cloud::{Cloud, CloudProfile};
use crate::experiments::probe::ExperimentProbe;
use crate::report::{fmt_ratio, Table};

/// Parameters of the training comparison.
#[derive(Clone, Debug)]
pub struct TrainingParams {
    /// Total featurized dataset size in MB (paper: 90 GB).
    pub dataset_mb: u64,
    /// Batch size in MB (paper: 100 MB).
    pub batch_mb: u64,
    /// Full passes over the data (paper: 10).
    pub epochs: u32,
    /// Lambda memory (paper: 640 MB).
    pub lambda_memory_mb: u64,
    /// Reference-core-seconds of compute per iteration (calibrated 0.2).
    pub iteration_ref_work: SimDuration,
    /// EC2 instance type (paper: m4.large).
    pub instance_type: String,
}

impl Default for TrainingParams {
    fn default() -> Self {
        TrainingParams {
            dataset_mb: 90_000,
            batch_mb: 100,
            epochs: 10,
            lambda_memory_mb: 640,
            iteration_ref_work: SimDuration::from_millis(200),
            instance_type: "m4.large".to_owned(),
        }
    }
}

impl TrainingParams {
    /// Reduced scale for tests: 45 GB, one epoch — still big enough that
    /// EC2's one-minute billing minimum doesn't distort the cost ratio.
    pub fn quick() -> TrainingParams {
        TrainingParams {
            dataset_mb: 45_000,
            epochs: 1,
            ..TrainingParams::default()
        }
    }

    /// Total iterations implied by the parameters.
    pub fn total_iterations(&self) -> u64 {
        (self.dataset_mb / self.batch_mb) * self.epochs as u64
    }
}

/// Result of one side of the comparison.
#[derive(Clone, Debug)]
pub struct TrainingSide {
    /// Wall-clock (virtual) training time.
    pub total_time: SimDuration,
    /// Mean time per iteration.
    pub per_iteration: SimDuration,
    /// Dollars spent on compute (Lambda GB-s + requests, or EC2 hours).
    pub compute_cost: f64,
    /// Number of Lambda executions (1 for EC2).
    pub executions: u64,
    /// Iterations completed per execution, averaged.
    pub iterations_per_execution: f64,
}

/// The full comparison.
#[derive(Clone, Debug)]
pub struct TrainingResult {
    /// Lambda side.
    pub lambda: TrainingSide,
    /// EC2 side.
    pub ec2: TrainingSide,
    /// Byte-exact replay probe (Lambda cloud, then EC2 cloud).
    pub probe: ExperimentProbe,
}

impl TrainingResult {
    /// How many times slower Lambda was.
    pub fn slowdown(&self) -> f64 {
        self.lambda.total_time.as_secs_f64() / self.ec2.total_time.as_secs_f64()
    }

    /// How many times more expensive Lambda was.
    pub fn cost_ratio(&self) -> f64 {
        self.lambda.compute_cost / self.ec2.compute_cost
    }

    /// Render like the case study's prose table.
    pub fn render(&self) -> String {
        let mut t = Table::new(
            "Case study 1: model training (Lambda vs EC2)",
            &["", "Lambda (640MB)", "EC2 (m4.large)"],
        );
        t.row(&[
            "per-iteration".into(),
            format!("{:.2}s", self.lambda.per_iteration.as_secs_f64()),
            format!("{:.2}s", self.ec2.per_iteration.as_secs_f64()),
        ]);
        t.row(&[
            "executions".into(),
            format!("{}", self.lambda.executions),
            "1".into(),
        ]);
        t.row(&[
            "total time".into(),
            format!("{:.0}min", self.lambda.total_time.as_secs_f64() / 60.0),
            format!("{:.0}s", self.ec2.total_time.as_secs_f64()),
        ]);
        t.row(&[
            "cost".into(),
            format!("${:.2}", self.lambda.compute_cost),
            format!("${:.2}", self.ec2.compute_cost),
        ]);
        t.row(&[
            "vs EC2".into(),
            format!(
                "{} slower, {} more expensive",
                fmt_ratio(self.slowdown()),
                fmt_ratio(self.cost_ratio())
            ),
            "1\u{d7}".into(),
        ]);
        t.render()
    }
}

/// Run the comparison.
pub fn run(params: &TrainingParams, seed: u64) -> TrainingResult {
    let mut probe = ExperimentProbe::new();
    let lambda = run_lambda(params, seed, &mut probe);
    let ec2 = run_ec2(params, seed + 1, &mut probe);
    TrainingResult { lambda, ec2, probe }
}

fn run_lambda(params: &TrainingParams, seed: u64, probe: &mut ExperimentProbe) -> TrainingSide {
    let cloud = Cloud::new(CloudProfile::aws_2018().exact(), seed);
    cloud.blob.create_bucket("training");
    let batch_bytes = params.batch_mb * 1_000_000;
    // One symbolic batch object stands in for all of them: a
    // [`Payload::zeros`] carries only its length, and transfer time
    // depends only on size (DESIGN.md §1.4) — so the paper's 100 MB
    // batch costs no RAM at all, not even once.
    {
        let blob = cloud.blob.clone();
        let host = cloud.client_host();
        let data = Payload::zeros(batch_bytes as usize);
        cloud.sim.block_on(async move {
            blob.put(&host, "training", "batch", data).await.unwrap();
        });
        cloud.ledger.reset(); // setup traffic isn't part of the bill
    }

    let total_iters = params.total_iterations();
    let done = Rc::new(Cell::new(0u64));
    let blob = cloud.blob.clone();
    let d = done.clone();
    let ref_work = params.iteration_ref_work;
    cloud.faas.register(FunctionSpec::new(
        "train",
        params.lambda_memory_mb,
        SimDuration::from_secs(900),
        move |ctx, _payload| {
            let blob = blob.clone();
            let d = d.clone();
            async move {
                // Train until the 15-minute guillotine kills us (the
                // paper's functions "run as many training iterations as
                // possible"), or until the job is done.
                while d.get() < total_iters {
                    blob.get(ctx.host(), "training", "batch")
                        .await
                        .expect("batch object");
                    ctx.cpu(ref_work).await;
                    d.set(d.get() + 1);
                }
                Ok(Bytes::new())
            }
        },
    ));

    let faas = cloud.faas.clone();
    let done2 = done.clone();
    let executions = Rc::new(Cell::new(0u64));
    let execs2 = executions.clone();
    let t0 = cloud.sim.now();
    cloud.sim.block_on(async move {
        while done2.get() < total_iters {
            let out = faas.invoke("train", Bytes::new()).await;
            execs2.set(execs2.get() + 1);
            match out.result {
                Ok(_) | Err(FnError::TimedOut { .. }) => {}
                Err(e) => panic!("training function failed: {e}"),
            }
        }
    });
    let executions = executions.get();
    let total_time = cloud.sim.now() - t0;
    let compute_cost = cloud.ledger.total_for(Service::Faas);
    probe.capture(&cloud);
    TrainingSide {
        total_time,
        per_iteration: total_time / total_iters.max(1),
        compute_cost,
        executions,
        iterations_per_execution: total_iters as f64 / executions.max(1) as f64,
    }
}

fn run_ec2(params: &TrainingParams, seed: u64, probe: &mut ExperimentProbe) -> TrainingSide {
    let cloud = Cloud::new(CloudProfile::aws_2018().exact(), seed);
    let vm = cloud
        .ec2
        .provision_ready(&params.instance_type, 0)
        .expect("instance type");
    let total_iters = params.total_iterations();
    let batch_bytes = params.batch_mb * 1_000_000;
    let ref_work = params.iteration_ref_work;
    let t0 = cloud.sim.now();
    let vm2 = vm.clone();
    cloud.sim.block_on(async move {
        for _ in 0..total_iters {
            vm2.ebs_read(batch_bytes).await;
            vm2.cpu_work_parallel(ref_work).await;
        }
    });
    let total_time = cloud.sim.now() - t0;
    vm.terminate();
    let compute_cost = cloud.ledger.total_for(Service::Compute);
    probe.capture(&cloud);
    TrainingSide {
        total_time,
        per_iteration: total_time / total_iters.max(1),
        compute_cost,
        executions: 1,
        iterations_per_execution: total_iters as f64,
    }
}

/// Chaos-hardened variant of the Lambda training loop: batches are
/// fetched through a [`RetryingBlob`](faasim_resilience::RetryingBlob),
/// and the driver re-invokes through kills and timeouts until every
/// iteration of a (reduced-scale) job has run. The iteration counter
/// advances atomically between awaits, so interrupted executions resume
/// where they left off and the invariant is an exact iteration count.
pub fn resilient(seed: u64, chaos: &dyn Fn(&Cloud)) -> super::ResilientReport {
    use faasim_resilience::{
        ledger_consistent, message_conservation, queue_conservation, Deadline, RetryPolicy,
        RetryingBlob,
    };

    let params = TrainingParams {
        dataset_mb: 2_000, // 20 iterations: enough to span several kills
        epochs: 1,
        ..TrainingParams::default()
    };
    let total_iters = params.total_iterations();

    let mut report = super::ResilientReport::new();
    let cloud = Cloud::new(CloudProfile::aws_2018().exact(), seed);
    chaos(&cloud);
    cloud.blob.create_bucket("training");
    let batch_bytes = params.batch_mb * 1_000_000;
    let rblob = RetryingBlob::new(
        &cloud.sim,
        &cloud.blob,
        cloud.recorder.clone(),
        RetryPolicy {
            max_attempts: 25,
            ..RetryPolicy::default()
        },
        "resil.train.blob",
    );
    {
        let blob = rblob.clone();
        let host = cloud.client_host();
        let data = Payload::zeros(batch_bytes as usize);
        if let Err(e) = cloud
            .sim
            .block_on(async move { blob.put_payload(&host, "training", "batch", data).await })
        {
            report.violation(format!("training: populate batch: {e}"));
        }
    }

    let done = Rc::new(Cell::new(0u64));
    let blob = rblob.clone();
    let d = done.clone();
    let ref_work = params.iteration_ref_work;
    cloud.faas.register(FunctionSpec::new(
        "train",
        params.lambda_memory_mb,
        SimDuration::from_secs(900),
        move |ctx, _payload| {
            let blob = blob.clone();
            let d = d.clone();
            async move {
                while d.get() < total_iters {
                    if let Err(e) = blob.get(ctx.host(), "training", "batch").await {
                        return Err(FnError::Handler(format!("batch fetch: {e}")));
                    }
                    ctx.cpu(ref_work).await;
                    // No await between here and the loop check: a kill
                    // can lose an in-flight iteration, never count one
                    // twice.
                    d.set(d.get() + 1);
                }
                Ok(Bytes::new())
            }
        },
    ));

    let faas = cloud.faas.clone();
    let sim = cloud.sim.clone();
    let done2 = done.clone();
    let stuck = cloud.sim.block_on(async move {
        let deadline = Deadline::within(&sim, SimDuration::from_secs(3_600));
        while done2.get() < total_iters {
            if deadline.is_expired(&sim) {
                return Some(format!(
                    "training stuck at {}/{total_iters} iterations within budget",
                    done2.get()
                ));
            }
            let out = faas.invoke("train", Bytes::new()).await;
            match out.result {
                Ok(_) => {}
                Err(
                    FnError::TimedOut { .. } | FnError::Crashed { .. } | FnError::Handler(_),
                ) => sim.sleep(SimDuration::from_millis(50)).await,
                Err(e) => return Some(format!("training failed fatally: {e}")),
            }
        }
        None
    });
    if let Some(v) = stuck {
        report.violation(format!("training: {v}"));
    }
    report.check(done.get() == total_iters, || {
        format!(
            "training: {}/{total_iters} iterations (must complete exactly)",
            done.get()
        )
    });
    cloud.sim.run();
    if let Some(v) = message_conservation(&cloud.recorder) {
        report.violation(format!("training: {v}"));
    }
    if let Some(v) = queue_conservation(&cloud.recorder, &cloud.queue) {
        report.violation(format!("training: {v}"));
    }
    if let Some(v) = ledger_consistent(&cloud.ledger) {
        report.violation(format!("training: {v}"));
    }
    report.probe.capture(&cloud);
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_run_reproduces_case_study_shape() {
        let result = run(&TrainingParams::quick(), 42);
        // Per-iteration: ~3.08 s on Lambda (2.49 fetch + 0.59 compute),
        // ~0.14 s on EC2 (0.04 fetch + 0.10 compute). At this reduced
        // scale the one cold start adds ~0.13 s amortized.
        let li = result.lambda.per_iteration.as_secs_f64();
        assert!((li - 3.08).abs() < 0.25, "lambda iter {li}");
        let ei = result.ec2.per_iteration.as_secs_f64();
        assert!((ei - 0.14).abs() < 0.01, "ec2 iter {ei}");
        // Paper headline: 21x slower, 7.3x more expensive.
        let slow = result.slowdown();
        assert!((15.0..30.0).contains(&slow), "slowdown {slow}");
        let cost = result.cost_ratio();
        assert!((5.0..11.0).contains(&cost), "cost ratio {cost}");
        // 450 iterations at ~292 per 15-minute execution = 2 executions.
        assert_eq!(result.lambda.executions, 2);
        let rendered = result.render();
        assert!(rendered.contains("slower"));
    }

    #[test]
    fn full_scale_derives_paper_totals() {
        // The full 90 GB x 10 epochs run is still fast in virtual time.
        let result = run(&TrainingParams::default(), 1);
        // Paper: 31 sequential executions, 465 min total, $0.29 vs $0.04.
        assert!(
            (29..=33).contains(&result.lambda.executions),
            "executions {}",
            result.lambda.executions
        );
        let minutes = result.lambda.total_time.as_secs_f64() / 60.0;
        assert!((440.0..490.0).contains(&minutes), "lambda total {minutes} min");
        let ec2_secs = result.ec2.total_time.as_secs_f64();
        assert!((1200.0..1400.0).contains(&ec2_secs), "ec2 total {ec2_secs} s");
        assert!(
            (result.lambda.compute_cost - 0.29).abs() < 0.03,
            "lambda cost {}",
            result.lambda.compute_cost
        );
        assert!(
            (result.ec2.compute_cost - 0.036).abs() < 0.01,
            "ec2 cost {}",
            result.ec2.compute_cost
        );
    }
}
