//! Ablation A4 — what §4's "long-running, addressable virtual agents"
//! proposal buys: the same bully election run over the blackboard (the
//! FaaS reality) and over directly addressed agents (the §4 vision), plus
//! raw point-to-point message latency both ways.

use faasim_protocols::{
    build_directory, spawn_node, BullyConfig, ElectionObserver, NodeId, SocketTransport,
};
use faasim_simcore::{mbps, SimDuration};

use crate::cloud::{Cloud, CloudProfile};
use crate::experiments::election::{self, ElectionParams};
use crate::experiments::probe::ExperimentProbe;
use crate::report::{fmt_latency, fmt_ratio, Table};

/// Parameters of the comparison.
#[derive(Clone, Debug)]
pub struct AgentsCmpParams {
    /// Cluster size.
    pub nodes: u64,
    /// Leader kills measured per variant.
    pub rounds: usize,
}

impl Default for AgentsCmpParams {
    fn default() -> Self {
        AgentsCmpParams { nodes: 10, rounds: 5 }
    }
}

impl AgentsCmpParams {
    /// Reduced scale for tests.
    pub fn quick() -> AgentsCmpParams {
        AgentsCmpParams { nodes: 5, rounds: 2 }
    }
}

/// The comparison outcome.
#[derive(Clone, Debug)]
pub struct AgentsCmpResult {
    /// Mean failover round over the blackboard.
    pub blackboard_round: SimDuration,
    /// Mean failover round over addressable agents.
    pub agents_round: SimDuration,
    /// Byte-exact replay probe (blackboard cloud, then agents cloud).
    pub probe: ExperimentProbe,
}

impl AgentsCmpResult {
    /// Speedup of the agents variant.
    pub fn speedup(&self) -> f64 {
        self.blackboard_round.as_secs_f64() / self.agents_round.as_secs_f64()
    }

    /// Render.
    pub fn render(&self) -> String {
        let mut t = Table::new(
            "Ablation: leader election, storage-mediated vs addressable agents (§4)",
            &["variant", "failover round", "vs agents"],
        );
        t.row(&[
            "blackboard (FaaS reality)".into(),
            fmt_latency(self.blackboard_round),
            fmt_ratio(self.speedup()),
        ]);
        t.row(&[
            "addressable agents (§4)".into(),
            fmt_latency(self.agents_round),
            "1.00\u{d7}".into(),
        ]);
        t.render()
    }
}

/// Run both variants.
pub fn run(params: &AgentsCmpParams, seed: u64) -> AgentsCmpResult {
    // Blackboard side: reuse E5 at matching scale.
    let bb = election::run(
        &ElectionParams {
            nodes: params.nodes,
            rounds: params.rounds,
            ..ElectionParams::default()
        },
        seed,
    );

    // Agents side: socket transport with direct-network timeouts.
    let cloud = Cloud::new(CloudProfile::aws_2018().exact(), seed + 100);
    let observer = ElectionObserver::new();
    let members: Vec<(NodeId, faasim_net::Host)> = (1..=params.nodes)
        .map(|id| {
            (
                id,
                cloud
                    .fabric
                    .add_host(0, faasim_net::NicConfig::simple(mbps(10_000.0))),
            )
        })
        .collect();
    let dir = build_directory(&members);
    let mut handles = Vec::new();
    for (id, host) in &members {
        let t = SocketTransport::new(&cloud.fabric, host, *id, dir.clone());
        handles.push(spawn_node(
            &cloud.sim,
            t,
            BullyConfig::direct(),
            observer.clone(),
        ));
    }
    cloud
        .sim
        .run_until(cloud.sim.now() + SimDuration::from_secs(5));
    assert_eq!(observer.current_leader(), Some(params.nodes));

    let mut rounds = Vec::new();
    let mut live_high = params.nodes;
    for _ in 0..params.rounds {
        if live_high <= 2 {
            break;
        }
        handles[(live_high - 1) as usize].kill();
        observer.mark_dead(live_high, cloud.sim.now());
        let before = observer.rounds().len();
        cloud
            .sim
            .run_until(cloud.sim.now() + SimDuration::from_secs(10));
        let after = observer.rounds();
        assert!(after.len() > before, "agents round did not complete");
        rounds.push(after.last().expect("round").duration());
        live_high -= 1;
    }
    for h in &handles {
        h.kill();
    }
    cloud
        .sim
        .run_until(cloud.sim.now() + SimDuration::from_secs(1));

    let agents_round = SimDuration::from_secs_f64(
        rounds.iter().map(|d| d.as_secs_f64()).sum::<f64>() / rounds.len().max(1) as f64,
    );
    let mut probe = bb.probe.clone();
    probe.capture(&cloud);
    AgentsCmpResult {
        blackboard_round: bb.mean_round,
        agents_round,
        probe,
    }
}

/// Chaos-hardened variant of the addressable-agents election: direct
/// socket messaging under `FaultPlan::hostile`'s packet loss and delay
/// spikes. Lost protocol messages are absorbed by the bully timeouts
/// (a dropped answer looks like a dead peer and the round re-runs), so
/// the invariant is liveness: the cluster elects the highest id and
/// completes every failover round within a bounded budget, and the
/// fabric accounts for every message it accepted — including the
/// chaos-dropped ones.
pub fn resilient(seed: u64, chaos: &dyn Fn(&Cloud)) -> super::ResilientReport {
    use faasim_resilience::{ledger_consistent, message_conservation, queue_conservation};

    const NODES: u64 = 5;
    const ROUNDS: usize = 2;

    let mut report = super::ResilientReport::new();
    let cloud = Cloud::new(CloudProfile::aws_2018().exact(), seed);
    chaos(&cloud);
    let observer = ElectionObserver::new();
    let members: Vec<(NodeId, faasim_net::Host)> = (1..=NODES)
        .map(|id| {
            (
                id,
                cloud
                    .fabric
                    .add_host(0, faasim_net::NicConfig::simple(mbps(10_000.0))),
            )
        })
        .collect();
    let dir = build_directory(&members);
    let mut handles = Vec::new();
    for (id, host) in &members {
        let t = SocketTransport::new(&cloud.fabric, host, *id, dir.clone());
        handles.push(spawn_node(
            &cloud.sim,
            t,
            BullyConfig::direct(),
            observer.clone(),
        ));
    }

    let mut converged = false;
    for _ in 0..20 {
        cloud
            .sim
            .run_until(cloud.sim.now() + SimDuration::from_secs(15));
        if observer.current_leader() == Some(NODES) {
            converged = true;
            break;
        }
    }
    report.check(converged, || {
        format!(
            "agents_cmp: no initial leader within budget (got {:?})",
            observer.current_leader()
        )
    });

    let mut live_high = NODES;
    for round in 0..ROUNDS {
        if live_high <= 2 {
            break;
        }
        handles[(live_high - 1) as usize].kill();
        observer.mark_dead(live_high, cloud.sim.now());
        let before = observer.rounds().len();
        let mut completed = false;
        for _ in 0..20 {
            cloud
                .sim
                .run_until(cloud.sim.now() + SimDuration::from_secs(15));
            if observer.rounds().len() > before {
                completed = true;
                break;
            }
        }
        report.check(completed, || {
            format!(
                "agents_cmp: failover round {round} did not complete after killing {live_high}"
            )
        });
        live_high -= 1;
    }
    for h in &handles {
        h.kill();
    }
    cloud
        .sim
        .run_until(cloud.sim.now() + SimDuration::from_secs(5));

    if let Some(v) = message_conservation(&cloud.recorder) {
        report.violation(format!("agents_cmp: {v}"));
    }
    if let Some(v) = queue_conservation(&cloud.recorder, &cloud.queue) {
        report.violation(format!("agents_cmp: {v}"));
    }
    if let Some(v) = ledger_consistent(&cloud.ledger) {
        report.violation(format!("agents_cmp: {v}"));
    }
    report.probe.capture(&cloud);
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn agents_beat_blackboard_by_an_order_of_magnitude() {
        let r = run(&AgentsCmpParams::quick(), 42);
        assert!(
            r.agents_round < SimDuration::from_secs(2),
            "agents round {}",
            r.agents_round
        );
        assert!(
            r.blackboard_round > SimDuration::from_secs(10),
            "blackboard round {}",
            r.blackboard_round
        );
        assert!(r.speedup() > 10.0, "speedup {}", r.speedup());
        assert!(r.render().contains("addressable agents"));
    }
}
