//! Ablation A5 — the paper's central architectural claim, quantified:
//! "FaaS routinely 'ships data to code' rather than 'shipping code to
//! data.' This is a recurring architectural anti-pattern among system
//! designers, which database aficionados seem to need to point out each
//! generation."
//!
//! The same log-aggregation job (count HTTP statuses across a dataset)
//! is executed two ways:
//!
//! - **data-to-code**: a Lambda function pulls every object through its
//!   own (shared, capped) NIC and aggregates in the handler, chaining
//!   executions when the 15-minute guillotine hits;
//! - **code-to-data**: the same Lambda merely *orchestrates* — it calls
//!   the autoscaling query service, which scans next to the data (§2's
//!   orchestration pattern, §4's "fluid code and data placement").
//!
//! Swept over dataset size there is a crossover: below ~100 MB the query
//! service's ~1 s planning latency makes pulling the data directly
//! *faster* — but the data-shipping tax grows linearly with the data
//! while the pushed-down scan grows with `size / parallelism`, so the
//! gap widens without bound. The bench prints the crossover and the
//! per-size ratio.
//!
//! Log bodies are [`Payload::synthetic`]: the simulator transfers, bills,
//! and scans them by *length*, while the aggregation kernels count lines
//! analytically (per-pattern cost, multiplied by repeats). The
//! code-to-data arm runs the query service's streaming scan pipeline —
//! partition-parallel workers issuing chunked ranged reads and folding
//! each chunk as it arrives, transfer overlapped with scan — so the
//! default sweep's 30 GB point (where the real 15-minute guillotine
//! forces execution chaining) exercises the paper-scale streaming path
//! end to end yet takes milliseconds of wall-clock, never materializing
//! 30 GB of RAM.

use std::cell::RefCell;
use std::rc::Rc;

use bytes::Bytes;
use faasim_faas::{FnError, FunctionSpec};
use faasim_payload::Payload;
use faasim_query::{Aggregate, QuerySpec};
use faasim_simcore::SimDuration;

use crate::cloud::{Cloud, CloudProfile};
use crate::experiments::probe::ExperimentProbe;
use crate::report::{fmt_latency, fmt_ratio, Table};

/// Parameters of the data-shipping comparison.
#[derive(Clone, Debug)]
pub struct DataShippingParams {
    /// Dataset sizes (MB) to sweep.
    pub dataset_mbs: Vec<u64>,
    /// Object size in MB.
    pub object_mb: u64,
    /// Override the platform's 15-minute execution cap (used by tests to
    /// exercise execution chaining without simulating tens of GB).
    pub lifetime_cap: Option<SimDuration>,
}

impl Default for DataShippingParams {
    fn default() -> Self {
        DataShippingParams {
            dataset_mbs: vec![10, 100, 1_000, 10_000, 30_000],
            object_mb: 10,
            lifetime_cap: None,
        }
    }
}

impl DataShippingParams {
    /// Reduced scale for tests.
    pub fn quick() -> DataShippingParams {
        DataShippingParams {
            dataset_mbs: vec![10, 250],
            object_mb: 10,
            lifetime_cap: None,
        }
    }
}

/// One sweep point.
#[derive(Clone, Debug)]
pub struct DataShippingPoint {
    /// Dataset size in MB.
    pub dataset_mb: u64,
    /// Latency of the Lambda-pulls-everything variant.
    pub data_to_code: SimDuration,
    /// Lambda executions the data-to-code variant needed (15-min cap).
    pub data_to_code_executions: u64,
    /// Cost of the data-to-code variant (Lambda GB-s + storage requests).
    pub data_to_code_cost: f64,
    /// Latency of the orchestrated query variant.
    pub code_to_data: SimDuration,
    /// Cost of the code-to-data variant (Lambda + query TB scanned).
    pub code_to_data_cost: f64,
}

impl DataShippingPoint {
    /// How much faster shipping code to data is at this size.
    pub fn speedup(&self) -> f64 {
        self.data_to_code.as_secs_f64() / self.code_to_data.as_secs_f64()
    }
}

/// The sweep.
#[derive(Clone, Debug)]
pub struct DataShippingResult {
    /// Points in ascending dataset size.
    pub points: Vec<DataShippingPoint>,
    /// Byte-exact replay probe (two captures per sweep point: the
    /// data-to-code cloud, then the code-to-data cloud).
    pub probe: ExperimentProbe,
}

impl DataShippingResult {
    /// Point at a given size.
    pub fn at(&self, dataset_mb: u64) -> &DataShippingPoint {
        self.points
            .iter()
            .find(|p| p.dataset_mb == dataset_mb)
            .unwrap_or_else(|| panic!("no point at {dataset_mb} MB"))
    }

    /// Render the sweep.
    pub fn render(&self) -> String {
        let mut t = Table::new(
            "Data-to-code (Lambda pulls) vs code-to-data (pushed-down query)",
            &[
                "dataset",
                "data-to-code",
                "execs",
                "cost",
                "code-to-data",
                "cost",
                "speedup",
            ],
        );
        for p in &self.points {
            t.row(&[
                format!("{} MB", p.dataset_mb),
                fmt_latency(p.data_to_code),
                p.data_to_code_executions.to_string(),
                format!("${:.4}", p.data_to_code_cost),
                fmt_latency(p.code_to_data),
                format!("${:.4}", p.code_to_data_cost),
                fmt_ratio(p.speedup()),
            ]);
        }
        t.render()
    }
}

const LOG_LINE: &str = "GET /assets/app.js 200\n";

fn populate(cloud: &Cloud, dataset_mb: u64, object_mb: u64) -> (usize, u64) {
    cloud.blob.create_bucket("logs");
    let objects = (dataset_mb / object_mb).max(1) as usize;
    let lines_per_object = (object_mb * 1_000_000) / LOG_LINE.len() as u64;
    // Symbolic body: one 23-byte pattern repeated; O(1) to build and put,
    // regardless of object size.
    let body = Payload::synthetic(LOG_LINE, lines_per_object);
    let blob = cloud.blob.clone();
    let host = cloud.client_host();
    cloud.sim.block_on(async move {
        for i in 0..objects {
            blob.put(&host, "logs", &format!("part-{i:05}"), body.clone())
                .await
                .expect("logs bucket");
        }
    });
    cloud.ledger.reset(); // setup isn't part of either variant's bill
    (objects, lines_per_object)
}

/// Run the sweep.
pub fn run(params: &DataShippingParams, seed: u64) -> DataShippingResult {
    let mut points = Vec::new();
    let mut probe = ExperimentProbe::new();
    for (i, &dataset_mb) in params.dataset_mbs.iter().enumerate() {
        let seed = seed + i as u64;
        let (d2c, execs, d2c_cost, expected) = run_data_to_code(
            dataset_mb,
            params.object_mb,
            params.lifetime_cap,
            seed,
            &mut probe,
        );
        let (c2d, c2d_cost) =
            run_code_to_data(dataset_mb, params.object_mb, seed + 1000, expected, &mut probe);
        points.push(DataShippingPoint {
            dataset_mb,
            data_to_code: d2c,
            data_to_code_executions: execs,
            data_to_code_cost: d2c_cost,
            code_to_data: c2d,
            code_to_data_cost: c2d_cost,
        });
    }
    DataShippingResult { points, probe }
}

/// Variant 1: the function pulls every object and counts lines itself.
fn run_data_to_code(
    dataset_mb: u64,
    object_mb: u64,
    lifetime_cap: Option<SimDuration>,
    seed: u64,
    probe: &mut ExperimentProbe,
) -> (SimDuration, u64, f64, u64) {
    let mut profile = CloudProfile::aws_2018().exact();
    if let Some(cap) = lifetime_cap {
        profile.faas.max_lifetime = cap;
    }
    let cloud = Cloud::new(profile, seed);
    let (objects, lines_per_object) = populate(&cloud, dataset_mb, object_mb);
    let expected = objects as u64 * lines_per_object;

    let progress = Rc::new(RefCell::new((0usize, 0u64))); // (next object, count)
    let blob = cloud.blob.clone();
    let p = progress.clone();
    cloud.faas.register(FunctionSpec::new(
        "aggregate",
        1_024,
        SimDuration::from_secs(900),
        move |ctx, payload| {
            let blob = blob.clone();
            let p = p.clone();
            async move {
                if payload.eq_bytes(b"warmup") {
                    return Ok(Bytes::new());
                }
                loop {
                    let next = p.borrow().0;
                    if next >= objects {
                        return Ok(Bytes::new());
                    }
                    let body = blob
                        .get(ctx.host(), "logs", &format!("part-{next:05}"))
                        .await
                        .expect("object");
                    // Real aggregation semantics, analytic cost: a
                    // synthetic body counts its pattern's lines once and
                    // multiplies by repeats; inline bytes are scanned.
                    // Simulated time still charges ~1.6 Gbps over every
                    // byte either way.
                    let count = body.line_count();
                    ctx.cpu(SimDuration::from_secs_f64(
                        body.len() as f64 * 8.0 / faasim_simcore::gbps(1.6),
                    ))
                    .await;
                    let mut st = p.borrow_mut();
                    st.0 += 1;
                    st.1 += count;
                }
            }
        },
    ));
    let faas = cloud.faas.clone();
    let progress2 = progress.clone();
    let executions = Rc::new(std::cell::Cell::new(0u64));
    let e2 = executions.clone();
    // Steady state: the one-time container cold start is not part of the
    // data-movement comparison.
    let warm = cloud.faas.clone();
    cloud
        .sim
        .block_on(async move { warm.invoke("aggregate", Bytes::from_static(b"warmup")).await });
    let t0 = cloud.sim.now();
    cloud.sim.block_on(async move {
        while progress2.borrow().0 < objects {
            let out = faas.invoke("aggregate", Bytes::new()).await;
            e2.set(e2.get() + 1);
            match out.result {
                Ok(_) | Err(FnError::TimedOut { .. }) => {}
                Err(e) => panic!("aggregate failed: {e}"),
            }
        }
    });
    assert_eq!(progress.borrow().1, expected, "wrong aggregate");
    probe.capture(&cloud);
    (
        cloud.sim.now() - t0,
        executions.get(),
        cloud.ledger.total(),
        expected,
    )
}

/// Variant 2: the function orchestrates the query service.
fn run_code_to_data(
    dataset_mb: u64,
    object_mb: u64,
    seed: u64,
    expected: u64,
    probe: &mut ExperimentProbe,
) -> (SimDuration, f64) {
    let cloud = Cloud::new(CloudProfile::aws_2018().exact(), seed);
    populate(&cloud, dataset_mb, object_mb);

    let query = cloud.query.clone();
    cloud.faas.register(FunctionSpec::new(
        "orchestrate",
        256, // tiny: it does no heavy lifting
        SimDuration::from_secs(900),
        move |ctx, payload| {
            let query = query.clone();
            async move {
                if payload.eq_bytes(b"warmup") {
                    return Ok(Bytes::new());
                }
                let out = query
                    .run(
                        ctx.host(),
                        QuerySpec::new("logs", "part-", Aggregate::CountAll),
                    )
                    .await
                    .expect("query");
                Ok(Bytes::from(
                    (out.rows[0].1 as u64).to_le_bytes().to_vec(),
                ))
            }
        },
    ));
    let faas = cloud.faas.clone();
    let warm = cloud.faas.clone();
    cloud
        .sim
        .block_on(async move { warm.invoke("orchestrate", Bytes::from_static(b"warmup")).await });
    let t0 = cloud.sim.now();
    let got = cloud.sim.block_on(async move {
        let out = faas.invoke("orchestrate", Bytes::new()).await;
        u64::from_le_bytes(
            out.result.expect("query result").bytes()[..8]
                .try_into()
                .unwrap(),
        )
    });
    assert_eq!(got, expected, "wrong aggregate");
    probe.capture(&cloud);
    (cloud.sim.now() - t0, cloud.ledger.total())
}

/// Chaos-hardened variant of the data-to-code aggregation: the same
/// chained log count, but the handler reads objects through a
/// [`RetryingBlob`](faasim_resilience::RetryingBlob) (absorbing 503s)
/// and the driver tolerates kills, timeouts, and exhausted handlers by
/// re-invoking until the shared cursor reaches the end of the dataset.
/// The cursor and the running count advance atomically between awaits,
/// so a mid-flight kill can never double-count an object — the
/// end-to-end invariant is an *exact* line count despite at-least-once
/// execution.
pub fn resilient(seed: u64, chaos: &dyn Fn(&Cloud)) -> super::ResilientReport {
    use faasim_resilience::{
        ledger_consistent, message_conservation, queue_conservation, Deadline, RetryPolicy,
        RetryingBlob,
    };

    const DATASET_MB: u64 = 100;
    const OBJECT_MB: u64 = 10;

    let mut report = super::ResilientReport::new();
    let cloud = Cloud::new(CloudProfile::aws_2018().exact(), seed);
    chaos(&cloud);
    cloud.blob.create_bucket("logs");
    let objects = (DATASET_MB / OBJECT_MB) as usize;
    let lines_per_object = (OBJECT_MB * 1_000_000) / LOG_LINE.len() as u64;
    let expected = objects as u64 * lines_per_object;
    let rblob = RetryingBlob::new(
        &cloud.sim,
        &cloud.blob,
        cloud.recorder.clone(),
        RetryPolicy {
            max_attempts: 25,
            ..RetryPolicy::default()
        },
        "resil.ship.blob",
    );

    {
        let blob = rblob.clone();
        let host = cloud.client_host();
        let body = Payload::synthetic(LOG_LINE, lines_per_object);
        let mut failures = Vec::new();
        cloud
            .sim
            .block_on(async move {
                for i in 0..objects {
                    if let Err(e) = blob
                        .put_payload(&host, "logs", &format!("part-{i:05}"), body.clone())
                        .await
                    {
                        failures.push(format!("populate part-{i:05}: {e}"));
                    }
                }
                failures
            })
            .into_iter()
            .for_each(|f| report.violation(format!("data_shipping: {f}")));
    }

    let progress = Rc::new(RefCell::new((0usize, 0u64))); // (next object, count)
    let p = progress.clone();
    let blob = rblob.clone();
    cloud.faas.register(FunctionSpec::new(
        "aggregate",
        1_024,
        SimDuration::from_secs(900),
        move |ctx, _| {
            let blob = blob.clone();
            let p = p.clone();
            async move {
                loop {
                    let next = p.borrow().0;
                    if next >= objects {
                        return Ok(Bytes::new());
                    }
                    let body = match blob.get(ctx.host(), "logs", &format!("part-{next:05}")).await
                    {
                        Ok(b) => b,
                        Err(e) => {
                            return Err(FnError::Handler(format!("get part-{next:05}: {e}")))
                        }
                    };
                    let count = body.line_count();
                    ctx.cpu(SimDuration::from_secs_f64(
                        body.len() as f64 * 8.0 / faasim_simcore::gbps(1.6),
                    ))
                    .await;
                    // Atomic between awaits: a kill drops the future at an
                    // await point, never between these two updates.
                    let mut st = p.borrow_mut();
                    st.0 += 1;
                    st.1 += count;
                }
            }
        },
    ));
    let faas = cloud.faas.clone();
    let sim = cloud.sim.clone();
    let p2 = progress.clone();
    let stuck = cloud.sim.block_on(async move {
        let deadline = Deadline::within(&sim, SimDuration::from_secs(3_600));
        while p2.borrow().0 < objects {
            if deadline.is_expired(&sim) {
                return Some(format!(
                    "aggregation stuck at {}/{objects} objects within budget",
                    p2.borrow().0
                ));
            }
            let out = faas.invoke("aggregate", Bytes::new()).await;
            match out.result {
                Ok(_) => {}
                Err(
                    FnError::TimedOut { .. } | FnError::Crashed { .. } | FnError::Handler(_),
                ) => sim.sleep(SimDuration::from_millis(50)).await,
                Err(e) => return Some(format!("aggregate failed fatally: {e}")),
            }
        }
        None
    });
    if let Some(v) = stuck {
        report.violation(format!("data_shipping: {v}"));
    }
    let (done, count) = *progress.borrow();
    report.check(done == objects, || {
        format!("data_shipping: cursor stopped at {done}/{objects}")
    });
    report.check(count == expected, || {
        format!(
            "data_shipping: counted {count} lines, expected {expected} \
             (exactly-once aggregation under retries)"
        )
    });
    cloud.sim.run();
    if let Some(v) = message_conservation(&cloud.recorder) {
        report.violation(format!("data_shipping: {v}"));
    }
    if let Some(v) = queue_conservation(&cloud.recorder, &cloud.queue) {
        report.violation(format!("data_shipping: {v}"));
    }
    if let Some(v) = ledger_consistent(&cloud.ledger) {
        report.violation(format!("data_shipping: {v}"));
    }
    report.probe.capture(&cloud);
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn code_to_data_wins_and_gap_grows() {
        let r = run(&DataShippingParams::quick(), 4242);
        let small = r.at(10);
        let large = r.at(250);
        // Both variants computed the same count (asserted inside run).
        // At 10 MB, the query service's planning latency makes
        // data-to-code outright faster (the crossover)...
        assert!(
            (0.1..1.2).contains(&small.speedup()),
            "small speedup {}",
            small.speedup()
        );
        // ...but already at 250 MB the pushed-down scan wins decisively,
        // and the gap keeps growing with the data (the tax is linear).
        assert!(large.speedup() > 3.0, "large speedup {}", large.speedup());
        assert!(
            large.speedup() > small.speedup() * 2.5,
            "gap did not grow: {} -> {}",
            small.speedup(),
            large.speedup()
        );
        assert!(r.render().contains("speedup"));
    }

    #[test]
    fn lifetime_cap_forces_chaining() {
        // With the platform cap shrunk to 10 s, pulling 500 MB cannot fit
        // in one execution: the data-to-code variant must chain. (At the
        // real 15-minute cap the same happens beyond ~20 GB — the bench
        // sweep's largest point shows the mechanism at paper scale.)
        let r = run(
            &DataShippingParams {
                dataset_mbs: vec![500],
                object_mb: 10,
                lifetime_cap: Some(SimDuration::from_secs(10)),
            },
            77,
        );
        let p = r.at(500);
        assert!(
            p.data_to_code_executions >= 2,
            "executions {}",
            p.data_to_code_executions
        );
    }

    #[test]
    fn real_cap_forces_chaining_at_paper_scale() {
        // At the *real* 900 s cap, pulling the default sweep's 30 GB
        // through a Lambda's NIC (~41 MB/s per blob connection) plus the
        // in-handler scan takes ~1000 s of simulated time: the guillotine
        // falls and the aggregation must chain across executions.
        // Symbolic payloads make this paper-scale point cheap enough to
        // assert in a unit test.
        let paper_mb = *DataShippingParams::default().dataset_mbs.last().unwrap();
        assert!(paper_mb >= 20_000, "paper-scale point shrank: {paper_mb} MB");
        let r = run(
            &DataShippingParams {
                dataset_mbs: vec![paper_mb],
                object_mb: 10,
                lifetime_cap: None,
            },
            7,
        );
        let p = r.at(paper_mb);
        assert!(
            p.data_to_code_executions >= 2,
            "executions {}",
            p.data_to_code_executions
        );
        assert!(
            p.data_to_code > SimDuration::from_secs(900),
            "d2c {:?}",
            p.data_to_code
        );
    }
}
