//! Experiment E1 — the paper's **Table 1**: the latency of
//! "communicating" 1 KB six different ways.

use std::cell::RefCell;
use std::rc::Rc;

use bytes::Bytes;
use faasim_faas::FunctionSpec;
use faasim_kv::Consistency;
use faasim_simcore::{Histogram, SimDuration};

use crate::cloud::{Cloud, CloudProfile};
use crate::experiments::probe::ExperimentProbe;
use crate::report::{fmt_latency, fmt_ratio, Table};

/// Parameters of the Table 1 reproduction (defaults match the paper's
/// trial counts).
#[derive(Clone, Debug)]
pub struct Table1Params {
    /// No-op Lambda invocations averaged (paper: 1,000).
    pub invocations: usize,
    /// Write+read pairs per storage medium (paper: 5,000).
    pub io_trials: usize,
    /// Socket roundtrips (paper: 10,000).
    pub rtt_trials: usize,
    /// Payload size (paper: 1 KB).
    pub payload_bytes: usize,
    /// Use constant (mean) latencies so the table is exact.
    pub exact: bool,
    /// Override the platform profile (e.g. the Firecracker ablation).
    pub firecracker: bool,
}

impl Default for Table1Params {
    fn default() -> Self {
        Table1Params {
            invocations: 1_000,
            io_trials: 5_000,
            rtt_trials: 10_000,
            payload_bytes: 1_024,
            exact: true,
            firecracker: false,
        }
    }
}

impl Table1Params {
    /// A reduced-scale variant for unit/integration tests.
    pub fn quick() -> Table1Params {
        Table1Params {
            invocations: 50,
            io_trials: 100,
            rtt_trials: 200,
            ..Table1Params::default()
        }
    }
}

/// One Table 1 column.
#[derive(Clone, Debug)]
pub struct Table1Row {
    /// Column label, e.g. `"Lambda I/O (S3)"`.
    pub label: &'static str,
    /// Mean latency.
    pub mean: SimDuration,
    /// Number of samples.
    pub samples: usize,
}

/// The reproduced table.
#[derive(Clone, Debug)]
pub struct Table1Result {
    /// The six columns, in the paper's order.
    pub rows: Vec<Table1Row>,
    /// Byte-exact replay probe (the single cloud, captured at the end).
    pub probe: ExperimentProbe,
}

impl Table1Result {
    /// Latency of a row by label.
    pub fn mean_of(&self, label: &str) -> SimDuration {
        self.rows
            .iter()
            .find(|r| r.label == label)
            .map(|r| r.mean)
            .unwrap_or_else(|| panic!("no row {label:?}"))
    }

    /// The best (lowest) mean.
    pub fn best(&self) -> SimDuration {
        self.rows.iter().map(|r| r.mean).min().expect("rows")
    }

    /// Ratio of a row to the best row (the paper's second line).
    pub fn ratio_of(&self, label: &str) -> f64 {
        self.mean_of(label).as_secs_f64() / self.best().as_secs_f64()
    }

    /// Render in the paper's layout.
    pub fn render(&self) -> String {
        let best = self.best().as_secs_f64();
        let headers: Vec<&str> = std::iter::once("")
            .chain(self.rows.iter().map(|r| r.label))
            .collect();
        let mut t = Table::new("Table 1: Latency of communicating 1KB", &headers);
        let mut latency = vec!["Latency".to_owned()];
        latency.extend(self.rows.iter().map(|r| fmt_latency(r.mean)));
        t.row(&latency);
        let mut ratio = vec!["Compared to best".to_owned()];
        ratio.extend(
            self.rows
                .iter()
                .map(|r| fmt_ratio(r.mean.as_secs_f64() / best)),
        );
        t.row(&ratio);
        t.render()
    }
}

#[derive(Copy, Clone, PartialEq)]
enum Medium {
    Blob,
    Kv,
}

/// Run the experiment.
pub fn run(params: &Table1Params, seed: u64) -> Table1Result {
    let mut profile = CloudProfile::aws_2018();
    if params.exact {
        profile = profile.exact();
    }
    if params.firecracker {
        profile = profile.firecracker();
    }
    let cloud = Cloud::new(profile, seed);
    let payload = Bytes::from(vec![0u8; params.payload_bytes]);
    cloud.blob.create_bucket("bench");
    cloud.kv.create_table("bench");

    let mut rows = Vec::new();

    // --- Column 1: no-op function invocation on a 1KB argument ----------
    {
        cloud.faas.register(FunctionSpec::new(
            "noop",
            128,
            SimDuration::from_secs(60),
            |_ctx, payload| async move { Ok(payload) },
        ));
        let faas = cloud.faas.clone();
        let p = payload.clone();
        let n = params.invocations;
        let hist = cloud.sim.block_on(async move {
            // Warm the container outside the measurement; across the
            // paper's 1,000-call average the one cold start washes out.
            faas.invoke("noop", p.clone()).await;
            let mut hist = Histogram::new();
            for _ in 0..n {
                let out = faas.invoke("noop", p.clone()).await;
                out.result.expect("noop cannot fail");
                hist.record_duration(out.total);
            }
            hist
        });
        rows.push(Table1Row {
            label: "Func. Invoc. (1KB)",
            mean: SimDuration::from_secs_f64(hist.mean()),
            samples: hist.count(),
        });
    }

    // --- Columns 2 & 3: explicit I/O from a long-running Lambda ---------
    for (label, medium) in [
        ("Lambda I/O (S3)", Medium::Blob),
        ("Lambda I/O (DynamoDB)", Medium::Kv),
    ] {
        let hist = lambda_io(&cloud, medium, params.io_trials, payload.clone());
        rows.push(Table1Row {
            label,
            mean: SimDuration::from_secs_f64(hist.mean()),
            samples: hist.count(),
        });
    }

    // --- Columns 4 & 5: the same I/O from an EC2 instance ---------------
    for (label, medium) in [
        ("EC2 I/O (S3)", Medium::Blob),
        ("EC2 I/O (DynamoDB)", Medium::Kv),
    ] {
        let vm = cloud.ec2.provision_ready("m5.large", 0).expect("m5.large");
        let host = vm.host().clone();
        let blob = cloud.blob.clone();
        let kv = cloud.kv.clone();
        let sim = cloud.sim.clone();
        let p = payload.clone();
        let n = params.io_trials;
        let key = format!("ec2-{label}");
        let hist = cloud.sim.block_on(async move {
            let mut hist = Histogram::new();
            for _ in 0..n {
                let t0 = sim.now();
                match medium {
                    Medium::Blob => {
                        blob.put(&host, "bench", &key, p.clone()).await.unwrap();
                        blob.get(&host, "bench", &key).await.unwrap();
                    }
                    Medium::Kv => {
                        kv.put(&host, "bench", &key, p.clone()).await.unwrap();
                        kv.get(&host, "bench", &key, Consistency::Strong)
                            .await
                            .unwrap();
                    }
                }
                hist.record_duration(sim.now() - t0);
            }
            hist
        });
        vm.terminate();
        rows.push(Table1Row {
            label,
            mean: SimDuration::from_secs_f64(hist.mean()),
            samples: hist.count(),
        });
    }

    // --- Column 6: direct messaging between two EC2 instances -----------
    {
        let a = cloud.ec2.provision_ready("m5.large", 0).expect("m5.large");
        let b = cloud.ec2.provision_ready("m5.large", 0).expect("m5.large");
        let sa = cloud.fabric.bind(a.host(), 5555).expect("bind");
        let sb = cloud.fabric.bind(b.host(), 5555).expect("bind");
        let to = sb.addr();
        cloud.sim.spawn(async move {
            loop {
                let req = sb.recv().await;
                sb.reply(&req, req.payload.clone()).await;
            }
        });
        let p = payload.clone();
        let n = params.rtt_trials;
        let hist = cloud.sim.block_on(async move {
            let mut hist = Histogram::new();
            for _ in 0..n {
                let (_, rtt) = sa.request_timed(to, p.clone()).await.unwrap();
                hist.record_duration(rtt);
            }
            hist
        });
        rows.push(Table1Row {
            label: "EC2 NW (0MQ)",
            mean: SimDuration::from_secs_f64(hist.mean()),
            samples: hist.count(),
        });
    }

    let mut probe = ExperimentProbe::new();
    probe.capture(&cloud);
    Table1Result { rows, probe }
}

/// Issue `trials` write+read pairs from inside Lambda function bodies,
/// re-invoking as the 15-minute lifetime runs out (the paper's
/// "long-running function" driver).
fn lambda_io(cloud: &Cloud, medium: Medium, trials: usize, payload: Bytes) -> Histogram {
    let results: Rc<RefCell<Histogram>> = Rc::new(RefCell::new(Histogram::new()));
    let fn_name = match medium {
        Medium::Blob => "io-blob",
        Medium::Kv => "io-kv",
    };
    let blob = cloud.blob.clone();
    let kv = cloud.kv.clone();
    let res = results.clone();
    cloud.faas.register(FunctionSpec::new(
        fn_name,
        1_024,
        SimDuration::from_secs(900),
        move |ctx, payload| {
            let blob = blob.clone();
            let kv = kv.clone();
            let res = res.clone();
            async move {
                let want = u64::from_le_bytes(payload.bytes()[..8].try_into().expect("8-byte count"));
                let body = payload.slice(8..);
                let margin = SimDuration::from_secs(2);
                let key = format!("lambda-io-{}", ctx.container_id());
                let mut done: u64 = 0;
                while done < want && ctx.remaining() > margin {
                    let t0 = ctx.sim().now();
                    match medium {
                        Medium::Blob => {
                            blob.put(ctx.host(), "bench", &key, body.clone())
                                .await
                                .expect("bench bucket");
                            blob.get(ctx.host(), "bench", &key).await.expect("get");
                        }
                        Medium::Kv => {
                            kv.put(ctx.host(), "bench", &key, body.clone())
                                .await
                                .expect("bench table");
                            kv.get(ctx.host(), "bench", &key, Consistency::Strong)
                                .await
                                .expect("get");
                        }
                    }
                    res.borrow_mut().record_duration(ctx.sim().now() - t0);
                    done += 1;
                }
                Ok(Bytes::from(done.to_le_bytes().to_vec()))
            }
        },
    ));
    let faas = cloud.faas.clone();
    let results2 = results.clone();
    cloud.sim.block_on(async move {
        while (results2.borrow().count() as u64) < trials as u64 {
            let remaining = trials - results2.borrow().count();
            let mut req = Vec::with_capacity(8 + payload.len());
            req.extend_from_slice(&(remaining as u64).to_le_bytes());
            req.extend_from_slice(&payload);
            let out = faas.invoke(fn_name, Bytes::from(req)).await;
            match out.result {
                Ok(_) => {}
                Err(faasim_faas::FnError::TimedOut { .. }) => {}
                Err(e) => panic!("lambda io driver failed: {e}"),
            }
        }
    });
    Rc::try_unwrap(results)
        .map(RefCell::into_inner)
        .unwrap_or_else(|rc| rc.borrow().clone())
}

/// Chaos-hardened Table 1: the same six communication paths, driven
/// through the resilience layer (retrying clients, platform-level
/// invoke retries, deadline budgets) at reduced scale, under whatever
/// fault plan `chaos` installs. Returns invariant violations instead of
/// panicking: every trial must either complete or fail by declared
/// deadline, and the global conservation/ledger invariants must hold.
pub fn resilient(seed: u64, chaos: &dyn Fn(&Cloud)) -> super::ResilientReport {
    use faasim_payload::Payload;
    use faasim_resilience::{
        ledger_consistent, message_conservation, queue_conservation, Deadline, RetryPolicy,
        RetryingBlob, RetryingInvoker, RetryingKv,
    };

    const PAYLOAD_BYTES: usize = 1_024;
    const INVOC_TRIALS: usize = 12;
    const IO_TRIALS: usize = 8;
    const RTT_TRIALS: usize = 20;

    let mut report = super::ResilientReport::new();
    let cloud = Cloud::new(CloudProfile::aws_2018().exact(), seed);
    chaos(&cloud);
    cloud.blob.create_bucket("bench");
    cloud.kv.create_table("bench");
    let payload = Payload::zeros(PAYLOAD_BYTES);
    let policy = RetryPolicy {
        max_attempts: 25,
        ..RetryPolicy::default()
    };

    // --- Column 1: no-op invocations, platform-level retries ------------
    {
        cloud.faas.register(FunctionSpec::new(
            "noop",
            128,
            SimDuration::from_secs(60),
            |_ctx, payload| async move { Ok(payload) },
        ));
        let invoker = RetryingInvoker::new(
            &cloud.sim,
            &cloud.faas,
            cloud.recorder.clone(),
            policy.clone(),
            "resil.t1.invoker",
        );
        let sim = cloud.sim.clone();
        let p = payload.clone();
        let mut failures = Vec::new();
        cloud.sim.block_on(async move {
            for i in 0..INVOC_TRIALS {
                let deadline = Deadline::within(&sim, SimDuration::from_secs(120));
                match invoker.invoke("noop", &p, deadline).await {
                    Ok(out) => {
                        let echoed = out.result.as_ref().expect("ok outcome").len();
                        if echoed != PAYLOAD_BYTES {
                            failures.push(format!("trial {i}: echoed {echoed} bytes"));
                        }
                    }
                    Err(e) => failures.push(format!("trial {i}: {e}")),
                }
            }
            failures
        })
        .into_iter()
        .for_each(|f| report.violation(format!("table1/invoc: {f}")));
    }

    // --- Columns 2 & 3: Lambda I/O with retrying storage clients --------
    let rkv = RetryingKv::new(
        &cloud.sim,
        &cloud.kv,
        cloud.recorder.clone(),
        policy.clone(),
        "resil.t1.kv",
    );
    let rblob = RetryingBlob::new(
        &cloud.sim,
        &cloud.blob,
        cloud.recorder.clone(),
        policy.clone(),
        "resil.t1.blob",
    );
    for (medium, fn_name) in [(Medium::Blob, "rio-blob"), (Medium::Kv, "rio-kv")] {
        let blob = rblob.clone();
        let kv = rkv.clone();
        cloud.faas.register(FunctionSpec::new(
            fn_name,
            1_024,
            SimDuration::from_secs(60),
            move |ctx, payload| {
                let blob = blob.clone();
                let kv = kv.clone();
                async move {
                    // One write+read pair per invocation; storage-tier
                    // transients are absorbed inside the handler so a
                    // brownout surfaces as latency, not failure.
                    let key = format!("rio-{}", ctx.container_id());
                    let run = async {
                        match medium {
                            Medium::Blob => {
                                blob.put_payload(ctx.host(), "bench", &key, payload.clone())
                                    .await
                                    .map_err(|e| format!("put: {e}"))?;
                                blob.get(ctx.host(), "bench", &key)
                                    .await
                                    .map_err(|e| format!("get: {e}"))?;
                            }
                            Medium::Kv => {
                                kv.put(
                                    ctx.host(),
                                    "bench",
                                    &key,
                                    Bytes::from(payload.to_vec()),
                                )
                                .await
                                .map_err(|e| format!("put: {e}"))?;
                                kv.get(ctx.host(), "bench", &key, Consistency::Strong)
                                    .await
                                    .map_err(|e| format!("get: {e}"))?;
                            }
                        }
                        Ok::<(), String>(())
                    };
                    match run.await {
                        Ok(()) => Ok(Payload::inline("ok")),
                        Err(e) => Err(faasim_faas::FnError::Handler(e)),
                    }
                }
            },
        ));
        let invoker = RetryingInvoker::new(
            &cloud.sim,
            &cloud.faas,
            cloud.recorder.clone(),
            policy.clone(),
            "resil.t1.io_invoker",
        );
        let sim = cloud.sim.clone();
        let p = payload.clone();
        let mut failures = Vec::new();
        cloud.sim.block_on(async move {
            for i in 0..IO_TRIALS {
                let deadline = Deadline::within(&sim, SimDuration::from_secs(120));
                if let Err(e) = invoker.invoke(fn_name, &p, deadline).await {
                    failures.push(format!("trial {i}: {e}"));
                }
            }
            failures
        })
        .into_iter()
        .for_each(|f| report.violation(format!("table1/{fn_name}: {f}")));
    }

    // --- Columns 4 & 5: EC2 I/O through the same retrying clients -------
    for (medium, label) in [(Medium::Blob, "ec2-blob"), (Medium::Kv, "ec2-kv")] {
        let vm = cloud.ec2.provision_ready("m5.large", 0).expect("m5.large");
        let host = vm.host().clone();
        let kv = rkv.clone();
        let blob = rblob.clone();
        let sim = cloud.sim.clone();
        let p = payload.clone();
        let mut failures = Vec::new();
        cloud.sim.block_on(async move {
            for i in 0..IO_TRIALS {
                let deadline = Deadline::within(&sim, SimDuration::from_secs(60));
                let done = match medium {
                    Medium::Blob => async {
                        blob.put_payload(&host, "bench", label, p.clone())
                            .await
                            .map_err(|e| e.to_string())?;
                        blob.get_within(&host, "bench", label, deadline)
                            .await
                            .map_err(|e| e.to_string())?;
                        Ok::<(), String>(())
                    }
                    .await,
                    Medium::Kv => async {
                        kv.put_within(&host, "bench", label, Bytes::from(p.to_vec()), deadline)
                            .await
                            .map_err(|e| e.to_string())?;
                        kv.get_within(&host, "bench", label, Consistency::Strong, deadline)
                            .await
                            .map_err(|e| e.to_string())?;
                        Ok::<(), String>(())
                    }
                    .await,
                };
                if let Err(e) = done {
                    failures.push(format!("trial {i}: {e}"));
                }
            }
            failures
        })
        .into_iter()
        .for_each(|f| report.violation(format!("table1/{label}: {f}")));
        vm.terminate();
    }

    // --- Column 6: socket RTTs with per-request timeouts -----------------
    {
        let a = cloud.ec2.provision_ready("m5.large", 0).expect("m5.large");
        let b = cloud.ec2.provision_ready("m5.large", 0).expect("m5.large");
        let sa = cloud.fabric.bind(a.host(), 5555).expect("bind");
        let sb = cloud.fabric.bind(b.host(), 5555).expect("bind");
        let to = sb.addr();
        cloud.sim.spawn(async move {
            loop {
                let req = sb.recv().await;
                sb.reply(&req, req.payload.clone()).await;
            }
        });
        let sim = cloud.sim.clone();
        let p = payload.clone();
        let mut failures = Vec::new();
        cloud.sim.block_on(async move {
            for i in 0..RTT_TRIALS {
                // Packet loss makes a request hang forever, so each
                // attempt is raced against a timeout and retried inside
                // the trial's deadline budget.
                let deadline = Deadline::within(&sim, SimDuration::from_secs(30));
                let mut ok = false;
                while !deadline.is_expired(&sim) {
                    let attempt = sa.request_timed(to, p.clone());
                    match sim.timeout(SimDuration::from_millis(500), attempt).await {
                        Some(Ok(_)) => {
                            ok = true;
                            break;
                        }
                        Some(Err(_)) | None => continue,
                    }
                }
                if !ok {
                    failures.push(format!("rtt trial {i}: no reply within deadline"));
                }
            }
            failures
        })
        .into_iter()
        .for_each(|f| report.violation(format!("table1/rtt: {f}")));
    }

    // Quiesce in-flight deliveries so conservation counters settle.
    cloud.sim.run();
    if let Some(v) = message_conservation(&cloud.recorder) {
        report.violation(format!("table1: {v}"));
    }
    if let Some(v) = queue_conservation(&cloud.recorder, &cloud.queue) {
        report.violation(format!("table1: {v}"));
    }
    if let Some(v) = ledger_consistent(&cloud.ledger) {
        report.violation(format!("table1: {v}"));
    }
    report.probe.capture(&cloud);
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_run_reproduces_paper_shape() {
        let result = run(&Table1Params::quick(), 42);
        assert_eq!(result.rows.len(), 6);

        // Paper's means (ms): 303, 108, 11, 106, 11, 0.29.
        let invoc = result.mean_of("Func. Invoc. (1KB)").as_secs_f64() * 1e3;
        assert!((invoc - 303.0).abs() < 10.0, "invoc {invoc} ms");
        let ls3 = result.mean_of("Lambda I/O (S3)").as_secs_f64() * 1e3;
        assert!((ls3 - 107.0).abs() < 4.0, "lambda s3 {ls3} ms");
        let lkv = result.mean_of("Lambda I/O (DynamoDB)").as_secs_f64() * 1e3;
        assert!((lkv - 11.0).abs() < 1.0, "lambda kv {lkv} ms");
        let es3 = result.mean_of("EC2 I/O (S3)").as_secs_f64() * 1e3;
        assert!((es3 - 107.0).abs() < 4.0, "ec2 s3 {es3} ms");
        let ekv = result.mean_of("EC2 I/O (DynamoDB)").as_secs_f64() * 1e3;
        assert!((ekv - 11.0).abs() < 1.0, "ec2 kv {ekv} ms");
        let rtt = result.mean_of("EC2 NW (0MQ)").as_secs_f64() * 1e6;
        assert!((rtt - 290.0).abs() < 10.0, "rtt {rtt} µs");

        // The paper's ratios: 1,045x / 372x / 37.9x / 365x / 37.9x / 1x.
        assert!((result.ratio_of("Func. Invoc. (1KB)") - 1045.0).abs() < 60.0);
        assert!((result.ratio_of("Lambda I/O (DynamoDB)") - 37.9).abs() < 3.0);
        assert!((result.ratio_of("EC2 NW (0MQ)") - 1.0).abs() < 1e-9);

        let rendered = result.render();
        assert!(rendered.contains("Func. Invoc."));
        assert!(rendered.contains("Compared to best"));
    }

    #[test]
    fn deterministic_across_runs() {
        let a = run(&Table1Params::quick(), 7);
        let b = run(&Table1Params::quick(), 7);
        for (ra, rb) in a.rows.iter().zip(b.rows.iter()) {
            assert_eq!(ra.mean, rb.mean, "{} differs", ra.label);
        }
    }
}
