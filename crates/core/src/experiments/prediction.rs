//! Experiment E4 — §3.1 case study 2: **low-latency prediction serving
//! via batching**, four deployments:
//!
//! 1. `Lambda + S3 model` — the model is fetched from the object store on
//!    every invocation, censored documents written back to S3 (559 ms).
//! 2. `Lambda optimized` — the model is compiled into the function and
//!    results go to a queue (447 ms).
//! 3. `EC2 + SQS` — a serverful consumer long-polls the queue (13 ms).
//! 4. `EC2 + ZeroMQ` — clients message the server directly (2.8 ms).
//!
//! Plus the paper's cost extrapolation to one million messages per
//! second: SQS request pricing vs an EC2 fleet sized by measured
//! throughput ($1,584/hr vs $27.84/hr — 57×).

use std::cell::RefCell;
use std::rc::Rc;

use bytes::Bytes;
use faasim_faas::{add_queue_trigger, decode_batch, encode_batch, FunctionSpec};
use faasim_ml::{synthetic_document, DirtyWordModel};
use faasim_queue::QueueConfig;
use faasim_simcore::{Histogram, SimDuration};

use crate::cloud::{Cloud, CloudProfile};
use crate::experiments::probe::ExperimentProbe;
use crate::report::{fmt_latency, fmt_ratio, Table};

/// Parameters of the serving comparison.
#[derive(Clone, Debug)]
pub struct PredictionParams {
    /// Batches measured per deployment (paper: 1,000).
    pub batches: usize,
    /// Documents per batch (paper/SQS cap: 10).
    pub batch_size: usize,
    /// Words per document.
    pub doc_words: usize,
    /// Size of the serialized blacklist model fetched from the object
    /// store in the unoptimized deployment. Calibrated to ~500 KB so the
    /// fetch accounts for the paper's 559 ms vs 447 ms gap.
    pub model_bytes: usize,
    /// Reference-core time to censor one document.
    pub per_doc_ref_work: SimDuration,
    /// Messages/second for the cost extrapolation (paper: 1M).
    pub extrapolate_rate: f64,
}

impl Default for PredictionParams {
    fn default() -> Self {
        PredictionParams {
            batches: 1_000,
            batch_size: 10,
            doc_words: 100,
            model_bytes: 500_000,
            per_doc_ref_work: SimDuration::from_micros(20),
            extrapolate_rate: 1e6,
        }
    }
}

impl PredictionParams {
    /// Reduced scale for tests.
    pub fn quick() -> PredictionParams {
        PredictionParams {
            batches: 40,
            ..PredictionParams::default()
        }
    }
}

/// Per-deployment outcome.
#[derive(Clone, Debug)]
pub struct Deployment {
    /// Deployment label.
    pub label: &'static str,
    /// Mean per-batch latency.
    pub mean_batch_latency: SimDuration,
    /// Batches measured.
    pub batches: usize,
}

/// The four-deployment comparison plus the cost extrapolation.
#[derive(Clone, Debug)]
pub struct PredictionResult {
    /// Deployments in the paper's order.
    pub deployments: Vec<Deployment>,
    /// $/hr for SQS alone at the extrapolated message rate.
    pub sqs_hourly_at_rate: f64,
    /// Instances needed at the extrapolated rate (from measured
    /// throughput) and their $/hr.
    pub ec2_instances_at_rate: u32,
    /// EC2 fleet $/hr.
    pub ec2_hourly_at_rate: f64,
    /// Measured per-instance throughput (messages/second).
    pub ec2_throughput_per_instance: f64,
    /// Byte-exact replay probe (one capture per deployment's cloud).
    pub probe: ExperimentProbe,
}

impl PredictionResult {
    /// Latency of a deployment by label.
    pub fn latency_of(&self, label: &str) -> SimDuration {
        self.deployments
            .iter()
            .find(|d| d.label == label)
            .map(|d| d.mean_batch_latency)
            .unwrap_or_else(|| panic!("no deployment {label:?}"))
    }

    /// Cost advantage of the EC2 fleet at the extrapolated rate.
    pub fn cost_ratio(&self) -> f64 {
        self.sqs_hourly_at_rate / self.ec2_hourly_at_rate
    }

    /// Render in the case study's structure.
    pub fn render(&self) -> String {
        let best = self
            .deployments
            .iter()
            .map(|d| d.mean_batch_latency)
            .min()
            .expect("deployments")
            .as_secs_f64();
        let mut t = Table::new(
            "Case study 2: prediction serving (per 10-message batch)",
            &["deployment", "latency", "vs best"],
        );
        for d in &self.deployments {
            t.row(&[
                d.label.to_owned(),
                fmt_latency(d.mean_batch_latency),
                fmt_ratio(d.mean_batch_latency.as_secs_f64() / best),
            ]);
        }
        let mut out = t.render();
        out.push_str(&format!(
            "\nAt {:.0} msg/s: SQS requests alone {}/hr; {} EC2 instances ({:.0} msg/s each) {}/hr — {} cheaper\n",
            self.ec2_throughput_per_instance * self.ec2_instances_at_rate as f64,
            faasim_pricing::format_dollars(self.sqs_hourly_at_rate),
            self.ec2_instances_at_rate,
            self.ec2_throughput_per_instance,
            faasim_pricing::format_dollars(self.ec2_hourly_at_rate),
            fmt_ratio(self.cost_ratio()),
        ));
        out
    }
}

/// Run all four deployments.
pub fn run(params: &PredictionParams, seed: u64) -> PredictionResult {
    let mut probe = ExperimentProbe::new();
    let lambda_s3 = run_lambda(params, seed, false, &mut probe);
    let lambda_opt = run_lambda(params, seed + 1, true, &mut probe);
    let (ec2_sqs, _) = run_ec2_sqs(params, seed + 2, &mut probe);
    let (ec2_zmq, per_batch_busy) = run_ec2_zmq(params, seed + 3, &mut probe);

    // Cost extrapolation, the paper's §3.1 arithmetic:
    // SQS requests per message ≈ 1 send + 1/10 receive + 1/10 delete of
    // batched requests — but the paper's $1,584/hr at $0.40/M implies 1.1
    // requests per message (send + batched receive; deletes folded in).
    let book = faasim_pricing::PriceBook::aws_2018();
    let requests_per_msg = 1.1;
    let sqs_hourly = params.extrapolate_rate * 3600.0 * requests_per_msg * book.queue_per_request;
    // EC2 fleet sized by the measured busy time per batch.
    let throughput = params.batch_size as f64 / per_batch_busy.as_secs_f64();
    let instances = (params.extrapolate_rate / throughput).ceil() as u32;
    let ec2_hourly = instances as f64 * book.ec2_hourly("m5.large");

    PredictionResult {
        deployments: vec![lambda_s3, lambda_opt, ec2_sqs, ec2_zmq],
        sqs_hourly_at_rate: sqs_hourly,
        ec2_instances_at_rate: instances,
        ec2_hourly_at_rate: ec2_hourly,
        ec2_throughput_per_instance: throughput,
        probe,
    }
}

fn make_docs(params: &PredictionParams, seed: u64) -> Vec<Bytes> {
    (0..params.batch_size)
        .map(|i| {
            Bytes::from(synthetic_document(500, params.doc_words, seed * 1000 + i as u64).into_bytes())
        })
        .collect()
}

/// Deployments 1 & 2: Lambda behind a queue trigger.
fn run_lambda(
    params: &PredictionParams,
    seed: u64,
    optimized: bool,
    probe: &mut ExperimentProbe,
) -> Deployment {
    let cloud = Cloud::new(CloudProfile::aws_2018().exact(), seed);
    cloud.queue.create_queue("in", QueueConfig::default());
    cloud.queue.create_queue("out", QueueConfig::default());
    cloud.blob.create_bucket("results");
    cloud.blob.create_bucket("models");

    let model = DirtyWordModel::synthetic(500);
    // Upload the serialized model for the unoptimized deployment.
    {
        let blob = cloud.blob.clone();
        let host = cloud.client_host();
        let bytes = Bytes::from(vec![0u8; params.model_bytes]);
        cloud.sim.block_on(async move {
            blob.put(&host, "models", "blacklist", bytes).await.unwrap();
        });
    }

    // Completion notifications: handler -> measurement loop.
    let (done_tx, mut done_rx) = faasim_simcore::channel::<u64>();
    let blob = cloud.blob.clone();
    let queue = cloud.queue.clone();
    let per_doc = params.per_doc_ref_work;
    cloud.faas.register(FunctionSpec::new(
        "classify",
        1_024,
        SimDuration::from_secs(60),
        move |ctx, payload| {
            let blob = blob.clone();
            let queue = queue.clone();
            let model = model.clone();
            let done_tx = done_tx.clone();
            async move {
                if !optimized {
                    // Retrieve the model on every invocation.
                    blob.get(ctx.host(), "models", "blacklist")
                        .await
                        .expect("model object");
                }
                let docs = decode_batch(&payload).expect("batch payload");
                let mut censored = Vec::with_capacity(docs.len());
                for doc in &docs {
                    let doc = doc.to_vec();
                    let text = std::str::from_utf8(&doc).expect("utf8 docs");
                    let out = model.censor(text);
                    censored.push(faasim_payload::Payload::from(out.text.into_bytes()));
                    ctx.cpu(per_doc).await;
                }
                let result = encode_batch(&censored);
                if optimized {
                    // Results are placed back into an SQS queue.
                    queue
                        .send(ctx.host(), "out", result)
                        .await
                        .expect("out queue");
                } else {
                    // Results written back to S3.
                    let key = format!("batch-{}", ctx.sim().now().as_nanos());
                    blob.put(ctx.host(), "results", &key, result)
                        .await
                        .expect("results bucket");
                }
                let _ = done_tx.send(ctx.sim().now().as_nanos());
                Ok(Bytes::new())
            }
        },
    ));
    let _trigger = add_queue_trigger(&cloud.faas, &cloud.queue, &cloud.fabric, "classify", "in", 10);

    let producer = cloud.client_host();
    let queue = cloud.queue.clone();
    let sim = cloud.sim.clone();
    let n = params.batches;
    let docs = make_docs(params, seed);
    let hist = cloud.sim.block_on(async move {
        // Warm-up: pay the one-time container cold start outside the
        // measurement, as a steady-state serving system would have.
        for _ in 0..2 {
            queue
                .send_batch(&producer, "in", docs.clone())
                .await
                .expect("send batch");
            done_rx.recv().await.expect("handler completion");
        }
        let mut hist = Histogram::new();
        for _ in 0..n {
            let t0 = sim.now();
            queue
                .send_batch(&producer, "in", docs.clone())
                .await
                .expect("send batch");
            done_rx.recv().await.expect("handler completion");
            hist.record_duration(sim.now() - t0);
        }
        hist
    });
    probe.capture(&cloud);
    Deployment {
        label: if optimized {
            "Lambda optimized (model baked in, SQS out)"
        } else {
            "Lambda + S3 model"
        },
        mean_batch_latency: SimDuration::from_secs_f64(hist.mean()),
        batches: hist.count(),
    }
}

/// Deployment 3: EC2 consumer long-polling SQS.
fn run_ec2_sqs(
    params: &PredictionParams,
    seed: u64,
    probe: &mut ExperimentProbe,
) -> (Deployment, SimDuration) {
    let cloud = Cloud::new(CloudProfile::aws_2018().exact(), seed);
    cloud.queue.create_queue("in", QueueConfig::default());
    let vm = cloud.ec2.provision_ready("m5.large", 0).expect("m5.large");
    let model = DirtyWordModel::synthetic(500);
    let producer = cloud.client_host();
    let queue = cloud.queue.clone();
    let sim = cloud.sim.clone();
    let host = vm.host().clone();
    let vm2 = vm.clone();
    let n = params.batches;
    let per_doc = params.per_doc_ref_work;
    let docs = make_docs(params, seed);
    let hist = cloud.sim.block_on(async move {
        let mut hist = Histogram::new();
        for _ in 0..n {
            queue
                .send_batch(&producer, "in", docs.clone())
                .await
                .expect("send batch");
            // Consumer: the batch is already waiting (steady-state serving).
            let t0 = sim.now();
            let got = queue
                .receive(&host, "in", 10, SimDuration::from_secs(20))
                .await
                .expect("receive");
            for m in &got {
                let body = m.body.to_vec();
                let text = std::str::from_utf8(&body).expect("utf8");
                let _ = model.censor(text);
                vm2.cpu_work(per_doc).await;
            }
            let receipts = got.into_iter().map(|m| m.receipt).collect();
            queue.delete_batch(&host, receipts).await.expect("delete");
            hist.record_duration(sim.now() - t0);
        }
        hist
    });
    vm.terminate();
    let mean = SimDuration::from_secs_f64(hist.mean());
    probe.capture(&cloud);
    (
        Deployment {
            label: "EC2 + SQS",
            mean_batch_latency: mean,
            batches: hist.count(),
        },
        mean,
    )
}

/// Deployment 4: clients message the EC2 server directly (ZeroMQ style).
fn run_ec2_zmq(
    params: &PredictionParams,
    seed: u64,
    probe: &mut ExperimentProbe,
) -> (Deployment, SimDuration) {
    let cloud = Cloud::new(CloudProfile::aws_2018().exact(), seed);
    let server = cloud.ec2.provision_ready("m5.large", 0).expect("m5.large");
    let client = cloud.ec2.provision_ready("m5.large", 0).expect("m5.large");
    let model = DirtyWordModel::synthetic(500);
    let server_sock = cloud.fabric.bind(server.host(), 6000).expect("bind");
    let client_sock = cloud.fabric.bind(client.host(), 6000).expect("bind");
    let server_addr = server_sock.addr();
    let per_doc = params.per_doc_ref_work;
    let server_vm = server.clone();
    cloud.sim.spawn(async move {
        loop {
            let req = server_sock.recv().await;
            let body = req.payload.to_vec();
            let text = std::str::from_utf8(&body).expect("utf8");
            let out = model.censor(text);
            server_vm.cpu_work(per_doc).await;
            server_sock
                .reply(&req, Bytes::from(out.text.into_bytes()))
                .await;
        }
    });
    let sim = cloud.sim.clone();
    let n = params.batches;
    let docs = make_docs(params, seed);
    let hist_cell = Rc::new(RefCell::new(Histogram::new()));
    let hc = hist_cell.clone();
    cloud.sim.block_on(async move {
        for _ in 0..n {
            let t0 = sim.now();
            // Ten acked messages per batch, the paper's ZeroMQ pattern.
            for doc in &docs {
                client_sock
                    .request(server_addr, doc.clone())
                    .await
                    .expect("server reply");
            }
            hc.borrow_mut().record_duration(sim.now() - t0);
        }
    });
    server.terminate();
    client.terminate();
    let hist = hist_cell.borrow();
    let mean = SimDuration::from_secs_f64(hist.mean());
    probe.capture(&cloud);
    (
        Deployment {
            label: "EC2 + ZeroMQ",
            mean_batch_latency: mean,
            batches: hist.count(),
        },
        mean,
    )
}

/// Chaos-hardened variant of the queue-triggered serving pipeline — the
/// flagship of the resilience layer. Under `FaultPlan::hostile` the
/// input queue *duplicates* deliveries and the platform kills handlers
/// mid-batch, so the same document batch can be processed several
/// times. The handler routes every model fetch through a
/// [`CircuitBreaker`](faasim_resilience::CircuitBreaker) (a browned-out
/// model store sheds load instead of retry-storming) and commits each
/// result through an
/// [`IdempotencyStore`](faasim_resilience::IdempotencyStore), so the
/// end-to-end invariant is **exactly-once observable effects under
/// at-least-once delivery**: each batch id has exactly one committed
/// result, and a poison batch lands in the DLQ rather than looping.
pub fn resilient(seed: u64, chaos: &dyn Fn(&Cloud)) -> super::ResilientReport {
    use faasim_faas::FnError;
    use faasim_payload::Payload;
    use faasim_queue::DeadLetterConfig;
    use faasim_resilience::{
        ledger_consistent, message_conservation, queue_conservation, BreakerConfig, BreakerError,
        CircuitBreaker, Deadline, IdempotencyStore, RetryPolicy, RetryingBlob, RetryingQueue,
    };

    const BATCHES: usize = 12;

    let mut report = super::ResilientReport::new();
    let cloud = Cloud::new(CloudProfile::aws_2018().exact(), seed);
    chaos(&cloud);
    cloud.queue.create_queue("dlq", QueueConfig::default());
    cloud.queue.create_queue(
        "in",
        QueueConfig {
            visibility_timeout: SimDuration::from_secs(5),
            dead_letter: Some(DeadLetterConfig {
                queue: "dlq".into(),
                max_receives: 8,
            }),
        },
    );
    cloud.blob.create_bucket("models");
    let policy = RetryPolicy {
        max_attempts: 25,
        ..RetryPolicy::default()
    };
    let rblob = RetryingBlob::new(
        &cloud.sim,
        &cloud.blob,
        cloud.recorder.clone(),
        policy.clone(),
        "resil.pred.blob",
    );
    {
        let blob = rblob.clone();
        let host = cloud.client_host();
        if let Err(e) = cloud.sim.block_on(async move {
            blob.put_payload(&host, "models", "blacklist", Payload::zeros(100_000))
                .await
        }) {
            report.violation(format!("prediction: upload model: {e}"));
        }
    }
    let idem = IdempotencyStore::new(
        &cloud.sim,
        &cloud.kv,
        cloud.recorder.clone(),
        "effects",
        policy.clone(),
        "resil.pred.idem",
    );
    let breaker = CircuitBreaker::new(
        &cloud.sim,
        cloud.recorder.clone(),
        "model-store",
        BreakerConfig::default(),
    );

    let idem_h = idem.clone();
    let blob = rblob.clone();
    let brk = breaker.clone();
    let per_doc = SimDuration::from_micros(20);
    cloud.faas.register(FunctionSpec::new(
        "classify",
        1_024,
        SimDuration::from_secs(60),
        move |ctx, payload| {
            let idem = idem_h.clone();
            let blob = blob.clone();
            let brk = brk.clone();
            async move {
                let bodies = decode_batch(&payload)
                    .ok_or_else(|| FnError::Handler("malformed batch".into()))?;
                // The model fetch goes through the breaker: a shed or
                // failed fetch fails the whole invocation, so the
                // trigger leaves the batch to be redelivered.
                match brk
                    .call(|_: &_| true, blob.get(ctx.host(), "models", "blacklist"))
                    .await
                {
                    Ok(_) => {}
                    Err(BreakerError::Open { .. }) => {
                        return Err(FnError::Handler("model store breaker open".into()))
                    }
                    Err(BreakerError::Inner(e)) => {
                        return Err(FnError::Handler(format!("model fetch: {e}")))
                    }
                }
                for body in &bodies {
                    let key = String::from_utf8_lossy(&body.to_vec()).into_owned();
                    ctx.cpu(per_doc).await;
                    let host = ctx.host().clone();
                    let value = Payload::inline(format!("censored:{key}"));
                    if let Err(e) = idem.execute(&host, &key, || async move { value }).await {
                        return Err(FnError::Handler(format!("commit {key}: {e}")));
                    }
                }
                Ok(Bytes::new())
            }
        },
    ));
    let trigger = add_queue_trigger(&cloud.faas, &cloud.queue, &cloud.fabric, "classify", "in", 10);

    let rqueue = RetryingQueue::new(
        &cloud.sim,
        &cloud.queue,
        cloud.recorder.clone(),
        policy.clone(),
        "resil.pred.queue",
    );
    let producer = cloud.client_host();
    {
        let q = rqueue.clone();
        let host = producer.clone();
        let sim = cloud.sim.clone();
        let mut failures = Vec::new();
        cloud
            .sim
            .block_on(async move {
                for i in 0..BATCHES {
                    let deadline = Deadline::within(&sim, SimDuration::from_secs(60));
                    let body = Payload::inline(format!("batch-{i:04}"));
                    if let Err(e) = q.send(&host, "in", &body, deadline).await {
                        failures.push(format!("send batch-{i:04}: {e}"));
                    }
                }
                failures
            })
            .into_iter()
            .for_each(|f| report.violation(format!("prediction: {f}")));
    }

    let sim = cloud.sim.clone();
    let idem2 = idem.clone();
    let host = producer.clone();
    let stuck = cloud.sim.block_on(async move {
        let deadline = Deadline::within(&sim, SimDuration::from_secs(1_800));
        loop {
            if let Ok(n) = idem2.committed_count(&host, "batch-").await {
                if n >= BATCHES {
                    return None;
                }
            }
            if deadline.is_expired(&sim) {
                let n = idem2.committed_count(&host, "batch-").await.unwrap_or(0);
                return Some(format!("{n}/{BATCHES} batches committed within budget"));
            }
            sim.sleep(SimDuration::from_millis(200)).await;
        }
    });
    if let Some(v) = stuck {
        report.violation(format!("prediction: {v}"));
    }
    trigger.stop();
    cloud.sim.run();

    // Exactly-once: every batch id committed exactly one result.
    let idem3 = idem.clone();
    let host = producer.clone();
    let committed = cloud
        .sim
        .block_on(async move { idem3.committed(&host, "batch-").await })
        .map(|items| items.len())
        .unwrap_or(0);
    report.check(committed == BATCHES, || {
        format!("prediction: {committed} committed effects for {BATCHES} batches")
    });
    cloud.sim.run();
    if let Some(v) = message_conservation(&cloud.recorder) {
        report.violation(format!("prediction: {v}"));
    }
    if let Some(v) = queue_conservation(&cloud.recorder, &cloud.queue) {
        report.violation(format!("prediction: {v}"));
    }
    if let Some(v) = ledger_consistent(&cloud.ledger) {
        report.violation(format!("prediction: {v}"));
    }
    report.probe.capture(&cloud);
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_run_reproduces_case_study_shape() {
        let r = run(&PredictionParams::quick(), 42);
        let l_s3 = r.latency_of("Lambda + S3 model").as_secs_f64() * 1e3;
        let l_opt = r
            .latency_of("Lambda optimized (model baked in, SQS out)")
            .as_secs_f64()
            * 1e3;
        let e_sqs = r.latency_of("EC2 + SQS").as_secs_f64() * 1e3;
        let e_zmq = r.latency_of("EC2 + ZeroMQ").as_secs_f64() * 1e3;
        // Paper: 559 / 447 / 13 / 2.8 ms.
        assert!((l_s3 - 559.0).abs() < 30.0, "lambda+s3 {l_s3} ms");
        assert!((l_opt - 447.0).abs() < 25.0, "lambda opt {l_opt} ms");
        assert!((e_sqs - 13.0).abs() < 2.0, "ec2+sqs {e_sqs} ms");
        assert!((e_zmq - 2.8).abs() < 0.9, "ec2+zmq {e_zmq} ms");
        // Orderings and headline ratios (27x, 127x).
        let r27 = l_opt / e_sqs;
        assert!((20.0..40.0).contains(&r27), "27x ratio got {r27}");
        let r127 = l_opt / e_zmq;
        assert!((90.0..190.0).contains(&r127), "127x ratio got {r127}");
        // Cost extrapolation: $1,584/hr vs ~$27.84/hr (57x).
        assert!((r.sqs_hourly_at_rate - 1584.0).abs() < 1.0);
        assert!(
            (40.0..80.0).contains(&r.cost_ratio()),
            "cost ratio {}",
            r.cost_ratio()
        );
        let rendered = r.render();
        assert!(rendered.contains("EC2 + ZeroMQ"));
    }
}
