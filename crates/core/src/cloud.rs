//! Cloud composition: one struct wiring every simulated service together,
//! configured by a single [`CloudProfile`].

use std::rc::Rc;

use faasim_blob::{BlobProfile, BlobStore};
use faasim_compute::{Ec2, Ec2Profile};
use faasim_faas::{FaasPlatform, FaasProfile};
use faasim_kv::{KvProfile, KvStore};
use faasim_net::{Fabric, Host, NetProfile, NicConfig};
use faasim_pricing::{Ledger, PriceBook};
use faasim_query::{QueryProfile, QueryService};
use faasim_queue::{QueueProfile, QueueService};
use faasim_simcore::{mbps, Recorder, Sim};

/// Every calibrated constant in one place. See DESIGN.md §5 for the
/// provenance of each number.
#[derive(Clone, Debug)]
pub struct CloudProfile {
    /// Network latency tiers.
    pub net: NetProfile,
    /// Object-store behaviour.
    pub blob: BlobProfile,
    /// KV-store behaviour.
    pub kv: KvProfile,
    /// Queue behaviour.
    pub queue: QueueProfile,
    /// Serverful control plane.
    pub ec2: Ec2Profile,
    /// FaaS platform.
    pub faas: FaasProfile,
    /// Autoscaling query service.
    pub query: QueryProfile,
    /// List prices.
    pub prices: PriceBook,
}

impl CloudProfile {
    /// The Fall-2018 AWS calibration used throughout the reproduction.
    pub fn aws_2018() -> CloudProfile {
        CloudProfile {
            net: NetProfile::aws_2018(),
            blob: BlobProfile::aws_2018(),
            kv: KvProfile::aws_2018(),
            queue: QueueProfile::aws_2018(),
            ec2: Ec2Profile::aws_2018(),
            faas: FaasProfile::aws_2018(),
            query: QueryProfile::aws_2018(),
            prices: PriceBook::aws_2018(),
        }
    }

    /// Collapse every latency distribution to its mean — used by the
    /// table-regenerating harnesses so the printed numbers match the
    /// calibration targets exactly.
    pub fn exact(mut self) -> CloudProfile {
        self.net = self.net.exact();
        self.blob = self.blob.exact();
        self.kv = self.kv.exact();
        self.queue = self.queue.exact();
        self.ec2 = self.ec2.exact();
        self.faas = self.faas.exact();
        self.query = self.query.exact();
        self
    }

    /// The Firecracker cold-start ablation (paper footnote 5).
    pub fn firecracker(mut self) -> CloudProfile {
        self.faas = self.faas.firecracker();
        self
    }
}

/// The composed cloud: one simulation, one fabric, every service, one
/// bill.
pub struct Cloud {
    /// The simulation kernel.
    pub sim: Sim,
    /// The datacenter network.
    pub fabric: Fabric,
    /// S3-like object store.
    pub blob: BlobStore,
    /// DynamoDB-like table service.
    pub kv: KvStore,
    /// SQS-like queue service.
    pub queue: QueueService,
    /// EC2-like serverful compute.
    pub ec2: Ec2,
    /// Lambda-like FaaS platform.
    pub faas: FaasPlatform,
    /// Athena-like autoscaling query service.
    pub query: QueryService,
    /// The shared bill.
    pub ledger: Ledger,
    /// The shared metrics registry.
    pub recorder: Recorder,
    /// Shared price book.
    pub prices: Rc<PriceBook>,
}

impl Cloud {
    /// Build a cloud from `profile`, deterministic in `seed`.
    pub fn new(profile: CloudProfile, seed: u64) -> Cloud {
        let sim = Sim::new(seed);
        let recorder = Recorder::new();
        let ledger = Ledger::new();
        let prices = Rc::new(profile.prices.clone());
        let fabric = Fabric::new(&sim, profile.net.clone(), recorder.clone());
        let blob = BlobStore::new(
            &sim,
            profile.blob.clone(),
            prices.clone(),
            ledger.clone(),
            recorder.clone(),
        );
        let kv = KvStore::new(
            &sim,
            profile.kv.clone(),
            prices.clone(),
            ledger.clone(),
            recorder.clone(),
        );
        let queue = QueueService::new(
            &sim,
            profile.queue.clone(),
            prices.clone(),
            ledger.clone(),
            recorder.clone(),
        );
        let ec2 = Ec2::new(
            &sim,
            &fabric,
            profile.ec2.clone(),
            prices.clone(),
            ledger.clone(),
            recorder.clone(),
        );
        let faas = FaasPlatform::new(
            &sim,
            &fabric,
            profile.faas.clone(),
            prices.clone(),
            ledger.clone(),
            recorder.clone(),
        );
        let query = QueryService::new(
            &sim,
            &fabric,
            &blob,
            profile.query.clone(),
            prices.clone(),
            ledger.clone(),
            recorder.clone(),
        );
        Cloud {
            sim,
            fabric,
            blob,
            kv,
            queue,
            ec2,
            faas,
            query,
            ledger,
            recorder,
            prices,
        }
    }

    /// A well-connected client host (e.g. the experiment driver's
    /// machine), not subject to Lambda NIC packing.
    pub fn client_host(&self) -> Host {
        self.fabric.add_host(0, NicConfig::simple(mbps(10_000.0)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;

    #[test]
    fn cloud_wires_services_over_one_ledger() {
        let cloud = Cloud::new(CloudProfile::aws_2018().exact(), 1);
        cloud.blob.create_bucket("b");
        let host = cloud.client_host();
        let blob = cloud.blob.clone();
        cloud.sim.block_on(async move {
            blob.put(&host, "b", "k", Bytes::from_static(b"x"))
                .await
                .unwrap();
        });
        assert!(cloud.ledger.total() > 0.0);
        assert_eq!(cloud.recorder.counter("blob.put"), 1);
    }

    #[test]
    fn profiles_compose() {
        let p = CloudProfile::aws_2018().exact().firecracker();
        assert_eq!(
            p.faas.cold_start_extra.mean(),
            faasim_simcore::SimDuration::from_micros(125_000)
        );
    }
}
