//! # faasim-compute
//!
//! EC2-like serverful compute: an instance-type catalog, provisioning with
//! boot delay, per-core CPU scheduling, EBS-like attached volumes, and
//! per-second billing with a one-minute minimum — the baseline the paper
//! compares Lambda against in every case study.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

use std::cell::{Cell, RefCell};
use std::fmt;
use std::rc::Rc;

use faasim_net::{Fabric, Host, NicConfig, RackId};
use faasim_pricing::{Ledger, PriceBook, Service};
use faasim_simcore::{
    gbps, mbps, Bps, FairShareLink, LatencyModel, Recorder, SemPermit, Semaphore, Sim,
    SimDuration, SimTime,
};

/// Static description of an instance type.
#[derive(Clone, Debug)]
pub struct InstanceType {
    /// Type name, e.g. `"m4.large"`.
    pub name: &'static str,
    /// Number of vCPUs.
    pub vcpus: u32,
    /// Memory in MB.
    pub mem_mb: u64,
    /// NIC sizing.
    pub nic: NicConfig,
    /// Attached-volume read bandwidth, bits/second.
    pub ebs_read_bandwidth: Bps,
    /// Attached-volume write bandwidth, bits/second.
    pub ebs_write_bandwidth: Bps,
    /// Per-core speed relative to the reference core (an m4.large core).
    pub cpu_speed: f64,
}

/// The instance types the experiments use.
///
/// EBS read bandwidth on `m4.large` is calibrated to the paper's §3.1
/// training case (100 MB batch from EBS in 0.04 s ⇒ 2.5 GB/s), which is
/// generous for gp2 but is what the authors measured (likely page cache);
/// we keep their number, since our goal is their ratio.
pub fn instance_catalog() -> Vec<InstanceType> {
    vec![
        InstanceType {
            name: "m4.large",
            vcpus: 2,
            mem_mb: 8 * 1024,
            nic: NicConfig::simple(mbps(450.0)),
            ebs_read_bandwidth: gbps(20.0),
            ebs_write_bandwidth: gbps(2.0),
            cpu_speed: 1.0,
        },
        InstanceType {
            name: "m5.large",
            vcpus: 2,
            mem_mb: 8 * 1024,
            nic: NicConfig::simple(gbps(10.0)),
            ebs_read_bandwidth: gbps(20.0),
            ebs_write_bandwidth: gbps(4.0),
            cpu_speed: 1.1,
        },
        InstanceType {
            name: "m5.xlarge",
            vcpus: 4,
            mem_mb: 16 * 1024,
            nic: NicConfig::simple(gbps(10.0)),
            ebs_read_bandwidth: gbps(20.0),
            ebs_write_bandwidth: gbps(4.0),
            cpu_speed: 1.1,
        },
        InstanceType {
            name: "c5.large",
            vcpus: 2,
            mem_mb: 4 * 1024,
            nic: NicConfig::simple(gbps(10.0)),
            ebs_read_bandwidth: gbps(20.0),
            ebs_write_bandwidth: gbps(4.0),
            cpu_speed: 1.25,
        },
    ]
}

/// Look up an instance type by name.
pub fn instance_type(name: &str) -> Option<InstanceType> {
    instance_catalog().into_iter().find(|t| t.name == name)
}

/// EC2 control-plane configuration.
#[derive(Clone, Debug)]
pub struct Ec2Profile {
    /// Time from provisioning request to a usable VM.
    pub provisioning_delay: LatencyModel,
}

impl Ec2Profile {
    /// ~90 s boot, the 2018-era experience the paper contrasts with
    /// autoscaling.
    pub fn aws_2018() -> Ec2Profile {
        Ec2Profile {
            provisioning_delay: LatencyModel::LogNormal {
                mean: SimDuration::from_secs(90),
                cv: 0.2,
                floor: SimDuration::from_secs(30),
            },
        }
    }

    /// Constant means for exact reproduction.
    pub fn exact(mut self) -> Ec2Profile {
        self.provisioning_delay = self.provisioning_delay.to_constant();
        self
    }
}

/// Errors from the EC2 control plane.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Ec2Error {
    /// Unknown instance type.
    UnknownInstanceType(String),
}

impl fmt::Display for Ec2Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Ec2Error::UnknownInstanceType(t) => write!(f, "unknown instance type: {t}"),
        }
    }
}

impl std::error::Error for Ec2Error {}

struct Ec2State {
    running: Vec<Vm>,
}

/// The EC2-like control plane. Cheap to clone.
#[derive(Clone)]
pub struct Ec2 {
    sim: Sim,
    fabric: Fabric,
    profile: Rc<Ec2Profile>,
    prices: Rc<PriceBook>,
    ledger: Ledger,
    recorder: Recorder,
    state: Rc<RefCell<Ec2State>>,
}

impl Ec2 {
    /// Create the control plane.
    pub fn new(
        sim: &Sim,
        fabric: &Fabric,
        profile: Ec2Profile,
        prices: Rc<PriceBook>,
        ledger: Ledger,
        recorder: Recorder,
    ) -> Ec2 {
        Ec2 {
            sim: sim.clone(),
            fabric: fabric.clone(),
            profile: Rc::new(profile),
            prices,
            ledger,
            recorder,
            state: Rc::new(RefCell::new(Ec2State { running: Vec::new() })),
        }
    }

    /// Provision a VM of `type_name` in `rack`, waiting out the boot delay.
    pub async fn provision(&self, type_name: &str, rack: RackId) -> Result<Vm, Ec2Error> {
        let itype = instance_type(type_name)
            .ok_or_else(|| Ec2Error::UnknownInstanceType(type_name.to_owned()))?;
        // Validate pricing up front so experiments fail fast.
        let hourly = self.prices.ec2_hourly(itype.name);
        let delay = {
            let mut rng = self.sim.rng(&format!("ec2.boot.{}", self.state.borrow().running.len()));
            self.profile.provisioning_delay.sample(&mut rng)
        };
        self.sim.sleep(delay).await;
        let host = self.fabric.add_host(rack, itype.nic);
        let vm = Vm {
            inner: Rc::new(VmInner {
                sim: self.sim.clone(),
                host,
                itype: itype.clone(),
                hourly,
                started_at: self.sim.now(),
                terminated_at: Cell::new(None),
                cpu: Semaphore::new(itype.vcpus as usize),
                ebs_read: FairShareLink::new(&self.sim, itype.ebs_read_bandwidth),
                ebs_write: FairShareLink::new(&self.sim, itype.ebs_write_bandwidth),
                ledger: self.ledger.clone(),
            }),
        };
        self.state.borrow_mut().running.push(vm.clone());
        self.recorder.incr("ec2.provisioned");
        Ok(vm)
    }

    /// Provision without boot delay — for experiments that start "with the
    /// fleet already up" (the paper's EC2 baselines are steady-state).
    pub fn provision_ready(&self, type_name: &str, rack: RackId) -> Result<Vm, Ec2Error> {
        let itype = instance_type(type_name)
            .ok_or_else(|| Ec2Error::UnknownInstanceType(type_name.to_owned()))?;
        let hourly = self.prices.ec2_hourly(itype.name);
        let host = self.fabric.add_host(rack, itype.nic);
        let vm = Vm {
            inner: Rc::new(VmInner {
                sim: self.sim.clone(),
                host,
                itype: itype.clone(),
                hourly,
                started_at: self.sim.now(),
                terminated_at: Cell::new(None),
                cpu: Semaphore::new(itype.vcpus as usize),
                ebs_read: FairShareLink::new(&self.sim, itype.ebs_read_bandwidth),
                ebs_write: FairShareLink::new(&self.sim, itype.ebs_write_bandwidth),
                ledger: self.ledger.clone(),
            }),
        };
        self.state.borrow_mut().running.push(vm.clone());
        self.recorder.incr("ec2.provisioned");
        Ok(vm)
    }

    /// Number of VMs provisioned and not yet terminated.
    pub fn running_count(&self) -> usize {
        self.state
            .borrow()
            .running
            .iter()
            .filter(|vm| !vm.is_terminated())
            .count()
    }

    /// Charge every still-running VM for its uptime so far and mark it
    /// terminated. Call at the end of an experiment so the ledger reflects
    /// serverful costs.
    pub fn terminate_all(&self) {
        let vms: Vec<Vm> = self.state.borrow().running.clone();
        for vm in vms {
            vm.terminate();
        }
    }
}

struct VmInner {
    sim: Sim,
    host: Host,
    itype: InstanceType,
    hourly: f64,
    started_at: SimTime,
    terminated_at: Cell<Option<SimTime>>,
    cpu: Semaphore,
    ebs_read: FairShareLink,
    ebs_write: FairShareLink,
    ledger: Ledger,
}

/// A running (or terminated) VM. Cheap to clone.
#[derive(Clone)]
pub struct Vm {
    inner: Rc<VmInner>,
}

impl fmt::Debug for Vm {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Vm")
            .field("type", &self.inner.itype.name)
            .field("host", &self.inner.host.id())
            .finish()
    }
}

impl Vm {
    /// The network identity of this VM.
    pub fn host(&self) -> &Host {
        &self.inner.host
    }

    /// This VM's instance type.
    pub fn instance_type(&self) -> &InstanceType {
        &self.inner.itype
    }

    /// Occupy one vCPU for `reference_secs` of reference-core work.
    /// Queues behind other work when all vCPUs are busy.
    pub async fn cpu_work(&self, reference_work: SimDuration) {
        let _core: SemPermit = self.inner.cpu.acquire(1).await;
        let scaled = reference_work.mul_f64(1.0 / self.inner.itype.cpu_speed);
        self.inner.sim.sleep(scaled).await;
    }

    /// Run `reference_work` across up to all vCPUs (perfectly parallel
    /// portion of a job).
    pub async fn cpu_work_parallel(&self, reference_work: SimDuration) {
        let n = self.inner.itype.vcpus as u64;
        let _cores: SemPermit = self.inner.cpu.acquire(n as usize).await;
        let scaled = reference_work.mul_f64(1.0 / (self.inner.itype.cpu_speed * n as f64));
        self.inner.sim.sleep(scaled).await;
    }

    /// Read `bytes` from the attached volume (shared fairly with other
    /// concurrent volume reads on this VM).
    pub async fn ebs_read(&self, bytes: u64) {
        self.inner.ebs_read.transfer(bytes, None).await;
    }

    /// Write `bytes` to the attached volume.
    pub async fn ebs_write(&self, bytes: u64) {
        self.inner.ebs_write.transfer(bytes, None).await;
    }

    /// Volume reads currently in flight on this VM. O(1): the link keeps
    /// a live counter, so polling this on a hot path costs nothing.
    pub fn ebs_reads_in_flight(&self) -> usize {
        self.inner.ebs_read.active_flows()
    }

    /// Volume writes currently in flight on this VM. O(1).
    pub fn ebs_writes_in_flight(&self) -> usize {
        self.inner.ebs_write.active_flows()
    }

    /// Bandwidth a new volume read would get right now, bits/sec — the
    /// calibrated EBS read bandwidth divided across concurrent readers.
    /// O(1).
    pub fn ebs_read_share_estimate(&self) -> Bps {
        self.inner.ebs_read.fair_share_estimate()
    }

    /// Uptime so far (or total uptime if terminated).
    pub fn uptime(&self) -> SimDuration {
        let end = self
            .inner
            .terminated_at
            .get()
            .unwrap_or_else(|| self.inner.sim.now());
        end.duration_since(self.inner.started_at)
    }

    /// True once [`Vm::terminate`] has been called.
    pub fn is_terminated(&self) -> bool {
        self.inner.terminated_at.get().is_some()
    }

    /// Stop the VM and charge per-second billing with a 60 s minimum.
    /// Idempotent.
    pub fn terminate(&self) {
        if self.is_terminated() {
            return;
        }
        let now = self.inner.sim.now();
        self.inner.terminated_at.set(Some(now));
        let billed_secs = self.uptime().as_secs_f64().max(60.0);
        let dollars = self.inner.hourly * billed_secs / 3600.0;
        self.inner.ledger.charge(
            Service::Compute,
            &format!("{}-hours", self.inner.itype.name),
            billed_secs / 3600.0,
            dollars,
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use faasim_net::NetProfile;

    fn setup() -> (Sim, Ec2, Ledger) {
        let sim = Sim::new(31);
        let recorder = Recorder::new();
        let fabric = Fabric::new(&sim, NetProfile::aws_2018().exact(), recorder.clone());
        let ledger = Ledger::new();
        let ec2 = Ec2::new(
            &sim,
            &fabric,
            Ec2Profile::aws_2018().exact(),
            Rc::new(PriceBook::aws_2018()),
            ledger.clone(),
            recorder,
        );
        (sim, ec2, ledger)
    }

    #[test]
    fn catalog_contains_papers_instances() {
        assert!(instance_type("m4.large").is_some());
        assert!(instance_type("m5.large").is_some());
        assert!(instance_type("x1e.32xlarge").is_none());
        let m4 = instance_type("m4.large").unwrap();
        assert_eq!(m4.vcpus, 2);
        assert_eq!(m4.mem_mb, 8 * 1024);
    }

    #[test]
    fn provisioning_pays_boot_delay() {
        let (sim, ec2, _) = setup();
        let vm = sim.block_on(async move { ec2.provision("m4.large", 0).await.unwrap() });
        assert_eq!(sim.now(), SimTime::ZERO + SimDuration::from_secs(90));
        assert!(!vm.is_terminated());
    }

    #[test]
    fn provision_ready_is_instant() {
        let (sim, ec2, _) = setup();
        let _vm = ec2.provision_ready("m5.large", 0).unwrap();
        assert_eq!(sim.now(), SimTime::ZERO);
        assert_eq!(ec2.running_count(), 1);
    }

    #[test]
    fn unknown_type_rejected() {
        let (sim, ec2, _) = setup();
        let err = sim.block_on(async move { ec2.provision("quantum.large", 0).await });
        assert!(matches!(err, Err(Ec2Error::UnknownInstanceType(_))));
    }

    #[test]
    fn cpu_work_scales_with_speed_and_queues() {
        let (sim, ec2, _) = setup();
        let vm = ec2.provision_ready("m4.large", 0).unwrap(); // 2 vCPUs, speed 1.0
        // 3 jobs of 10 s on 2 cores: two run, one queues => 20 s total.
        for _ in 0..3 {
            let vm = vm.clone();
            sim.spawn(async move { vm.cpu_work(SimDuration::from_secs(10)).await });
        }
        sim.run();
        assert_eq!(sim.now().as_nanos(), 20_000_000_000);
    }

    #[test]
    fn faster_core_finishes_sooner() {
        let (sim, ec2, _) = setup();
        let vm = ec2.provision_ready("c5.large", 0).unwrap(); // speed 1.25
        let vm2 = vm.clone();
        sim.block_on(async move { vm2.cpu_work(SimDuration::from_secs(10)).await });
        assert_eq!(sim.now().as_nanos(), 8_000_000_000);
    }

    #[test]
    fn parallel_work_uses_all_cores() {
        let (sim, ec2, _) = setup();
        let vm = ec2.provision_ready("m4.large", 0).unwrap(); // 2 cores
        let vm2 = vm.clone();
        sim.block_on(async move { vm2.cpu_work_parallel(SimDuration::from_secs(10)).await });
        assert_eq!(sim.now().as_nanos(), 5_000_000_000);
    }

    #[test]
    fn ebs_read_hits_calibrated_bandwidth() {
        // §3.1: 100 MB from the volume in 0.04 s.
        let (sim, ec2, _) = setup();
        let vm = ec2.provision_ready("m4.large", 0).unwrap();
        let vm2 = vm.clone();
        sim.block_on(async move { vm2.ebs_read(100_000_000).await });
        let s = sim.now().as_secs_f64();
        assert!((s - 0.04).abs() < 1e-3, "read took {s}");
    }

    #[test]
    fn ebs_contention_probes_are_live() {
        let (sim, ec2, _) = setup();
        let vm = ec2.provision_ready("m4.large", 0).unwrap();
        let read_bw = vm.instance_type().ebs_read_bandwidth;
        assert_eq!(vm.ebs_reads_in_flight(), 0);
        assert!((vm.ebs_read_share_estimate() - read_bw).abs() < 1.0);
        for _ in 0..4 {
            let v = vm.clone();
            sim.spawn(async move { v.ebs_read(100_000_000).await });
        }
        let v = vm.clone();
        sim.spawn(async move { v.ebs_write(10_000_000).await });
        let probe = vm.clone();
        let s = sim.clone();
        sim.spawn(async move {
            s.sleep(SimDuration::from_millis(1)).await;
            assert_eq!(probe.ebs_reads_in_flight(), 4);
            assert_eq!(probe.ebs_writes_in_flight(), 1);
            // A fifth reader would get a 1/5 share.
            let est = probe.ebs_read_share_estimate();
            assert!((est - read_bw / 5.0).abs() < 1.0, "estimate {est}");
        });
        sim.run();
        assert_eq!(vm.ebs_reads_in_flight(), 0);
        assert_eq!(vm.ebs_writes_in_flight(), 0);
    }

    #[test]
    fn billing_per_second_with_minimum() {
        let (sim, ec2, ledger) = setup();
        let vm = ec2.provision_ready("m4.large", 0).unwrap();
        let s = sim.clone();
        let vm2 = vm.clone();
        sim.block_on(async move {
            s.sleep(SimDuration::from_secs(1300)).await;
            vm2.terminate();
        });
        // $0.10/hr * 1300 s = $0.0361 (the paper's ≈$0.04 EC2 training).
        let total = ledger.total_for(Service::Compute);
        assert!((total - 0.10 * 1300.0 / 3600.0).abs() < 1e-9, "{total}");
        // Terminate is idempotent.
        vm.terminate();
        assert!((ledger.total_for(Service::Compute) - total).abs() < 1e-12);
    }

    #[test]
    fn sub_minute_uptime_bills_one_minute() {
        let (sim, ec2, ledger) = setup();
        let vm = ec2.provision_ready("m5.large", 0).unwrap();
        let s = sim.clone();
        sim.block_on(async move {
            s.sleep(SimDuration::from_secs(10)).await;
            vm.terminate();
        });
        let total = ledger.total_for(Service::Compute);
        assert!((total - 0.096 * 60.0 / 3600.0).abs() < 1e-9, "{total}");
    }

    #[test]
    fn terminate_all_charges_fleet() {
        let (sim, ec2, ledger) = setup();
        for _ in 0..290 {
            ec2.provision_ready("m5.large", 0).unwrap();
        }
        let s = sim.clone();
        let ec2b = ec2.clone();
        sim.block_on(async move {
            s.sleep(SimDuration::from_hours(1)).await;
            ec2b.terminate_all();
        });
        // §3.1 CS-2: 290 m5.large for an hour = $27.84.
        let total = ledger.total_for(Service::Compute);
        assert!((total - 27.84).abs() < 0.01, "{total}");
        assert_eq!(ec2.running_count(), 0);
    }
}
