//! # faasim-payload
//!
//! The **symbolic payload data plane**: a drop-in replacement for raw
//! [`Bytes`] bodies that carries payload *metadata* on the hot path and
//! only materializes bytes when content actually matters.
//!
//! The simulated cloud times transfers, meters NICs, and bills storage
//! purely off `len()` — so a 20 GB log file does not need 20 GB of RAM
//! or a 20 GB memcpy to be simulated faithfully. A [`Payload`] is one
//! of:
//!
//! - [`Payload::inline`] — real bytes, byte-for-byte what was written;
//! - [`Payload::synthetic`] — `pattern` repeated `repeats` times,
//!   stored in O(|pattern|) regardless of total length;
//! - a concatenation of the above (produced by [`Payload::concat`] and
//!   [`Payload::slice`], which stay O(1) in the total length).
//!
//! Content-dependent consumers either materialize ([`Payload::bytes`],
//! [`Payload::to_vec`]) or — for the aggregation kernels the paper's
//! data-shipping ablation runs — use the **analytic fast paths**
//! ([`Payload::line_count`], [`Payload::for_each_line_run`]) that
//! compute per-pattern results once and multiply by `repeats`. The
//! differential tests in this crate pin the equivalence: every kernel
//! answer equals a naive scan of the fully materialized bytes.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

use std::fmt;
use std::ops::{Bound, RangeBounds};
use std::sync::Arc;

pub use bytes::Bytes;

/// A cheaply cloneable payload: inline bytes, a synthetic repetition,
/// or a concatenation of payloads. See the crate docs.
#[derive(Clone)]
pub struct Payload {
    repr: Repr,
}

#[derive(Clone)]
enum Repr {
    /// Real bytes.
    Inline(Bytes),
    /// `pattern` repeated `repeats` times; `pattern` is non-empty and
    /// `repeats >= 2` (lesser cases normalize to `Inline`).
    Synthetic { pattern: Bytes, repeats: u64 },
    /// Concatenation of non-empty parts (none of which is a `Concat`);
    /// at least two parts (lesser cases normalize away).
    Concat { parts: Arc<Vec<Payload>>, len: u64 },
}

impl Payload {
    /// The empty payload.
    pub fn new() -> Payload {
        Payload {
            repr: Repr::Inline(Bytes::new()),
        }
    }

    /// A payload of real bytes.
    pub fn inline(data: impl Into<Bytes>) -> Payload {
        Payload {
            repr: Repr::Inline(data.into()),
        }
    }

    /// A payload of a static byte string.
    pub fn from_static(data: &'static [u8]) -> Payload {
        Payload::inline(Bytes::from_static(data))
    }

    /// `pattern` repeated `repeats` times, stored in O(|pattern|).
    /// An empty pattern or zero repeats is the empty payload.
    pub fn synthetic(pattern: impl Into<Bytes>, repeats: u64) -> Payload {
        let pattern = pattern.into();
        if pattern.is_empty() || repeats == 0 {
            return Payload::new();
        }
        if repeats == 1 {
            return Payload::inline(pattern);
        }
        assert!(
            (pattern.len() as u128) * (repeats as u128) <= u64::MAX as u128,
            "synthetic payload length overflows u64"
        );
        Payload {
            repr: Repr::Synthetic { pattern, repeats },
        }
    }

    /// `len` zero bytes in O(1) memory (a synthetic all-zero pattern).
    pub fn zeros(len: usize) -> Payload {
        const CHUNK: usize = 64 * 1024;
        if len == 0 {
            return Payload::new();
        }
        let chunk = len.min(CHUNK);
        let pattern = Bytes::from(vec![0u8; chunk]);
        let (reps, rem) = (len / chunk, len % chunk);
        let mut parts = vec![Payload::synthetic(pattern.clone(), reps as u64)];
        if rem > 0 {
            parts.push(Payload::inline(pattern.slice(0..rem)));
        }
        Payload::concat(parts)
    }

    /// Concatenation. O(total parts), never copies the bytes.
    pub fn concat(parts: impl IntoIterator<Item = Payload>) -> Payload {
        let mut flat: Vec<Payload> = Vec::new();
        for p in parts {
            if p.is_empty() {
                continue;
            }
            match p.repr {
                Repr::Concat { parts, .. } => {
                    // Parts of a normalized Concat are themselves
                    // normalized non-Concat payloads.
                    flat.extend(parts.iter().cloned());
                }
                _ => flat.push(p),
            }
        }
        match flat.len() {
            0 => Payload::new(),
            1 => flat.pop().unwrap(),
            _ => {
                let len = flat.iter().map(|p| p.len() as u64).sum();
                Payload {
                    repr: Repr::Concat {
                        parts: Arc::new(flat),
                        len,
                    },
                }
            }
        }
    }

    /// Length in bytes. O(1).
    pub fn len(&self) -> usize {
        match &self.repr {
            Repr::Inline(b) => b.len(),
            Repr::Synthetic { pattern, repeats } => pattern.len() * *repeats as usize,
            Repr::Concat { len, .. } => *len as usize,
        }
    }

    /// True when `len() == 0`. O(1).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The inline bytes, if this payload is fully materialized.
    pub fn inline_bytes(&self) -> Option<&Bytes> {
        match &self.repr {
            Repr::Inline(b) => Some(b),
            _ => None,
        }
    }

    /// Sub-range of the payload, sharing all underlying storage: O(1)
    /// in the byte length (O(parts) for concatenations). Slicing a
    /// synthetic payload yields at most `[partial, synthetic, partial]`.
    pub fn slice(&self, range: impl RangeBounds<usize>) -> Payload {
        let len = self.len();
        let start = match range.start_bound() {
            Bound::Included(&n) => n,
            Bound::Excluded(&n) => n + 1,
            Bound::Unbounded => 0,
        };
        let end = match range.end_bound() {
            Bound::Included(&n) => n + 1,
            Bound::Excluded(&n) => n,
            Bound::Unbounded => len,
        };
        assert!(start <= end && end <= len, "slice range out of bounds");
        if start == end {
            return Payload::new();
        }
        if start == 0 && end == len {
            return self.clone();
        }
        match &self.repr {
            Repr::Inline(b) => Payload::inline(b.slice(start..end)),
            Repr::Synthetic { pattern, repeats: _ } => {
                let plen = pattern.len();
                let first_rep = start / plen;
                let last_rep = (end - 1) / plen;
                if first_rep == last_rep {
                    let off = start - first_rep * plen;
                    return Payload::inline(pattern.slice(off..off + (end - start)));
                }
                let mut parts = Vec::with_capacity(3);
                let head_off = start - first_rep * plen;
                let whole_start = if head_off > 0 {
                    parts.push(Payload::inline(pattern.slice(head_off..plen)));
                    first_rep + 1
                } else {
                    first_rep
                };
                let tail_len = end - last_rep * plen;
                let (whole_end, tail) = if tail_len == plen {
                    (last_rep + 1, None)
                } else {
                    (last_rep, Some(pattern.slice(0..tail_len)))
                };
                if whole_end > whole_start {
                    parts.push(Payload::synthetic(
                        pattern.clone(),
                        (whole_end - whole_start) as u64,
                    ));
                }
                if let Some(t) = tail {
                    parts.push(Payload::inline(t));
                }
                Payload::concat(parts)
            }
            Repr::Concat { parts, .. } => {
                let mut out = Vec::new();
                let mut off = 0usize;
                for p in parts.iter() {
                    let (ps, pe) = (off, off + p.len());
                    if pe > start && ps < end {
                        out.push(p.slice(start.max(ps) - ps..end.min(pe) - ps));
                    }
                    off = pe;
                    if off >= end {
                        break;
                    }
                }
                Payload::concat(out)
            }
        }
    }

    /// Iterate the payload's bytes as contiguous chunks, in order.
    /// A synthetic payload yields its pattern `repeats` times — O(len)
    /// in total; prefer the analytic kernels on hot paths.
    pub fn chunks(&self) -> Chunks<'_> {
        Chunks {
            stack: vec![frame_for(self)],
        }
    }

    /// Materialize to a contiguous buffer. O(len) — only call when the
    /// content itself is needed.
    pub fn to_vec(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.len());
        for c in self.chunks() {
            out.extend_from_slice(c);
        }
        out
    }

    /// Materialize to [`Bytes`]. Free for inline payloads; O(len)
    /// otherwise.
    pub fn bytes(&self) -> Bytes {
        match &self.repr {
            Repr::Inline(b) => b.clone(),
            _ => Bytes::from(self.to_vec()),
        }
    }

    /// Content equality against a byte slice without materializing.
    pub fn eq_bytes(&self, other: &[u8]) -> bool {
        if self.len() != other.len() {
            return false;
        }
        let mut off = 0;
        for c in self.chunks() {
            if other[off..off + c.len()] != *c {
                return false;
            }
            off += c.len();
        }
        true
    }

    /// Visit every non-empty line (maximal `b'\n'`-free run) with its
    /// multiplicity. For synthetic payloads whose pattern contains a
    /// newline this is **analytic**: O(|pattern|) regardless of
    /// `repeats`, with interior lines reported once at multiplicity
    /// `repeats` — so treat the visits as a *multiset*, not a stream
    /// (order is only preserved for fully inline payloads). Lines that
    /// span chunk or repeat boundaries are stitched together exactly as
    /// a scan of the materialized bytes would see them; the
    /// differential tests below pin that equivalence.
    pub fn for_each_line_run(&self, f: &mut dyn FnMut(&[u8], u64)) {
        let mut carry: Vec<u8> = Vec::new();
        self.walk_lines(&mut carry, f);
        if !carry.is_empty() {
            f(&carry, 1);
        }
    }

    fn walk_lines(&self, carry: &mut Vec<u8>, f: &mut dyn FnMut(&[u8], u64)) {
        match &self.repr {
            Repr::Inline(b) => scan_lines(b, carry, f),
            Repr::Synthetic { pattern, repeats } => {
                let Some(first_nl) = pattern.iter().position(|&c| c == b'\n') else {
                    // No newline in the pattern: the whole payload is a
                    // fragment of one line. O(len) — acceptable because
                    // line kernels over non-line data are not a hot path.
                    for _ in 0..*repeats {
                        carry.extend_from_slice(pattern);
                    }
                    return;
                };
                let last_nl = pattern.iter().rposition(|&c| c == b'\n').unwrap();
                // First completed line: carry + head segment.
                carry.extend_from_slice(&pattern[..first_nl]);
                if !carry.is_empty() {
                    f(carry, 1);
                    carry.clear();
                }
                // Interior segments appear once per repeat.
                if last_nl > first_nl {
                    for seg in pattern[first_nl + 1..last_nl].split(|&c| c == b'\n') {
                        if !seg.is_empty() {
                            f(seg, *repeats);
                        }
                    }
                }
                // The repeat boundary joins the tail of one copy to the
                // head of the next: `repeats - 1` such joins.
                if *repeats > 1 {
                    let mut boundary = pattern[last_nl + 1..].to_vec();
                    boundary.extend_from_slice(&pattern[..first_nl]);
                    if !boundary.is_empty() {
                        f(&boundary, *repeats - 1);
                    }
                }
                // Carry out: the unterminated tail of the last copy.
                carry.extend_from_slice(&pattern[last_nl + 1..]);
            }
            Repr::Concat { parts, .. } => {
                for p in parts.iter() {
                    p.walk_lines(carry, f);
                }
            }
        }
    }

    /// Number of non-empty `b'\n'`-separated lines — what
    /// `split(b'\n').filter(non_empty).count()` over the materialized
    /// bytes returns, computed analytically for synthetic payloads.
    pub fn line_count(&self) -> u64 {
        let mut n = 0u64;
        self.for_each_line_run(&mut |_, count| n += count);
        n
    }
}

/// Streaming line kernel over a *sequence* of payload chunks.
///
/// [`Payload::for_each_line_run`] scans one self-contained payload; a
/// streaming consumer (e.g. a query-scan worker fetching an object in
/// ranged reads) instead sees the same bytes as a series of arbitrary
/// chunks, and a line may straddle any chunk boundary. The scanner
/// carries the unterminated tail of each chunk into the next `feed`, so
/// feeding the chunks of a split payload in order visits exactly the
/// line runs `Payload::concat(chunks).for_each_line_run` would — the
/// differential proptests below pin that equivalence. Each chunk keeps
/// its own analytic fast path: a synthetic chunk still costs
/// O(|pattern|), not O(bytes).
#[derive(Default)]
pub struct LineRunScanner {
    carry: Vec<u8>,
}

impl LineRunScanner {
    /// A scanner with an empty carry.
    pub fn new() -> LineRunScanner {
        LineRunScanner::default()
    }

    /// Scan the next chunk, visiting every *completed* non-empty line
    /// with its multiplicity. The trailing unterminated fragment is
    /// retained for the next `feed` (or `finish`).
    pub fn feed(&mut self, chunk: &Payload, f: &mut dyn FnMut(&[u8], u64)) {
        chunk.walk_lines(&mut self.carry, f);
    }

    /// End of the stream: flush the final unterminated line, if any
    /// (matching how a scan of the whole materialized body treats a
    /// missing trailing newline).
    pub fn finish(self, f: &mut dyn FnMut(&[u8], u64)) {
        if !self.carry.is_empty() {
            f(&self.carry, 1);
        }
    }
}

fn scan_lines(b: &[u8], carry: &mut Vec<u8>, f: &mut dyn FnMut(&[u8], u64)) {
    let mut rest = b;
    while let Some(pos) = rest.iter().position(|&c| c == b'\n') {
        if carry.is_empty() {
            if pos > 0 {
                f(&rest[..pos], 1);
            }
        } else {
            carry.extend_from_slice(&rest[..pos]);
            f(carry, 1);
            carry.clear();
        }
        rest = &rest[pos + 1..];
    }
    carry.extend_from_slice(rest);
}

/// Iterator over a payload's contiguous chunks (see [`Payload::chunks`]).
pub struct Chunks<'a> {
    stack: Vec<Frame<'a>>,
}

enum Frame<'a> {
    One(&'a [u8]),
    Synth { pattern: &'a [u8], left: u64 },
    Parts { parts: &'a [Payload], idx: usize },
}

fn frame_for(p: &Payload) -> Frame<'_> {
    match &p.repr {
        Repr::Inline(b) => Frame::One(b),
        Repr::Synthetic { pattern, repeats } => Frame::Synth {
            pattern,
            left: *repeats,
        },
        Repr::Concat { parts, .. } => Frame::Parts { parts, idx: 0 },
    }
}

impl<'a> Iterator for Chunks<'a> {
    type Item = &'a [u8];

    fn next(&mut self) -> Option<&'a [u8]> {
        while let Some(frame) = self.stack.pop() {
            match frame {
                Frame::One(s) => {
                    if !s.is_empty() {
                        return Some(s);
                    }
                }
                Frame::Synth { pattern, left } => {
                    if left > 1 {
                        self.stack.push(Frame::Synth {
                            pattern,
                            left: left - 1,
                        });
                    }
                    if left >= 1 {
                        return Some(pattern);
                    }
                }
                Frame::Parts { parts, idx } => {
                    if idx < parts.len() {
                        self.stack.push(Frame::Parts {
                            parts,
                            idx: idx + 1,
                        });
                        self.stack.push(frame_for(&parts[idx]));
                    }
                }
            }
        }
        None
    }
}

impl Default for Payload {
    fn default() -> Payload {
        Payload::new()
    }
}

impl fmt::Debug for Payload {
    /// Structural summary — never materializes (a synthetic payload can
    /// be tens of GB).
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.repr {
            Repr::Inline(b) if b.len() <= 64 => write!(f, "Payload::inline({:?})", &b[..]),
            Repr::Inline(b) => write!(f, "Payload::inline(len={})", b.len()),
            Repr::Synthetic { pattern, repeats } => write!(
                f,
                "Payload::synthetic(|pattern|={}, repeats={}, len={})",
                pattern.len(),
                repeats,
                self.len()
            ),
            Repr::Concat { parts, len } => {
                write!(f, "Payload::concat({} parts, len={})", parts.len(), len)
            }
        }
    }
}

impl PartialEq for Payload {
    fn eq(&self, other: &Payload) -> bool {
        if self.len() != other.len() {
            return false;
        }
        // Structural fast path: identical synthetic shape.
        if let (
            Repr::Synthetic { pattern: a, repeats: ra },
            Repr::Synthetic { pattern: b, repeats: rb },
        ) = (&self.repr, &other.repr)
        {
            if ra == rb && a == b {
                return true;
            }
        }
        // General path: streaming two-cursor chunk comparison.
        let mut ca = self.chunks();
        let mut cb = other.chunks();
        let (mut xa, mut xb): (&[u8], &[u8]) = (&[], &[]);
        loop {
            if xa.is_empty() {
                xa = match ca.next() {
                    Some(c) => c,
                    None => return true, // equal lengths: cb is spent too
                };
            }
            if xb.is_empty() {
                xb = match cb.next() {
                    Some(c) => c,
                    None => return true,
                };
            }
            let n = xa.len().min(xb.len());
            if xa[..n] != xb[..n] {
                return false;
            }
            xa = &xa[n..];
            xb = &xb[n..];
        }
    }
}

impl Eq for Payload {}

impl PartialEq<[u8]> for Payload {
    fn eq(&self, other: &[u8]) -> bool {
        self.eq_bytes(other)
    }
}

impl PartialEq<&[u8]> for Payload {
    fn eq(&self, other: &&[u8]) -> bool {
        self.eq_bytes(other)
    }
}

impl PartialEq<Vec<u8>> for Payload {
    fn eq(&self, other: &Vec<u8>) -> bool {
        self.eq_bytes(other)
    }
}

impl PartialEq<Bytes> for Payload {
    fn eq(&self, other: &Bytes) -> bool {
        self.eq_bytes(other)
    }
}

impl From<Bytes> for Payload {
    fn from(b: Bytes) -> Payload {
        Payload::inline(b)
    }
}

impl From<Vec<u8>> for Payload {
    fn from(v: Vec<u8>) -> Payload {
        Payload::inline(Bytes::from(v))
    }
}

impl From<&'static [u8]> for Payload {
    fn from(s: &'static [u8]) -> Payload {
        Payload::from_static(s)
    }
}

impl From<&'static str> for Payload {
    fn from(s: &'static str) -> Payload {
        Payload::from_static(s.as_bytes())
    }
}

impl From<String> for Payload {
    fn from(s: String) -> Payload {
        Payload::inline(Bytes::from(s))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn naive_lines(bytes: &[u8]) -> std::collections::BTreeMap<Vec<u8>, u64> {
        let mut out = std::collections::BTreeMap::new();
        for line in bytes.split(|&c| c == b'\n').filter(|l| !l.is_empty()) {
            *out.entry(line.to_vec()).or_insert(0) += 1;
        }
        out
    }

    fn line_multiset(p: &Payload) -> std::collections::BTreeMap<Vec<u8>, u64> {
        let mut out = std::collections::BTreeMap::new();
        p.for_each_line_run(&mut |line, n| {
            *out.entry(line.to_vec()).or_insert(0) += n;
        });
        out
    }

    #[test]
    fn synthetic_len_is_o1_and_content_matches() {
        let p = Payload::synthetic("ab\n", 1_000);
        assert_eq!(p.len(), 3_000);
        assert_eq!(p.to_vec(), "ab\n".repeat(1_000).into_bytes());
        assert!(p.eq_bytes(&"ab\n".repeat(1_000).into_bytes()));
    }

    #[test]
    fn huge_synthetic_is_cheap() {
        // 50 GB in O(|pattern|): len, slice, and line_count all work
        // without materializing.
        let line = "GET /assets/app.js 200\n";
        let reps = 50_000_000_000 / line.len() as u64;
        let p = Payload::synthetic(line, reps);
        assert_eq!(p.len() as u64, reps * line.len() as u64);
        assert_eq!(p.line_count(), reps);
        let s = p.slice(7..p.len() - 11);
        assert_eq!(s.len(), p.len() - 18);
    }

    #[test]
    fn slice_of_synthetic_matches_materialized() {
        let p = Payload::synthetic("abcd", 5); // 20 bytes
        let whole = p.to_vec();
        for start in 0..=20 {
            for end in start..=20 {
                assert_eq!(
                    p.slice(start..end).to_vec(),
                    whole[start..end].to_vec(),
                    "slice {start}..{end}"
                );
            }
        }
    }

    #[test]
    fn concat_and_nested_slices() {
        let p = Payload::concat([
            Payload::from_static(b"head|"),
            Payload::synthetic("xy", 3),
            Payload::from_static(b"|tail"),
        ]);
        assert_eq!(p.to_vec(), b"head|xyxyxy|tail");
        assert_eq!(p.slice(3..13).to_vec(), b"d|xyxyxy|t");
        assert_eq!(p.slice(5..11), Payload::synthetic("xy", 3));
    }

    #[test]
    fn line_count_matches_naive_scan() {
        for (pattern, reps) in [
            ("GET / 200\n", 7u64),
            ("a\nbb\nccc", 4),
            ("\n\n", 3),
            ("no-newline", 5),
            ("trailing\nmid", 6),
            ("x", 1),
        ] {
            let p = Payload::synthetic(pattern, reps);
            let mat = pattern.repeat(reps as usize).into_bytes();
            let naive = mat
                .split(|&c| c == b'\n')
                .filter(|l| !l.is_empty())
                .count() as u64;
            assert_eq!(p.line_count(), naive, "pattern {pattern:?} x{reps}");
            assert_eq!(line_multiset(&p), naive_lines(&mat), "pattern {pattern:?} x{reps}");
        }
    }

    #[test]
    fn line_runs_stitch_across_concat_boundaries() {
        // "ab" + "c\nd" + "e\n" materializes to "abc\nde\n": lines
        // [abc, de] even though no single part contains them.
        let p = Payload::concat([
            Payload::from_static(b"ab"),
            Payload::from_static(b"c\nd"),
            Payload::from_static(b"e\n"),
        ]);
        let mut got = Vec::new();
        p.for_each_line_run(&mut |l, n| got.push((l.to_vec(), n)));
        assert_eq!(got, vec![(b"abc".to_vec(), 1), (b"de".to_vec(), 1)]);
    }

    #[test]
    fn equality_is_content_based() {
        let a = Payload::synthetic("ab", 3);
        let b = Payload::from_static(b"ababab");
        let c = Payload::concat([Payload::from_static(b"aba"), Payload::from_static(b"bab")]);
        assert_eq!(a, b);
        assert_eq!(a, c);
        assert_eq!(b, c);
        assert_ne!(a, Payload::from_static(b"ababaX"));
        assert_ne!(a, Payload::from_static(b"abab"));
        assert!(a.eq_bytes(b"ababab"));
        assert!(a == *b"ababab".as_slice());
    }

    #[test]
    fn zeros_and_empty_normalization() {
        assert!(Payload::new().is_empty());
        assert!(Payload::synthetic("", 9).is_empty());
        assert!(Payload::synthetic("x", 0).is_empty());
        assert!(Payload::concat([]).is_empty());
        let z = Payload::zeros(200_000);
        assert_eq!(z.len(), 200_000);
        assert!(z.chunks().all(|c| c.iter().all(|&b| b == 0)));
        assert_eq!(z.chunks().map(|c| c.len()).sum::<usize>(), 200_000);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    /// A recipe for one payload part plus its materialization.
    #[derive(Clone, Debug)]
    enum Part {
        Inline(Vec<u8>),
        Synthetic(Vec<u8>, u64),
    }

    impl Part {
        fn build(&self) -> Payload {
            match self {
                Part::Inline(v) => Payload::inline(v.clone()),
                Part::Synthetic(p, r) => Payload::synthetic(p.clone(), *r),
            }
        }

        fn materialize(&self) -> Vec<u8> {
            match self {
                Part::Inline(v) => v.clone(),
                Part::Synthetic(p, r) => p.repeat(*r as usize),
            }
        }
    }

    /// Small alphabet with plenty of newlines so line-kernel edge cases
    /// (leading/trailing/repeated separators) occur often.
    fn byte_strategy() -> impl Strategy<Value = u8> {
        (0u8..6).prop_map(|b| *b"a b\nc\n".get(b as usize).unwrap())
    }

    fn part_strategy() -> impl Strategy<Value = Part> {
        prop_oneof![
            prop::collection::vec(byte_strategy(), 0..24).prop_map(Part::Inline),
            (prop::collection::vec(byte_strategy(), 0..10), 0u64..9)
                .prop_map(|(p, r)| Part::Synthetic(p, r)),
        ]
    }

    fn naive_lines(bytes: &[u8]) -> std::collections::BTreeMap<Vec<u8>, u64> {
        let mut out = std::collections::BTreeMap::new();
        for line in bytes.split(|&c| c == b'\n').filter(|l| !l.is_empty()) {
            *out.entry(line.to_vec()).or_insert(0) += 1;
        }
        out
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(256))]

        /// The differential guarantee: any payload built from inline,
        /// synthetic, concat, and slice materializes to exactly the
        /// bytes the analytic kernels claim to have scanned.
        #[test]
        fn kernels_match_materialized_scan(
            parts in prop::collection::vec(part_strategy(), 0..6),
            cut in (0u16..1000, 0u16..1000),
        ) {
            let payload = Payload::concat(parts.iter().map(Part::build));
            let expected: Vec<u8> =
                parts.iter().flat_map(|p| p.materialize()).collect();

            // Materialization parity.
            prop_assert_eq!(payload.len(), expected.len());
            prop_assert_eq!(payload.to_vec(), expected.clone());
            prop_assert!(payload.eq_bytes(&expected));
            prop_assert_eq!(&payload, &Payload::inline(expected.clone()));

            // Line-kernel parity: multiset of (line, multiplicity)
            // visits equals a naive split of the materialized bytes.
            let mut got = std::collections::BTreeMap::new();
            payload.for_each_line_run(&mut |line, n| {
                *got.entry(line.to_vec()).or_insert(0u64) += n;
            });
            prop_assert_eq!(got, naive_lines(&expected));
            prop_assert_eq!(
                payload.line_count() as usize,
                expected.split(|&c| c == b'\n').filter(|l| !l.is_empty()).count()
            );

            // Slice parity: an arbitrary sub-range equals the same
            // sub-range of the materialized bytes, and the kernels
            // agree on the sliced payload too.
            let n = expected.len();
            let (a, b) = (cut.0 as usize % (n + 1), cut.1 as usize % (n + 1));
            let (start, end) = (a.min(b), a.max(b));
            let sliced = payload.slice(start..end);
            let expected_slice = expected[start..end].to_vec();
            prop_assert_eq!(sliced.to_vec(), expected_slice.clone());
            prop_assert_eq!(
                {
                    let mut got = std::collections::BTreeMap::new();
                    sliced.for_each_line_run(&mut |line, n| {
                        *got.entry(line.to_vec()).or_insert(0u64) += n;
                    });
                    got
                },
                naive_lines(&expected_slice)
            );
        }

        /// Streaming parity: slicing a payload into arbitrary-size
        /// chunks and feeding them through a [`LineRunScanner`] visits
        /// the same line multiset as scanning the whole payload at once,
        /// whatever the chunk size — lines straddling chunk boundaries
        /// are stitched by the carry.
        #[test]
        fn chunked_scanner_matches_whole_payload_scan(
            parts in prop::collection::vec(part_strategy(), 0..6),
            chunk in 1usize..17,
        ) {
            let payload = Payload::concat(parts.iter().map(Part::build));
            let expected: Vec<u8> =
                parts.iter().flat_map(|p| p.materialize()).collect();

            let mut scanner = LineRunScanner::new();
            let mut got = std::collections::BTreeMap::new();
            let mut visit = |line: &[u8], n: u64| {
                *got.entry(line.to_vec()).or_insert(0u64) += n;
            };
            let mut off = 0;
            while off < payload.len() {
                let end = (off + chunk).min(payload.len());
                scanner.feed(&payload.slice(off..end), &mut visit);
                off = end;
            }
            scanner.finish(&mut visit);
            prop_assert_eq!(got, naive_lines(&expected));
        }
    }
}
