//! Event sources: queue-batch triggers and blob-change triggers.
//!
//! These are the "event-driven workflows of Lambda functions, stitched
//! together via queueing systems (such as SQS) or object stores (such as
//! S3)" that §2's *function composition* pattern describes.

use std::cell::Cell;
use std::rc::Rc;

use faasim_blob::BlobStore;
use faasim_payload::Payload;
use faasim_net::{Fabric, NicConfig};
use faasim_queue::{QueueService, MAX_BATCH};
use faasim_simcore::{mbps, SimDuration};

use crate::codec::encode_batch;
use crate::platform::FaasPlatform;

/// Handle to stop a running trigger.
#[derive(Clone)]
pub struct TriggerHandle {
    stop: Rc<Cell<bool>>,
}

impl TriggerHandle {
    /// Ask the trigger loop to stop after its current iteration.
    pub fn stop(&self) {
        self.stop.set(true);
    }
}

/// Attach a queue trigger: an event-source poller that long-polls
/// `queue`, invokes `func` with each batch (encoded via
/// [`crate::codec::encode_batch`]), and deletes the batch on success.
/// Failed invocations leave messages to reappear after the visibility
/// timeout (at-least-once semantics).
pub fn add_queue_trigger(
    platform: &FaasPlatform,
    queues: &QueueService,
    fabric: &Fabric,
    func: &str,
    queue: &str,
    batch_size: usize,
) -> TriggerHandle {
    let stop = Rc::new(Cell::new(false));
    let handle = TriggerHandle { stop: stop.clone() };
    let platform = platform.clone();
    let queues = queues.clone();
    let func = func.to_owned();
    let queue = queue.to_owned();
    let batch_size = batch_size.clamp(1, MAX_BATCH);
    // The poller is part of the managed service; its host models the
    // event-source-mapping fleet, not the customer's containers.
    let poller_host = fabric.add_host(0, NicConfig::simple(mbps(10_000.0)));
    let sim = platform_sim(&platform);
    sim.clone().spawn(async move {
        loop {
            if stop.get() {
                break;
            }
            let received = match queues
                .receive(&poller_host, &queue, batch_size, SimDuration::MAX)
                .await
            {
                Ok(batch) => batch,
                Err(_) => break, // queue deleted: trigger dies
            };
            if received.is_empty() {
                continue;
            }
            let bodies: Vec<Payload> = received.iter().map(|m| m.body.clone()).collect();
            let payload = encode_batch(&bodies);
            let outcome = platform.invoke_triggered(&func, payload).await;
            if outcome.result.is_ok() {
                let receipts = received.into_iter().map(|m| m.receipt).collect();
                let _ = queues.delete_batch(&poller_host, receipts).await;
            }
        }
    });
    handle
}

/// Attach a blob trigger: every object created in `bucket` invokes
/// `func` with the object key as payload.
pub fn add_blob_trigger(
    platform: &FaasPlatform,
    blobs: &BlobStore,
    bucket: &str,
) -> BlobTriggerBuilder {
    BlobTriggerBuilder {
        platform: platform.clone(),
        blobs: blobs.clone(),
        bucket: bucket.to_owned(),
    }
}

/// Builder finishing a blob trigger registration.
pub struct BlobTriggerBuilder {
    platform: FaasPlatform,
    blobs: BlobStore,
    bucket: String,
}

impl BlobTriggerBuilder {
    /// Invoke `func` for every created object.
    pub fn on_created(self, func: &str) -> TriggerHandle {
        let stop = Rc::new(Cell::new(false));
        let handle = TriggerHandle { stop: stop.clone() };
        let mut rx = self.blobs.subscribe(&self.bucket);
        let platform = self.platform.clone();
        let func = func.to_owned();
        let sim = platform_sim(&platform);
        sim.clone().spawn(async move {
            while let Some(event) = rx.recv().await {
                if stop.get() {
                    break;
                }
                if event.kind == faasim_blob::BlobEventKind::Created {
                    platform.invoke_async(&func, event.key.into_bytes());
                }
            }
        });
        handle
    }
}

fn platform_sim(platform: &FaasPlatform) -> faasim_simcore::Sim {
    platform.sim_handle()
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;
    use crate::config::FaasProfile;
    use crate::platform::FunctionSpec;
    use faasim_blob::BlobProfile;
    use faasim_net::NetProfile;
    use faasim_pricing::{Ledger, PriceBook};
    use faasim_queue::{QueueConfig, QueueProfile};
    use faasim_simcore::{Recorder, Sim};

    struct World {
        sim: Sim,
        fabric: Fabric,
        platform: FaasPlatform,
        queues: QueueService,
        blobs: BlobStore,
    }

    fn setup() -> World {
        let sim = Sim::new(61);
        let recorder = Recorder::new();
        let fabric = Fabric::new(&sim, NetProfile::aws_2018().exact(), recorder.clone());
        let prices = Rc::new(PriceBook::aws_2018());
        let ledger = Ledger::new();
        let platform = FaasPlatform::new(
            &sim,
            &fabric,
            FaasProfile::aws_2018().exact(),
            prices.clone(),
            ledger.clone(),
            recorder.clone(),
        );
        let queues = QueueService::new(
            &sim,
            QueueProfile::aws_2018().exact(),
            prices.clone(),
            ledger.clone(),
            recorder.clone(),
        );
        let blobs = BlobStore::new(
            &sim,
            BlobProfile::aws_2018().exact(),
            prices,
            ledger,
            recorder,
        );
        World {
            sim,
            fabric,
            platform,
            queues,
            blobs,
        }
    }

    #[test]
    fn queue_trigger_processes_batches() {
        let w = setup();
        w.queues.create_queue("in", QueueConfig::default());
        let processed = Rc::new(Cell::new(0usize));
        let p = processed.clone();
        w.platform.register(FunctionSpec::new(
            "consumer",
            256,
            SimDuration::from_secs(30),
            move |_ctx, payload| {
                let p = p.clone();
                async move {
                    let docs = crate::codec::decode_batch(&payload).unwrap();
                    p.set(p.get() + docs.len());
                    Ok(Bytes::new())
                }
            },
        ));
        let _trigger =
            add_queue_trigger(&w.platform, &w.queues, &w.fabric, "consumer", "in", 10);
        let host = w.fabric.add_host(0, NicConfig::simple(mbps(1000.0)));
        let queues = w.queues.clone();
        w.sim.spawn(async move {
            for i in 0..25u8 {
                queues
                    .send(&host, "in", Bytes::from(vec![i]))
                    .await
                    .unwrap();
            }
        });
        w.sim.run();
        assert_eq!(processed.get(), 25);
        // Everything consumed and deleted.
        assert_eq!(w.queues.queue_len("in"), 0);
    }

    #[test]
    fn failed_invocations_leave_messages_for_redelivery() {
        let w = setup();
        w.queues.create_queue(
            "in",
            QueueConfig {
                visibility_timeout: SimDuration::from_secs(5),
                dead_letter: None,
            },
        );
        let attempts = Rc::new(Cell::new(0u32));
        let a = attempts.clone();
        w.platform.register(FunctionSpec::new(
            "flaky",
            256,
            SimDuration::from_secs(30),
            move |_ctx, _payload| {
                let a = a.clone();
                async move {
                    a.set(a.get() + 1);
                    if a.get() < 3 {
                        Err(crate::platform::FnError::Handler("transient".into()))
                    } else {
                        Ok(Bytes::new())
                    }
                }
            },
        ));
        let trigger = add_queue_trigger(&w.platform, &w.queues, &w.fabric, "flaky", "in", 10);
        let host = w.fabric.add_host(0, NicConfig::simple(mbps(1000.0)));
        let queues = w.queues.clone();
        w.sim.spawn(async move {
            queues.send(&host, "in", Bytes::from_static(b"m")).await.unwrap();
        });
        // Let redeliveries happen, then stop the trigger so the run ends.
        w.sim.run_until(faasim_simcore::SimTime::ZERO + SimDuration::from_secs(60));
        trigger.stop();
        assert_eq!(attempts.get(), 3, "two failures then success");
        assert_eq!(w.queues.queue_len("in"), 0);
    }

    #[test]
    fn blob_trigger_fires_on_created_objects() {
        let w = setup();
        w.blobs.create_bucket("uploads");
        let seen = Rc::new(RefCell::new(Vec::new()));
        let s = seen.clone();
        w.platform.register(FunctionSpec::new(
            "thumbnail",
            512,
            SimDuration::from_secs(30),
            move |_ctx, payload| {
                let s = s.clone();
                async move {
                    s.borrow_mut()
                        .push(String::from_utf8(payload.to_vec()).unwrap());
                    Ok(Bytes::new())
                }
            },
        ));
        let _trigger = add_blob_trigger(&w.platform, &w.blobs, "uploads").on_created("thumbnail");
        let host = w.fabric.add_host(0, NicConfig::simple(mbps(1000.0)));
        let blobs = w.blobs.clone();
        w.sim.spawn(async move {
            blobs
                .put(&host, "uploads", "cat.jpg", Bytes::from_static(b"img"))
                .await
                .unwrap();
            blobs
                .put(&host, "uploads", "dog.jpg", Bytes::from_static(b"img"))
                .await
                .unwrap();
            blobs.delete(&host, "uploads", "cat.jpg").await.unwrap();
        });
        w.sim.run();
        assert_eq!(*seen.borrow(), vec!["cat.jpg".to_owned(), "dog.jpg".to_owned()]);
    }

    use std::cell::RefCell;
}
