//! FaaS platform configuration and calibration.

use faasim_net::NicConfig;
use faasim_simcore::{mbps, LatencyModel, SimDuration};

/// Platform-wide knobs, calibrated to AWS Lambda as measured in Fall 2018
/// (the paper's §3 constraints (1)–(4) and Table 1).
#[derive(Clone, Debug)]
pub struct FaasProfile {
    /// End-to-end invocation-path overhead for a warm invocation (request
    /// routing, dispatch, runtime entry/exit). Table 1 measures 303 ms for
    /// a no-op on a 1 KB argument.
    pub invoke_overhead: LatencyModel,
    /// Extra latency when no warm container exists: provisioning a
    /// sandbox VM + language runtime init (2018 Lambda: seconds).
    pub cold_start_extra: LatencyModel,
    /// Additional dispatch latency on the queue-trigger path (event-source
    /// mapping, batching window). Calibrated so §3.1 CS-2's optimized
    /// Lambda pipeline lands at 447 ms/batch.
    pub queue_trigger_overhead: LatencyModel,
    /// Hard cap on a single invocation (§3 constraint (1): 15 minutes).
    pub max_lifetime: SimDuration,
    /// How long an idle container stays warm before the platform reclaims
    /// it (undocumented by AWS; commonly observed tens of minutes).
    pub container_idle_timeout: SimDuration,
    /// Memory that buys one full reference core (AWS documents 1,792 MB ≙
    /// 1 vCPU).
    pub mem_per_vcpu_mb: u64,
    /// CPU efficiency factor relative to a dedicated core (scheduling and
    /// virtualization overhead on the shared function host). Calibrated
    /// with `mem_per_vcpu_mb` to CS-1's 0.59 s/iteration at 640 MB.
    pub cpu_efficiency: f64,
    /// Maximum function memory (§3: "the largest Lambda instance only
    /// allows for 3 GB of RAM").
    pub max_memory_mb: u64,
    /// NIC of each function host VM. §3(2): one function sees 538 Mbps;
    /// twenty co-located functions average 28.7 Mbps ⇒ 574 Mbps shared.
    pub host_nic: NicConfig,
    /// Memory capacity of a function host VM (packing constraint).
    pub host_mem_mb: u64,
    /// Maximum containers packed per host VM regardless of memory —
    /// AWS observably packs a user's functions onto few hosts (§3(2)).
    pub max_containers_per_host: usize,
    /// Account-wide concurrent-execution limit (2018 default: 1,000).
    pub account_concurrency: usize,
    /// Billing granularity (2018: 100 ms, rounded up).
    pub billing_increment: SimDuration,
    /// Retries for asynchronously invoked (event) executions that fail.
    pub async_retries: u32,
    /// Backoff between async retries (multiplied by the attempt number).
    pub async_retry_backoff: SimDuration,
}

impl FaasProfile {
    /// The Fall-2018 AWS Lambda calibration used by every experiment.
    pub fn aws_2018() -> FaasProfile {
        FaasProfile {
            invoke_overhead: LatencyModel::LogNormal {
                mean: SimDuration::from_micros(302_000),
                cv: 0.15,
                floor: SimDuration::from_millis(50),
            },
            cold_start_extra: LatencyModel::LogNormal {
                mean: SimDuration::from_secs(5),
                cv: 0.3,
                floor: SimDuration::from_millis(500),
            },
            queue_trigger_overhead: LatencyModel::LogNormal {
                mean: SimDuration::from_micros(126_000),
                cv: 0.2,
                floor: SimDuration::from_millis(20),
            },
            max_lifetime: SimDuration::from_secs(900),
            container_idle_timeout: SimDuration::from_mins(10),
            mem_per_vcpu_mb: 1_792,
            cpu_efficiency: 0.95,
            max_memory_mb: 3_008,
            host_nic: NicConfig {
                capacity: mbps(574.0),
                per_flow_cap: Some(mbps(538.0)),
            },
            host_mem_mb: 16 * 1024,
            max_containers_per_host: 20,
            account_concurrency: 1_000,
            billing_increment: SimDuration::from_millis(100),
            async_retries: 2,
            async_retry_backoff: SimDuration::from_mins(1),
        }
    }

    /// The Firecracker ablation (§3 footnote 5): microVM startup of
    /// ~125 ms replaces the multi-second cold start. Everything else
    /// unchanged — which is exactly the paper's point.
    pub fn firecracker(mut self) -> FaasProfile {
        self.cold_start_extra = LatencyModel::LogNormal {
            mean: SimDuration::from_micros(125_000),
            cv: 0.2,
            floor: SimDuration::from_millis(50),
        };
        self
    }

    /// Collapse all latency models to their means for exact reproduction.
    pub fn exact(mut self) -> FaasProfile {
        self.invoke_overhead = self.invoke_overhead.to_constant();
        self.cold_start_extra = self.cold_start_extra.to_constant();
        self.queue_trigger_overhead = self.queue_trigger_overhead.to_constant();
        self
    }

    /// The CPU fraction a function of `memory_mb` receives, relative to a
    /// reference core.
    pub fn cpu_fraction(&self, memory_mb: u64) -> f64 {
        (memory_mb as f64 / self.mem_per_vcpu_mb as f64).min(2.0) * self.cpu_efficiency
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cpu_fraction_calibration() {
        let p = FaasProfile::aws_2018();
        // 640 MB: the CS-1 configuration. A 0.2 reference-core-second
        // iteration must take ~0.59 s.
        let frac = p.cpu_fraction(640);
        let secs = 0.2 / frac;
        assert!((secs - 0.59).abs() < 0.01, "iteration {secs}");
        // Fraction is capped: giant memory doesn't buy unbounded CPU.
        assert!(p.cpu_fraction(100_000) <= 2.0);
    }

    #[test]
    fn firecracker_only_changes_cold_start() {
        let base = FaasProfile::aws_2018();
        let fc = FaasProfile::aws_2018().firecracker();
        assert_eq!(
            fc.cold_start_extra.mean(),
            SimDuration::from_micros(125_000)
        );
        assert_eq!(fc.invoke_overhead.mean(), base.invoke_overhead.mean());
        assert_eq!(fc.max_lifetime, base.max_lifetime);
    }

    #[test]
    fn exact_collapses_models() {
        let p = FaasProfile::aws_2018().exact();
        assert!(matches!(p.invoke_overhead, LatencyModel::Constant(_)));
        assert_eq!(p.invoke_overhead.mean(), SimDuration::from_micros(302_000));
    }
}
