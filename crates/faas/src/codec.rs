//! Length-prefixed framing for passing a batch of documents through a
//! single payload (FaaS payloads are opaque byte strings, so
//! multi-message batches need an encoding).
//!
//! Frames are stitched together with [`Payload::concat`] and carved back
//! out with [`Payload::slice`], so synthetic bodies stay symbolic all the
//! way through a queue trigger: only the 4-byte prefixes are ever
//! materialized.

use bytes::Bytes;
use faasim_payload::Payload;

/// Encode a batch of byte strings into one payload.
pub fn encode_batch(items: &[Payload]) -> Payload {
    let mut parts: Vec<Payload> = Vec::with_capacity(1 + 2 * items.len());
    parts.push(Payload::from(Bytes::from(
        (items.len() as u32).to_le_bytes().to_vec(),
    )));
    for item in items {
        parts.push(Payload::from(Bytes::from(
            (item.len() as u32).to_le_bytes().to_vec(),
        )));
        parts.push(item.clone());
    }
    Payload::concat(parts)
}

/// Decode a payload produced by [`encode_batch`]. Returns `None` on
/// malformed input.
pub fn decode_batch(payload: &Payload) -> Option<Vec<Payload>> {
    let total = payload.len();
    let mut offset = 0usize;
    let read_u32 = |offset: &mut usize| -> Option<u32> {
        if *offset + 4 > total {
            return None;
        }
        let bytes = payload.slice(*offset..*offset + 4).to_vec();
        *offset += 4;
        Some(u32::from_le_bytes(bytes.try_into().ok()?))
    };
    let count = read_u32(&mut offset)? as usize;
    // Guard against absurd counts from corrupt prefixes.
    if count > total {
        return None;
    }
    let mut out = Vec::with_capacity(count);
    for _ in 0..count {
        let len = read_u32(&mut offset)? as usize;
        if offset + len > total {
            return None;
        }
        out.push(payload.slice(offset..offset + len));
        offset += len;
    }
    if offset != total {
        return None; // trailing garbage
    }
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let items = vec![
            Payload::from_static(b"one"),
            Payload::new(),
            Payload::from(vec![7u8; 1000]),
        ];
        let encoded = encode_batch(&items);
        let decoded = decode_batch(&encoded).unwrap();
        assert_eq!(decoded, items);
    }

    #[test]
    fn synthetic_items_stay_symbolic() {
        // A 1 GB synthetic document survives the encode/decode roundtrip
        // without ever being materialized.
        let big = Payload::synthetic("log line\n", 100_000_000);
        let encoded = encode_batch(&[big.clone(), Payload::from_static(b"tail")]);
        assert_eq!(encoded.len(), 4 + (4 + big.len()) + (4 + 4));
        let decoded = decode_batch(&encoded).unwrap();
        assert_eq!(decoded.len(), 2);
        assert_eq!(decoded[0].len(), big.len());
        assert_eq!(decoded[0].line_count(), big.line_count());
        assert!(decoded[1].eq_bytes(b"tail"));
    }

    #[test]
    fn empty_batch() {
        let encoded = encode_batch(&[]);
        assert_eq!(decode_batch(&encoded).unwrap(), Vec::<Payload>::new());
    }

    #[test]
    fn malformed_inputs_rejected() {
        assert!(decode_batch(&Payload::from_static(b"")).is_none());
        assert!(decode_batch(&Payload::from_static(b"\x01\x00")).is_none());
        // Valid prefix but truncated body.
        let mut good = encode_batch(&[Payload::from_static(b"hello")]).to_vec();
        good.truncate(good.len() - 1);
        assert!(decode_batch(&Payload::from(good)).is_none());
        // Trailing garbage.
        let mut padded = encode_batch(&[Payload::from_static(b"x")]).to_vec();
        padded.push(0);
        assert!(decode_batch(&Payload::from(padded)).is_none());
    }

    #[test]
    fn absurd_count_rejected() {
        let bogus = Payload::from(u32::MAX.to_le_bytes().to_vec());
        assert!(decode_batch(&bogus).is_none());
    }
}
