//! Length-prefixed framing for passing a batch of documents through a
//! single `Bytes` payload (FaaS payloads are opaque byte strings, so
//! multi-message batches need an encoding).

use bytes::{BufMut, Bytes, BytesMut};

/// Encode a batch of byte strings into one payload.
pub fn encode_batch(items: &[Bytes]) -> Bytes {
    let total: usize = items.iter().map(|i| i.len() + 4).sum();
    let mut buf = BytesMut::with_capacity(4 + total);
    buf.put_u32_le(items.len() as u32);
    for item in items {
        buf.put_u32_le(item.len() as u32);
        buf.put_slice(item);
    }
    buf.freeze()
}

/// Decode a payload produced by [`encode_batch`]. Returns `None` on
/// malformed input.
pub fn decode_batch(payload: &Bytes) -> Option<Vec<Bytes>> {
    let mut offset = 0usize;
    let read_u32 = |offset: &mut usize| -> Option<u32> {
        let bytes = payload.get(*offset..*offset + 4)?;
        *offset += 4;
        Some(u32::from_le_bytes(bytes.try_into().ok()?))
    };
    let count = read_u32(&mut offset)? as usize;
    // Guard against absurd counts from corrupt prefixes.
    if count > payload.len() {
        return None;
    }
    let mut out = Vec::with_capacity(count);
    for _ in 0..count {
        let len = read_u32(&mut offset)? as usize;
        let item = payload.get(offset..offset + len)?;
        offset += len;
        out.push(payload.slice_ref(item));
    }
    if offset != payload.len() {
        return None; // trailing garbage
    }
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let items = vec![
            Bytes::from_static(b"one"),
            Bytes::new(),
            Bytes::from(vec![7u8; 1000]),
        ];
        let encoded = encode_batch(&items);
        let decoded = decode_batch(&encoded).unwrap();
        assert_eq!(decoded, items);
    }

    #[test]
    fn empty_batch() {
        let encoded = encode_batch(&[]);
        assert_eq!(decode_batch(&encoded).unwrap(), Vec::<Bytes>::new());
    }

    #[test]
    fn malformed_inputs_rejected() {
        assert!(decode_batch(&Bytes::from_static(b"")).is_none());
        assert!(decode_batch(&Bytes::from_static(b"\x01\x00")).is_none());
        // Valid prefix but truncated body.
        let mut good = encode_batch(&[Bytes::from_static(b"hello")]).to_vec();
        good.truncate(good.len() - 1);
        assert!(decode_batch(&Bytes::from(good)).is_none());
        // Trailing garbage.
        let mut padded = encode_batch(&[Bytes::from_static(b"x")]).to_vec();
        padded.push(0);
        assert!(decode_batch(&Bytes::from(padded)).is_none());
    }

    #[test]
    fn absurd_count_rejected() {
        let bogus = Bytes::from(u32::MAX.to_le_bytes().to_vec());
        assert!(decode_batch(&bogus).is_none());
    }
}
